#!/usr/bin/env python
"""Coverage ratchet gate for CI.

Usage::

    python tools/coverage_gate.py coverage.json \\
        benchmarks/coverage_ratchet.json

Reads the ``pytest --cov --cov-report=json`` output, compares the total
line coverage against the committed floor in the ratchet file, and
prints a Markdown summary (piped into ``$GITHUB_STEP_SUMMARY`` by the
coverage job).  Exits 1 if coverage fell below the floor.

The floor only moves *up*, and only by a human commit: when measured
coverage clears the floor by more than ``ratchet_margin`` points, the
gate prints a reminder to raise it — it never fails for being too good,
and it never auto-edits the ratchet file.
"""

from __future__ import annotations

import json
import sys


def gate(coverage: dict, ratchet: dict) -> tuple:
    """(markdown summary, exit status) for one coverage report."""
    percent = float(coverage["totals"]["percent_covered"])
    floor = float(ratchet["min_percent"])
    margin = float(ratchet.get("ratchet_margin", 3.0))
    delta = percent - floor
    lines = [
        "### Coverage ratchet",
        "",
        "| measured | committed floor | delta |",
        "| --- | --- | --- |",
        f"| {percent:.2f}% | {floor:.2f}% | {delta:+.2f} pts |",
        "",
    ]
    if percent < floor:
        lines.append(
            f"**FAIL** — coverage fell below the committed floor. "
            f"Add tests for what this change touched; do not lower "
            f"`min_percent`.")
        return "\n".join(lines), 1
    if delta > margin:
        lines.append(
            f"Coverage clears the floor by {delta:.1f} points — "
            f"consider ratcheting `min_percent` up to about "
            f"{percent - 1.0:.0f} in `benchmarks/coverage_ratchet.json` "
            f"so the gain is locked in.")
    else:
        lines.append("Pass.")
    return "\n".join(lines), 0


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as fh:
        coverage = json.load(fh)
    with open(argv[2]) as fh:
        ratchet = json.load(fh)
    summary, status = gate(coverage, ratchet)
    print(summary)
    if status:
        print(f"FAIL: coverage "
              f"{coverage['totals']['percent_covered']:.2f}% < floor "
              f"{ratchet['min_percent']:.2f}%", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
