"""Table 5: chip area breakdown and Section 4.2 headline numbers."""

import pytest

from conftest import save_report
from repro.arch.params import DEFAULT
from repro.eval import table5
from repro.eval.paper_data import HEADLINE, TABLE5


def test_table5_regeneration(benchmark):
    measured = benchmark(table5.generate, DEFAULT)
    save_report("table5_area", table5.render(measured))
    # the area model is calibrated: the roll-up must match the paper
    assert measured["chip_total"] == pytest.approx(
        TABLE5["chip_total"], rel=0.01)
    assert measured["pcu_total"] == pytest.approx(
        TABLE5["pcu_total"], rel=0.01)
    assert measured["pmu_total"] == pytest.approx(
        TABLE5["pmu_total"], rel=0.01)
    assert measured["peak_tflops"] == pytest.approx(
        HEADLINE["peak_tflops"], rel=0.01)
    assert measured["max_power_w"] == pytest.approx(
        HEADLINE["max_power_w"], rel=0.05)
