"""Ablation: outer-loop unrolling (Section 3.6's parallelization).

Unrolling duplicates a step's inner controllers so several tiles stream
through the fabric concurrently — trading PCUs/PMUs for throughput.
This harness sweeps the factor on GEMM and checks speedup scales with
the duplicated resources (sub-linearly: the tiles share DRAM bandwidth).
"""

import numpy as np
import pytest

from conftest import save_report
from repro.compiler import compile_program
from repro.eval.report import format_table
from repro.patterns import Fold, Program
from repro.sim import Machine


def _gemm(outer):
    m, k, n = 64, 32, 16
    p = Program("g")
    rng = np.random.default_rng(1)
    a_data = rng.standard_normal((m, k)).astype(np.float32)
    b_data = rng.standard_normal((k, n)).astype(np.float32)
    a = p.input("a", (m, k), data=a_data)
    b = p.input("b", (k, n), data=b_data)
    c = p.output("c", (m, n))
    step = p.map("mm", c, (m, n),
                 lambda i, j: Fold(k, 0.0,
                                   lambda kk: a[i, kk] * b[kk, j],
                                   lambda x, y: x + y))
    step.set_par(1, 1, inner=16, outer=outer)
    step.tile = (8, 16)
    compiled = compile_program(p)
    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()
    assert np.allclose(machine.result("c"), a_data @ b_data,
                       rtol=1e-3, atol=1e-3)
    return stats.cycles, compiled.config.pcus_used


def test_unrolling_scales_throughput(benchmark):
    results = benchmark.pedantic(
        lambda: {u: _gemm(u) for u in (1, 2, 4)},
        iterations=1, rounds=1)
    base_cycles, base_pcus = results[1]
    rows = []
    for factor, (cycles, pcus) in results.items():
        rows.append((f"outer={factor}", cycles, pcus,
                     f"{base_cycles / cycles:.2f}x"))
    save_report("ablation_unrolling_gemm", format_table(
        ("unroll", "cycles", "PCUs", "speedup"), rows,
        title="Outer-loop unrolling ablation: GEMM"))
    # 2x the units buys a real speedup, 4x keeps helping
    assert results[2][0] < 0.70 * base_cycles
    assert results[4][0] < results[2][0]
    # and resource usage grows with the factor
    assert results[4][1] > results[2][1] > base_pcus
