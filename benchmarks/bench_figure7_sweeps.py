"""Figure 7 (a-f): normalized PCU area overhead parameter sweeps.

Each subfigure sweeps one PCU parameter across the Table 3 range,
re-partitioning every benchmark's inner controllers at each value.  The
assertions pin the paper's qualitative conclusions per subfigure.
"""

import pytest

from conftest import save_report
from repro.eval import figure7


def _run(benchmark, key):
    param, values = figure7.SWEEPS[key]
    curves = benchmark.pedantic(figure7.sweep, args=(param, values),
                                kwargs={"scale": "small"},
                                iterations=1, rounds=1)
    save_report(f"figure7{key}", figure7.render(param, curves))
    return param, values, curves


def test_fig7a_stages(benchmark):
    param, values, curves = _run(benchmark, "a_stages")
    avg = figure7.average_curve(curves)

    def min_at(name):
        curve = curves[name]
        return min((v for v in curve if curve[v] is not None),
                   key=lambda v: curve[v])

    # paper: the balanced choice (6) is in the low-overhead region and
    # large stage counts waste area on average
    assert figure7.best_value(curves) <= 7
    assert avg[6] - min(o for o in avg.values() if o is not None) < 0.2
    assert avg[16] > avg[6]
    # paper: a full cross-lane reduction tree needs at least 5 stages,
    # so reduction-heavy benchmarks minimise at >= 5
    for name in ("innerproduct", "gemm", "gda", "logreg", "smdv"):
        assert min_at(name) >= 5, name
    # paper: TPCHQ6's 16-op pipeline minimises at even divisors (8, 16)
    assert min_at("tpchq6") in (8, 16)
    # paper: Black-Scholes' ~80-stage pipeline makes the per-PCU stage
    # count nearly irrelevant (long chains amortise any split)
    bs = curves["blackscholes"]
    bs_vals = [o for o in bs.values() if o is not None]
    assert max(bs_vals) - min(bs_vals) < 0.4


def test_fig7b_registers(benchmark):
    param, values, curves = _run(benchmark, "b_registers")
    avg = figure7.average_curve(curves)
    # paper: ideal 4-6 registers; beyond 8 the unused registers cost area
    best = figure7.best_value(curves)
    assert 2 <= best <= 8
    assert avg[16] > avg[best]


def test_fig7c_scalar_in(benchmark):
    param, values, curves = _run(benchmark, "c_scalar_in")
    avg = figure7.average_curve(curves)
    # paper: a minimum is required, then more has little impact -- the
    # curve must be nearly flat past the minimum
    feasible = [o for o in avg.values() if o is not None]
    assert max(feasible) - min(feasible) < 0.6


def test_fig7d_scalar_out(benchmark):
    param, values, curves = _run(benchmark, "d_scalar_out")
    avg = figure7.average_curve(curves)
    feasible = [o for o in avg.values() if o is not None]
    assert max(feasible) - min(feasible) < 0.6


def test_fig7e_vector_in(benchmark):
    param, values, curves = _run(benchmark, "e_vector_in")
    # paper selects 3 vector inputs; fewer causes partition splitting
    best = figure7.best_value(curves)
    assert 2 <= best <= 4


def test_fig7f_vector_out(benchmark):
    param, values, curves = _run(benchmark, "f_vector_out")
    avg = figure7.average_curve(curves)
    # paper: vector outputs are relatively inexpensive with little
    # impact on area
    feasible = [o for o in avg.values() if o is not None]
    assert max(feasible) - min(feasible) < 0.3
