"""Ablation: coarse-grained pipelining vs sequential outer control.

Section 3.5: the pipeline scheme overlaps tile loads, compute, and
stores through N-buffered scratchpads.  Forcing every outer controller
to the sequential scheme must cost cycles on the tiled benchmarks.
"""

import pytest

from conftest import save_report
from repro.apps import get_app
from repro.compiler import compile_program
from repro.dhdl import OuterController, Scheme
from repro.eval.report import format_table
from repro.sim import Machine


def _cycles(app, force_sequential=False):
    program = app.build("small")
    for step in program.walk_steps():
        step.outer_par = 1  # isolate the control scheme from unrolling
    compiled = compile_program(program)
    if force_sequential:
        for ctrl in compiled.dhdl.controllers():
            if isinstance(ctrl, OuterController) and \
                    ctrl.scheme is Scheme.PIPELINE:
                ctrl.scheme = Scheme.SEQUENTIAL
    machine = Machine(compiled.dhdl, compiled.config)
    return machine.run().cycles


@pytest.mark.parametrize("name", ["innerproduct", "gemm",
                                  "outerproduct"])
def test_pipelining_beats_sequential(benchmark, name):
    app = get_app(name)
    pipelined = _cycles(app)
    sequential = benchmark.pedantic(_cycles, args=(app, True),
                                    iterations=1, rounds=1)
    assert sequential > pipelined, (
        f"{name}: pipelining must help ({sequential} vs {pipelined})")
    save_report(f"ablation_control_{name}", format_table(
        ("scheme", "cycles", "speedup"),
        [("coarse-grained pipeline (paper)", pipelined,
          f"{sequential / pipelined:.2f}x"),
         ("sequential (ablation)", sequential, "1.00x")],
        title=f"Control-scheme ablation: {name}"))
