"""Table 6: area overheads of generalizing ASICs into Plasticine.

Regenerates the five-step homogenization ladder over the compiler's
virtual-unit requirements for the 12 Table 6 benchmarks and checks the
paper's qualitative findings.
"""

import pytest

from conftest import save_report
from repro.eval import table6


def test_table6_regeneration(benchmark):
    results = benchmark.pedantic(table6.generate,
                                 kwargs={"scale": "small"},
                                 iterations=1, rounds=1)
    save_report("table6_overheads", table6.render(results))

    # paper: reconfigurable units cost ~2.8x over ASIC on average
    mean_a = table6.geomean(t["a"] for t in results.values())
    assert 1.8 <= mean_a <= 4.5

    # every step is an overhead relative to the ASIC
    for name, t in results.items():
        assert t["a"] > 1.0, name
        assert t["e_cum"] > t["a"] * 0.8, name

    # the paper's spread: cumulative overheads vary by benchmark from a
    # few x to tens of x
    cums = [t["e_cum"] for t in results.values()]
    assert min(cums) < 6.0
    assert max(cums) > 8.0
