"""Ablation: configurable banking vs a single-banked scratchpad.

The paper argues banked scratchpads are what keeps the SIMD lanes fed
(Table 2, Section 3.2).  We re-run compute-dense benchmarks with the
scratchpads forced to one bank: every 16-lane vector access serialises,
so cycle counts must inflate several-fold.
"""

import pytest

from conftest import save_report
from repro.apps import get_app
from repro.compiler import compile_program
from repro.eval.report import format_table
from repro.sim import Machine


def _cycles(app, banks_override=None):
    compiled = compile_program(app.build("small"))
    compiled.config.banks_override = banks_override
    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()
    return stats.cycles, stats.conflict_cycles


@pytest.mark.parametrize("name", ["gemm", "gda", "outerproduct"])
def test_single_bank_serialises_lanes(benchmark, name):
    app = get_app(name)
    banked_cycles, banked_conflicts = _cycles(app)
    single_cycles, single_conflicts = benchmark.pedantic(
        _cycles, args=(app, 1), iterations=1, rounds=1)
    assert single_cycles > 2.0 * banked_cycles, (
        f"{name}: banking should matter "
        f"({single_cycles} vs {banked_cycles})")
    assert single_conflicts > banked_conflicts
    save_report(f"ablation_banking_{name}", format_table(
        ("config", "cycles", "conflict cycles"),
        [("16 banks (paper)", banked_cycles, banked_conflicts),
         ("1 bank (ablation)", single_cycles, single_conflicts)],
        title=f"Banking ablation: {name}"))
