"""Shared helpers for the benchmark harnesses.

Every harness writes its rendered table to ``benchmarks/out/`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from one
``pytest benchmarks/ --benchmark-only`` run.
"""

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_report(name: str, text: str) -> None:
    """Persist one rendered table and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
