"""Ablation: the PMU:PCU ratio (Section 3.7).

The paper experimented with 2:1 PMU:PCU ratios and found them less
energy efficient despite sometimes higher unit utilization; we sweep the
fabric mix and report fit and utilization per benchmark.
"""

import pytest

from conftest import save_report
from repro.apps import get_app
from repro.compiler import compile_program
from repro.errors import MappingError
from repro.eval.report import format_table

RATIOS = {"1:1 (paper)": 0.5, "2:1": 2 / 3, "1:2": 1 / 3}


def _fit(name, fraction):
    app = get_app(name)
    try:
        compiled = compile_program(app.build("small"),
                                   pmu_fraction=fraction)
    except MappingError:
        return None
    util = compiled.config.utilization()
    return util


@pytest.mark.parametrize("name", ["gemm", "kmeans", "blackscholes"])
def test_ratio_sweep(benchmark, name):
    results = benchmark.pedantic(
        lambda: {label: _fit(name, frac)
                 for label, frac in RATIOS.items()},
        iterations=1, rounds=1)
    rows = []
    for label, util in results.items():
        if util is None:
            rows.append((label, "does not fit", "-"))
        else:
            rows.append((label, f"{100 * util['pcu']:.1f}%",
                         f"{100 * util['pmu']:.1f}%"))
    save_report(f"ablation_ratio_{name}", format_table(
        ("ratio", "PCU util", "PMU util"), rows,
        title=f"PMU:PCU ratio ablation: {name}"))
    # the paper's 1:1 must fit everything
    assert results["1:1 (paper)"] is not None
