"""Table 3: design-space ranges and the selected architecture.

Re-derives the overhead-minimising PCU parameters by running the
Figure 7 sweeps, and checks the selected (paper) values sit inside the
low-overhead region of our re-derived curves.
"""

import pytest

from conftest import save_report
from repro.eval import figure7, table3


def test_table3_selection(benchmark):
    rows = benchmark.pedantic(table3.generate,
                              kwargs={"scale": "small",
                                      "run_sweeps": True},
                              iterations=1, rounds=1)
    save_report("table3_sizing", table3.render(rows))
    # paper-selected values match our DEFAULT architecture
    for name, row in rows.items():
        if row["paper"] is not None:
            assert row["selected"] == row["paper"], name


def test_pmu_bank_size_rederived(benchmark):
    """Section 3.7: the smallest bank size fitting every benchmark's
    tiles (<=4000 words per bank) is the paper's 16 KB."""
    report = benchmark.pedantic(figure7.pmu_sweep, iterations=1,
                                rounds=1)
    save_report("table3_pmu_sizing", "\n".join(
        f"{v:3d} KB banks: fit={r['fit_fraction']:.2f} "
        f"stranded={r['avg_stranded']:.2f}"
        for v, r in report.items()))
    assert figure7.select_bank_kb(report) == 16


def test_selected_stages_in_low_overhead_region(benchmark):
    param, values = figure7.SWEEPS["a_stages"]
    curves = benchmark.pedantic(figure7.sweep, args=(param, values),
                                kwargs={"scale": "small"},
                                iterations=1, rounds=1)
    avg = figure7.average_curve(curves)
    # the paper's choice (6) must be within 25% overhead of the optimum
    best = min(o for o in avg.values() if o is not None)
    assert avg[6] is not None
    assert avg[6] - best < 0.25
