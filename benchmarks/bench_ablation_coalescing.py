"""Ablation: the coalescing unit for sparse DRAM traffic.

Section 3.4: the coalescing cache merges sparse addresses that fall in
the same DRAM burst.  Disabling it (one outstanding entry, no merging)
must increase both issued DRAM requests and cycle counts for the
gather-bound benchmarks.
"""

import pytest

from conftest import save_report
from repro.apps import get_app
from repro.compiler import compile_program
from repro.eval.report import format_table
from repro.sim import Machine


def _run(app, entries):
    compiled = compile_program(app.build("small"))
    compiled.config.coalesce_entries = entries
    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()
    return stats.cycles, stats.dram["reads"] + stats.dram["writes"]


@pytest.mark.parametrize("name", ["smdv", "pagerank", "bfs"])
def test_coalescing_reduces_requests(benchmark, name):
    app = get_app(name)
    with_cycles, with_reqs = _run(app, 48)
    without_cycles, without_reqs = benchmark.pedantic(
        _run, args=(app, 1), iterations=1, rounds=1)
    assert without_reqs >= with_reqs, name
    assert without_cycles >= with_cycles, name
    save_report(f"ablation_coalescing_{name}", format_table(
        ("config", "cycles", "DRAM requests"),
        [("48-entry coalescer (paper)", with_cycles, with_reqs),
         ("no coalescing (ablation)", without_cycles, without_reqs)],
        title=f"Coalescing ablation: {name}"))
