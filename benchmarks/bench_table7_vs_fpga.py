"""Table 7: Plasticine vs FPGA — utilization, power, performance,
performance-per-Watt for all 13 benchmarks.

Each benchmark is compiled and cycle-simulated at the ``small`` scale
(validated against the reference executor), then extrapolated to the
Table 4 dataset sizes.  The assertions pin the *shape* of the paper's
result: who wins, by roughly what factor, and where the extremes are.
"""

import pytest

from conftest import save_report
from repro.apps import get_app
from repro.eval import table7
from repro.eval.paper_data import TABLE7

ROWS = {}


@pytest.mark.parametrize("name", sorted(TABLE7))
def test_benchmark_vs_fpga(benchmark, name):
    app = get_app(name)
    row = benchmark.pedantic(table7.evaluate_app, args=(app,),
                             kwargs={"scale": "small"},
                             iterations=1, rounds=1)
    ROWS[name] = row
    paper_ratio = TABLE7[name][2]
    # shape agreement: within 2x of the paper's speedup, same winner
    assert row.perf_ratio > 1.0, f"{name}: Plasticine must win"
    assert row.perf_ratio == pytest.approx(paper_ratio, rel=1.0), (
        f"{name}: speedup {row.perf_ratio:.1f} vs paper {paper_ratio}")


def test_zz_render_table7(benchmark):
    """Render the collected rows (runs after the per-app benches)."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    if not ROWS:
        pytest.skip("per-benchmark rows not collected")
    rows = [ROWS[name] for name in sorted(ROWS)]
    save_report("table7_vs_fpga", table7.render(rows))
    # headline: best perf/W improvement should be the CNN-class apps,
    # in the tens (paper: up to 76.9x)
    best = max(rows, key=lambda r: r.perf_per_watt_ratio)
    assert best.name == "cnn"
    assert 20 <= best.perf_per_watt_ratio <= 300
    # streaming apps gain only about the bandwidth ratio
    stream = [r for r in rows if r.name in ("innerproduct", "tpchq6")]
    assert all(1.0 < r.perf_ratio < 2.5 for r in stream)
