"""CLI tests for the batched-simulation entry points."""

import json

from repro.cli import _parse_sweeps, main


def test_run_batch_default_stages_sweep(capsys):
    assert main(["run", "innerproduct", "--scale", "tiny",
                 "--batch"]) == 0
    out = capsys.readouterr().out
    assert "13 instances" in out          # Figure 7a's stages axis
    assert "12 replayed" in out
    assert "VALIDATED" in out
    assert "leader" in out and "replay" in out


def test_run_batch_cross_product_sweep(capsys):
    assert main(["run", "innerproduct", "--scale", "tiny", "--batch",
                 "--sweep", "stages=4,8", "--sweep", "banks=4,16"]) == 0
    out = capsys.readouterr().out
    assert "4 instances" in out
    assert "stages=4, banks=16" in out


def test_run_batch_explicit_params(capsys):
    params = json.dumps([{}, {"stages": 6, "dram_queue_depth": 4}])
    assert main(["run", "innerproduct", "--scale", "tiny", "--batch",
                 "--batch-params", params]) == 0
    out = capsys.readouterr().out
    assert "2 instances" in out
    assert "(as compiled)" in out
    assert "stages=6, dram_queue_depth=4" in out


def test_run_batch_params_file(tmp_path, capsys):
    path = tmp_path / "grid.json"
    path.write_text(json.dumps([{"stages": 5}, {"stages": 9}]))
    assert main(["run", "innerproduct", "--scale", "tiny", "--batch",
                 "--batch-params", f"@{path}"]) == 0
    assert "2 instances" in capsys.readouterr().out


def test_run_batch_failing_instance_sets_status(capsys):
    params = json.dumps([{}, {"max_cycles": 20}])
    assert main(["run", "gemm", "--scale", "tiny", "--batch",
                 "--batch-params", params]) == 1
    out = capsys.readouterr().out
    assert "ERROR" in out


def test_run_batch_rejects_bad_sweep(capsys):
    assert main(["run", "gemm", "--batch", "--sweep", "stages"]) == 2
    assert "--sweep wants" in capsys.readouterr().err


def test_run_batch_needs_app_or_artifact(capsys):
    assert main(["run", "--batch"]) == 2
    assert "give an APP" in capsys.readouterr().err


def test_parse_sweeps_cross_product():
    grid = _parse_sweeps(["stages=4,8", "banks=4,16"])
    assert len(grid) == 4
    assert {"stages": 8, "banks": 4} in grid


def test_figure7_simulate(capsys):
    assert main(["figure7", "stages", "--simulate", "--scale", "tiny",
                 "--app", "innerproduct", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "simulated sweep: stages" in out


def test_figure7_simulate_rejects_area_params(capsys):
    assert main(["figure7", "regs_per_stage", "--simulate"]) == 2
    assert "cannot sweep" in capsys.readouterr().err


def test_bench_batch_quick(tmp_path, capsys):
    assert main(["bench", "--batch", "--quick", "--apps",
                 "innerproduct", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "batched simulation" in out
    assert "bit-identical" in out
    reports = list(tmp_path.glob("BATCH_*.json"))
    assert len(reports) == 1
    report = json.loads(reports[0].read_text())
    assert report["instances"] == 78
    assert report["mismatches"] == []


def test_bench_batch_baseline_gate_failure(tmp_path, capsys):
    baseline = tmp_path / "floor.json"
    baseline.write_text(json.dumps({"min_speedup": 10000.0}))
    assert main(["bench", "--batch", "--quick", "--apps",
                 "innerproduct", "--out", str(tmp_path),
                 "--baseline", str(baseline)]) == 1
    assert "speedup regression" in capsys.readouterr().err


def test_fuzz_batch_oracle(capsys):
    assert main(["fuzz", "--seed", "0", "--runs", "2",
                 "--batch-oracle"]) == 0
    assert "batched oracle: 2 specs" in capsys.readouterr().out
