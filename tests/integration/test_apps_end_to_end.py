"""End-to-end validation: every Table 4 benchmark, compiled and
simulated, must match the reference executor bit-for-bit (ints) or
within float32 tolerance.

This is the repository's flagship correctness gate: it exercises the
pattern frontend, the lowering, the partitioner, placement/routing, the
control protocols, the scratchpad/banking model, the AGs/coalescers and
the DDR3 model together.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.compiler import compile_program
from repro.sim import Machine


def run_app(app, scale):
    program = app.build(scale)
    expected = app.expected(program)
    compiled = compile_program(program)
    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()
    results = {name: machine.result(name) for name in expected}
    app.check(program, results, expected)
    return compiled, machine, stats


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_tiny_scale_matches_reference(app):
    compiled, machine, stats = run_app(app, "tiny")
    assert stats.cycles > 0
    assert stats.dram["reads"] > 0


@pytest.mark.parametrize("name", ["innerproduct", "gemm", "tpchq6",
                                  "smdv", "kmeans", "bfs"])
def test_small_scale_matches_reference(name):
    app = get_app(name)
    compiled, machine, stats = run_app(app, "small")
    assert stats.cycles > 0


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_requirements_extracted(app):
    program = app.build("tiny")
    compiled = compile_program(program)
    reqs = compiled.requirements
    assert reqs.pcus, f"{app.name}: no virtual PCU requirements"
    assert reqs.pmus, f"{app.name}: no virtual PMU requirements"
    util = compiled.config.utilization()
    assert 0 < util["pcu"] <= 1
    assert 0 < util["pmu"] <= 1


def test_sparse_apps_issue_gathers():
    for name in ("smdv", "pagerank"):
        app = get_app(name)
        compiled, machine, stats = run_app(app, "tiny")
        gathers = [leaf for leaf in machine._leaves
                   if type(leaf).__name__ == "GatherSim"]
        assert gathers, f"{name} should gather from DRAM"
        assert any(g.coalesced_hits >= 0 for g in gathers)


def test_bfs_issues_scatters():
    app = get_app("bfs")
    compiled, machine, stats = run_app(app, "tiny")
    scatters = [leaf for leaf in machine._leaves
                if type(leaf).__name__ == "ScatterSim"]
    assert scatters


def test_blackscholes_partitions_deep_pipeline():
    app = get_app("blackscholes")
    program = app.build("tiny")
    compiled = compile_program(program)
    # ~60-op pipeline cannot fit one 6-stage PCU
    deep = [t for t in compiled.config.leaf_timing.values()
            if t.num_pcus >= 4]
    assert deep, "Black-Scholes body should split across many PCUs"


def test_paper_profiles_are_consistent():
    for app in ALL_APPS:
        profile = app.paper_profile()
        assert profile.flops > 0
        assert profile.total_bytes > 0
        assert profile.inner_parallelism >= 1
        if app.sparse:
            assert profile.random_accesses > 0


def test_deterministic_builds():
    app = get_app("gemm")
    p1 = app.build("tiny")
    p2 = app.build("tiny")
    np.testing.assert_array_equal(p1.arrays["a"].data,
                                  p2.arrays["a"].data)
