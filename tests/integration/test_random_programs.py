"""Randomized differential testing: generated programs, compiled and
simulated, must match the reference executor.

A seeded generator produces random pattern programs (elementwise maps
with random expression trees, folds with random associative combines,
filters, 2-d tiled maps) over random data; each is pushed through the
full compile-and-simulate pipeline and compared against the executor.
This catches interaction bugs no hand-written case covers.
"""

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.patterns import (Dyn, Fold, Program, maximum, minimum,
                            run_program, select)
from repro.patterns import expr as E
from repro.sim import Machine


def _random_expr(rng, operands, depth):
    """A random float expression tree over the given operand makers."""
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.7:
            return operands[rng.integers(len(operands))]()
        return E.wrap(float(np.float32(rng.uniform(-2, 2))))
    op = rng.choice(["add", "sub", "mul", "min", "max", "select",
                     "abs"])
    lhs = _random_expr(rng, operands, depth - 1)
    rhs = _random_expr(rng, operands, depth - 1)
    if op == "min":
        return minimum(lhs, rhs)
    if op == "max":
        return maximum(lhs, rhs)
    if op == "select":
        return select(lhs > rhs, lhs, rhs * 0.5)
    if op == "abs":
        return E.absolute(lhs)
    return E.BinOp(op, lhs, rhs)


def _check(program, outputs):
    env = run_program(program)
    compiled = compile_program(program, tile_words=128,
                               whole_budget=4096)
    machine = Machine(compiled.dhdl, compiled.config)
    machine.run()
    for name in outputs:
        want = env.buffers[name]
        got = machine.result(name)
        got = np.asarray(got).reshape(-1)[:want.size].reshape(want.shape)
        np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-3,
                                   err_msg=f"output {name!r}")


@pytest.mark.parametrize("seed", range(8))
def test_random_elementwise_maps(seed):
    rng = np.random.default_rng(1000 + seed)
    n = int(rng.choice([96, 256, 512]))
    program = Program(f"rand_map_{seed}")
    num_inputs = int(rng.integers(1, 4))
    arrays = []
    for k in range(num_inputs):
        data = rng.uniform(-4, 4, n).astype(np.float32)
        arrays.append(program.input(f"in{k}", (n,), data=data))
    out = program.output("out", (n,))

    def body(i):
        operands = [lambda a=a: a[i] for a in arrays]
        return _random_expr(rng, operands, depth=int(rng.integers(1, 4)))

    program.map("body", out, n, body).set_par(16)
    _check(program, ["out"])


@pytest.mark.parametrize("seed", range(6))
def test_random_folds(seed):
    rng = np.random.default_rng(2000 + seed)
    n = int(rng.choice([128, 384]))
    program = Program(f"rand_fold_{seed}")
    data = rng.uniform(-3, 3, n).astype(np.float32)
    a = program.input("a", (n,), data=data)
    out = program.output("out")
    combine_kind = rng.choice(["sum", "max", "min"])
    if combine_kind == "sum":
        init, combine = 0.0, (lambda x, y: x + y)
    elif combine_kind == "max":
        init, combine = -1e30, (lambda x, y: maximum(x, y))
    else:
        init, combine = 1e30, (lambda x, y: minimum(x, y))

    def body(i):
        operands = [lambda: a[i]]
        return _random_expr(rng, operands, depth=2)

    step = program.fold("f", out, n, init, body, combine)
    step.set_par(16, outer=int(rng.choice([1, 2])))
    _check(program, ["out"])


@pytest.mark.parametrize("seed", range(4))
def test_random_2d_tiled_maps(seed):
    rng = np.random.default_rng(3000 + seed)
    rows = int(rng.choice([24, 48]))
    cols = int(rng.choice([32, 64]))
    program = Program(f"rand_2d_{seed}")
    data = rng.uniform(-2, 2, (rows, cols)).astype(np.float32)
    m = program.input("m", (rows, cols), data=data)
    out = program.output("out", (rows, cols))
    scale = float(np.float32(rng.uniform(0.5, 2.0)))
    step = program.map("body", out, (rows, cols),
                       lambda i, j: m[i, j] * scale + m[i, j])
    step.tile = (8, 16)
    step.set_par(1, 16)
    _check(program, ["out"])


@pytest.mark.parametrize("seed", range(4))
def test_random_filters(seed):
    rng = np.random.default_rng(4000 + seed)
    n = int(rng.choice([128, 256]))
    program = Program(f"rand_filter_{seed}")
    data = rng.uniform(-5, 5, n).astype(np.float32)
    a = program.input("a", (n,), data=data)
    count = program.output("count", (), E.INT32)
    kept = program.output("kept", (Dyn(count),), max_elems=n)
    threshold = float(np.float32(rng.uniform(-2, 2)))
    program.filter("keep", kept, count, n,
                   cond=lambda i: a[i] > threshold,
                   value=lambda i: a[i] * 2.0).set_par(16)
    env = run_program(program)
    compiled = compile_program(program, tile_words=128,
                               whole_budget=4096)
    machine = Machine(compiled.dhdl, compiled.config)
    machine.run()
    want_count = env.scalar(count)
    assert machine.scalar("count") == want_count
    np.testing.assert_allclose(
        machine.result("kept")[:want_count],
        env.buffers["kept"][:want_count], rtol=1e-4)


@pytest.mark.parametrize("seed", range(3))
def test_random_map_of_fold(seed):
    rng = np.random.default_rng(5000 + seed)
    rows = int(rng.choice([16, 32]))
    cols = int(rng.choice([32, 64]))
    program = Program(f"rand_mf_{seed}")
    data = rng.uniform(-2, 2, (rows, cols)).astype(np.float32)
    m = program.input("m", (rows, cols), data=data)
    out = program.output("out", (rows,))
    program.map("rowred", out, rows,
                lambda i: Fold(cols, 0.0,
                               lambda j: E.absolute(m[i, j]),
                               lambda x, y: x + y)).set_par(1, inner=16)
    _check(program, ["out"])
