"""Unit tests for architecture parameters and the Table 5 area model."""

import pytest

from repro.arch import (DEFAULT, DESIGN_SPACE, PcuParams, PlasticineParams,
                        PmuParams, chip_area, pcu_area, pcu_breakdown,
                        pmu_area, pmu_breakdown)
from repro.errors import ArchError


def test_default_matches_paper_headline():
    assert DEFAULT.num_pcus == 64
    assert DEFAULT.num_pmus == 64
    assert DEFAULT.onchip_mb == pytest.approx(16.0)
    # paper: 12.3 single-precision TFLOPS
    assert DEFAULT.peak_tflops == pytest.approx(12.3, rel=0.01)
    # paper: 51.2 GB/s theoretical peak
    assert DEFAULT.dram.peak_gbps == pytest.approx(51.2)


def test_design_space_final_values_are_in_ranges():
    pcu = DEFAULT.pcu
    assert pcu.lanes in DESIGN_SPACE["pcu_lanes"]
    assert pcu.stages in DESIGN_SPACE["pcu_stages"]
    assert DEFAULT.pmu.bank_kb in DESIGN_SPACE["pmu_bank_kb"]


def test_invalid_pcu_param_rejected():
    with pytest.raises(ArchError):
        PcuParams(lanes=5).validate()
    with pytest.raises(ArchError):
        PcuParams(stages=0).validate()
    with pytest.raises(ArchError):
        PcuParams(vector_in=11).validate()


def test_banks_must_match_lanes():
    with pytest.raises(ArchError):
        PlasticineParams(pcu=PcuParams(lanes=8)).validate()


def test_with_pcu_copies():
    tweaked = DEFAULT.with_pcu(stages=8)
    assert tweaked.pcu.stages == 8
    assert DEFAULT.pcu.stages == 6  # original untouched


# -- Table 5 calibration -----------------------------------------------------

def test_pcu_area_matches_table5():
    assert pcu_area(DEFAULT.pcu) == pytest.approx(0.849, abs=0.002)


def test_pcu_breakdown_matches_table5():
    parts = pcu_breakdown(DEFAULT.pcu)
    assert parts["FUs"] == pytest.approx(0.622, abs=0.001)
    assert parts["Registers"] == pytest.approx(0.144, abs=0.001)
    assert parts["FIFOs"] == pytest.approx(0.082, abs=0.001)


def test_pmu_area_matches_table5():
    assert pmu_area(DEFAULT.pmu) == pytest.approx(0.532, abs=0.002)


def test_pmu_breakdown_matches_table5():
    parts = pmu_breakdown(DEFAULT.pmu)
    assert parts["Scratchpad"] == pytest.approx(0.477, abs=0.001)
    assert parts["FIFOs"] == pytest.approx(0.024, abs=0.001)
    assert parts["Registers"] == pytest.approx(0.023, abs=0.001)


def test_chip_total_matches_table5():
    chip = chip_area(DEFAULT)
    assert chip.total == pytest.approx(112.8, abs=0.5)
    assert chip.interconnect == pytest.approx(18.796, abs=0.01)
    assert chip.memory_controller == pytest.approx(5.616, abs=0.01)


def test_chip_percentages_match_table5():
    shares = chip_area(DEFAULT).percentages()
    assert shares["PCU"] == pytest.approx(48.16, abs=0.5)
    assert shares["PMU"] == pytest.approx(30.2, abs=0.5)
    assert shares["Interconnect"] == pytest.approx(16.66, abs=0.5)
    assert shares["MemoryController"] == pytest.approx(4.98, abs=0.3)


def test_area_scales_with_lanes():
    wide = PcuParams(lanes=32)
    narrow = PcuParams(lanes=8)
    assert pcu_area(wide) > pcu_area(DEFAULT.pcu) > pcu_area(narrow)


def test_area_monotonic_in_stages():
    areas = [pcu_area(PcuParams(stages=s)) for s in (2, 4, 6, 10, 16)]
    assert areas == sorted(areas)


def test_pmu_area_scales_with_bank_kb():
    small = pmu_area(PmuParams(bank_kb=4))
    large = pmu_area(PmuParams(bank_kb=64))
    assert large > 4 * small  # scratchpad dominates
