"""Unit tests for power model, FPGA baseline, and the Table 6 ladder."""

import pytest

from repro.arch import (DEFAULT, DesignRequirements, UnitActivity,
                        VirtualPcuReq, VirtualPmuReq, WorkloadProfile,
                        asic_area, chip_power, fpga_power_w, fpga_runtime_s,
                        ladder, max_chip_power, overhead_table,
                        power_breakdown)


def test_max_power_near_49w():
    # paper: maximum power of 49 W at 1 GHz
    assert max_chip_power(DEFAULT) == pytest.approx(49.0, abs=1.5)


def test_idle_chip_draws_static_only():
    idle = chip_power(UnitActivity())
    assert 2.0 < idle < 8.0


def test_power_monotonic_in_activity():
    low = chip_power(UnitActivity(pcus_used=16, pcu_activity=0.2))
    high = chip_power(UnitActivity(pcus_used=16, pcu_activity=0.9))
    assert high > low


def test_power_breakdown_sums_to_total():
    act = UnitActivity(pcus_used=32, pcu_activity=0.5,
                       pmus_used=20, pmu_activity=0.4,
                       ags_used=10, ag_activity=0.7,
                       coalescers_used=4, coalescer_activity=0.6,
                       switches_used=60, switch_activity=0.3)
    parts = power_breakdown(act)
    assert sum(parts.values()) == pytest.approx(chip_power(act))


# -- FPGA baseline ------------------------------------------------------------

def _streaming_profile():
    # ~inner-product-like: negligible compute per byte streamed
    return WorkloadProfile("stream", flops=1e6, stream_bytes=8e8,
                           inner_parallelism=16, outer_parallelism=4,
                           pipeline_ops=2)


def test_fpga_streaming_is_bandwidth_bound():
    profile = _streaming_profile()
    runtime = fpga_runtime_s(profile)
    bw_time = profile.stream_bytes / (37.5e9 * 0.85)
    assert runtime == pytest.approx(bw_time, rel=0.2)


def test_fpga_traffic_factor_amplifies_runtime():
    base = WorkloadProfile("t", stream_bytes=4e8)
    amplified = WorkloadProfile("t", stream_bytes=4e8,
                                fpga_traffic_factor=3.0)
    assert fpga_runtime_s(amplified) == pytest.approx(
        3 * fpga_runtime_s(base), rel=0.05)


def test_fpga_overlap_hides_memory_time():
    balanced = dict(flops=3e8, stream_bytes=8e8,
                    inner_parallelism=1024, outer_parallelism=1)
    none = WorkloadProfile("t", fpga_overlap=0.0, **balanced)
    full = WorkloadProfile("t", fpga_overlap=1.0, **balanced)
    assert fpga_runtime_s(none) > fpga_runtime_s(full)


def test_fpga_random_access_much_slower_than_stream():
    dense = WorkloadProfile("d", stream_bytes=4e7)
    sparse = WorkloadProfile("s", random_accesses=1e7)  # same useful bytes
    assert fpga_runtime_s(sparse) > 5 * fpga_runtime_s(dense)


def test_fpga_compute_bound_scales_with_flops():
    small = WorkloadProfile("c1", flops=1e8, inner_parallelism=1024,
                            outer_parallelism=64)
    large = WorkloadProfile("c2", flops=4e8, inner_parallelism=1024,
                            outer_parallelism=64)
    assert fpga_runtime_s(large) == pytest.approx(
        4 * fpga_runtime_s(small), rel=0.05)


def test_fpga_power_in_paper_range():
    profile = _streaming_profile()
    assert 20.0 <= fpga_power_w(profile) <= 35.0


def test_fpga_sequential_latency_dominates_serial_apps():
    serial = WorkloadProfile("s", flops=1e4, sequential_iters=100000,
                             pipeline_ops=30)
    parallel = WorkloadProfile("p", flops=1e4, sequential_iters=1,
                               pipeline_ops=30)
    assert fpga_runtime_s(serial) > 100 * fpga_runtime_s(parallel)


# -- ASIC / Table 6 ladder ------------------------------------------------------

def _small_design():
    return DesignRequirements(
        "toy",
        pcus=[VirtualPcuReq(stages=5, live_regs=4, vector_in=2,
                            vector_out=1),
              VirtualPcuReq(stages=9, live_regs=3, lanes_used=16)],
        pmus=[VirtualPmuReq(kb=64.0), VirtualPmuReq(kb=200.0)])


def test_ladder_is_monotonic():
    areas = ladder(_small_design())
    assert (areas["asic"] < areas["a"] <= areas["b"] <= areas["c"]
            <= areas["d"] <= areas["e"] * 1.0001)


def test_reconfigurable_overhead_in_paper_range():
    # paper: step (a) averages ~2.8x over ASIC across benchmarks
    table = overhead_table(_small_design())
    assert 1.5 < table["a"] < 9.0


def test_sequential_lanes_inflate_step_c():
    wide = DesignRequirements(
        "wide", pcus=[VirtualPcuReq(stages=4, lanes_used=16)] * 4,
        pmus=[VirtualPmuReq(kb=64.0)])
    narrow = DesignRequirements(
        "narrow", pcus=[VirtualPcuReq(stages=4, lanes_used=1)] * 4,
        pmus=[VirtualPmuReq(kb=64.0)])
    # 1-lane virtual units waste 15/16 of a homogeneous unit
    assert (overhead_table(narrow)["c"]
            > overhead_table(wide)["c"])


def test_asic_area_scales_with_requirements():
    small = DesignRequirements("s", pcus=[VirtualPcuReq(stages=4)],
                               pmus=[VirtualPmuReq(kb=16.0)])
    big = DesignRequirements("b", pcus=[VirtualPcuReq(stages=4)] * 10,
                             pmus=[VirtualPmuReq(kb=16.0)] * 10)
    # the fixed memory-controller area damps but must not hide scaling
    assert asic_area(big) > 2.5 * asic_area(small)


def test_cumulative_matches_product_of_successive():
    table = overhead_table(_small_design())
    cum = 1.0
    for step in ("a", "b", "c", "d", "e"):
        cum *= table[step]
        assert table[f"{step}_cum"] == pytest.approx(cum, rel=1e-9)
