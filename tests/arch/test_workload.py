"""Unit tests for workload profiles."""

import pytest

from repro.arch.workload import WorkloadProfile


def test_total_bytes_counts_random_payload():
    profile = WorkloadProfile("t", stream_bytes=1000,
                              random_accesses=250)
    assert profile.total_bytes == 1000 + 4 * 250


def test_arithmetic_intensity():
    profile = WorkloadProfile("t", flops=4000, stream_bytes=1000)
    assert profile.arithmetic_intensity == pytest.approx(4.0)


def test_arithmetic_intensity_no_traffic():
    profile = WorkloadProfile("t", flops=10)
    assert profile.arithmetic_intensity == float("inf")


def test_defaults_are_sane():
    profile = WorkloadProfile("t")
    assert profile.fpga_traffic_factor == 1.0
    assert 0 <= profile.fpga_overlap <= 1
    assert profile.fpga_parallelism is None
    assert profile.plasticine_parallelism is None
    assert profile.sequential_iters == 1
