"""Round-trip tests for the DHDL program serializer.

The serializer must preserve three things exactly: the declared
memories, the controller tree, and the expression *DAG* — including its
sharing structure, because both the scheduler and the simulator key on
node identity (``Expr.__eq__`` is ``is``).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ALL_APPS
from repro.compiler import compile_program
from repro.dhdl.ir import (Counter, CounterChain, DhdlProgram,
                           InnerCompute, WriteStmt)
from repro.dhdl.serialize import program_from_dict, program_to_dict
from repro.patterns import expr as E


def canonical(data: dict) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def assert_same_dag(a, b, fwd, rev):
    """Structural equality that also demands identical sharing.

    ``fwd``/``rev`` map original node ids to decoded nodes and back;
    a shared original subtree must decode to one shared node, and two
    distinct originals must never collapse into one.
    """
    if id(a) in fwd:
        assert fwd[id(a)] is b, "shared node decoded to distinct copies"
        return
    assert id(b) not in rev, "distinct nodes collapsed into one"
    fwd[id(a)] = b
    rev[id(b)] = a
    assert type(a) is type(b)
    assert a.dtype == b.dtype
    if isinstance(a, E.Const):
        assert a.value == b.value
    elif isinstance(a, E.Idx):
        assert (a.name, a.extent) == (b.name, b.extent)
    elif isinstance(a, E.Var):
        assert a.name == b.name
    elif isinstance(a, E.Load):
        assert a.array.name == b.array.name
        for x, y in zip(a.indices, b.indices):
            assert_same_dag(x, y, fwd, rev)
    elif isinstance(a, E.BinOp):
        assert a.op == b.op
        assert_same_dag(a.lhs, b.lhs, fwd, rev)
        assert_same_dag(a.rhs, b.rhs, fwd, rev)
    elif isinstance(a, E.UnOp):
        assert a.op == b.op
        assert_same_dag(a.operand, b.operand, fwd, rev)
    elif isinstance(a, E.Select):
        assert_same_dag(a.cond, b.cond, fwd, rev)
        assert_same_dag(a.if_true, b.if_true, fwd, rev)
        assert_same_dag(a.if_false, b.if_false, fwd, rev)
    else:  # pragma: no cover - new node kinds must be added here
        raise AssertionError(f"unhandled node type {type(a)}")


# -- every registry app -----------------------------------------------------

@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_every_app_round_trips_byte_identically(app):
    dhdl = compile_program(app.build("tiny")).dhdl
    data = program_to_dict(dhdl)
    clone = program_from_dict(data)
    assert canonical(program_to_dict(clone)) == canonical(data)
    assert [c.name for c in clone.controllers()] == \
        [c.name for c in dhdl.controllers()]
    assert [s.name for s in clone.srams] == [s.name for s in dhdl.srams]
    assert [d.name for d in clone.drams] == [d.name for d in dhdl.drams]
    assert clone.reg_outputs == dhdl.reg_outputs


# -- property tests: random expression DAGs ---------------------------------

_floats = st.floats(min_value=-100, max_value=100, allow_nan=False,
                    width=32)
_step = st.tuples(
    st.sampled_from(["add", "sub", "mul", "min", "max", "neg", "select"]),
    st.integers(min_value=0, max_value=999),
    st.integers(min_value=0, max_value=999),
    st.integers(min_value=0, max_value=999))


def _grow_dag(steps, consts, i, j, extra_leaves):
    """Random DAG by construction sequence: later nodes reference
    arbitrary earlier ones, which naturally creates shared subtrees."""
    pool = [E.Const(float(c)) for c in consts] + [i, j] + extra_leaves
    for op, ai, bi, ci in steps:
        a, b, c = (pool[k % len(pool)] for k in (ai, bi, ci))
        if op == "neg":
            pool.append(E.UnOp("neg", a))
        elif op == "select":
            pool.append(E.Select(E.BinOp("lt", a, b), a, c))
        else:
            pool.append(E.BinOp(op, a, b))
    return pool[-1]


@settings(max_examples=40, deadline=None)
@given(st.lists(_step, min_size=1, max_size=20),
       st.lists(_floats, min_size=1, max_size=4))
def test_expr_dag_round_trip(steps, consts):
    prog = DhdlProgram("prop")
    out = prog.reg("out")
    acc = prog.reg("acc", init=0.0)
    tile = prog.sram("tile", (8,), E.FLOAT32)
    i, j = E.Idx("i", 8), E.Idx("j", 4)
    root = _grow_dag(steps, consts, i, j,
                     [acc.read(), E.Load(tile, (i,))])
    chain = CounterChain([Counter(0, 8), Counter(0, 4)], [i, j])
    prog.root.add(InnerCompute("body", chain,
                               [WriteStmt(out, (), root)]))

    data = program_to_dict(prog)
    clone = program_from_dict(data)
    assert canonical(program_to_dict(clone)) == canonical(data)

    body = clone.root.children[0]
    fwd, rev = {}, {}
    assert_same_dag(root, body.stmts[0].value, fwd, rev)
    # chain indices must be the very same nodes the body references:
    # the simulator binds loop indices by object identity
    for orig, copy in zip(chain.indices, body.chain.indices):
        assert_same_dag(orig, copy, fwd, rev)


# -- odd corners ------------------------------------------------------------

def test_reg_inf_init_round_trips():
    prog = DhdlProgram("p")
    best = prog.reg("best", init=float("inf"))
    i = E.Idx("i", 4)
    prog.root.add(InnerCompute(
        "body", CounterChain([Counter(0, 4)], [i]),
        [WriteStmt(best, (), E.Const(1.0))]))
    clone = program_from_dict(program_to_dict(prog))
    assert clone.regs[0].init == float("inf")


def test_sram_metadata_round_trips():
    from repro.dhdl.memory import BankingMode
    prog = DhdlProgram("p")
    tile = prog.sram("tile", (4, 16), E.FLOAT32,
                     banking=BankingMode.LINE_BUFFER, nbuf=2)
    i = E.Idx("i", 4)
    prog.root.add(InnerCompute(
        "body", CounterChain([Counter(0, 4)], [i]),
        [WriteStmt(tile, (i, E.Const(0)), E.Const(1.0))]))
    clone = program_from_dict(program_to_dict(prog))
    copy = clone.srams[0]
    assert (copy.name, copy.shape, copy.dtype) == \
        (tile.name, tile.shape, tile.dtype)
    assert copy.banking == BankingMode.LINE_BUFFER
    assert copy.nbuf == 2
