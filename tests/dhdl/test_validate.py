"""Unit tests for DHDL structural validation."""

import pytest

from repro.dhdl import (Counter, CounterChain, DhdlProgram, EmitStmt,
                        InnerCompute, OuterController, Scheme, TileLoad,
                        TileStore, WriteStmt, validate)
from repro.errors import IRError
from repro.patterns import Array
from repro.patterns import expr as E


def chain1(n, par=1):
    i = E.Idx("i")
    return CounterChain([Counter(0, n, par=par)], [i]), i


def test_empty_outer_rejected():
    prog = DhdlProgram("t")
    prog.root.add(OuterController("empty", Scheme.PIPELINE))
    with pytest.raises(IRError):
        validate(prog)


def test_unwritten_memory_read_rejected():
    prog = DhdlProgram("t")
    sram = prog.sram("phantom", (8,), E.FLOAT32)
    out = prog.sram("out", (8,), E.FLOAT32)
    ch, i = chain1(8)
    body = OuterController("pipe", Scheme.PIPELINE)
    prog.root.add(body)
    body.add(InnerCompute("k", ch, [WriteStmt(out, (i,), sram[i])]))
    with pytest.raises(IRError, match="phantom"):
        validate(prog)


def test_initialised_register_needs_no_writer():
    prog = DhdlProgram("t")
    reg = prog.reg("seed", E.FLOAT32, init=1.0)
    out = prog.sram("out", (8,), E.FLOAT32)
    ch, i = chain1(8)
    body = OuterController("pipe", Scheme.PIPELINE)
    prog.root.add(body)
    body.add(InnerCompute("k", ch,
                          [WriteStmt(out, (i,), reg.read())]))
    validate(prog)  # must not raise


def test_direct_dram_read_rejected():
    prog = DhdlProgram("t")
    dram = prog.dram(Array("big", (64,)))
    out = prog.sram("out", (8,), E.FLOAT32)
    ch, i = chain1(8)
    body = OuterController("pipe", Scheme.PIPELINE)
    prog.root.add(body)
    body.add(InnerCompute("k", ch,
                          [WriteStmt(out, (i,), E.Load(dram, (i,)))]))
    with pytest.raises(IRError, match="DRAM"):
        validate(prog)


def test_out_of_scope_index_rejected():
    prog = DhdlProgram("t")
    out = prog.sram("out", (8,), E.FLOAT32)
    ch, i = chain1(8)
    foreign = E.Idx("foreign")
    body = OuterController("pipe", Scheme.PIPELINE)
    prog.root.add(body)
    body.add(InnerCompute("k", ch,
                          [WriteStmt(out, (i,), foreign * 1)]))
    with pytest.raises(IRError, match="out of scope"):
        validate(prog)


def test_tile_larger_than_dram_rejected():
    prog = DhdlProgram("t")
    dram = prog.dram(Array("small", (8,)))
    sram = prog.sram("tile", (16,), E.FLOAT32)
    body = OuterController("pipe", Scheme.PIPELINE)
    prog.root.add(body)
    body.add(TileLoad("ld", dram, sram, (0,), (16,)))
    ch, i = chain1(16)
    out = prog.sram("out", (16,), E.FLOAT32)
    body.add(InnerCompute("k", ch, [WriteStmt(out, (i,), sram[i])]))
    with pytest.raises(IRError, match="exceeds"):
        validate(prog)


def test_store_of_unwritten_tile_rejected():
    prog = DhdlProgram("t")
    dram = prog.dram(Array("o", (8,)))
    sram = prog.sram("never", (8,), E.FLOAT32)
    body = OuterController("pipe", Scheme.PIPELINE)
    prog.root.add(body)
    body.add(TileStore("st", dram, sram, (0,), (8,)))
    with pytest.raises(IRError, match="never"):
        validate(prog)


def test_streaming_siblings_must_use_fifos():
    prog = DhdlProgram("t")
    shared = prog.sram("shared", (8,), E.FLOAT32)
    out = prog.fifo("sink")
    stream = OuterController("s", Scheme.STREAMING)
    prog.root.add(stream)
    ch1, i1 = chain1(8)
    stream.add(InnerCompute("producer", ch1,
                            [WriteStmt(shared, (i1,), i1 * 1)]))
    ch2, i2 = chain1(8)
    stream.add(InnerCompute("consumer", ch2,
                            [EmitStmt(out, True, shared[i2])]))
    with pytest.raises(IRError, match="FIFO"):
        validate(prog)
