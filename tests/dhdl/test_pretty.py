"""Coverage for pretty-printing every controller and statement kind."""

from repro.dhdl import (BankingMode, Counter, CounterChain, DhdlProgram,
                        EmitStmt, Gather, HashReduceStmt, InnerCompute,
                        OuterController, ReduceStmt, Scatter, Scheme,
                        StreamStore, TileLoad, TileStore, WriteStmt,
                        format_expr, format_program)
from repro.patterns import Array
from repro.patterns import expr as E


def test_format_expr_all_node_kinds():
    a = Array("a", (4,))
    i = E.Idx("i")
    v = E.Var("acc")
    text = format_expr(E.select(a[i] > v, -a[i], E.exp(a[i] + 1.0)))
    for fragment in ("sel(", "a[i]", "gt", "neg", "exp", "acc"):
        assert fragment in text


def test_format_program_every_leaf_kind():
    prog = DhdlProgram("full")
    arr = Array("x", (64,), E.FLOAT32)
    idx_arr = Array("idx", (16,), E.INT32)
    dram = prog.dram(arr)
    dram_idx = prog.dram(idx_arr)
    tile = prog.sram("tile", (64,), E.FLOAT32, nbuf=2)
    addr = prog.sram("addr", (16,), E.INT32)
    dst = prog.sram("dst", (16,), E.FLOAT32,
                    banking=BankingMode.DUPLICATION)
    bins = prog.sram("bins", (8,), E.INT32)
    acc = prog.reg("acc", init=0.0)
    fifo = prog.fifo("stream_out")
    count = prog.reg("count", E.INT32)

    seq = OuterController("seq", Scheme.SEQUENTIAL,
                          chain=CounterChain([Counter(0, 3)],
                                             [E.Idx("t")]))
    prog.root.add(seq)
    seq.add(TileLoad("ld", dram, tile, (0,), (64,)))
    seq.add(TileLoad("ld_idx", dram_idx, addr, (0,), (16,)))
    seq.add(Gather("gat", dram, addr, dst))
    i = E.Idx("i")
    va, vb = E.Var("a0"), E.Var("b0")
    seq.add(InnerCompute("work", CounterChain([Counter(0, 64, par=16)],
                                              [i]), [
        WriteStmt(tile, (i,), tile[i] * 2.0),
        ReduceStmt((acc,), (tile[i],), (va + vb,), (va,), (vb,), (0.0,),
                   carry=True),
        HashReduceStmt(bins, E.to_int(tile[i]), 1, va + vb, va, vb, 0),
        EmitStmt(fifo, tile[i] > 0.0, tile[i]),
    ]))
    seq.add(StreamStore("drain", dram, fifo, count, accumulate=True))
    seq.add(Scatter("scat", dram, addr, dst))
    seq.add(TileStore("st", dram, tile, (0,), (64,)))

    text = format_program(prog)
    for fragment in ("sequential seq", "load x[0]", "gather x[addr]",
                     "inner work", "(+)=", "[carry]", "emit",
                     "stream stream_out", "accumulate",
                     "scatter dst", "store tile", "nbuf=2",
                     "duplication", "par 16"):
        assert fragment in text, fragment
