"""Unit tests for the DHDL IR: counters, memories, controllers."""

import pytest

from repro.dhdl import (BankingMode, Counter, CounterChain, DhdlProgram,
                        FifoDecl, InnerCompute, OuterController, Reg,
                        Scheme, Sram, WriteStmt, format_expr,
                        format_program, is_onchip)
from repro.errors import IRError
from repro.patterns import Array
from repro.patterns import expr as E


def test_counter_static_extent():
    assert Counter(0, 10).static_extent == 10
    assert Counter(2, 10, step=4).static_extent == 2
    assert Counter(0, E.Idx("i")).static_extent is None


def test_counter_rejects_bad_step():
    with pytest.raises(IRError):
        Counter(0, 10, step=0)
    with pytest.raises(IRError):
        Counter(0, 10, par=0)


def test_counter_chain_properties():
    i, j = E.Idx("i"), E.Idx("j")
    chain = CounterChain([Counter(0, 8), Counter(0, 32, par=16)], [i, j])
    assert chain.depth == 2
    assert chain.inner_par == 16
    assert chain.trip_hint() == 256


def test_counter_chain_index_mismatch():
    with pytest.raises(IRError):
        CounterChain([Counter(0, 4)], [])


def test_sram_properties():
    sram = Sram("t", (8, 16), E.FLOAT32, BankingMode.STRIDED, nbuf=2)
    assert sram.words() == 128
    assert sram.total_words() == 256
    assert isinstance(sram[E.Idx("i"), E.Idx("j")], E.Load)


def test_sram_rejects_bad_shape():
    with pytest.raises(IRError):
        Sram("t", (), E.FLOAT32)
    with pytest.raises(IRError):
        Sram("t", (0,), E.FLOAT32)


def test_reg_read_is_load():
    reg = Reg("acc")
    load = reg.read()
    assert isinstance(load, E.Load)
    assert load.array is reg


def test_fifo_depth_check():
    with pytest.raises(IRError):
        FifoDecl("f", depth=0)


def test_is_onchip():
    assert is_onchip(Sram("t", (4,), E.FLOAT32))
    assert is_onchip(Reg("r"))
    assert is_onchip(FifoDecl("f"))
    from repro.dhdl import DramRef
    assert not is_onchip(DramRef(Array("a", (4,))))


def test_write_stmt_validation():
    sram = Sram("t", (4, 4), E.FLOAT32)
    with pytest.raises(IRError):
        WriteStmt(sram, (E.Idx("i"),), 1.0)  # rank mismatch
    reg = Reg("r")
    with pytest.raises(IRError):
        WriteStmt(reg, (E.Idx("i"),), 1.0)  # regs take no address


def test_outer_controller_nesting():
    root = OuterController("root", Scheme.SEQUENTIAL)
    child = OuterController("c", Scheme.PIPELINE)
    root.add(child)
    i = E.Idx("i")
    leaf = InnerCompute("leaf", CounterChain([Counter(0, 4)], [i]),
                        [WriteStmt(Reg("r"), (), i)])
    child.add(leaf)
    assert leaf.parent is child
    assert list(child.ancestors()) == [root]
    assert list(leaf.ancestors()) == [child, root]
    assert list(root.leaves()) == [leaf]


def test_outer_controller_rejects_inner_scheme():
    with pytest.raises(IRError):
        OuterController("x", Scheme.INNER)


def test_inner_compute_requires_body():
    i = E.Idx("i")
    with pytest.raises(IRError):
        InnerCompute("x", CounterChain([Counter(0, 4)], [i]), [])


def test_program_fresh_names():
    prog = DhdlProgram("t")
    assert prog.fresh("a") == "a"
    assert prog.fresh("a") == "a_1"
    assert prog.fresh("a") == "a_2"


def test_program_dram_dedup():
    prog = DhdlProgram("t")
    arr = Array("x", (4,))
    ref1 = prog.dram(arr)
    ref2 = prog.dram(arr)
    assert ref1 is ref2
    assert len(prog.drams) == 1


def test_onchip_words_counts_nbuf():
    prog = DhdlProgram("t")
    prog.sram("a", (64,), E.FLOAT32, nbuf=2)
    prog.sram("b", (32,), E.FLOAT32)
    assert prog.onchip_words() == 64 * 2 + 32


def test_format_expr_round_trips_structure():
    i = E.Idx("i")
    text = format_expr((i + 1) * 2)
    assert "add" in text and "mul" in text


def test_format_program_smoke():
    prog = DhdlProgram("demo")
    sram = prog.sram("tile", (16,), E.FLOAT32)
    i = E.Idx("i")
    body = OuterController("pipe", Scheme.PIPELINE)
    prog.root.add(body)
    body.add(InnerCompute("k", CounterChain([Counter(0, 16, par=4)], [i]),
                          [WriteStmt(sram, (i,), i * 2)]))
    text = format_program(prog)
    assert "sram tile" in text
    assert "inner k" in text
    assert "par 4" in text
