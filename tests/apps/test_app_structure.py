"""Structural and semantic tests per benchmark definition.

These check the *programs* (independent of the compiler): reference
semantics against independent numpy implementations, dataset scaling,
and the structural features each benchmark is supposed to exercise.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.apps.streaming import BlackScholes
from repro.patterns import run_program
from repro.patterns.patterns import (FlatMap, Fold, HashReduce, Map,
                                     ScatterMap)


def test_registry_names_unique_and_complete():
    names = [a.name for a in ALL_APPS]
    assert len(names) == 13
    assert len(set(names)) == 13
    with pytest.raises(KeyError):
        get_app("nope")


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_scales_grow(app):
    tiny = app.build("tiny")
    small = app.build("small")
    tiny_words = sum(a.static_elems() for a in tiny.inputs)
    small_words = sum(a.static_elems() for a in small.inputs)
    assert small_words > tiny_words


# -- independent numpy references ----------------------------------------------

def test_innerproduct_semantics():
    prog = get_app("innerproduct").build("tiny")
    env = run_program(prog)
    a = prog.arrays["a"].data
    b = prog.arrays["b"].data
    assert env.scalar(prog.arrays["dot"]) == pytest.approx(
        float(np.dot(a.astype(np.float64), b)), rel=1e-3)


def test_outerproduct_semantics():
    prog = get_app("outerproduct").build("tiny")
    env = run_program(prog)
    a, b = prog.arrays["a"].data, prog.arrays["b"].data
    np.testing.assert_allclose(env.buffers["c"], np.outer(a, b),
                               rtol=1e-5)


def test_blackscholes_matches_closed_form():
    app = BlackScholes()
    prog = app.build("tiny")
    env = run_program(prog)
    expect = app.numpy_reference(prog.arrays["price"].data,
                                 prog.arrays["strike"].data,
                                 prog.arrays["time"].data)
    np.testing.assert_allclose(env.buffers["call"], expect, rtol=1e-3,
                               atol=1e-3)


def test_tpchq6_matches_pandas_style_filter():
    prog = get_app("tpchq6").build("tiny")
    env = run_program(prog)
    date = prog.arrays["shipdate"].data
    qty = prog.arrays["quantity"].data
    price = prog.arrays["price"].data
    disc = prog.arrays["discount"].data
    keep = ((date >= 200) & (date < 600) & (disc >= 0.02)
            & (disc <= 0.08) & (qty < 24))
    expect = float((price[keep] * disc[keep]).sum())
    assert env.scalar(prog.arrays["revenue"]) == pytest.approx(
        expect, rel=1e-3)


def test_gda_matches_numpy_covariance():
    prog = get_app("gda").build("tiny")
    env = run_program(prog)
    x = prog.arrays["x"].data.astype(np.float64)
    mu = x.mean(axis=0)
    expect = (x - mu).T @ (x - mu)
    np.testing.assert_allclose(env.buffers["sigma"], expect, rtol=1e-2,
                               atol=1e-2)


def test_logreg_gradient_descends():
    prog = get_app("logreg").build("tiny")
    env = run_program(prog)
    x = prog.arrays["x"].data.astype(np.float64)
    y = prog.arrays["y"].data.astype(np.float64)
    w = env.buffers["w"].astype(np.float64)

    def loss(weights):
        z = x @ weights
        p = 1 / (1 + np.exp(-z))
        eps = 1e-9
        return -np.mean(y * np.log(p + eps)
                        + (1 - y) * np.log(1 - p + eps))

    assert loss(w) < loss(np.zeros_like(w))


def test_kmeans_centroids_are_cluster_means():
    prog = get_app("kmeans").build("tiny")
    env = run_program(prog)
    x = prog.arrays["x"].data
    assign = env.buffers["assign"]
    cents = env.buffers["centroids"]
    for c in range(cents.shape[0]):
        members = x[assign == c]
        if len(members):
            np.testing.assert_allclose(cents[c], members.mean(axis=0),
                                       rtol=1e-3, atol=1e-3)


def test_cnn_matches_scipy_style_conv():
    prog = get_app("cnn").build("tiny")
    env = run_program(prog)
    img = prog.arrays["image"].data
    w = prog.arrays["weights"].data
    oc, ic, kh, kw = w.shape
    out = env.buffers["fmap"]
    h_out = img.shape[1] - kh + 1
    expect = np.zeros((oc, h_out, h_out), dtype=np.float64)
    for o in range(oc):
        for i in range(ic):
            for y in range(h_out):
                for x_ in range(h_out):
                    expect[o, y, x_] += (
                        img[i, y:y + kh, x_:x_ + kw] * w[o, i]).sum()
    np.testing.assert_allclose(out, expect, rtol=1e-3, atol=1e-3)


def test_smdv_matches_scipy_style_spmv():
    prog = get_app("smdv").build("tiny")
    env = run_program(prog)
    ptr = prog.arrays["ptr"].data
    col = prog.arrays["col"].data
    val = prog.arrays["val"].data
    x = prog.arrays["x"].data
    rows = len(ptr) - 1
    expect = np.zeros(rows, dtype=np.float64)
    for r in range(rows):
        for e in range(ptr[r], ptr[r + 1]):
            expect[r] += val[e] * x[col[e]]
    np.testing.assert_allclose(env.buffers["y"], expect, rtol=1e-3,
                               atol=1e-3)


def test_pagerank_is_a_probability_distribution():
    prog = get_app("pagerank").build("tiny")
    env = run_program(prog)
    ranks = env.buffers["ranks"]
    assert (ranks > 0).all()
    # with damping each iteration redistributes most mass
    assert 0.3 < ranks.sum() < 1.7


def test_bfs_levels_are_shortest_paths():
    app = get_app("bfs")
    prog = app.build("tiny")
    env = run_program(prog)
    expect = app.expected(prog)["levels"]
    np.testing.assert_array_equal(env.buffers["levels"], expect)


# -- structural expectations ------------------------------------------------------

def _patterns_of(prog):
    return [type(step.pattern) for step in prog.walk_steps()]


def test_gemm_is_map_of_fold():
    prog = get_app("gemm").build("tiny")
    steps = list(prog.walk_steps())
    assert len(steps) == 1
    assert isinstance(steps[0].pattern, Map)
    assert steps[0].pattern.inner is not None


def test_kmeans_uses_hash_reduce():
    prog = get_app("kmeans").build("tiny")
    assert HashReduce in _patterns_of(prog)


def test_bfs_uses_flatmap_and_scatter():
    prog = get_app("bfs").build("tiny")
    kinds = _patterns_of(prog)
    assert FlatMap in kinds
    assert ScatterMap in kinds


def test_sparse_inputs_marked_offchip():
    assert get_app("smdv").build("tiny").arrays["x"].offchip
    assert get_app("pagerank").build("tiny").arrays["deg"].offchip
    assert get_app("bfs").build("tiny").arrays["levels"].offchip
