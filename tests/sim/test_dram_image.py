"""Unit tests for the DRAM image (data side of off-chip memory)."""

import numpy as np
import pytest

from repro.dhdl.memory import DramRef
from repro.errors import SimulationError
from repro.patterns import Array
from repro.patterns import expr as E
from repro.sim import DramImage, assign_bases


def _refs():
    a = Array("a", (4, 4), E.FLOAT32,
              data=np.arange(16, dtype=np.float32).reshape(4, 4))
    b = Array("b", (8,), E.INT32)
    return [DramRef(a), DramRef(b)]


def test_assign_bases_aligned_and_disjoint():
    refs = _refs()
    bases = assign_bases(refs, alignment=4096)
    assert all(base % 4096 == 0 for base in bases.values())
    assert bases["a"] != bases["b"]
    assert min(bases.values()) >= 4096  # address 0 unused


def test_initial_data_loaded_row_major():
    refs = _refs()
    image = DramImage(refs, assign_bases(refs))
    np.testing.assert_array_equal(image.read_words("a", 4, 4),
                                  [4, 5, 6, 7])
    assert image.as_array("a").shape == (4, 4)


def test_write_and_read_back():
    refs = _refs()
    image = DramImage(refs, assign_bases(refs))
    image.write_words("b", 2, [7, 8, 9])
    np.testing.assert_array_equal(image.read_words("b", 0, 8),
                                  [0, 0, 7, 8, 9, 0, 0, 0])


def test_bounds_enforced():
    refs = _refs()
    image = DramImage(refs, assign_bases(refs))
    with pytest.raises(SimulationError):
        image.read_words("a", 14, 4)
    with pytest.raises(SimulationError):
        image.write_words("b", 7, [1, 2])


def test_byte_addresses_use_bases():
    refs = _refs()
    bases = assign_bases(refs)
    image = DramImage(refs, bases)
    assert image.byte_addr("a", 3) == bases["a"] + 12


def test_missing_base_rejected():
    refs = _refs()
    with pytest.raises(SimulationError):
        DramImage(refs, {"a": 4096})  # no base for b


def test_unaligned_base_rejected():
    refs = _refs()
    with pytest.raises(SimulationError):
        DramImage(refs, {"a": 4097, "b": 8192})
