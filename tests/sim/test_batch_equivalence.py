"""The batch/sequential contract: ``Machine.run_batch`` must be
bit-identical to N sequential ``Machine.run`` calls.

Every assertion compares a batch member against a solo machine built
through the *same* :func:`repro.sim.batch.instantiate` helper —
identical configuration on both sides by construction, so any
divergence is the batching machinery itself.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.compiler import compile_program
from repro.errors import DeadlockError, SimulationError
from repro.sim import Machine
from repro.sim.batch import instantiate, run_batch

#: mixed timing overrides exercised across the whole registry: the
#: as-compiled design, a shallow/re-banked one, and a deep pipeline on
#: a throttled DRAM queue
MIXED_PARAMS = [{}, {"stages": 3, "banks": 8},
                {"pipeline_depth": 10, "dram_queue_depth": 4}]


def _compiled(name, scale="tiny"):
    app = get_app(name)
    return compile_program(app.build(scale))


def _solo_outcome(source, overrides, scheduler="event"):
    machine = instantiate(source, overrides, scheduler=scheduler)
    try:
        machine.run()
        return machine, None
    except (SimulationError, DeadlockError) as err:
        return machine, f"{type(err).__name__}: {err}"


def assert_batch_equivalent(source, params, scheduler="event"):
    batch = run_batch(source, params, scheduler=scheduler)
    for i, overrides in enumerate(params):
        solo, solo_error = _solo_outcome(source, overrides, scheduler)
        inst = batch[i]
        if solo_error is not None:
            assert inst.error == solo_error, (
                f"instance {i}: batch said {inst.error!r}, "
                f"solo said {solo_error!r}")
            continue
        assert inst.ok, f"instance {i}: batch errored: {inst.error}"
        diverged = [k for k, v in solo.stats.as_dict().items()
                    if inst.stats.as_dict()[k] != v]
        assert not diverged, f"instance {i}: stats diverge in {diverged}"
        for name, buf in solo.image.buffers.items():
            np.testing.assert_array_equal(
                buf, inst.machine.image.buffers[name],
                err_msg=f"instance {i}: DRAM image {name!r} diverges")
    return batch


@pytest.mark.parametrize("app_name", [app.name for app in ALL_APPS])
def test_registry_batch_matches_sequential(app_name):
    compiled = _compiled(app_name)
    batch = assert_batch_equivalent(
        (compiled.dhdl, compiled.config), MIXED_PARAMS)
    assert batch.cohorts == 1
    assert batch.replayed == 2


@pytest.mark.parametrize("scheduler", ["event", "dense"])
def test_both_schedulers_batch_equivalent(scheduler):
    compiled = _compiled("innerproduct")
    assert_batch_equivalent((compiled.dhdl, compiled.config),
                            MIXED_PARAMS, scheduler=scheduler)


def test_batch_of_one_matches_plain_run():
    compiled = _compiled("gemm")
    batch = run_batch((compiled.dhdl, compiled.config), [None])
    assert batch[0].role == "solo"
    assert batch.replayed == 0
    plain = Machine(compiled.dhdl, compiled.config)
    stats = plain.run()
    assert batch[0].stats.same_as(stats)
    for name, buf in plain.image.buffers.items():
        np.testing.assert_array_equal(
            buf, batch[0].machine.image.buffers[name])


def test_mixed_retirement_batch():
    """Instances that abort early (max-cycles, watchdog) must retire
    from the joint step loop without disturbing the survivors."""
    compiled = _compiled("gemm")
    source = (compiled.dhdl, compiled.config)
    params = [{}, {"max_cycles": 40}, {"stages": 6},
              {"max_cycles": 25, "stages": 3}, {"banks": 4}]
    batch = assert_batch_equivalent(source, params)
    assert batch[0].ok and batch[2].ok and batch[4].ok
    assert not batch[1].ok and not batch[3].ok


def test_data_override_splits_cohorts():
    compiled = _compiled("tpchq6")
    source = (compiled.dhdl, compiled.config)
    seeded = next(ref for ref in compiled.dhdl.drams
                  if ref.array.data is not None)
    alt = np.zeros(seeded.words(), dtype=np.float64)
    params = [{}, {"stages": 5},
              {"data": {seeded.name: alt}},
              {"data": {seeded.name: alt}, "banks": 4}]
    batch = assert_batch_equivalent(source, params)
    assert batch.cohorts == 2
    assert batch.replayed == 2
    roles = [inst.role for inst in batch]
    assert roles == ["leader", "replay", "leader", "replay"]


def test_leader_failure_falls_back_to_solo_runs():
    compiled = _compiled("gemm")
    source = (compiled.dhdl, compiled.config)
    params = [{"max_cycles": 30}, {}, {"stages": 5}]
    batch = assert_batch_equivalent(source, params)
    assert not batch[0].ok
    assert batch[1].ok and batch[2].ok
    assert batch.replayed == 0
    assert batch[1].role == "solo" and batch[2].role == "solo"


def test_tracer_attribution_matches_sequential():
    from repro.trace import RingTracer
    compiled = _compiled("gemm")
    source = (compiled.dhdl, compiled.config)
    overrides = {"stages": 3, "banks": 4}
    batch = run_batch(source, [{}, overrides],
                      tracer_factory=lambda i, p: RingTracer())
    solo = instantiate(source, overrides, scheduler="event",
                       tracer=RingTracer())
    solo.run()
    assert batch[1].role == "replay"
    assert (batch[1].machine.trace_report().render()
            == solo.trace_report().render())


def test_batch_runs_from_a_bitstream_artifact():
    from repro.compiler.artifact import freeze_program
    app = get_app("innerproduct")
    artifact = freeze_program(app.build("tiny"), "innerproduct", "tiny")
    batch = assert_batch_equivalent(artifact, [{}, {"stages": 8}])
    assert batch.replayed == 1
