"""Machine-level edge cases: deadlock detection, cycle limits,
write-back, timing scaling."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.compiler import compile_program
from repro.dhdl import (Counter, CounterChain, DhdlProgram, EmitStmt,
                        InnerCompute, OuterController, Scheme,
                        StreamStore, TileLoad, WriteStmt)
from repro.errors import DeadlockError, SimulationError
from repro.patterns import Array, Fold, Program
from repro.patterns import expr as E
from repro.sim import AgAssignment, FabricConfig, LeafTiming, Machine


def test_watchdog_detects_streaming_deadlock():
    """A producer filling a FIFO nobody drains must trip the watchdog,
    not hang."""
    dhdl = DhdlProgram("dead")
    array_in = Array("a", (64,), E.FLOAT32,
                     data=np.ones(64, dtype=np.float32))
    dram_in = dhdl.dram(array_in)
    tile = dhdl.sram("t", (64,), E.FLOAT32)
    fifo = dhdl.fifo("f", depth=1)
    pipe = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(pipe)
    pipe.add(TileLoad("ld", dram_in, tile, (0,), (64,)))
    stream = OuterController("s", Scheme.STREAMING)
    pipe.add(stream)
    i = E.Idx("i")
    chain = CounterChain([Counter(0, 64, par=16)], [i])
    stream.add(InnerCompute("emit_only", chain,
                            [EmitStmt(fifo, True, tile[i])]))
    # no StreamStore: the FIFO fills and nothing drains it
    config = FabricConfig()
    for leaf in dhdl.leaves():
        config.leaf_timing[leaf.name] = LeafTiming()
        config.ag_assign[leaf.name] = AgAssignment()
    machine = Machine(dhdl, config, watchdog=500)
    with pytest.raises(DeadlockError, match="emit_only"):
        machine.run()


def test_max_cycles_guard():
    compiled = compile_program(get_app("gemm").build("tiny"))
    machine = Machine(compiled.dhdl, compiled.config)
    with pytest.raises(SimulationError, match="max_cycles"):
        machine.run(max_cycles=3)


def test_reg_writeback_happens_once_at_epilogue():
    p = Program("t")
    a = p.input("a", (32,), data=np.ones(32, dtype=np.float32))
    o = p.output("o")
    p.fold("sum", o, 32, 0.0, lambda i: a[i], lambda x, y: x + y)
    compiled = compile_program(p)
    machine = Machine(compiled.dhdl, compiled.config)
    machine.run()
    assert machine.scalar("o") == pytest.approx(32.0)


def test_cycles_scale_linearly_for_streams():
    """Steady-state streaming throughput: 4x the data ~ 4x the cycles
    (the basis for the analytical extrapolation)."""
    def cycles(n):
        p = Program(f"s{n}")
        a = p.input("a", (n,),
                    data=np.ones(n, dtype=np.float32))
        o = p.output("o", (n,))
        p.map("scale", o, n, lambda i: a[i] * 2.0).set_par(16)
        compiled = compile_program(p, tile_words=256,
                                   whole_budget=128)
        machine = Machine(compiled.dhdl, compiled.config)
        machine.run()
        return machine.stats.cycles

    small, big = cycles(2048), cycles(8192)
    assert big / small == pytest.approx(4.0, rel=0.25)


def test_stats_activity_reasonable():
    compiled = compile_program(get_app("gemm").build("small"))
    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()
    activity = stats.activity(compiled.config)
    assert 0 < activity.pcu_activity <= 1
    assert activity.pcus_used == compiled.config.pcus_used
    assert stats.seconds() == pytest.approx(stats.cycles / 1e9)


def test_dram_stats_fields_present():
    compiled = compile_program(get_app("innerproduct").build("tiny"))
    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()
    for key in ("reads", "writes", "row_hits", "row_misses", "bytes"):
        assert key in stats.dram
    assert 0 <= stats.dram_busy_fraction <= 1


def test_machine_rejects_restart_of_busy_root():
    compiled = compile_program(get_app("gemm").build("tiny"))
    machine = Machine(compiled.dhdl, compiled.config)
    machine.root.start({}, ())
    with pytest.raises(SimulationError):
        machine.root.start({}, ())


def test_sim_is_deterministic():
    results = []
    for _ in range(2):
        compiled = compile_program(get_app("kmeans").build("tiny"))
        machine = Machine(compiled.dhdl, compiled.config)
        stats = machine.run()
        results.append((stats.cycles, stats.ops_executed,
                        machine.result("centroids").tobytes()))
    assert results[0] == results[1]


def test_gather_out_of_bounds_index_reported():
    p = Program("t")
    idx = p.input("idx", (8,), E.INT32,
                  data=np.array([0, 1, 2, 3, 4, 5, 6, 99],
                                dtype=np.int32))
    table = p.input("tbl", (16,),
                    data=np.zeros(16, dtype=np.float32), offchip=True)
    o = p.output("o", (8,))
    p.map("g", o, 8, lambda i: table[idx[i]])
    compiled = compile_program(p)
    machine = Machine(compiled.dhdl, compiled.config)
    with pytest.raises(SimulationError, match="out of bounds"):
        machine.run()


def test_deadlock_message_reports_progress_and_stall_causes():
    """With tracing on, the deadlock report names the last cycle that
    made progress and what the stuck units were waiting on."""
    from repro.trace import EventKind, RingTracer

    dhdl = DhdlProgram("dead")
    array_in = Array("a", (64,), E.FLOAT32,
                     data=np.ones(64, dtype=np.float32))
    dram_in = dhdl.dram(array_in)
    tile = dhdl.sram("t", (64,), E.FLOAT32)
    fifo = dhdl.fifo("f", depth=1)
    pipe = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(pipe)
    pipe.add(TileLoad("ld", dram_in, tile, (0,), (64,)))
    stream = OuterController("s", Scheme.STREAMING)
    pipe.add(stream)
    i = E.Idx("i")
    chain = CounterChain([Counter(0, 64, par=16)], [i])
    stream.add(InnerCompute("emit_only", chain,
                            [EmitStmt(fifo, True, tile[i])]))
    # no StreamStore: the FIFO fills and nothing ever drains it
    config = FabricConfig()
    for leaf in dhdl.leaves():
        config.leaf_timing[leaf.name] = LeafTiming()
        config.ag_assign[leaf.name] = AgAssignment()
    tracer = RingTracer()
    machine = Machine(dhdl, config, watchdog=500, tracer=tracer)
    with pytest.raises(DeadlockError) as err:
        machine.run()
    message = str(err.value)
    assert "no progress since cycle" in message
    assert str(tracer.last_progress_cycle) in message
    assert "stall causes" in message
    assert "fifo_full" in message  # the producer is backpressured
    # the tracer records the deadlock itself as a discrete event
    assert any(e.kind is EventKind.DEADLOCK for e in tracer.events)
