"""QoS on the Fabric: tenant priorities and weighted arbitration.

Two guarantees matter here.  First, a priority is only a *relative*
weight — a lone tenant (or any uniform-priority population) must run
bit-identically to the priority-free fabric, for every registry app.
Second, under genuine contention a higher priority must actually buy
earlier completion, visibly accounted in :meth:`Fabric.qos_summary`.
"""

import dataclasses

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.compiler.artifact import compile_to_bitstream
from repro.errors import SimulationError
from repro.sim import Fabric

QOS_PAIR = ("gemm", "tpchq6")


def _run_pair(priorities):
    from repro.tenancy import pack_apps
    packing = pack_apps(list(QOS_PAIR), "tiny")
    assert packing.feasible, packing.reason
    fabric = Fabric()
    tenants = [fabric.add_tenant(t.artifact.dhdl, t.artifact.config,
                                 name=t.app, priority=priority)
               for t, priority in zip(packing.tenants, priorities)]
    fabric.run()
    return fabric, tenants


# ---------------------------------------------------------------------------
# Uniform priorities are invisible
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_lone_tenant_priority_is_invisible(app):
    """priority=5 alone on the fabric == the default fabric, bit for
    bit: identical stats and identical final DRAM image."""
    artifact = compile_to_bitstream(app.name, "tiny")

    plain = Fabric()
    base = plain.add_tenant(artifact.dhdl, artifact.config, name=app.name)
    plain.run()

    fabric = Fabric()
    tenant = fabric.add_tenant(artifact.dhdl, artifact.config,
                               name=app.name, priority=5)
    fabric.run()

    assert fabric.dram.weighted is False
    assert dataclasses.asdict(tenant.stats) \
        == dataclasses.asdict(base.stats)
    base_bufs = base.machine.image.buffers
    bufs = tenant.machine.image.buffers
    assert set(bufs) == set(base_bufs)
    for name in base_bufs:
        np.testing.assert_array_equal(bufs[name], base_bufs[name])


def test_equal_priorities_match_default_corun():
    plain_fabric, plain = _run_pair((1, 1))
    fabric, tenants = _run_pair((3, 3))
    assert fabric.dram.weighted is False
    for base, tenant in zip(plain, tenants):
        assert dataclasses.asdict(tenant.stats) \
            == dataclasses.asdict(base.stats)
    assert plain_fabric.cycle == fabric.cycle


# ---------------------------------------------------------------------------
# Validation + summary structure
# ---------------------------------------------------------------------------


def test_priority_must_be_positive():
    artifact = compile_to_bitstream("gemm", "tiny")
    fabric = Fabric()
    with pytest.raises(SimulationError, match="priority"):
        fabric.add_tenant(artifact.dhdl, artifact.config,
                          name="gemm", priority=0)


def test_qos_summary_structure():
    fabric, tenants = _run_pair((4, 1))
    summary = fabric.qos_summary()
    assert summary["weighted"] is True
    assert set(summary["tenants"]) == set(QOS_PAIR)
    for name, entry in summary["tenants"].items():
        assert set(entry) == {"priority", "arb_won", "arb_deferred",
                              "finish_cycle"}
        assert entry["finish_cycle"] is not None
    assert summary["tenants"]["gemm"]["priority"] == 4
    assert summary["tenants"]["tpchq6"]["priority"] == 1


def test_unweighted_summary_reports_no_arbitration():
    fabric, _ = _run_pair((2, 2))
    summary = fabric.qos_summary()
    assert summary["weighted"] is False
    for entry in summary["tenants"].values():
        assert entry["arb_won"] == 0
        assert entry["arb_deferred"] == 0


# ---------------------------------------------------------------------------
# Priority buys earlier completion under contention
# ---------------------------------------------------------------------------


def test_priority_improves_hi_tenant_finish():
    """gemm at weight 8 against a memory-bound rider must finish no
    later than at uniform weights — and the arbitration counters must
    show contested rounds actually went its way."""
    _, plain = _run_pair((1, 1))
    fabric, tenants = _run_pair((8, 1))
    assert tenants[0].finish_cycle <= plain[0].finish_cycle
    summary = fabric.qos_summary()["tenants"]
    assert summary["gemm"]["arb_won"] >= summary["gemm"]["arb_deferred"]
    # QoS reorders memory service, never corrupts results
    from repro.apps.registry import get_app
    for app_name, tenant in zip(QOS_PAIR, tenants):
        app = get_app(app_name)
        expected = app.expected(app.build("tiny"))
        for name, want in expected.items():
            np.testing.assert_allclose(
                tenant.machine.result(name), want, rtol=1e-4, atol=1e-5)
