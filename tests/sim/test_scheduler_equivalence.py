"""Dense vs event scheduler: cycle-exact equivalence.

The event-driven wakeup scheduler must be *indistinguishable* from the
dense tick-everything loop in every observable output: final results,
``SimStats`` (cycle counts, busy/stall counters, DRAM statistics), and
— with tracing on — the full stall-attribution breakdown and per-unit
timelines.  These tests sweep the whole benchmark registry plus the
failure paths (deadlock, max-cycles) under both schedulers.
"""

import dataclasses

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.compiler import compile_program
from repro.dhdl import (Counter, CounterChain, DhdlProgram, EmitStmt,
                        InnerCompute, OuterController, Scheme, TileLoad,
                        validate)
from repro.errors import DeadlockError, SimulationError
from repro.patterns import Array
from repro.patterns import expr as E
from repro.sim import AgAssignment, FabricConfig, LeafTiming, Machine
from repro.trace import RingTracer


def _run(compiled, scheduler, traced=False):
    tracer = RingTracer(sample=4) if traced else None
    machine = Machine(compiled.dhdl, compiled.config, tracer=tracer,
                      scheduler=scheduler)
    stats = machine.run()
    report = machine.trace_report() if traced else None
    return machine, stats, report


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_registry_stats_identical(app):
    program = app.build("tiny")
    expected = app.expected(program)
    compiled = compile_program(program)
    md, sd, _ = _run(compiled, "dense")
    me, se, _ = _run(compiled, "event")
    assert dataclasses.asdict(sd) == dataclasses.asdict(se)
    for name in expected:
        np.testing.assert_array_equal(md.result(name), me.result(name))
    app.check(program, {n: me.result(n) for n in expected}, expected)


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_registry_attribution_identical(app):
    """Traced runs: identical stall breakdown and RLE timelines."""
    compiled = compile_program(app.build("tiny"))
    _, sd, rd = _run(compiled, "dense", traced=True)
    _, se, re_ = _run(compiled, "event", traced=True)
    assert dataclasses.asdict(sd) == dataclasses.asdict(se)
    assert rd.render() == re_.render()


def test_event_scheduler_fast_forwards():
    """A DRAM-bound app must actually skip cycles, and the split must
    account for every simulated cycle."""
    compiled = compile_program(ALL_APPS[0].build("tiny"))
    machine = Machine(compiled.dhdl, compiled.config, scheduler="event")
    stats = machine.run()
    sched = machine.scheduler_stats
    assert sched.fast_forwarded_cycles > 0
    assert (sched.executed_cycles + sched.fast_forwarded_cycles
            == stats.cycles)


def test_dense_scheduler_has_no_scheduler_stats():
    compiled = compile_program(ALL_APPS[0].build("tiny"))
    machine = Machine(compiled.dhdl, compiled.config, scheduler="dense")
    machine.run()
    assert machine.scheduler_stats is None


def test_unknown_scheduler_rejected():
    compiled = compile_program(ALL_APPS[0].build("tiny"))
    with pytest.raises((ValueError, SimulationError)):
        Machine(compiled.dhdl, compiled.config,
                scheduler="optimistic").run()


def _rowconf_machine(scheduler):
    """A long-fast-forward workload (see eval.bench dram_rowconf)."""
    from repro.eval.bench import SYNTHETIC
    dhdl, config, _check = SYNTHETIC["dram_rowconf"]("tiny")
    return Machine(dhdl, config, scheduler=scheduler)


def test_retirement_across_fast_forward_jumps():
    """Scratchpad N-buffer retirement happens on every 256-cycle
    boundary even when fast-forward jumps span several boundaries: the
    set of live buffer versions must match the dense loop's exactly."""
    versions = {}
    for mode in ("dense", "event"):
        machine = _rowconf_machine(mode)
        machine.run()
        versions[mode] = {name: sorted(sp.versions)
                          for name, sp in
                          machine.mem.scratchpads.items()}
    assert versions["dense"] == versions["event"]
    if machine.scheduler_stats is not None:
        # the workload must actually exercise multi-boundary jumps
        assert machine.scheduler_stats.fast_forwarded_cycles > 512


def _deadlock_machine(scheduler, tracer=None):
    dhdl = DhdlProgram("dead")
    dram_in = dhdl.dram(Array("a", (64,), E.FLOAT32,
                              data=np.ones(64, dtype=np.float32)))
    tile = dhdl.sram("t", (64,), E.FLOAT32)
    fifo = dhdl.fifo("f", depth=1)
    pipe = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(pipe)
    pipe.add(TileLoad("ld", dram_in, tile, (0,), (64,)))
    stream = OuterController("s", Scheme.STREAMING)
    pipe.add(stream)
    i = E.Idx("i")
    chain = CounterChain([Counter(0, 64, par=16)], [i])
    stream.add(InnerCompute("emit_only", chain,
                            [EmitStmt(fifo, True, tile[i])]))
    validate(dhdl)
    config = FabricConfig()
    for leaf in dhdl.leaves():
        config.leaf_timing[leaf.name] = LeafTiming()
        config.ag_assign[leaf.name] = AgAssignment()
    return Machine(dhdl, config, watchdog=500, tracer=tracer,
                   scheduler=scheduler)


def test_deadlock_trips_at_same_cycle_under_both_schedulers():
    """The watchdog must fire on the same cycle whether the stuck spin
    is executed densely or skipped by fast-forward."""
    cycles = {}
    for mode in ("dense", "event"):
        with pytest.raises(DeadlockError) as err:
            _deadlock_machine(mode).run()
        cycles[mode] = str(err.value)
    assert "emit_only" in cycles["event"]
    assert cycles["dense"] == cycles["event"]


def test_max_cycles_trips_at_same_cycle_under_both_schedulers():
    from repro.apps import get_app
    compiled = compile_program(get_app("gemm").build("tiny"))
    messages = {}
    for mode in ("dense", "event"):
        machine = Machine(compiled.dhdl, compiled.config,
                          scheduler=mode)
        with pytest.raises(SimulationError, match="max_cycles") as err:
            machine.run(max_cycles=37)
        messages[mode] = str(err.value)
    assert messages["dense"] == messages["event"]
