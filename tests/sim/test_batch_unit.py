"""Unit tests for the batch-run parameter plumbing."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.compiler import compile_program
from repro.errors import ConfigError
from repro.sim.batch import (TIMING_KEYS, cohort_key, instantiate,
                             normalize_params, run_batch)


def _compiled(name="gemm", scale="tiny"):
    app = get_app(name)
    return compile_program(app.build(scale))


def test_normalize_none_is_empty():
    assert normalize_params(None) == {}
    assert normalize_params({}) == {}


def test_normalize_rejects_unknown_keys():
    with pytest.raises(ConfigError, match="unsupported batch override"):
        normalize_params({"stages": 4, "clock_ghz": 2})


def test_normalize_rejects_non_dict():
    with pytest.raises(ConfigError, match="must be dicts"):
        normalize_params([("stages", 4)])


def test_normalize_rejects_stage_alias_conflict():
    with pytest.raises(ConfigError, match="aliases"):
        normalize_params({"stages": 4, "pipeline_depth": 6})


def test_normalize_rejects_non_dict_data():
    with pytest.raises(ConfigError, match="'data' override"):
        normalize_params({"data": [1, 2, 3]})


def test_cohort_key_ignores_timing_overrides():
    assert cohort_key({k: 4 for k in TIMING_KEYS
                       if k != "data"}) == cohort_key({})


def test_cohort_key_splits_on_data():
    a = {"data": {"x": np.arange(4)}}
    b = {"data": {"x": np.arange(4) + 1}}
    assert cohort_key(a) != cohort_key(b)
    assert cohort_key(a) == cohort_key(
        {"data": {"x": np.arange(4)}, "stages": 9})


def test_cohort_key_order_insensitive():
    x, y = np.arange(3), np.ones(2)
    assert cohort_key({"data": {"a": x, "b": y}}) == cohort_key(
        {"data": {"b": y, "a": x}})


def test_instantiate_applies_timing_overrides():
    compiled = _compiled()
    machine = instantiate((compiled.dhdl, compiled.config),
                          {"stages": 7, "banks": 4, "output_hops": 3,
                           "dram_queue_depth": 5, "watchdog": 123,
                           "max_cycles": 456})
    for timing in machine.config.leaf_timing.values():
        assert timing.pipeline_depth == 7
        assert timing.output_hops == 3
    assert machine.config.banks_override == 4
    assert all(s.banks == 4 for s in machine.mem.scratchpads.values())
    assert all(ch.queue_depth == 5 for ch in machine.dram.channels)
    assert machine.watchdog == 123
    assert machine.max_cycles == 456


def test_instantiate_defaults_leave_config_alone():
    compiled = _compiled()
    machine = instantiate((compiled.dhdl, compiled.config), {})
    assert machine.config is compiled.config


def test_instantiate_rejects_unknown_data_name():
    compiled = _compiled()
    with pytest.raises(ConfigError, match="no DRAM array"):
        instantiate((compiled.dhdl, compiled.config),
                    {"data": {"nonesuch": np.zeros(4)}})


def test_instantiate_rejects_oversize_data():
    compiled = _compiled()
    name = compiled.dhdl.drams[0].name
    words = compiled.dhdl.drams[0].words()
    with pytest.raises(ConfigError, match="words"):
        instantiate((compiled.dhdl, compiled.config),
                    {"data": {name: np.zeros(words + 1)}})


def test_run_batch_rejects_bad_scheduler():
    compiled = _compiled()
    from repro.errors import SimulationError
    with pytest.raises(SimulationError, match="unknown scheduler"):
        run_batch((compiled.dhdl, compiled.config), [{}],
                  scheduler="quantum")


def test_run_batch_rejects_bad_source():
    with pytest.raises(ConfigError, match="cannot batch-run"):
        run_batch("gemm", [{}])


def test_run_batch_empty_param_list():
    compiled = _compiled()
    result = run_batch((compiled.dhdl, compiled.config), [])
    assert len(result) == 0
    assert result.ok
    assert result.cohorts == 0
