"""Edge-case regressions for :class:`~repro.sim.counters.ChainEnumerator`.

Two classes of bug fixed after differential fuzzing:

* non-positive steps: ``_advance`` only checks ``cur < hi``, so a zero
  step spins forever and a negative step walks away from the bound —
  both must be rejected at chain construction;
* ``max_total`` runaway protection: a data-dependent bound that blows up
  (e.g. an uninitialised length register read as 2**31) must trip the
  limit *before* the over-limit batch is materialised, not after.
"""

import pytest

from repro.dhdl.ir import Counter, CounterChain
from repro.errors import IRError, SimulationError
from repro.patterns import expr as E
from repro.sim.counters import ChainEnumerator


def _const_eval(expr, bindings):
    assert isinstance(expr, E.Const)
    return expr.value


def _chain(counters, names):
    return CounterChain(counters, [E.Idx(n) for n in names])


def _forced_step(step):
    """A counter whose step bypasses the IR constructor validation
    (models a corrupted deserialized artifact or a buggy lowering)."""
    counter = Counter(0, 8)
    counter.step = step
    return counter


def test_ir_counter_rejects_non_positive_step():
    with pytest.raises(IRError):
        Counter(0, 8, step=0)
    with pytest.raises(IRError):
        Counter(0, 8, step=-2)


@pytest.mark.parametrize("step", [0, -1, -16])
def test_enumerator_rejects_non_positive_step(step):
    chain = _chain([_forced_step(step)], ["i"])
    with pytest.raises(SimulationError, match="non-positive step"):
        ChainEnumerator(chain, _const_eval)


def test_enumerator_rejects_bad_step_in_outer_dim():
    chain = _chain([_forced_step(0), Counter(0, 4, par=4)], ["i", "j"])
    with pytest.raises(SimulationError, match="dim 0"):
        ChainEnumerator(chain, _const_eval)


def test_enumerator_strided_iteration_still_works():
    chain = _chain([Counter(0, 10, step=3)], ["i"])
    enum = ChainEnumerator(chain, _const_eval)
    seen = []
    while True:
        batch = enum.next_batch()
        if batch is None:
            break
        seen.extend(lane[chain.indices[0]] for lane in batch.lane_bindings)
    assert seen == [0, 3, 6, 9]


def test_max_total_trips_before_building_over_limit_batch():
    chain = _chain([Counter(0, 100, par=16)], ["i"])
    enum = ChainEnumerator(chain, _const_eval, max_total=20)
    first = enum.next_batch()
    assert first.lanes == 16
    with pytest.raises(SimulationError, match="max_total"):
        enum.next_batch()
    # the failed call must not have committed the over-limit batch
    assert enum._emitted == 16


def test_max_total_exact_fit_is_legal():
    chain = _chain([Counter(0, 32, par=16)], ["i"])
    enum = ChainEnumerator(chain, _const_eval, max_total=32)
    total = 0
    while True:
        batch = enum.next_batch()
        if batch is None:
            break
        total += batch.lanes
    assert total == 32


def test_max_total_catches_data_dependent_runaway():
    """A dynamic bound read from a register blows up: the enumerator
    must raise promptly instead of materialising billions of lanes."""
    hi = E.Var("runaway_len", E.INT32)
    chain = CounterChain([Counter(E.wrap(0), hi, par=16)], [E.Idx("i")])

    def ev(expr, bindings):
        if expr is hi:
            return 2 ** 31  # uninitialised/corrupted length register
        return expr.value

    enum = ChainEnumerator(chain, ev, max_total=1_000)
    emitted = 0
    with pytest.raises(SimulationError, match="runaway"):
        while True:
            batch = enum.next_batch()
            if batch is None:
                break
            emitted += batch.lanes
    assert emitted <= 1_000
