"""FIFO stall attribution: dense vs event equality under fast-forward.

A streaming producer/drain pair is built so that *both* stall classes
fire — ``empty_stalls`` while the drain waits out the initial tile load,
``full_stalls`` once the two-emit producer (32 words/cycle) overruns the
drain (16 words/cycle) — and the event scheduler's fast-forward effect
replay must reproduce the dense loop's counters exactly.

Also holds the regression for the per-statement FIFO room precheck:
several EmitStmts feeding one FIFO used to be checked one at a time, so
a batch could pass the check with room for only one statement's worth
of lanes and overflow the FIFO on the second push.
"""

import dataclasses

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.dhdl import (Counter, CounterChain, DhdlProgram, EmitStmt,
                        InnerCompute, OuterController, Scheme, StreamStore,
                        TileLoad, validate)
from repro.patterns import Array, Dyn, Program
from repro.patterns import expr as E
from repro.sim import AgAssignment, FabricConfig, LeafTiming, Machine

N = 256


def _fifo_bound():
    """Producer outruns drain: 2 EmitStmts x 16 lanes vs 16-word bursts."""
    dhdl = DhdlProgram("fifo_bound")
    src = dhdl.dram(Array("a", (N,), E.FLOAT32,
                          data=np.arange(N, dtype=np.float32)))
    out = dhdl.dram(Array("o", (2 * N,), E.FLOAT32,
                          data=np.zeros(2 * N, dtype=np.float32)))
    tile = dhdl.sram("t", (N,), E.FLOAT32)
    fifo = dhdl.fifo("f", depth=4)  # 64-word capacity
    count = dhdl.reg("c", E.INT32, init=0)
    pipe = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(pipe)
    pipe.add(TileLoad("ld", src, tile, (0,), (N,)))
    stream = OuterController("s", Scheme.STREAMING)
    pipe.add(stream)
    i = E.Idx("i")
    chain = CounterChain([Counter(0, N, par=16)], [i])
    stream.add(InnerCompute("emit", chain,
                            [EmitStmt(fifo, True, tile[i]),
                             EmitStmt(fifo, True, tile[i] * 2.0)]))
    stream.add(StreamStore("drain", out, fifo, count))
    validate(dhdl)
    config = FabricConfig()
    for leaf in dhdl.leaves():
        config.leaf_timing[leaf.name] = LeafTiming()
        config.ag_assign[leaf.name] = AgAssignment()
    return dhdl, config


def _expected_interleave():
    src = np.arange(N, dtype=np.float32)
    out = np.empty(2 * N, dtype=np.float32)
    for b in range(N // 16):
        chunk = src[b * 16:(b + 1) * 16]
        out[b * 32:b * 32 + 16] = chunk
        out[b * 32 + 16:b * 32 + 32] = chunk * np.float32(2.0)
    return out


def _run(scheduler):
    dhdl, config = _fifo_bound()
    machine = Machine(dhdl, config, scheduler=scheduler)
    stats = machine.run()
    return machine, stats


def test_multi_emit_batch_does_not_overflow_fifo():
    """Regression: the room precheck must sum demand across EmitStmts
    feeding the same FIFO (this program used to raise 'FIFO overflow')."""
    machine, _ = _run("dense")
    np.testing.assert_array_equal(machine.result("o"),
                                  _expected_interleave())


def test_workload_exercises_both_stall_classes():
    machine, stats = _run("dense")
    fifo = machine.fifos["f"]
    assert fifo.full_stalls > 0, "producer never hit a full FIFO"
    assert fifo.empty_stalls > 0, "drain never starved"
    assert stats.fifo_stall_cycles == fifo.full_stalls
    assert stats.fifo_empty_stall_cycles == fifo.empty_stalls


@pytest.mark.parametrize("counter", ["full_stalls", "empty_stalls",
                                     "pushed", "popped"])
def test_dense_and_event_fifo_counters_identical(counter):
    dense, _ = _run("dense")
    event, _ = _run("event")
    assert (getattr(dense.fifos["f"], counter)
            == getattr(event.fifos["f"], counter))


def test_dense_and_event_stats_identical_with_fast_forward():
    """The event scheduler must fast-forward through the stall spans and
    still replay the per-cycle stall accounting exactly."""
    dense, sd = _run("dense")
    event, se = _run("event")
    assert dataclasses.asdict(sd) == dataclasses.asdict(se)
    np.testing.assert_array_equal(dense.result("o"), event.result("o"))
    sched = event.scheduler_stats
    assert sched.fast_forwarded_cycles > 0
    assert sched.executed_cycles + sched.fast_forwarded_cycles == se.cycles


def test_compiled_filter_empty_stalls_identical():
    """Same equality on the real compiler path: a FlatMap filter whose
    drain starves while the producer works through its input."""

    def build():
        program = Program("filter_stalls")
        src = program.input("src", (N,),
                            data=np.linspace(-1, 1, N).astype(np.float32))
        count = program.output("count", (), E.INT32)
        kept = program.output("kept", (Dyn(count),), max_elems=N)
        program.filter("keep", kept, count, N,
                       cond=lambda i: src[i] > -2.0,
                       value=lambda i: src[i] * 2.0).set_par(16)
        return compile_program(program)

    runs = {}
    for mode in ("dense", "event"):
        compiled = build()
        machine = Machine(compiled.dhdl, compiled.config, scheduler=mode)
        stats = machine.run()
        fifo = machine.fifos["kept_fifo"]
        runs[mode] = (dataclasses.asdict(stats), fifo.full_stalls,
                      fifo.empty_stalls)
        assert fifo.empty_stalls > 0
    assert runs["dense"] == runs["event"]
