"""Property-based tests for simulator invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dhdl import BankingMode, FifoDecl, Sram
from repro.dram import DDR3_1600, Bank, DramModel, DramRequest
from repro.patterns import expr as E
from repro.sim import FifoSim, ScratchpadSim
from repro.sim.counters import ChainEnumerator
from repro.dhdl import Counter, CounterChain


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=0,
                max_size=60))
def test_fifo_preserves_order_and_counts(values):
    fifo = FifoSim(FifoDecl("f", depth=100), lanes=1)
    for value in values:
        fifo.push([value])
    out = []
    while fifo.size:
        out.extend(fifo.pop(3))
    assert out == values
    assert fifo.pushed == fifo.popped == len(values)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=16),
       st.integers(min_value=1, max_value=32))
def test_conflict_cost_bounds(addrs, stride):
    sram = Sram("t", (256,), E.FLOAT32, BankingMode.STRIDED,
                bank_stride=stride)
    sp = ScratchpadSim(sram, banks=16)
    extra = sp.read_cost(addrs)
    # never worse than full serialisation of distinct words
    assert 0 <= extra <= len(set(addrs)) - 1


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                          st.integers(min_value=0, max_value=255)),
                min_size=1, max_size=20))
def test_scratchpad_version_isolation(writes):
    """A write at version v is visible at v and later, never earlier."""
    sram = Sram("t", (256,), E.FLOAT32)
    sp = ScratchpadSim(sram, banks=16)
    # apply writes in version order (hardware produces in order)
    history = {}
    for version, addr in sorted(writes):
        sp.buffer((version,))[addr] = version + 1
        history.setdefault(addr, []).append(version)
    for addr, versions in history.items():
        for v in versions:
            seen = sp.read_buffer((v,))[addr]
            # the newest write at version <= v wins
            expect = max(x for x in versions if x <= v) + 1
            assert seen == expect


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                max_size=40))
def test_dram_completes_every_request(addrs):
    model = DramModel()
    pending = [DramRequest(byte_addr=64 * a) for a in addrs]
    submitted = 0
    done = []
    for _ in range(500_000):
        while submitted < len(pending) and model.can_accept(
                pending[submitted].byte_addr):
            model.submit(pending[submitted])
            submitted += 1
        model.tick()
        done.extend(model.deliver())
        if submitted == len(pending) and model.idle:
            break
    assert len(done) == len(addrs)
    # completion times are sane: after submission, bounded latency
    for request in done:
        assert request.complete_cycle > request.arrival_cycle
        assert request.complete_cycle - request.arrival_cycle < 10_000


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=16))
def test_chain_enumerator_covers_rectangle(rows, cols, par):
    i, j = E.Idx("i"), E.Idx("j")
    chain = CounterChain([Counter(0, rows), Counter(0, cols, par=par)],
                         [i, j])

    def ev(expr, bindings):
        assert isinstance(expr, E.Const)
        return expr.value

    enum = ChainEnumerator(chain, ev)
    seen = []
    while True:
        batch = enum.next_batch()
        if batch is None:
            break
        assert 1 <= batch.lanes <= par
        # one batch never crosses an outer-dim boundary
        assert len({lane[i] for lane in batch.lane_bindings}) == 1
        seen.extend((lane[i], lane[j]) for lane in batch.lane_bindings)
    assert sorted(seen) == [(r, c) for r in range(rows)
                            for c in range(cols)]
    assert len(set(seen)) == len(seen)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                max_size=30))
def test_bank_timing_monotonic(rows):
    """Bank completion times never go backwards."""
    bank = Bank(DDR3_1600)
    now = 0
    last_done = 0
    for row in rows:
        done = bank.issue(row, now, is_write=False)
        assert done >= last_done - DDR3_1600.t_burst  # bursts may pack
        assert done > now
        last_done = done
        now = max(now + 1, bank.ready_at)
