"""End-to-end machine tests over hand-built DHDL programs.

These bypass the compiler: each test assembles a small controller tree by
hand, gives every leaf a default timing, runs the machine, and checks the
DRAM image against numpy.  They pin down the simulator's data movement
and control protocols independently of lowering.
"""

import numpy as np
import pytest

from repro.dhdl import (BankingMode, Counter, CounterChain, DhdlProgram,
                        EmitStmt, Gather, HashReduceStmt, InnerCompute,
                        OuterController, ReduceStmt, Scatter, Scheme,
                        StreamStore, TileLoad, TileStore, WriteStmt,
                        validate)
from repro.patterns import Array
from repro.patterns import expr as E
from repro.sim import AgAssignment, FabricConfig, LeafTiming, Machine


def default_config(dhdl) -> FabricConfig:
    config = FabricConfig()
    for leaf in dhdl.leaves():
        config.leaf_timing[leaf.name] = LeafTiming()
        config.ag_assign[leaf.name] = AgAssignment(ag_ids=(0,))
    config.pcus_used = 4
    config.pmus_used = 4
    config.ags_used = 2
    return config


def chain(*specs):
    counters, indices = [], []
    for spec in specs:
        if isinstance(spec, tuple):
            lo, hi, par = spec
        else:
            lo, hi, par = 0, spec, 1
        counters.append(Counter(lo, hi, par=par))
        indices.append(E.Idx(f"x{len(indices)}"))
    return CounterChain(counters, indices), indices


def test_load_compute_store_elementwise():
    n = 64
    data = np.arange(n, dtype=np.float32)
    array_in = Array("a", (n,), E.FLOAT32, data=data)
    array_out = Array("o", (n,), E.FLOAT32)
    dhdl = DhdlProgram("ew")
    dram_in = dhdl.dram(array_in)
    dram_out = dhdl.dram(array_out)
    tile_in = dhdl.sram("a_tile", (n,), E.FLOAT32)
    tile_out = dhdl.sram("o_tile", (n,), E.FLOAT32)
    body = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(body)
    body.add(TileLoad("load_a", dram_in, tile_in, (0,), (n,)))
    ch, (i,) = chain((0, n, 16))
    body.add(InnerCompute("scale", ch,
                          [WriteStmt(tile_out, (i,),
                                     tile_in[i] * 2.0 + 1.0)]))
    body.add(TileStore("store_o", dram_out, tile_out, (0,), (n,)))
    validate(dhdl)
    machine = Machine(dhdl, default_config(dhdl))
    stats = machine.run()
    np.testing.assert_allclose(machine.result("o"), data * 2 + 1)
    assert stats.cycles > 0
    assert stats.dram["reads"] == n // 16
    assert stats.dram["writes"] == n // 16


def test_tiled_pipeline_multiple_iterations():
    n, tile = 128, 32
    data = np.random.default_rng(0).standard_normal(n).astype(np.float32)
    array_in = Array("a", (n,), E.FLOAT32, data=data)
    array_out = Array("o", (n,), E.FLOAT32)
    dhdl = DhdlProgram("tiled")
    dram_in = dhdl.dram(array_in)
    dram_out = dhdl.dram(array_out)
    tile_in = dhdl.sram("a_tile", (tile,), E.FLOAT32, nbuf=2)
    tile_out = dhdl.sram("o_tile", (tile,), E.FLOAT32, nbuf=2)
    tchain, (t,) = chain(n // tile)
    body = OuterController("tiles", Scheme.PIPELINE, chain=tchain)
    dhdl.root.add(body)
    body.add(TileLoad("load_a", dram_in, tile_in, (t * tile,), (tile,)))
    ch, (i,) = chain((0, tile, 16))
    body.add(InnerCompute("neg", ch,
                          [WriteStmt(tile_out, (i,), -tile_in[i])]))
    body.add(TileStore("store_o", dram_out, tile_out, (t * tile,),
                       (tile,)))
    validate(dhdl)
    machine = Machine(dhdl, default_config(dhdl))
    machine.run()
    np.testing.assert_allclose(machine.result("o"), -data)


def test_pipeline_overlaps_iterations():
    """With nbuf=2 the load of tile k+1 overlaps compute of tile k, so a
    pipelined run must beat a strictly sequential one."""
    n, tile = 256, 32

    def build(scheme, nbuf):
        data = np.ones(n, dtype=np.float32)
        array_in = Array("a", (n,), E.FLOAT32, data=data)
        array_out = Array("o", (n,), E.FLOAT32)
        dhdl = DhdlProgram("overlap")
        dram_in = dhdl.dram(array_in)
        dram_out = dhdl.dram(array_out)
        tile_in = dhdl.sram("a_tile", (tile,), E.FLOAT32, nbuf=nbuf)
        tile_out = dhdl.sram("o_tile", (tile,), E.FLOAT32, nbuf=nbuf)
        tchain, (t,) = chain(n // tile)
        body = OuterController("tiles", scheme, chain=tchain)
        dhdl.root.add(body)
        body.add(TileLoad("load_a", dram_in, tile_in, (t * tile,),
                          (tile,)))
        ch, (i,) = chain((0, tile, 16))
        body.add(InnerCompute("inc", ch,
                              [WriteStmt(tile_out, (i,),
                                         tile_in[i] + 1.0)]))
        body.add(TileStore("store_o", dram_out, tile_out, (t * tile,),
                           (tile,)))
        machine = Machine(dhdl, default_config(dhdl))
        stats = machine.run()
        np.testing.assert_allclose(machine.result("o"), data + 1)
        return stats.cycles

    pipelined = build(Scheme.PIPELINE, nbuf=2)
    sequential = build(Scheme.SEQUENTIAL, nbuf=1)
    assert pipelined < sequential


def test_fold_to_register_and_writeback():
    n = 48
    data = np.arange(n, dtype=np.float32)
    array_in = Array("a", (n,), E.FLOAT32, data=data)
    result = Array("s", (), E.FLOAT32)
    dhdl = DhdlProgram("fold")
    dram_in = dhdl.dram(array_in)
    dhdl.dram(result)
    tile_in = dhdl.sram("a_tile", (n,), E.FLOAT32)
    acc = dhdl.reg("acc", E.FLOAT32, init=0.0)
    body = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(body)
    body.add(TileLoad("load_a", dram_in, tile_in, (0,), (n,)))
    ch, (i,) = chain((0, n, 16))
    acc_a, acc_b = E.Var("a0", E.FLOAT32), E.Var("b0", E.FLOAT32)
    body.add(InnerCompute("sum", ch,
                          [ReduceStmt((acc,), (tile_in[i],),
                                      (acc_a + acc_b,), (acc_a,),
                                      (acc_b,), (0.0,))]))
    dhdl.reg_outputs[acc.name] = "s"
    validate(dhdl)
    machine = Machine(dhdl, default_config(dhdl))
    machine.run()
    assert machine.scalar("s") == pytest.approx(data.sum())


def test_reduce_per_output_cell_matrix_row_sums():
    rows, cols = 8, 16
    data = np.random.default_rng(1).standard_normal(
        (rows, cols)).astype(np.float32)
    array_in = Array("m", (rows, cols), E.FLOAT32, data=data)
    array_out = Array("rs", (rows,), E.FLOAT32)
    dhdl = DhdlProgram("rowsum")
    dram_in = dhdl.dram(array_in)
    dram_out = dhdl.dram(array_out)
    tile_in = dhdl.sram("m_tile", (rows, cols), E.FLOAT32)
    tile_out = dhdl.sram("rs_tile", (rows,), E.FLOAT32)
    body = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(body)
    body.add(TileLoad("load_m", dram_in, tile_in, (0, 0), (rows, cols)))
    ch, (r, c) = chain(rows, (0, cols, 16))
    acc_a, acc_b = E.Var("a0", E.FLOAT32), E.Var("b0", E.FLOAT32)
    body.add(InnerCompute("sum", ch,
                          [ReduceStmt((tile_out,), (tile_in[r, c],),
                                      (acc_a + acc_b,), (acc_a,),
                                      (acc_b,), (0.0,), addr=(r,))]))
    body.add(TileStore("store", dram_out, tile_out, (0,), (rows,)))
    validate(dhdl)
    machine = Machine(dhdl, default_config(dhdl))
    machine.run()
    np.testing.assert_allclose(machine.result("rs"), data.sum(axis=1),
                               rtol=1e-5)


def test_gather_random_reads():
    n = 32
    table = np.arange(100, 100 + 64, dtype=np.float32)
    idx = np.random.default_rng(2).integers(0, 64, n).astype(np.int32)
    array_table = Array("tbl", (64,), E.FLOAT32, data=table)
    array_idx = Array("idx", (n,), E.INT32, data=idx)
    array_out = Array("o", (n,), E.FLOAT32)
    dhdl = DhdlProgram("gather")
    dram_table = dhdl.dram(array_table)
    dram_idx = dhdl.dram(array_idx)
    dram_out = dhdl.dram(array_out)
    idx_tile = dhdl.sram("idx_tile", (n,), E.INT32)
    dst_tile = dhdl.sram("dst_tile", (n,), E.FLOAT32,
                         banking=BankingMode.DUPLICATION)
    body = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(body)
    body.add(TileLoad("load_idx", dram_idx, idx_tile, (0,), (n,)))
    body.add(Gather("gather", dram_table, idx_tile, dst_tile))
    body.add(TileStore("store", dram_out, dst_tile, (0,), (n,)))
    validate(dhdl)
    machine = Machine(dhdl, default_config(dhdl))
    machine.run()
    np.testing.assert_allclose(machine.result("o"), table[idx])


def test_scatter_random_writes():
    n = 16
    idx = np.random.default_rng(3).permutation(n).astype(np.int32)
    vals = np.arange(n, dtype=np.float32)
    array_idx = Array("idx", (n,), E.INT32, data=idx)
    array_val = Array("val", (n,), E.FLOAT32, data=vals)
    array_out = Array("o", (n,), E.FLOAT32)
    dhdl = DhdlProgram("scatter")
    dram_idx = dhdl.dram(array_idx)
    dram_val = dhdl.dram(array_val)
    dram_out = dhdl.dram(array_out)
    idx_tile = dhdl.sram("idx_tile", (n,), E.INT32)
    val_tile = dhdl.sram("val_tile", (n,), E.FLOAT32)
    body = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(body)
    body.add(TileLoad("load_idx", dram_idx, idx_tile, (0,), (n,)))
    body.add(TileLoad("load_val", dram_val, val_tile, (0,), (n,)))
    body.add(Scatter("scatter", dram_out, idx_tile, val_tile))
    validate(dhdl)
    machine = Machine(dhdl, default_config(dhdl))
    machine.run()
    expect = np.zeros(n, dtype=np.float32)
    expect[idx] = vals
    np.testing.assert_allclose(machine.result("o"), expect)


def test_streaming_filter_with_dynamic_count():
    n = 64
    data = np.random.default_rng(4).standard_normal(n).astype(np.float32)
    array_in = Array("a", (n,), E.FLOAT32, data=data)
    array_out = Array("kept", (n,), E.FLOAT32)
    count_out = Array("count", (), E.INT32)
    dhdl = DhdlProgram("filter")
    dram_in = dhdl.dram(array_in)
    dram_out = dhdl.dram(array_out)
    dhdl.dram(count_out)
    tile_in = dhdl.sram("a_tile", (n,), E.FLOAT32)
    fifo = dhdl.fifo("kept_fifo", E.FLOAT32, depth=4)
    count_reg = dhdl.reg("count_reg", E.INT32)
    pipe = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(pipe)
    pipe.add(TileLoad("load_a", dram_in, tile_in, (0,), (n,)))
    stream = OuterController("stream", Scheme.STREAMING)
    pipe.add(stream)
    ch, (i,) = chain((0, n, 16))
    stream.add(InnerCompute("select", ch,
                            [EmitStmt(fifo, tile_in[i] > 0.0,
                                      tile_in[i])]))
    stream.add(StreamStore("drain", dram_out, fifo, count_reg))
    dhdl.reg_outputs[count_reg.name] = "count"
    validate(dhdl)
    machine = Machine(dhdl, default_config(dhdl))
    machine.run()
    expect = data[data > 0]
    assert machine.scalar("count") == len(expect)
    np.testing.assert_allclose(machine.result("kept")[:len(expect)],
                               expect)


def test_hash_reduce_histogram():
    n, bins = 64, 8
    keys = np.random.default_rng(5).integers(0, bins, n).astype(np.int32)
    array_in = Array("k", (n,), E.INT32, data=keys)
    array_out = Array("h", (bins,), E.INT32)
    dhdl = DhdlProgram("hist")
    dram_in = dhdl.dram(array_in)
    dram_out = dhdl.dram(array_out)
    tile_in = dhdl.sram("k_tile", (n,), E.INT32)
    tile_h = dhdl.sram("h_tile", (bins,), E.INT32)
    body = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(body)
    body.add(TileLoad("load_k", dram_in, tile_in, (0,), (n,)))
    ch, (i,) = chain((0, n, 16))
    acc_a, acc_b = E.Var("a0", E.INT32), E.Var("b0", E.INT32)
    body.add(InnerCompute("hist", ch,
                          [HashReduceStmt(tile_h, tile_in[i], 1,
                                          acc_a + acc_b, acc_a, acc_b,
                                          0)]))
    body.add(TileStore("store", dram_out, tile_h, (0,), (bins,)))
    validate(dhdl)
    machine = Machine(dhdl, default_config(dhdl))
    machine.run()
    np.testing.assert_array_equal(machine.result("h"),
                                  np.bincount(keys, minlength=bins))


def test_sequential_loop_with_early_exit():
    array_cnt = Array("c", (), E.INT32, data=np.int32(5))
    dhdl = DhdlProgram("loop")
    dhdl.dram(array_cnt)
    counter = dhdl.reg("counter", E.INT32, init=5)
    loop_chain, _ = chain(100)
    loop = OuterController("loop", Scheme.SEQUENTIAL, chain=loop_chain,
                           stop_when_zero=counter)
    dhdl.root.add(loop)
    ch, (i,) = chain(1)
    loop.add(InnerCompute("dec", ch,
                          [WriteStmt(counter, (),
                                     counter.read() - 1)]))
    dhdl.reg_outputs[counter.name] = "c"
    machine = Machine(dhdl, default_config(dhdl))
    stats = machine.run()
    assert machine.scalar("c") == 0
    # 5 decrements, not 100
    assert stats.busy_cycles.get("dec", 0) < 100


def test_utilization_report():
    dhdl = DhdlProgram("empty")
    array_in = Array("a", (16,), E.FLOAT32, data=np.zeros(16,
                                                          dtype=np.float32))
    dram_in = dhdl.dram(array_in)
    tile = dhdl.sram("t", (16,), E.FLOAT32)
    body = OuterController("pipe", Scheme.PIPELINE)
    dhdl.root.add(body)
    body.add(TileLoad("ld", dram_in, tile, (0,), (16,)))
    config = default_config(dhdl)
    machine = Machine(dhdl, config)
    machine.run()
    util = config.utilization()
    assert 0 <= util["pcu"] <= 1
    assert util["ag"] == pytest.approx(2 / 34)
