"""Multi-tenant Fabric: solo-equivalence, co-residency, attribution.

The load-bearing invariant of the tenancy refactor is that hosting one
tenant on a :class:`Fabric` is *bit-identical* to the classic solo
``Machine.run``: same ``SimStats``, same final DRAM image, same stall
attribution.  These tests assert that for every registry app, then
exercise the genuinely multi-tenant paths: co-resident execution with
validated outputs, per-tenant DRAM accounting that reconciles exactly
with the aggregate counters, and the safety checks (missing regions,
overlapping regions).
"""

import dataclasses

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.apps.registry import get_app
from repro.compiler.artifact import compile_to_bitstream
from repro.compiler.place_route import Region
from repro.errors import SimulationError
from repro.sim import Fabric, Machine
from repro.trace import RingTracer

PAIR = ("gemm", "tpchq6")


def _solo(artifact, traced=False):
    tracer = RingTracer(sample=4) if traced else None
    machine = Machine(artifact.dhdl, artifact.config, tracer=tracer)
    stats = machine.run()
    return machine, stats, tracer


def _lone_tenant(artifact, name, traced=False):
    tracer = RingTracer(sample=4) if traced else None
    fabric = Fabric()
    tenant = fabric.add_tenant(artifact.dhdl, artifact.config,
                               name=name, tracer=tracer)
    fabric.run()
    return fabric, tenant, tracer


# ---------------------------------------------------------------------------
# Solo equivalence: one tenant on a Fabric == classic Machine.run
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_lone_tenant_bit_identical_to_solo(app):
    artifact = compile_to_bitstream(app.name, "tiny")
    solo_machine, solo_stats, _ = _solo(artifact)
    _, tenant, _ = _lone_tenant(artifact, app.name)

    assert dataclasses.asdict(tenant.stats) \
        == dataclasses.asdict(solo_stats)
    # identical final DRAM image, array by array
    solo_bufs = solo_machine.image.buffers
    ten_bufs = tenant.machine.image.buffers
    assert set(solo_bufs) == set(ten_bufs)
    for name in solo_bufs:
        np.testing.assert_array_equal(solo_bufs[name], ten_bufs[name])


@pytest.mark.parametrize("app", PAIR)
def test_lone_tenant_attribution_identical_to_solo(app):
    """Traced runs agree on the full stall-attribution breakdown."""
    artifact = compile_to_bitstream(app, "tiny")
    solo_machine, solo_stats, _ = _solo(artifact, traced=True)
    _, tenant, _ = _lone_tenant(artifact, app, traced=True)
    assert tenant.stats.same_as(solo_stats)
    assert tenant.machine.trace_report().render() \
        == solo_machine.trace_report().render()


def test_lone_tenant_channel_util_matches_aggregate():
    artifact = compile_to_bitstream("gemm", "tiny")
    fabric, tenant, _ = _lone_tenant(artifact, "gemm")
    assert tenant.stats.dram_channels == fabric.channel_util()
    assert tenant.stats.dram_channels \
        == fabric.tenant_channel_util(tenant)


# ---------------------------------------------------------------------------
# Co-resident execution
# ---------------------------------------------------------------------------


def _co_resident_pair():
    from repro.tenancy import pack_apps
    packing = pack_apps(list(PAIR), "tiny")
    assert packing.feasible, packing.reason
    fabric = Fabric()
    tenants = [fabric.add_tenant(t.artifact.dhdl, t.artifact.config,
                                 name=t.app)
               for t in packing.tenants]
    fabric.run()
    return fabric, tenants


def test_co_resident_pair_completes_and_validates():
    fabric, tenants = _co_resident_pair()
    assert fabric.cycle == max(t.finish_cycle for t in tenants)
    for app_name, tenant in zip(PAIR, tenants):
        assert tenant.done
        app = get_app(app_name)
        expected = app.expected(app.build("tiny"))
        results = {name: tenant.machine.result(name)
                   for name in expected}
        app.check(tenant.machine.dhdl, results, expected)


def test_co_residency_interference_is_observable():
    """Sharing DRAM channels costs cycles relative to running solo."""
    solos = {}
    for app in PAIR:
        artifact = compile_to_bitstream(app, "tiny")
        _, stats, _ = _solo(artifact)
        solos[app] = stats
    _, tenants = _co_resident_pair()
    for app, tenant in zip(PAIR, tenants):
        assert tenant.stats.cycles >= solos[app].cycles
    # at least one tenant actually observed contention
    assert any(t.stats.cycles > solos[a].cycles
               for a, t in zip(PAIR, tenants))


def test_per_tenant_dram_accounting_reconciles():
    """Per-tenant DRAM stats and channel utilization sum to the
    aggregate counters — nothing is double-counted or dropped."""
    fabric, tenants = _co_resident_pair()
    dram = fabric.dram
    aggregate = dram.stats()
    for key in ("reads", "writes", "row_hits", "row_misses",
                "row_empties", "bytes"):
        parts = sum(dram.stats_for(t.id)[key] for t in tenants)
        assert parts == aggregate[key], key
    # channel views over the same makespan denominator sum exactly
    # (each tenant's *own* stats.dram_channels uses its finish cycle,
    # so those are per-tenant rates, not shares of the makespan)
    agg_util = fabric.channel_util()
    for ch, entry in agg_util.items():
        parts = [fabric.tenant_channel_util(t).get(
                     ch, {"bursts": 0, "bytes": 0, "util": 0.0})
                 for t in tenants]
        assert sum(p["bursts"] for p in parts) == entry["bursts"]
        assert sum(p["bytes"] for p in parts) == entry["bytes"]
        assert sum(p["util"] for p in parts) \
            == pytest.approx(entry["util"])


def test_per_tenant_tracers_attribute_dram_traffic():
    from repro.tenancy import co_run
    tracers = {}

    def factory(name):
        tracers[name] = RingTracer(sample=4)
        return tracers[name]

    result = co_run(list(PAIR), scale="tiny", tracer_factory=factory)
    assert set(tracers) == set(PAIR)
    for tenant in result.tenants:
        assert tenant.validated
        # each tenant's own stats carry DRAM traffic it can see in its
        # private channel-utilization view
        assert tenant.stats.dram.get("bytes", 0) > 0
        assert any(entry["bursts"] > 0
                   for entry in tenant.channel_util.values())


# ---------------------------------------------------------------------------
# Safety checks
# ---------------------------------------------------------------------------


def test_fabric_requires_regions_beyond_first_tenant():
    artifact = compile_to_bitstream("gemm", "tiny")
    assert artifact.config.region is None
    fabric = Fabric()
    fabric.add_tenant(artifact.dhdl, artifact.config, name="a")
    with pytest.raises(SimulationError, match="region"):
        fabric.add_tenant(artifact.dhdl, artifact.config, name="b")


def test_fabric_rejects_overlapping_regions():
    left = compile_to_bitstream("gemm", "tiny",
                                region=Region(0, 0, 8, 2))
    right = compile_to_bitstream("tpchq6", "tiny",
                                 region=Region(4, 0, 8, 2))
    fabric = Fabric()
    fabric.add_tenant(left.dhdl, left.config, name="gemm")
    with pytest.raises(SimulationError, match="overlap"):
        fabric.add_tenant(right.dhdl, right.config, name="tpchq6")


def test_empty_fabric_refuses_to_run():
    with pytest.raises(SimulationError, match="no tenants"):
        Fabric().run()


def test_duplicate_tenant_names_are_suffixed():
    packing_region = Region(0, 0, 8, 2)
    other_region = Region(8, 0, 8, 2)
    a = compile_to_bitstream("gemm", "tiny", region=packing_region)
    b = compile_to_bitstream("gemm", "tiny", region=other_region)
    fabric = Fabric()
    first = fabric.add_tenant(a.dhdl, a.config, name="gemm")
    second = fabric.add_tenant(b.dhdl, b.config, name="gemm")
    assert first.name == "gemm"
    assert second.name == "gemm#1"
