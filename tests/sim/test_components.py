"""Unit tests for simulator components: FIFOs, scratchpads, config."""

import numpy as np
import pytest

from repro.arch.params import DEFAULT
from repro.dhdl import BankingMode, FifoDecl, Reg, Sram
from repro.errors import ConfigError, SimulationError
from repro.patterns import expr as E
from repro.sim import (AgAssignment, FabricConfig, FifoSim, LeafTiming,
                       MemoryState, RegSim, ScratchpadSim)


# -- FIFO -----------------------------------------------------------------------

def test_fifo_push_pop_order():
    fifo = FifoSim(FifoDecl("f", depth=2), lanes=4)
    fifo.push([1, 2, 3])
    assert fifo.pop(2) == [1, 2]
    assert fifo.pop(5) == [3]


def test_fifo_capacity_vector_vs_scalar():
    vec = FifoSim(FifoDecl("v", depth=2, vector=True), lanes=16)
    assert vec.capacity == 32
    scalar = FifoSim(FifoDecl("s", depth=2, vector=False), lanes=16)
    assert scalar.capacity == 2


def test_fifo_overflow_rejected():
    fifo = FifoSim(FifoDecl("f", depth=1, vector=False))
    fifo.push([1])
    assert not fifo.can_push()
    with pytest.raises(SimulationError):
        fifo.push([2])


def test_fifo_eos_protocol():
    fifo = FifoSim(FifoDecl("f"))
    fifo.push([1])
    fifo.close()
    assert fifo.eos and not fifo.drained
    with pytest.raises(SimulationError):
        fifo.push([2])
    fifo.pop(1)
    assert fifo.drained
    fifo.reopen()
    assert not fifo.eos


def test_fifo_reopen_requires_empty():
    fifo = FifoSim(FifoDecl("f"))
    fifo.push([1])
    fifo.close()
    with pytest.raises(SimulationError):
        fifo.reopen()


# -- scratchpad ---------------------------------------------------------------------

def _scratch(banking=BankingMode.STRIDED, shape=(64,), nbuf=1,
             bank_stride=1):
    sram = Sram("t", shape, E.FLOAT32, banking, nbuf=nbuf,
                bank_stride=bank_stride)
    return ScratchpadSim(sram, banks=16)


def test_versions_copy_on_write():
    sp = _scratch()
    first = sp.buffer((0,))
    first[0] = 7.0
    second = sp.buffer((1,))
    assert second[0] == 7.0           # carried
    second[0] = 9.0
    assert sp.buffer((0,))[0] == 7.0  # older untouched


def test_read_buffer_falls_back_to_newest_older():
    sp = _scratch()
    sp.buffer((0, 1))[0] = 5.0
    view = sp.read_buffer((0, 3))
    assert view[0] == 5.0


def test_retire_old_bounds_live_versions():
    sp = _scratch(nbuf=2)
    for k in range(10):
        sp.buffer((k,))
    sp.retire_old()
    assert len(sp.versions) <= 3


def test_strided_conflicts_counted():
    sp = _scratch()
    assert sp.read_cost(list(range(16))) == 0       # one per bank
    assert sp.read_cost([0, 16, 32]) == 2           # all bank 0
    assert sp.conflict_cycles == 2


def test_bank_stride_decoder():
    # lanes hit addresses k*16 (a column): with stride 16 they spread
    sp = _scratch(bank_stride=16)
    addrs = [k * 16 for k in range(16)]
    assert sp.read_cost(addrs) == 0


def test_broadcast_reads_free():
    sp = _scratch()
    assert sp.read_cost([5] * 16) == 0  # same word: broadcast


def test_duplication_mode_reads_free_writes_serialise():
    sp = _scratch(banking=BankingMode.DUPLICATION)
    assert sp.read_cost([0, 0, 7, 7, 3]) == 0
    assert sp.write_cost([1, 2, 3, 4]) == 3


def test_fifo_and_linebuffer_modes_conflict_free():
    for mode in (BankingMode.FIFO, BankingMode.LINE_BUFFER):
        sp = _scratch(banking=mode)
        assert sp.read_cost([0, 16, 32, 48]) == 0
        assert sp.write_cost([0, 16, 32, 48]) == 0


def test_watermark_tracking():
    sp = _scratch()
    sp.note_write((1,), 5)
    sp.note_write((1,), 2)
    assert sp.watermark_for((1,)) == 6
    assert sp.watermark_for((2,)) == 6  # falls back
    assert sp.watermark_for((0,)) == 0


# -- registers -----------------------------------------------------------------------

def test_reg_sim_types():
    reg = RegSim(Reg("r", E.INT32, init=3))
    assert reg.read() == 3
    reg.write(7.9)
    assert reg.read() == 7  # int32 truncation


def test_memory_state_lookup_errors():
    state = MemoryState([], [])
    with pytest.raises(SimulationError):
        state.scratch(Sram("ghost", (4,), E.FLOAT32))
    with pytest.raises(SimulationError):
        state.reg(Reg("ghost"))


# -- config -----------------------------------------------------------------------

def test_leaf_timing_validation():
    LeafTiming().validate(DEFAULT)
    with pytest.raises(ConfigError):
        LeafTiming(lanes=99).validate(DEFAULT)
    with pytest.raises(ConfigError):
        LeafTiming(pipeline_depth=0).validate(DEFAULT)


def test_config_lookup_errors():
    config = FabricConfig()
    with pytest.raises(ConfigError):
        config.timing_for("nope")
    with pytest.raises(ConfigError):
        config.ags_for("nope")


def test_utilization_fractions():
    config = FabricConfig(pcus_used=32, pmus_used=16, ags_used=17,
                          fus_used=96 * 16, switches_used=60)
    util = config.utilization()
    assert util["pcu"] == pytest.approx(0.5)
    assert util["pmu"] == pytest.approx(0.25)
    assert util["ag"] == pytest.approx(0.5)
    assert util["fu"] == pytest.approx(0.25)


def test_ag_assignment_streams():
    assert AgAssignment((0, 1, 2)).streams == 3
