"""Unit tests for access-pattern analysis."""

from repro.patterns import Array
from repro.patterns import expr as E
from repro.patterns.analysis import (Affine, as_affine, classify_load,
                                     classify_loads, expression_stats,
                                     innermost_stride)


def test_affine_of_constant():
    form = as_affine(E.wrap(7))
    assert form.is_const()
    assert form.const == 7


def test_affine_of_index():
    i = E.Idx("i")
    form = as_affine(i)
    assert form.stride_of(i) == 1


def test_affine_linear_combination():
    i, j = E.Idx("i"), E.Idx("j")
    form = as_affine(i * 3 + j + 5)
    assert form.stride_of(i) == 3
    assert form.stride_of(j) == 1
    assert form.const == 5


def test_affine_subtraction_and_negation():
    i = E.Idx("i")
    form = as_affine(10 - i * 2)
    assert form.const == 10
    assert form.stride_of(i) == -2
    neg = as_affine(-(i + 1))
    assert neg.const == -1
    assert neg.stride_of(i) == -1


def test_nonaffine_returns_none():
    i, j = E.Idx("i"), E.Idx("j")
    assert as_affine(i * j) is None
    a = Array("a", (4,), E.INT32)
    assert as_affine(a[i]) is None


def test_classify_affine_load():
    a = Array("a", (4, 8))
    i, j = E.Idx("i"), E.Idx("j")
    lc = classify_load(a[i, j * 2])
    assert lc.is_affine
    assert not lc.is_gather


def test_classify_gather_load():
    idx = Array("idx", (8,), E.INT32)
    data = Array("d", (64,))
    i = E.Idx("i")
    lc = classify_load(data[idx[i]])
    assert lc.is_gather


def test_flat_affine_row_major():
    a = Array("a", (4, 8))
    i, j = E.Idx("i"), E.Idx("j")
    lc = classify_load(a[i, j])
    flat = lc.flat_affine(a.shape)
    assert flat.stride_of(i) == 8
    assert flat.stride_of(j) == 1


def test_innermost_stride_unit():
    a = Array("a", (4, 8))
    i, j = E.Idx("i"), E.Idx("j")
    assert innermost_stride(classify_load(a[i, j]), j, a.shape) == 1
    assert innermost_stride(classify_load(a[j, i]), j, a.shape) == 8
    assert innermost_stride(classify_load(a[i, i]), j, a.shape) == 0


def test_innermost_stride_gather_is_none():
    idx = Array("idx", (8,), E.INT32)
    data = Array("d", (64,))
    i = E.Idx("i")
    assert innermost_stride(classify_load(data[idx[i]]), i,
                            data.shape) is None


def test_expression_stats_counts():
    a = Array("a", (8,))
    idx = Array("idx", (8,), E.INT32)
    i = E.Idx("i")
    root = a[i] * 2.0 + a[idx[i]]
    stats = expression_stats(root)
    assert stats["ops"] == 2
    assert stats["affine_loads"] == 2  # a[i] and idx[i]
    assert stats["gather_loads"] == 1  # a[idx[i]]
    assert stats["indices"] == 1


def test_classify_loads_bulk():
    a = Array("a", (8,))
    i = E.Idx("i")
    classes = classify_loads(a[i] + a[i + 1])
    assert len(classes) == 2
    assert all(c.is_affine for c in classes)


def test_affine_add_and_scale():
    i = E.Idx("i")
    f1 = Affine(1, {i: 2})
    f2 = Affine(3, {i: 4})
    total = (f1 + f2).scale(2)
    assert total.const == 8
    assert total.stride_of(i) == 12
