"""Tests for the sparse (dynamic-key) HashReduce form."""

import numpy as np
import pytest

from repro.errors import PatternError
from repro.patterns import (Array, HashReduce, Program,
                            run_sparse_hash_reduce)
from repro.patterns import expr as E
from repro.patterns.executor import Env


def test_sparse_histogram_over_arbitrary_keys():
    keys = np.array([1001, 7, 1001, 42, 7, 7], dtype=np.int32)
    p = Program("t")
    v = p.input("v", (6,), E.INT32, data=keys)
    pattern = HashReduce(6, key=lambda i: v[i], value=lambda i: 1,
                         r=lambda a, b: a + b, bins=None, init=0)
    assert not pattern.dense
    env = Env(p)
    out = run_sparse_hash_reduce(pattern, env)
    assert out == {1001: (2,), 7: (3,), 42: (1,)}


def test_sparse_multi_value_groupby():
    # TPC-H Q1 style: group amounts by key, tracking (sum, count)
    keys = np.array([3, 5, 3, 3], dtype=np.int32)
    amounts = np.array([10.0, 20.0, 30.0, 40.0], dtype=np.float32)
    p = Program("t")
    k = p.input("k", (4,), E.INT32, data=keys)
    a = p.input("a", (4,), data=amounts)
    pattern = HashReduce(
        4, key=lambda i: k[i],
        value=lambda i: (a[i], 1),
        r=lambda x, y: (x[0] + y[0], x[1] + y[1]),
        bins=None, init=(0.0, 0))
    env = Env(p)
    out = run_sparse_hash_reduce(pattern, env)
    assert out[3] == (pytest.approx(80.0), 3)
    assert out[5] == (pytest.approx(20.0), 1)


def test_sparse_form_rejected_as_program_step():
    p = Program("t")
    v = p.input("v", (4,), E.INT32, data=np.zeros(4, dtype=np.int32))
    o = p.output("o", (4,), E.INT32)
    pattern = HashReduce(4, key=lambda i: v[i], value=lambda i: 1,
                         r=lambda a, b: a + b, bins=None, init=0)
    with pytest.raises(PatternError, match="sparse"):
        p.step("hr", pattern, (o,))
