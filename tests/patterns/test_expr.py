"""Unit tests for the symbolic expression IR."""

import math

import pytest

from repro.errors import TraceError
from repro.patterns import expr as E


def test_wrap_numbers():
    assert isinstance(E.wrap(3), E.Const)
    assert E.wrap(3).dtype == E.INT32
    assert E.wrap(3.5).dtype == E.FLOAT32
    assert E.wrap(True).dtype == E.BOOL
    node = E.Const(1)
    assert E.wrap(node) is node


def test_wrap_rejects_foreign_types():
    with pytest.raises(TraceError):
        E.wrap("hello")


def test_operator_overloading_builds_binops():
    i = E.Idx("i")
    node = (i + 1) * 2 - 3
    assert isinstance(node, E.BinOp)
    assert node.op == "sub"
    assert node.lhs.op == "mul"
    assert node.lhs.lhs.op == "add"


def test_reflected_operators():
    i = E.Idx("i")
    node = 10 - i
    assert node.op == "sub"
    assert isinstance(node.lhs, E.Const) and node.lhs.value == 10


def test_dtype_promotion():
    i = E.Idx("i")
    assert (i + 1).dtype == E.INT32
    assert (i + 1.0).dtype == E.FLOAT32
    assert (i < 1).dtype == E.BOOL


def test_dtype_unify_rejects_bool_plus_int():
    with pytest.raises(TraceError):
        E.unify_dtypes(E.BOOL, E.INT32)


def test_comparison_ops_are_bool():
    i = E.Idx("i")
    for node in (i < 1, i <= 1, i > 1, i >= 1, i.eq(1), i.ne(1)):
        assert node.dtype == E.BOOL


def test_select_dtype():
    i = E.Idx("i")
    node = E.select(i < 1, 1.0, 2.0)
    assert node.dtype == E.FLOAT32
    assert len(node.children()) == 3


def test_unary_helpers():
    x = E.Var("x")
    assert E.exp(x).op == "exp"
    assert E.sqrt(x).op == "sqrt"
    assert E.to_int(x).dtype == E.INT32
    assert E.to_float(E.Idx("i")).dtype == E.FLOAT32
    assert (-x).op == "neg"
    assert (~(x < 1)).op == "not"


def test_unknown_ops_rejected():
    with pytest.raises(TraceError):
        E.BinOp("pow", E.wrap(1), E.wrap(2))
    with pytest.raises(TraceError):
        E.UnOp("sin", E.wrap(1.0))


def test_eval_binary_semantics():
    assert E.eval_binary("add", 2, 3) == 5
    assert E.eval_binary("div", 7.0, 2.0) == 3.5
    assert E.eval_binary("div", 7, 2) == 3
    assert E.eval_binary("div", -7, 2) == -3  # truncation toward zero
    assert E.eval_binary("min", 4, 9) == 4
    assert E.eval_binary("max", 4, 9) == 9
    assert E.eval_binary("and", True, False) is False


def test_eval_binary_div_by_zero():
    with pytest.raises(ZeroDivisionError):
        E.eval_binary("div", 1, 0)


def test_eval_unary_semantics():
    assert E.eval_unary("neg", 4) == -4
    assert E.eval_unary("relu", -2.0) == 0.0
    assert E.eval_unary("relu", 2.0) == 2.0
    assert math.isclose(E.eval_unary("sigmoid", 0.0), 0.5)
    assert E.eval_unary("to_int", 2.7) == 2


def test_postorder_visits_each_node_once():
    i = E.Idx("i")
    shared = i * 2
    root = shared + shared
    nodes = list(E.postorder(root))
    assert nodes.count(shared) == 1
    assert nodes[-1] is root


def test_count_ops_shares_subtrees():
    i = E.Idx("i")
    shared = i * 2
    root = shared + shared
    assert E.count_ops(root) == 2  # mul and add, mul counted once


def test_collect_indices_and_loads():
    from repro.patterns.collections import Array
    a = Array("a", (4,), E.FLOAT32)
    i = E.Idx("i")
    j = E.Idx("j")
    root = a[i] + a[j] * 2.0
    assert set(E.collect_indices(root)) == {i, j}
    assert len(E.collect_loads(root)) == 2
