"""Unit tests for domain normalization."""

import pytest

from repro.errors import PatternError
from repro.patterns import Array, Dyn, scalar_cell
from repro.patterns import expr as E
from repro.patterns.domain import (DynDim, RangeDim, StaticDim,
                                   normalize_domain, static_trip_count)


def test_single_int_domain():
    dims, idxs = normalize_domain(8)
    assert len(dims) == 1
    assert isinstance(dims[0], StaticDim)
    assert dims[0].extent == 8
    assert idxs[0].extent == 8


def test_multi_dim_domain():
    dims, idxs = normalize_domain((4, 8, 2))
    assert [d.extent for d in dims] == [4, 8, 2]
    assert len(idxs) == 3
    assert static_trip_count(dims) == 64


def test_zero_extent_rejected():
    with pytest.raises(PatternError):
        normalize_domain(0)
    with pytest.raises(PatternError):
        normalize_domain((4, -1))


def test_bool_extent_rejected():
    with pytest.raises(PatternError):
        normalize_domain(True)


def test_empty_domain_rejected():
    with pytest.raises(PatternError):
        normalize_domain(())


def test_dyn_domain():
    cell = scalar_cell("n", E.INT32)
    dims, idxs = normalize_domain(Dyn(cell))
    assert isinstance(dims[0], DynDim)
    assert dims[0].extent_hint() >= 1


def test_expr_range_domain():
    ptr = Array("ptr", (9,), E.INT32)
    i = E.Idx("i")
    dims, idxs = normalize_domain((ptr[i], ptr[i + 1]))
    assert len(dims) == 1
    assert isinstance(dims[0], RangeDim)


def test_callable_range_uses_earlier_indices():
    ptr = Array("ptr", (9,), E.INT32)
    dims, idxs = normalize_domain(
        (8, lambda i: (ptr[i], ptr[i + 1])))
    assert isinstance(dims[0], StaticDim)
    assert isinstance(dims[1], RangeDim)
    # the range's bounds must reference the first dim's index
    used = set(E.collect_indices(dims[1].lo))
    assert idxs[0] in used


def test_callable_must_return_pair():
    with pytest.raises(PatternError):
        normalize_domain((4, lambda i: i))


def test_prev_indices_threaded():
    outer = E.Idx("outer")
    dims, idxs = normalize_domain(
        lambda o: (o, o + 4), prev_indices=[outer])
    assert isinstance(dims[0], RangeDim)
    assert outer in set(E.collect_indices(dims[0].lo))


def test_trip_count_uses_hints_for_dynamic():
    cell = scalar_cell("n", E.INT32)
    cell.max_elems = None
    dyn_cell = Array("m", (), E.INT32)
    dims, _ = normalize_domain((4, Dyn(dyn_cell)))
    assert static_trip_count(dims) >= 4
