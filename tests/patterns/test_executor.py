"""Integration tests for the reference executor over whole programs."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.patterns import (Dyn, Fold, Program, run_program, scalar_cell,
                            select, to_float, to_int)
from repro.patterns import expr as E


def test_map_elementwise():
    p = Program("t")
    rng = np.random.default_rng(0)
    data = rng.standard_normal(16).astype(np.float32)
    a = p.input("a", (16,), data=data)
    o = p.output("o", (16,))
    p.map("scale", o, 16, lambda i: a[i] * 3.0 + 1.0)
    env = run_program(p)
    np.testing.assert_allclose(env.buffers["o"], data * 3 + 1, rtol=1e-6)


def test_map_zip_two_inputs():
    p = Program("t")
    a = p.input("a", (8,), data=np.arange(8, dtype=np.float32))
    b = p.input("b", (8,), data=np.ones(8, dtype=np.float32))
    o = p.output("o", (8,))
    p.map("add", o, 8, lambda i: a[i] + b[i])
    env = run_program(p)
    np.testing.assert_allclose(env.buffers["o"], np.arange(8) + 1)


def test_fold_sum():
    p = Program("t")
    data = np.arange(32, dtype=np.float32)
    a = p.input("a", (32,), data=data)
    s = p.output("s")
    p.fold("sum", s, 32, 0.0, lambda i: a[i], lambda x, y: x + y)
    env = run_program(p)
    assert env.scalar(p.arrays["s"]) == pytest.approx(data.sum())


def test_fold_multi_accumulator_argmin():
    p = Program("t")
    data = np.array([5.0, 2.0, 7.0, 1.0, 9.0], dtype=np.float32)
    a = p.input("a", (5,), data=data)
    best = p.output("best")
    arg = p.output("arg", (), E.INT32)
    p.fold("argmin", (best, arg), 5, (1e30, 0),
           lambda i: (a[i], to_int(i) * 1),
           lambda x, y: (select(y[0] < x[0], y[0], x[0]),
                         select(y[0] < x[0], y[1], x[1])))
    env = run_program(p)
    assert env.scalar(best) == pytest.approx(1.0)
    assert env.scalar(arg) == 3


def test_map_of_fold_gemm():
    p = Program("gemm")
    rng = np.random.default_rng(1)
    A = rng.standard_normal((5, 7)).astype(np.float32)
    B = rng.standard_normal((7, 3)).astype(np.float32)
    a = p.input("a", (5, 7), data=A)
    b = p.input("b", (7, 3), data=B)
    c = p.output("c", (5, 3))
    p.map("mm", c, (5, 3),
          lambda i, j: Fold(7, 0.0, lambda k: a[i, k] * b[k, j],
                            lambda x, y: x + y))
    env = run_program(p)
    np.testing.assert_allclose(env.buffers["c"], A @ B, rtol=1e-5)


def test_filter_and_length():
    p = Program("t")
    data = np.array([1.0, -2.0, 3.0, -4.0, 5.0], dtype=np.float32)
    a = p.input("a", (5,), data=data)
    n = p.output("n", (), E.INT32)
    kept = p.output("kept", (Dyn(n),), max_elems=5)
    p.filter("pos", kept, n, 5, lambda i: a[i] > 0.0, lambda i: a[i])
    env = run_program(p)
    assert env.scalar(n) == 3
    np.testing.assert_allclose(env.buffers["kept"][:3], [1.0, 3.0, 5.0])


def test_flatmap_overflow_detected():
    p = Program("t")
    a = p.input("a", (5,), data=np.ones(5, dtype=np.float32))
    n = p.output("n", (), E.INT32)
    kept = p.output("kept", (Dyn(n),), max_elems=2)
    p.filter("all", kept, n, 5, lambda i: a[i] > 0.0, lambda i: a[i])
    with pytest.raises(SimulationError):
        run_program(p)


def test_hash_reduce_histogram():
    p = Program("t")
    vals = np.array([0, 1, 2, 1, 0, 1, 3, 3], dtype=np.int32)
    v = p.input("v", (8,), E.INT32, data=vals)
    h = p.output("h", (4,), E.INT32)
    p.hash_reduce("hist", h, 8, 4, key=lambda i: v[i],
                  value=lambda i: 1, r=lambda x, y: x + y, init=0)
    env = run_program(p)
    np.testing.assert_array_equal(env.buffers["h"],
                                  np.bincount(vals, minlength=4))


def test_hash_reduce_key_out_of_range():
    p = Program("t")
    v = p.input("v", (4,), E.INT32, data=np.array([0, 1, 2, 9]))
    h = p.output("h", (4,), E.INT32)
    p.hash_reduce("hist", h, 4, 4, key=lambda i: v[i],
                  value=lambda i: 1, r=lambda x, y: x + y, init=0)
    with pytest.raises(SimulationError):
        run_program(p)


def test_scatter_map():
    p = Program("t")
    idx = p.input("idx", (4,), E.INT32, data=np.array([3, 0, 2, 1]))
    tgt = p.temp("tgt", (4,), E.INT32,
                 data=np.full(4, -1, dtype=np.int32))
    p.scatter("sc", tgt, 4, index=lambda i: idx[i],
              value=lambda i: to_int(i) * 10)
    env = run_program(p)
    np.testing.assert_array_equal(env.buffers["tgt"], [10, 30, 20, 0])


def test_scatter_bounds_checked():
    p = Program("t")
    idx = p.input("idx", (2,), E.INT32, data=np.array([0, 7]))
    tgt = p.temp("tgt", (4,), E.INT32, data=np.zeros(4, dtype=np.int32))
    p.scatter("sc", tgt, 2, index=lambda i: idx[i], value=lambda i: 1)
    with pytest.raises(SimulationError):
        run_program(p)


def test_gather_through_index_array():
    p = Program("t")
    idx = p.input("idx", (4,), E.INT32, data=np.array([2, 0, 3, 1]))
    data = p.input("d", (4,), data=np.array([10., 20., 30., 40.],
                                            dtype=np.float32))
    o = p.output("o", (4,))
    p.map("gather", o, 4, lambda i: data[idx[i]])
    env = run_program(p)
    np.testing.assert_allclose(env.buffers["o"], [30., 10., 40., 20.])


def test_sequential_loop_accumulates():
    p = Program("t")
    x = p.temp("x", (), E.FLOAT32, data=np.float32(1.0))
    xn = p.temp("xn", (), E.FLOAT32)
    with p.loop("iters", 5):
        p.map("double", xn, 1, lambda i: x.scalar() * 2.0)
        p.map("copy", x, 1, lambda i: xn.scalar())
    env = run_program(p)
    assert env.scalar(x) == pytest.approx(32.0)


def test_loop_early_exit_on_zero():
    p = Program("t")
    count = p.temp("count", (), E.INT32, data=np.int32(3))
    with p.loop("lvl", 100, stop_when_zero=count):
        p.map("dec", count, 1, lambda i: count.scalar() - 1)
    env = run_program(p)
    assert env.scalar(count) == 0


def test_csr_row_sums_with_range_dims():
    # 3 rows: [a b | c | d e f]
    p = Program("t")
    ptr = p.input("ptr", (4,), E.INT32, data=np.array([0, 2, 3, 6]))
    val = p.input("val", (6,),
                  data=np.array([1., 2., 3., 4., 5., 6.], dtype=np.float32))
    o = p.output("o", (3,))
    p.map("rowsum", o, 3,
          lambda i: Fold((ptr[i], ptr[i + 1]), 0.0,
                         lambda j: val[j], lambda x, y: x + y))
    env = run_program(p)
    np.testing.assert_allclose(env.buffers["o"], [3., 3., 15.])


def test_dynamic_map_over_filter_output():
    p = Program("t")
    data = np.array([1.0, -2.0, 3.0, -4.0, 5.0], dtype=np.float32)
    a = p.input("a", (5,), data=data)
    n = p.output("n", (), E.INT32)
    kept = p.temp("kept", (Dyn(n),), max_elems=5)
    doubled = p.output("doubled", (Dyn(n),), max_elems=5)
    p.filter("pos", kept, n, 5, lambda i: a[i] > 0.0, lambda i: a[i])
    p.map("x2", doubled, Dyn(n), lambda i: kept[i] * 2.0)
    env = run_program(p)
    np.testing.assert_allclose(env.buffers["doubled"][:3], [2., 6., 10.])


def test_out_of_bounds_read_detected():
    p = Program("t")
    a = p.input("a", (4,), data=np.zeros(4, dtype=np.float32))
    o = p.output("o", (4,))
    p.map("oob", o, 4, lambda i: a[i + 1])
    with pytest.raises(SimulationError):
        run_program(p)


def test_float32_rounding_applied():
    p = Program("t")
    a = p.input("a", (1,), data=np.array([1.0], dtype=np.float32))
    o = p.output("o", (1,))
    p.map("tiny", o, 1, lambda i: a[i] + 1e-10)
    env = run_program(p)
    # float32 cannot represent 1 + 1e-10
    assert env.buffers["o"][0] == np.float32(1.0)
