"""Unit tests for symbolic collections."""

import numpy as np
import pytest

from repro.errors import PatternError
from repro.patterns import Array, Dyn, scalar_cell
from repro.patterns import expr as E


def test_basic_array_properties():
    a = Array("a", (4, 8), E.FLOAT32)
    assert a.ndim == 2
    assert not a.is_dynamic
    assert a.static_elems() == 32
    assert a.bytes() == 128


def test_scalar_cell():
    s = scalar_cell("s", E.INT32, 7)
    assert s.shape == ()
    assert s.data[()] == 7
    assert isinstance(s.scalar(), E.Load)


def test_scalar_read_requires_0d():
    a = Array("a", (4,))
    with pytest.raises(PatternError):
        a.scalar()


def test_indexing_builds_load():
    a = Array("a", (4, 8))
    i, j = E.Idx("i"), E.Idx("j")
    load = a[i, j]
    assert isinstance(load, E.Load)
    assert load.array is a
    assert load.dtype == E.FLOAT32


def test_indexing_wrong_rank_rejected():
    a = Array("a", (4, 8))
    with pytest.raises(Exception):
        _ = a[E.Idx("i")]


def test_negative_extent_rejected():
    with pytest.raises(PatternError):
        Array("a", (0,))
    with pytest.raises(PatternError):
        Array("a", (-3, 2))


def test_set_data_shape_check():
    a = Array("a", (2, 2))
    with pytest.raises(PatternError):
        a.set_data(np.zeros((3, 3)))
    a.set_data(np.ones((2, 2)))
    assert a.data.dtype == np.float32


def test_dynamic_array_needs_length_cell():
    length = scalar_cell("n", E.INT32)
    out = Array("out", (Dyn(length),), E.FLOAT32, max_elems=16)
    assert out.is_dynamic
    assert out.static_elems() == 16
    assert out.bytes() == 64


def test_dyn_requires_int32_0d():
    with pytest.raises(PatternError):
        Dyn(Array("x", (4,), E.INT32))
    with pytest.raises(PatternError):
        Dyn(Array("x", (), E.FLOAT32))


def test_dynamic_without_bound_rejected_on_sizing():
    length = scalar_cell("n", E.INT32)
    out = Array("out", (Dyn(length),), E.FLOAT32)
    with pytest.raises(PatternError):
        out.static_elems()


def test_dynamic_data_within_bound():
    length = scalar_cell("n", E.INT32)
    out = Array("out", (Dyn(length),), E.FLOAT32, max_elems=4)
    with pytest.raises(PatternError):
        out.set_data(np.zeros(9))
    out.set_data(np.zeros(3))
    assert out.data.size == 3
