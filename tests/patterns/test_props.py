"""Property-based tests (hypothesis) for the pattern layer.

These pin down semantic invariants: executor-vs-numpy agreement for the
four patterns on arbitrary inputs, fold/combine associativity handling,
and affine-analysis soundness (the affine form must evaluate to the same
address the expression does).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import (Array, Dyn, Fold, Program, run_program,
                            scalar_cell)
from repro.patterns import expr as E
from repro.patterns.analysis import as_affine
from repro.patterns.executor import Env, eval_expr

floats = st.floats(min_value=-100, max_value=100, allow_nan=False,
                   width=32)
small_ints = st.integers(min_value=-8, max_value=8)


@settings(max_examples=30, deadline=None)
@given(st.lists(floats, min_size=1, max_size=24))
def test_map_matches_numpy(values):
    data = np.array(values, dtype=np.float32)
    p = Program("prop")
    a = p.input("a", (len(values),), data=data)
    o = p.output("o", (len(values),))
    p.map("f", o, len(values), lambda i: a[i] * 2.0 + 1.0)
    env = run_program(p)
    np.testing.assert_allclose(env.buffers["o"], data * 2 + 1, rtol=1e-5)


@settings(max_examples=30, deadline=None)
@given(st.lists(floats, min_size=1, max_size=24))
def test_fold_sum_matches_numpy(values):
    data = np.array(values, dtype=np.float32)
    p = Program("prop")
    a = p.input("a", (len(values),), data=data)
    s = p.output("s")
    p.fold("sum", s, len(values), 0.0, lambda i: a[i], lambda x, y: x + y)
    env = run_program(p)
    # sequential left fold over float32: compare against the same order
    expect = np.float32(0.0)
    for v in data:
        expect = np.float32(expect + v)
    assert abs(env.scalar(s) - expect) <= 1e-3 * max(1.0, abs(expect))


@settings(max_examples=30, deadline=None)
@given(st.lists(floats, min_size=1, max_size=24))
def test_fold_max_matches_numpy(values):
    data = np.array(values, dtype=np.float32)
    p = Program("prop")
    a = p.input("a", (len(values),), data=data)
    s = p.output("s")
    p.fold("mx", s, len(values), -1e30, lambda i: a[i],
           lambda x, y: E.maximum(x, y))
    env = run_program(p)
    assert env.scalar(s) == np.float32(data.max())


@settings(max_examples=30, deadline=None)
@given(st.lists(floats, min_size=1, max_size=20))
def test_filter_preserves_order_and_count(values):
    data = np.array(values, dtype=np.float32)
    n_elems = len(values)
    p = Program("prop")
    a = p.input("a", (n_elems,), data=data)
    n = p.output("n", (), E.INT32)
    kept = p.output("kept", (Dyn(n),), max_elems=n_elems)
    p.filter("pos", kept, n, n_elems,
             lambda i: a[i] > 0.0, lambda i: a[i])
    env = run_program(p)
    expect = data[data > 0]
    assert env.scalar(n) == len(expect)
    np.testing.assert_allclose(env.buffers["kept"][:len(expect)], expect)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                max_size=32))
def test_histogram_matches_bincount(keys):
    data = np.array(keys, dtype=np.int32)
    p = Program("prop")
    v = p.input("v", (len(keys),), E.INT32, data=data)
    h = p.output("h", (8,), E.INT32)
    p.hash_reduce("hist", h, len(keys), 8, key=lambda i: v[i],
                  value=lambda i: 1, r=lambda x, y: x + y, init=0)
    env = run_program(p)
    np.testing.assert_array_equal(env.buffers["h"],
                                  np.bincount(data, minlength=8))


@settings(max_examples=50, deadline=None)
@given(small_ints, small_ints, small_ints,
       st.integers(min_value=0, max_value=5),
       st.integers(min_value=0, max_value=5))
def test_affine_form_evaluates_like_expression(c0, ci, cj, iv, jv):
    i, j = E.Idx("i"), E.Idx("j")
    node = i * ci + j * cj + c0
    form = as_affine(node)
    assert form is not None
    dummy = Program("prop")
    env = Env(dummy)
    got = eval_expr(node, env, {i: iv, j: jv})
    assert form.const + form.stride_of(i) * iv + form.stride_of(j) * jv == got


@settings(max_examples=30, deadline=None)
@given(st.lists(floats, min_size=2, max_size=16), st.data())
def test_gather_matches_fancy_indexing(values, data_strategy):
    data = np.array(values, dtype=np.float32)
    n_elems = len(values)
    perm = data_strategy.draw(
        st.lists(st.integers(min_value=0, max_value=n_elems - 1),
                 min_size=n_elems, max_size=n_elems))
    p = Program("prop")
    idx = p.input("idx", (n_elems,), E.INT32,
                  data=np.array(perm, dtype=np.int32))
    src = p.input("src", (n_elems,), data=data)
    o = p.output("o", (n_elems,))
    p.map("g", o, n_elems, lambda i: src[idx[i]])
    env = run_program(p)
    np.testing.assert_allclose(env.buffers["o"], data[perm])


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=1000))
def test_gemm_matches_numpy(m, k, n, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k)).astype(np.float32)
    B = rng.standard_normal((k, n)).astype(np.float32)
    p = Program("prop")
    a = p.input("a", (m, k), data=A)
    b = p.input("b", (k, n), data=B)
    c = p.output("c", (m, n))
    p.map("mm", c, (m, n),
          lambda i, j: Fold(k, 0.0, lambda kk: a[i, kk] * b[kk, j],
                            lambda x, y: x + y))
    env = run_program(p)
    np.testing.assert_allclose(env.buffers["c"], A @ B, rtol=1e-4,
                               atol=1e-5)
