"""Unit tests for pattern construction and tracing."""

import pytest

from repro.errors import PatternError, TraceError
from repro.patterns import (Array, Dyn, Filter, FlatMap, Fold, HashReduce,
                            Map, Program, ScatterMap, scalar_cell, select)
from repro.patterns import expr as E


def test_map_trace_scalar_body():
    a = Array("a", (8,))
    m = Map(8, lambda i: a[i] * 2.0)
    assert m.ndim == 1
    assert m.inner is None
    assert m.out_width == 1
    assert m.out_dtypes == (E.FLOAT32,)


def test_map_multi_output():
    a = Array("a", (8,))
    m = Map(8, lambda i: (a[i] + 1.0, a[i] - 1.0))
    assert m.out_width == 2


def test_map_nested_fold():
    a = Array("a", (4, 6))
    m = Map(4, lambda i: Fold(6, 0.0, lambda j: a[i, j],
                              lambda x, y: x + y))
    assert m.inner is not None
    assert m.inner.width == 1


def test_nested_fold_must_be_sole_output():
    a = Array("a", (4, 6))
    with pytest.raises(TraceError):
        Map(4, lambda i: (Fold(6, 0.0, lambda j: a[i, j],
                               lambda x, y: x + y), a[i, 0]))


def test_map_body_must_be_expr():
    with pytest.raises(TraceError):
        Map(4, lambda i: 42 if False else "oops")


def test_fold_multi_accumulator():
    a = Array("a", (8,))
    f = Fold(8, (float("inf"), 0),
             lambda i: (a[i], E.to_int(i)),
             lambda x, y: (select(y[0] < x[0], y[0], x[0]),
                           select(y[0] < x[0], y[1], x[1])))
    assert f.width == 2
    assert len(f.combine) == 2


def test_fold_width_mismatch_rejected():
    a = Array("a", (8,))
    with pytest.raises(TraceError):
        Fold(8, (0.0, 0.0), lambda i: a[i], lambda x, y: x + y)


def test_fold_combine_width_mismatch_rejected():
    a = Array("a", (8,))
    with pytest.raises(TraceError):
        Fold(8, (0.0, 0.0),
             lambda i: (a[i], a[i]),
             lambda x, y: x[0] + y[0])


def test_flatmap_filter_form():
    a = Array("a", (8,))
    fm = Filter(8, lambda i: a[i] > 0.0, lambda i: a[i])
    assert isinstance(fm, FlatMap)
    assert len(fm.emits) == 1
    assert fm.out_dtype == E.FLOAT32


def test_flatmap_multiple_emissions():
    a = Array("a", (8,))
    fm = FlatMap(8, lambda i: [(a[i] > 0.0, a[i]),
                               (a[i] > 1.0, a[i] * 2.0)])
    assert len(fm.emits) == 2


def test_flatmap_mixed_dtypes_rejected():
    a = Array("a", (8,))
    with pytest.raises(TraceError):
        FlatMap(8, lambda i: [(a[i] > 0.0, a[i]),
                              (a[i] > 1.0, E.to_int(a[i]))])


def test_flatmap_empty_emissions_rejected():
    with pytest.raises(TraceError):
        FlatMap(8, lambda i: [])


def test_hash_reduce_dense():
    vals = Array("v", (16,), E.INT32)
    hr = HashReduce(16, key=lambda i: vals[i] % 4,
                    value=lambda i: 1,
                    r=lambda x, y: x + y, bins=4, init=0)
    assert hr.dense
    assert hr.bins == 4


def test_hash_reduce_key_must_be_int():
    vals = Array("v", (16,))
    with pytest.raises(TraceError):
        HashReduce(16, key=lambda i: vals[i],
                   value=lambda i: 1,
                   r=lambda x, y: x + y, bins=4)


def test_scatter_map_trace():
    idx = Array("idx", (8,), E.INT32)
    sm = ScatterMap(8, index=lambda i: idx[i], value=lambda i: 1)
    assert isinstance(sm.index, E.Load)


def test_scatter_index_must_be_int():
    vals = Array("v", (8,))
    with pytest.raises(TraceError):
        ScatterMap(8, index=lambda i: vals[i], value=lambda i: 1)


def test_dynamic_domain_dim():
    length = scalar_cell("n", E.INT32)
    data = Array("d", (Dyn(length),), max_elems=64)
    m = Map(Dyn(length), lambda i: data[i] + 1.0)
    assert not m.dims[0].static


def test_range_domain_from_callable():
    ptr = Array("ptr", (9,), E.INT32)
    f = Fold((8, lambda i: (ptr[i], ptr[i + 1])), 0.0,
             lambda i, j: E.to_float(j),
             lambda x, y: x + y)
    assert f.ndim == 2
    assert not f.dims[1].static


def test_step_validation_in_program():
    p = Program("t")
    a = p.input("a", (4,))
    wrong_rank = p.output("o", (4, 4))
    with pytest.raises(PatternError):
        p.map("bad", wrong_rank, 4, lambda i: a[i])


def test_program_duplicate_names_rejected():
    p = Program("t")
    p.input("a", (4,))
    with pytest.raises(PatternError):
        p.input("a", (4,))
    a2 = p.arrays["a"]
    o = p.output("o", (4,))
    p.map("s", o, 4, lambda i: a2[i])
    with pytest.raises(PatternError):
        p.map("s", o, 4, lambda i: a2[i])


def test_set_par_validation():
    p = Program("t")
    a = p.input("a", (4, 4))
    o = p.output("o", (4, 4))
    step = p.map("s", o, (4, 4), lambda i, j: a[i, j])
    step.set_par(2, 2, inner=4)
    assert step.par == (2, 2)
    assert step.inner_par == 4
    with pytest.raises(PatternError):
        step.set_par(2)
