"""Service-tier behaviour, driven entirely in-process.

Every test routes through :func:`repro.serve.dispatch` — the same
router the socket server uses — with either the real
:func:`execute_job` worker or an injected runner, so no test opens a
socket.  Covers the three contractual behaviours the subsystem exists
for: endpoint semantics, backpressure (queue full -> 429 + Retry-After,
then drain), and coalescing (N identical concurrent requests -> exactly
one compile + one simulate).
"""

import asyncio
import copy
import json
import threading
import time

from repro.serve import (ReproService, ServeConfig, dispatch,
                         execute_job)

SPEC = {"version": 1, "seed": 7, "n": 64,
        "steps": [{"kind": "map", "reads": 1, "depth": 1,
                   "expr_seed": 2, "data_seed": 3, "par": 4}]}


def _spec(seed: int) -> dict:
    out = copy.deepcopy(SPEC)
    out["seed"] = seed          # seed is spec content -> distinct key
    return out


def _body(obj) -> bytes:
    return json.dumps(obj).encode("utf-8")


def _config(tmp_path, **kw) -> ServeConfig:
    kw.setdefault("jobs", 1)
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    kw.setdefault("data_dir", str(tmp_path / "data"))
    return ServeConfig(**kw)


async def _until(pred, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not pred():
        if time.monotonic() > deadline:
            raise AssertionError(f"{what} never held")
        await asyncio.sleep(0.005)


# ---------------------------------------------------------------------------
# Endpoint semantics (real worker, thread runner)
# ---------------------------------------------------------------------------


def test_endpoints_end_to_end(tmp_path):
    async def scenario():
        service = ReproService(_config(tmp_path), runner=execute_job)

        health = await dispatch(service, "GET", "/healthz")
        assert health.status == 200 and health.json["ok"]
        assert (await dispatch(service, "POST", "/healthz")).status \
            == 405

        # fresh simulate: compiles (cache miss), runs, stores artifact
        first = await dispatch(service, "POST", "/simulate",
                               _body({"spec": SPEC}))
        assert first.status == 200, first.json
        result = first.json
        assert result["compile"]["outcome"] == "miss"
        assert result["compile"]["compiled"] is True
        assert result["stats"]["cycles"] > 0
        assert "served" not in result
        content_hash = result["content_hash"]

        # identical resubmission is replayed from the result cache
        again = await dispatch(service, "POST", "/simulate",
                               _body({"spec": SPEC}))
        assert again.status == 200
        assert again.json["served"] == "result-cache"

        # compile mode is a distinct key; hits the warm compile cache
        compiled = await dispatch(service, "POST", "/compile",
                                  _body({"spec": SPEC}))
        assert compiled.status == 200
        assert compiled.json["compile"]["outcome"] == "hit"
        assert compiled.json["artifact"]["leaves"] > 0
        assert "simulate" not in compiled.json

        # the stored artifact is downloadable and simulatable by hash
        download = await dispatch(service, "GET",
                                  f"/artifacts/{content_hash}")
        assert download.status == 200
        assert json.loads(download.body)
        by_hash = await dispatch(
            service, "POST", "/simulate",
            _body({"artifact_hash": content_hash}))
        assert by_hash.status == 200
        assert by_hash.json["compile"]["outcome"] == "stored"
        assert by_hash.json["stats"]["cycles"] \
            == result["stats"]["cycles"]

        # tracing yields attribution plus a downloadable trace
        traced = await dispatch(
            service, "POST", "/simulate",
            _body({"spec": SPEC, "params": {"trace": True}}))
        assert traced.status == 200
        assert traced.json["attribution"]
        trace = await dispatch(service, "GET",
                               traced.json["trace_url"])
        assert trace.status == 200 and json.loads(trace.body)

        # error paths
        bad_json = await dispatch(service, "POST", "/simulate",
                                  b"{nope")
        assert bad_json.status == 400
        bad_spec = await dispatch(
            service, "POST", "/simulate",
            _body({"spec": {"version": 1, "n": 16, "steps": []}}))
        assert bad_spec.status == 400
        assert bad_spec.json["detail"][0]["path"] == "spec.steps"
        assert (await dispatch(service, "GET",
                               "/artifacts/zz")).status == 400
        assert (await dispatch(service, "GET",
                               f"/artifacts/{'0' * 64}")).status == 404
        assert (await dispatch(service, "GET",
                               "/traces/../etc/passwd")).status == 400
        assert (await dispatch(service, "GET", "/nope")).status == 404

        # /statsz saw all of it (bad JSON dies in the router and never
        # reaches the service, so only the bad spec counts as invalid)
        stats = (await dispatch(service, "GET", "/statsz")).json
        assert stats["requests"]["completed"] == 4
        assert stats["requests"]["invalid"] == 1
        assert stats["requests"]["result_cache_hits"] == 1
        assert stats["work"]["compiles"] == 1
        assert stats["work"]["sims"] == 3
        assert stats["compile_cache"]["misses"] == 1
        # spec + trace-variant lookups hit the warm compile cache
        assert stats["compile_cache"]["hits"] == 2
        assert stats["latency"]["count"] \
            == stats["requests"]["received"]
        await service.drain()

    asyncio.run(scenario())


def test_compiler_rejection_maps_to_422_and_is_not_cached(tmp_path):
    async def scenario():
        def runner(payload):
            from repro.errors import ReproError
            from repro.serve.workers import _error
            return _error(422, "compile", ReproError("nope"))

        service = ReproService(_config(tmp_path), runner=runner)
        response = await dispatch(service, "POST", "/simulate",
                                  _body({"spec": SPEC}))
        assert response.status == 422
        assert response.json["error"]["stage"] == "compile"
        # failures are never remembered: the same key runs again
        again = await dispatch(service, "POST", "/simulate",
                               _body({"spec": SPEC}))
        assert again.status == 422 and "served" not in again.json
        assert service.stats.failed == 2
        await service.drain()

    asyncio.run(scenario())


def test_crashing_runner_becomes_500_and_frees_the_slot(tmp_path):
    async def scenario():
        calls = []

        def runner(payload):
            calls.append(payload["job_id"])
            if len(calls) == 1:
                raise ValueError("worker bug")
            return {"ok": True, "status": 200}

        service = ReproService(_config(tmp_path), runner=runner)
        crash = await dispatch(service, "POST", "/simulate",
                               _body({"spec": SPEC}))
        assert crash.status == 500
        assert "ValueError" in crash.json["error"]
        # the slot came back: the next job runs fine
        ok = await dispatch(service, "POST", "/simulate",
                            _body({"spec": _spec(8)}))
        assert ok.status == 200
        await service.drain()

    asyncio.run(scenario())


def test_job_timeout_returns_504(tmp_path):
    async def scenario():
        def runner(payload):
            time.sleep(0.4)
            return {"ok": True, "status": 200}

        service = ReproService(_config(tmp_path, timeout_s=0.05),
                               runner=runner)
        response = await dispatch(service, "POST", "/simulate",
                                  _body({"spec": SPEC}))
        assert response.status == 504
        assert service.stats.timeouts == 1
        await service.drain()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


def test_queue_full_rejects_with_429_then_drains(tmp_path):
    async def scenario():
        gate = threading.Event()

        def runner(payload):
            gate.wait(timeout=30)
            return {"ok": True, "status": 200,
                    "job": payload["job_id"]}

        service = ReproService(
            _config(tmp_path, jobs=1, queue_depth=2), runner=runner)

        # let the first job reach the worker before bursting: a job
        # counts against queue depth until the loop hands it a slot
        tasks = [asyncio.ensure_future(
            dispatch(service, "POST", "/simulate",
                     _body({"spec": _spec(1)})))]
        await _until(lambda: service._running == 1,
                     what="first job to start")
        tasks += [asyncio.ensure_future(
            dispatch(service, "POST", "/simulate",
                     _body({"spec": _spec(seed)})))
            for seed in (2, 3)]
        await _until(lambda: service._queued == 2,
                     what="queue to fill")

        rejected = await dispatch(service, "POST", "/simulate",
                                  _body({"spec": _spec(4)}))
        assert rejected.status == 429
        assert rejected.json["error"] == "job queue is full"
        assert rejected.json["retry_after_s"] >= 1
        assert int(rejected.headers["Retry-After"]) >= 1
        assert service.stats.rejected == 1

        health = (await dispatch(service, "GET", "/healthz")).json
        assert (health["queued"], health["running"]) == (2, 1)

        # releasing the worker drains the queue; admission reopens
        gate.set()
        responses = await asyncio.gather(*tasks)
        assert [r.status for r in responses] == [200, 200, 200]
        await _until(lambda: service._queued == 0
                     and service._running == 0, what="drain")
        accepted = await dispatch(service, "POST", "/simulate",
                                  _body({"spec": _spec(4)}))
        assert accepted.status == 200
        await service.drain()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Coalescing
# ---------------------------------------------------------------------------


def test_identical_concurrent_requests_coalesce_to_one_execution(
        tmp_path):
    """N identical concurrent requests -> exactly 1 compile + 1 sim."""
    async def scenario():
        gate = threading.Event()
        calls = []

        def runner(payload):
            gate.wait(timeout=30)
            calls.append(payload["job_id"])
            return execute_job(payload)

        service = ReproService(
            _config(tmp_path, jobs=2, queue_depth=8), runner=runner)

        n = 5
        tasks = [asyncio.ensure_future(
            dispatch(service, "POST", "/simulate",
                     _body({"spec": SPEC}))) for _ in range(n)]
        # all duplicates attach to the first request's in-flight job
        await _until(lambda: service.stats.coalesced == n - 1,
                     what="duplicates to coalesce")
        assert len(service.table) == 1
        gate.set()

        responses = await asyncio.gather(*tasks)
        assert [r.status for r in responses] == [200] * n
        served = sorted(r.json.get("served", "fresh")
                        for r in responses)
        assert served == ["coalesced"] * (n - 1) + ["fresh"]
        cycles = {r.json["stats"]["cycles"] for r in responses}
        assert len(cycles) == 1

        assert len(calls) == 1, "duplicate requests reached the worker"
        assert service.stats.compiles == 1
        assert service.stats.sims == 1
        assert service.stats.coalesced == n - 1
        await service.drain()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------


def test_drain_finishes_inflight_work_and_rejects_new(tmp_path):
    async def scenario():
        gate = threading.Event()

        def runner(payload):
            gate.wait(timeout=30)
            return {"ok": True, "status": 200}

        service = ReproService(_config(tmp_path), runner=runner)
        inflight = asyncio.ensure_future(
            dispatch(service, "POST", "/simulate",
                     _body({"spec": SPEC})))
        await _until(lambda: service._running == 1,
                     what="job to start")

        drainer = asyncio.ensure_future(service.drain())
        await asyncio.sleep(0.01)
        refused = await dispatch(service, "POST", "/simulate",
                                 _body({"spec": _spec(9)}))
        assert refused.status == 503
        assert (await dispatch(service, "GET",
                               "/healthz")).status == 503

        gate.set()
        assert (await inflight).status == 200   # in-flight completed
        await drainer

    asyncio.run(scenario())
