"""Serve-tier multi-tenancy: ``POST /multi`` and co-scheduling.

Driven in-process through :func:`dispatch` like the rest of the serve
suite.  ``/multi`` is deterministic (packing and co-simulation are pure
functions of apps+scale), so it participates in the result cache like
any other job; co-scheduled ``/simulate`` jobs instead bypass the cache
— their answer depends on the batch they land in — and are batched
service-side onto one shared fabric.
"""

import asyncio
import json

from repro.serve import (ReproService, ServeConfig, dispatch,
                         execute_job)
from repro.serve.protocol import (MAX_TENANTS, RequestError,
                                  parse_request)

PAIR = ["gemm", "tpchq6"]


def _body(obj) -> bytes:
    return json.dumps(obj).encode("utf-8")


def _config(tmp_path, **kw) -> ServeConfig:
    kw.setdefault("jobs", 2)
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    kw.setdefault("data_dir", str(tmp_path / "data"))
    return ServeConfig(**kw)


# ---------------------------------------------------------------------------
# Request parsing
# ---------------------------------------------------------------------------


def _parse_error(body):
    try:
        parse_request(body, "multi")
    except RequestError as err:
        return err
    raise AssertionError("expected RequestError")


def test_parse_multi_happy_path():
    request = parse_request({"apps": PAIR}, "multi")
    assert request.mode == "multi" and request.kind == "multi"
    assert request.apps == tuple(PAIR)
    assert request.scale == "tiny"
    assert request.ident == "multi:gemm+tpchq6:tiny"
    assert request.describe() == "multi:gemm+tpchq6:tiny"
    assert request.payload(None, None)["apps"] == PAIR


def test_parse_multi_rejections():
    assert _parse_error({}).status == 400
    assert _parse_error({"apps": []}).status == 400
    assert _parse_error({"apps": "gemm"}).status == 400
    assert _parse_error({"apps": ["nosuchapp"]}).status == 400
    assert _parse_error({"apps": PAIR, "app": "gemm"}).status == 400
    assert _parse_error(
        {"apps": ["gemm"] * (MAX_TENANTS + 1)}).status == 400
    assert _parse_error({"apps": PAIR, "scale": "galactic"}) \
        .status == 400


def test_parse_coschedule_param():
    request = parse_request(
        {"app": "gemm", "scale": "tiny",
         "params": {"coschedule": True}}, "simulate")
    assert request.params.coschedule is True
    err = _parse_error({"apps": PAIR, "params": {"coschedule": 7}})
    assert err.status == 400


# ---------------------------------------------------------------------------
# /multi endpoint
# ---------------------------------------------------------------------------


def test_multi_endpoint_end_to_end(tmp_path):
    async def scenario():
        service = ReproService(_config(tmp_path), runner=execute_job)

        first = await dispatch(service, "POST", "/multi",
                               _body({"apps": PAIR, "scale": "tiny"}))
        assert first.status == 200, first.json
        result = first.json
        assert result["apps"] == PAIR
        assert result["fabric_cycles"] > 0
        assert len(result["tenants"]) == 2
        for row in result["tenants"]:
            assert row["validated"] is True
            assert row["region"] is not None
            assert row["stats"]["cycles"] > 0
        assert result["pack_report"]["feasible"] is True
        assert result["channel_util"]

        # deterministic -> replayed from the result cache
        again = await dispatch(service, "POST", "/multi",
                               _body({"apps": PAIR, "scale": "tiny"}))
        assert again.status == 200
        assert again.json["served"] == "result-cache"

        stats = (await dispatch(service, "GET", "/statsz")).json
        assert stats["work"]["multis"] == 1
        assert stats["requests"]["result_cache_hits"] == 1

        bad = await dispatch(service, "POST", "/multi",
                             _body({"apps": ["nosuchapp"]}))
        assert bad.status == 400

        only_post = await dispatch(service, "GET", "/multi")
        assert only_post.status == 405
        await service.drain()

    asyncio.run(scenario())


def test_multi_infeasible_packing_is_422(tmp_path):
    async def scenario():
        # six kmeans tenants demand more PMUs than the chip has
        service = ReproService(_config(tmp_path), runner=execute_job)
        apps = ["kmeans"] * 6
        response = await dispatch(service, "POST", "/multi",
                                  _body({"apps": apps,
                                         "scale": "tiny"}))
        assert response.status == 422, response.json
        assert response.json["error"]["stage"] == "pack"
        await service.drain()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Co-scheduling
# ---------------------------------------------------------------------------


def test_coscheduled_jobs_batch_onto_one_fabric(tmp_path):
    async def scenario():
        service = ReproService(
            _config(tmp_path, coschedule_window_s=5.0,
                    coschedule_max=2),
            runner=execute_job)

        def post(app):
            return dispatch(service, "POST", "/simulate",
                            _body({"app": app, "scale": "tiny",
                                   "params": {"coschedule": True}}))

        responses = await asyncio.gather(post("gemm"), post("tpchq6"))
        payloads = [r.json for r in responses]
        for payload, app in zip(payloads, PAIR):
            assert payload["ok"], payload
            assert payload["served"] == "coscheduled"
            assert payload["app"] == app
            assert payload["coscheduled"]["apps"] == PAIR
            assert payload["coscheduled"]["region"] is not None
            assert payload["stats"]["cycles"] > 0
        # both riders share one fabric run
        assert payloads[0]["coscheduled"]["fabric_cycles"] \
            == payloads[1]["coscheduled"]["fabric_cycles"]

        stats = (await dispatch(service, "GET", "/statsz")).json
        assert stats["work"]["multis"] == 1
        assert stats["work"]["coschedule_batches"] == 1
        assert stats["work"]["coschedule_jobs"] == 2
        await service.drain()

    asyncio.run(scenario())


def test_lone_coscheduled_job_flushes_on_window(tmp_path):
    async def scenario():
        service = ReproService(
            _config(tmp_path, coschedule_window_s=0.01,
                    coschedule_max=4),
            runner=execute_job)
        response = await dispatch(
            service, "POST", "/simulate",
            _body({"app": "gemm", "scale": "tiny",
                   "params": {"coschedule": True}}))
        payload = response.json
        assert payload["ok"], payload
        assert payload["served"] == "coscheduled"
        assert payload["coscheduled"]["apps"] == ["gemm"]
        assert payload["stats"]["cycles"] > 0
        await service.drain()

    asyncio.run(scenario())


def test_statsz_reports_coschedule_config(tmp_path):
    async def scenario():
        service = ReproService(
            _config(tmp_path, coschedule_window_s=0.25,
                    coschedule_max=3))
        stats = (await dispatch(service, "GET", "/statsz")).json
        config = stats["config"]
        assert config["coschedule_window_s"] == 0.25
        assert config["coschedule_max"] == 3
        await service.drain()

    asyncio.run(scenario())
