"""Protocol units: request parsing, param clamping, job keys, the
coalescing/result tables, and the latency histogram."""

import asyncio

import pytest

from repro.serve.jobs import Job, JobTable
from repro.serve.metrics import LatencyHistogram, ServiceStats
from repro.serve.protocol import (MAX_CYCLES_CAP, WATCHDOG_CAP,
                                  JobParams, RequestError, parse_request,
                                  spec_digest)

SPEC = {"version": 1, "seed": 1, "n": 48,
        "steps": [{"kind": "map", "reads": 1, "depth": 1,
                   "expr_seed": 2, "data_seed": 3, "par": 4}]}


# ---------------------------------------------------------------------------
# parse_request
# ---------------------------------------------------------------------------


def test_spec_request_parses_and_keys_on_content():
    req = parse_request({"spec": SPEC}, "simulate")
    assert req.kind == "spec"
    assert req.ident == spec_digest(SPEC)
    # key covers mode and params, not just identity
    other_mode = parse_request({"spec": SPEC}, "compile")
    other_params = parse_request(
        {"spec": SPEC, "params": {"scheduler": "dense"}}, "simulate")
    assert len({req.key, other_mode.key, other_params.key}) == 3
    # same content, freshly-built dict -> same key
    import copy
    assert parse_request({"spec": copy.deepcopy(SPEC)},
                         "simulate").key == req.key


def test_app_request_validates_registry_and_scale():
    req = parse_request({"app": "innerproduct", "scale": "tiny"},
                        "simulate")
    assert (req.kind, req.app, req.scale) == ("app", "innerproduct",
                                              "tiny")
    with pytest.raises(RequestError) as excinfo:
        parse_request({"app": "nope"}, "simulate")
    assert excinfo.value.status == 400
    assert excinfo.value.errors[0]["path"] == "app"
    with pytest.raises(RequestError, match="scale"):
        parse_request({"app": "innerproduct", "scale": "huge"},
                      "simulate")


def test_artifact_request_requires_hash_and_simulate_mode():
    digest = "ab" * 32
    req = parse_request({"artifact_hash": digest}, "simulate")
    assert req.kind == "artifact" and req.ident == digest
    with pytest.raises(RequestError, match="64-char"):
        parse_request({"artifact_hash": "xyz"}, "simulate")
    with pytest.raises(RequestError, match="already"):
        parse_request({"artifact_hash": digest}, "compile")


def test_exactly_one_source_is_required():
    for body in ({}, {"spec": SPEC, "app": "innerproduct"}):
        with pytest.raises(RequestError, match="exactly one"):
            parse_request(body, "simulate")


def test_unknown_fields_and_non_object_bodies_are_400():
    with pytest.raises(RequestError) as excinfo:
        parse_request({"spec": SPEC, "bogus": 1}, "simulate")
    assert excinfo.value.errors == [{"path": "bogus",
                                     "message": "unknown field"}]
    with pytest.raises(RequestError, match="JSON object"):
        parse_request([1, 2], "simulate")


def test_spec_schema_errors_carry_prefixed_paths():
    bad = {"spec": {"version": 1, "n": 16,
                    "steps": [{"kind": "map", "reads": 1, "depth": 1,
                               "expr_seed": 1, "data_seed": 2,
                               "par": 0}]}}
    with pytest.raises(RequestError) as excinfo:
        parse_request(bad, "simulate")
    body = excinfo.value.body()
    assert body["error"] == "invalid program spec"
    assert body["detail"][0]["path"] == "spec.steps[0].par"


def test_params_validate_clamp_and_default():
    req = parse_request(
        {"spec": SPEC, "params": {"max_cycles": 10 ** 12,
                                  "watchdog": 10 ** 9,
                                  "scheduler": "dense"}}, "simulate")
    assert req.params.max_cycles == MAX_CYCLES_CAP
    assert req.params.watchdog == WATCHDOG_CAP
    assert req.params.scheduler == "dense"
    assert parse_request({"spec": SPEC}, "simulate").params == \
        JobParams()
    for bad in ({"scheduler": "fifo"}, {"max_cycles": 0},
                {"max_cycles": True}, {"trace": 1}, {"mystery": 1}, []):
        with pytest.raises(RequestError) as excinfo:
            parse_request({"spec": SPEC, "params": bad}, "simulate")
        assert excinfo.value.status == 400


# ---------------------------------------------------------------------------
# Job table
# ---------------------------------------------------------------------------


def test_job_table_coalesces_and_retires():
    async def scenario():
        table = JobTable(result_cache_size=2)
        job = Job("k1")
        table.register(job)
        assert table.get_inflight("k1") is job
        waiter = asyncio.ensure_future(job.wait())
        job.finish((200, {"answer": 42}))
        assert await waiter == (200, {"answer": 42})
        table.retire(job)
        assert table.get_inflight("k1") is None

    asyncio.run(scenario())


def test_result_lru_caches_successes_only_and_bounds_size():
    table = JobTable(result_cache_size=2)
    table.remember("bad", (504, {"error": "timeout"}))
    assert table.lookup_result("bad") is None
    table.remember("a", (200, {"v": 1}))
    table.remember("b", (200, {"v": 2}))
    table.lookup_result("a")                    # refresh a
    table.remember("c", (200, {"v": 3}))        # evicts b, not a
    assert table.lookup_result("b") is None
    assert table.lookup_result("a") == (200, {"v": 1})
    assert table.lookup_result("c") == (200, {"v": 3})


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def test_latency_histogram_percentiles_are_close():
    hist = LatencyHistogram()
    samples = [0.2 * k for k in range(1, 1001)]   # 0.2 .. 200 ms
    for ms in samples:
        hist.record(ms)
    for p in (50, 90, 99):
        exact = samples[int(len(samples) * p / 100) - 1]
        approx = hist.percentile(p)
        assert approx == pytest.approx(exact, rel=0.6), (p, approx)
    assert hist.percentile(100) == pytest.approx(200.0)
    snap = hist.to_dict()
    assert snap["count"] == 1000
    assert snap["max_ms"] == 200.0
    assert sum(snap["buckets"].values()) == 1000


def test_service_stats_nesting_and_cache_fold():
    stats = ServiceStats()
    stats.record_cache("hit")
    stats.record_cache("miss", corrupt=1)
    stats.record_cache("off")
    snap = stats.to_dict()
    assert snap["compile_cache"] == {"hits": 1, "misses": 1, "off": 1,
                                     "corrupt": 1}
    assert set(snap) == {"requests", "work", "compile_cache", "faults",
                         "latency"}
