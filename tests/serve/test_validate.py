"""The shared spec validator: every generator spec passes; malformed
documents fail with field-level paths instead of deep compiler errors."""

import pytest

from repro.errors import PatternError
from repro.fuzz import (InvalidSpecError, build_program, check_spec,
                        gen_spec, validate_spec)
from repro.fuzz.shrink import _candidates

GOOD = {"version": 1, "seed": 1, "n": 48,
        "steps": [{"kind": "map", "reads": 1, "depth": 1,
                   "expr_seed": 2, "data_seed": 3, "par": 4}]}


def test_generated_specs_all_validate():
    for seed in range(40):
        spec = gen_spec(seed)
        assert validate_spec(spec) == [], f"seed {seed}"


def test_shrink_candidates_stay_valid():
    """Every shrinker mutation of a valid spec remains schema-valid."""
    for seed in (0, 7, 23):
        spec = gen_spec(seed)
        for cand in _candidates(spec):
            assert validate_spec(cand) == [], cand


def test_valid_spec_passes_and_builds():
    check_spec(GOOD)
    program, outputs = build_program(GOOD)
    assert outputs == ["out0"]


@pytest.mark.parametrize("mutate, path_fragment", [
    (lambda s: s.update(version=9), "version"),
    (lambda s: s.update(n=0), "n"),
    (lambda s: s.update(n="big"), "n"),
    (lambda s: s.pop("steps"), "steps"),
    (lambda s: s.update(steps=[]), "steps"),
    (lambda s: s.update(surprise=1), "surprise"),
    (lambda s: s["steps"][0].update(kind="warp"), "steps[0].kind"),
    (lambda s: s["steps"][0].update(par=0), "steps[0].par"),
    (lambda s: s["steps"][0].update(par=True), "steps[0].par"),
    (lambda s: s["steps"][0].pop("reads"), "steps[0].reads"),
    (lambda s: s["steps"][0].update(typo=1), "steps[0].typo"),
])
def test_field_level_error_paths(mutate, path_fragment):
    import copy
    spec = copy.deepcopy(GOOD)
    mutate(spec)
    errors = validate_spec(spec)
    assert errors, "expected a validation failure"
    assert any(e.path == path_fragment for e in errors), \
        [str(e) for e in errors]


def test_error_collects_multiple_findings():
    spec = {"version": 2, "n": -1, "steps": "nope"}
    errors = validate_spec(spec)
    assert {e.path for e in errors} == {"version", "n", "steps"}


def test_invalid_spec_error_is_a_pattern_error():
    with pytest.raises(PatternError) as excinfo:
        check_spec({"version": 1, "n": 16, "steps": [{"kind": "x"}]})
    assert isinstance(excinfo.value, InvalidSpecError)
    payload = excinfo.value.to_json()
    assert payload[0]["path"] == "steps[0].kind"
    assert "message" in payload[0]


def test_scatter_bijection_is_enforced():
    spec = {"version": 1, "seed": 0, "n": 16, "steps": [
        {"kind": "scatter", "m": 32, "stride": 4, "offset": 0,
         "depth": 1, "expr_seed": 1, "data_seed": 2}]}
    errors = validate_spec(spec)
    assert any("coprime" in e.message for e in errors)
    spec["steps"][0]["stride"] = 5
    assert validate_spec(spec) == []


def test_build_program_rejects_before_the_compiler_sees_it():
    spec = {"version": 1, "seed": 0, "n": 16,
            "steps": [{"kind": "map", "reads": 1, "depth": 1,
                       "expr_seed": 1, "data_seed": 2, "par": -4}]}
    with pytest.raises(InvalidSpecError, match=r"steps\[0\].par"):
        build_program(spec)
