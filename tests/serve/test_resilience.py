"""Serve-tier fault tolerance: crashes, retries, circuit breaking.

The injected-runner tests pin the control flow (fail fast on a dead
worker, bounded retries, breaker state machine) without real process
pools; the final test kills a real pool worker with SIGKILL and
demands the job still completes — the end-to-end satellite.
"""

import asyncio
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.serve.http import dispatch
from repro.serve.metrics import CircuitBreaker
from repro.serve.service import ReproService, ServeConfig

APP_BODY = {"app": "innerproduct", "scale": "tiny"}


def _submit(service, mode="compile", body=None):
    return asyncio.run(service.submit(mode, body or dict(APP_BODY)))


# -- worker-crash recovery ----------------------------------------------------


def test_crash_then_success_is_retried_transparently():
    calls = {"n": 0}

    def flaky(payload):
        calls["n"] += 1
        if calls["n"] == 1:
            raise BrokenProcessPool("worker died mid-job")
        return {"ok": True, "status": 200, "mode": "compile"}

    service = ReproService(
        ServeConfig(max_retries=2, retry_base_s=0.001), runner=flaky)
    status, result = _submit(service)
    assert status == 200
    assert service.stats.worker_crashes == 1
    assert service.stats.retries == 1
    assert service.stats.completed == 1


def test_persistent_crasher_fails_fast_with_typed_503():
    """Satellite: a worker dying between dispatch and result read must
    NOT wait out the wall timeout — the future breaks immediately."""

    def dead(payload):
        raise BrokenProcessPool("boom")

    service = ReproService(
        ServeConfig(max_retries=2, retry_base_s=0.001,
                    timeout_s=300.0),
        runner=dead)
    started = time.perf_counter()
    status, result = _submit(service)
    elapsed = time.perf_counter() - started
    assert status == 503
    assert result["error"]["stage"] == "worker"
    assert result["error"]["type"] == "WorkerCrashed"
    assert "job" in result
    # fail-fast: nowhere near the 300 s timeout, and no 504
    assert elapsed < 30
    assert service.stats.timeouts == 0
    assert service.stats.worker_crashes == 3   # initial + 2 retries
    assert service.stats.retries == 2


def test_crash_outcome_is_not_cached():
    calls = {"n": 0}

    def once(payload):
        calls["n"] += 1
        if calls["n"] <= 2:
            raise BrokenProcessPool("boom")
        return {"ok": True, "status": 200, "mode": "compile"}

    service = ReproService(
        ServeConfig(max_retries=0, retry_base_s=0.001), runner=once)
    status, _ = _submit(service)
    assert status == 503
    status, _ = _submit(service)
    assert status == 503
    status, result = _submit(service)    # worker healthy again
    assert status == 200
    assert result.get("served") != "result-cache"


# -- circuit breaker ----------------------------------------------------------


def test_breaker_state_machine():
    now = [0.0]
    breaker = CircuitBreaker(threshold=2, cooldown_s=1.0,
                             clock=lambda: now[0])
    assert breaker.allow() and breaker.state == "closed"
    breaker.record(False)
    assert breaker.state == "closed"      # 1 failure < threshold
    breaker.record(False)
    assert breaker.state == "open"
    assert breaker.opened_total == 1
    assert not breaker.allow()            # shedding
    assert breaker.shed == 1
    now[0] = 1.5
    assert breaker.allow()                # half-open probe admitted
    assert breaker.state == "half-open"
    assert not breaker.allow()            # but only one probe
    breaker.record(False)                 # probe failed -> reopen
    assert breaker.state == "open"
    assert breaker.opened_total == 2
    now[0] = 3.0
    assert breaker.allow()
    breaker.record(True)                  # probe succeeded -> close
    assert breaker.state == "closed"
    assert breaker.failures == 0
    assert breaker.allow()


def test_breaker_sheds_with_503_and_retry_after():
    def dead(payload):
        raise BrokenProcessPool("boom")

    service = ReproService(
        ServeConfig(max_retries=0, retry_base_s=0.001,
                    breaker_threshold=2, breaker_cooldown_s=60.0),
        runner=dead)
    for app in ("innerproduct", "gemm"):
        status, _ = _submit(service, body={"app": app,
                                           "scale": "tiny"})
        assert status == 503
    # breaker now open: the next request is shed WITHOUT running
    status, result = _submit(service, body={"app": "tpchq6",
                                            "scale": "tiny"})
    assert status == 503
    assert "circuit breaker open" in result["error"]
    assert result["retry_after_s"] > 0
    assert service.stats.breaker_shed == 1
    # the HTTP layer turns the hint into a Retry-After header
    response = asyncio.run(dispatch(
        service, "POST", "/compile",
        b'{"app": "outerproduct", "scale": "tiny"}'))
    assert response.status == 503
    assert "Retry-After" in response.headers


def test_breaker_is_per_endpoint():
    def dead(payload):
        raise BrokenProcessPool("boom")

    service = ReproService(
        ServeConfig(max_retries=0, retry_base_s=0.001,
                    breaker_threshold=1, breaker_cooldown_s=60.0),
        runner=dead)
    status, _ = _submit(service, mode="compile")
    assert status == 503
    assert service._breakers["compile"].state == "open"
    # /simulate and /multi are unaffected by the compile breaker
    assert service._breakers["simulate"].state == "closed"
    assert service._breakers["multi"].state == "closed"


def test_client_errors_do_not_trip_the_breaker():
    def rejecting(payload):
        return {"ok": False, "status": 422,
                "error": {"stage": "compile", "type": "MappingError",
                          "message": "does not fit"}}

    service = ReproService(
        ServeConfig(breaker_threshold=2), runner=rejecting)
    for app in ("innerproduct", "gemm", "tpchq6"):
        status, _ = _submit(service, body={"app": app,
                                           "scale": "tiny"})
        assert status == 422
    assert service._breakers["compile"].state == "closed"
    assert service.stats.breaker_shed == 0


def test_statsz_reports_fault_counters_and_breakers():
    service = ReproService(ServeConfig(chaos=True))
    snapshot = service.statsz()
    assert snapshot["faults"] == {"worker_crashes": 0, "retries": 0,
                                  "respawns": 0, "breaker_shed": 0}
    assert set(snapshot["breakers"]) == {"compile", "simulate",
                                         "multi"}
    assert snapshot["breakers"]["compile"]["state"] == "closed"
    assert snapshot["config"]["chaos"] is True
    assert snapshot["config"]["max_retries"] == 2


# -- chaos endpoint -----------------------------------------------------------


def test_chaos_kill_is_gated():
    service = ReproService(ServeConfig())       # chaos off
    response = asyncio.run(dispatch(service, "POST", "/chaos/kill",
                                    b""))
    assert response.status == 404
    with_runner = ReproService(ServeConfig(chaos=True),
                               runner=lambda p: {"ok": True})
    response = asyncio.run(dispatch(with_runner, "POST", "/chaos/kill",
                                    b""))
    assert response.status == 409               # no real pool to kill
    response = asyncio.run(dispatch(with_runner, "GET", "/chaos/kill",
                                    b""))
    assert response.status == 405


def test_real_worker_sigkill_is_survived(tmp_path):
    """End to end: SIGKILL a real pool worker, the job still lands."""

    async def scenario():
        service = ReproService(ServeConfig(
            jobs=1, chaos=True, max_retries=2, retry_base_s=0.01,
            cache_dir=str(tmp_path / "cache"),
            data_dir=str(tmp_path / "data")))
        try:
            # warm the pool so there is a live worker to murder
            status, _ = await service.submit("compile",
                                             dict(APP_BODY))
            assert status == 200
            status, payload = service.chaos_kill_worker()
            assert status == 200
            assert payload["killed"] is not None
            # next job hits the broken pool, respawns, and completes
            status, result = await service.submit(
                "compile", {"app": "gemm", "scale": "tiny"})
            assert status == 200, result
            assert service.stats.respawns >= 1
        finally:
            await service.drain()

    asyncio.run(scenario())
