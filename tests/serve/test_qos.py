"""Serve-tier QoS: priorities, weighted /multi, batch composition.

Priorities change the answer a multi-tenant fabric computes, so they
must participate in the job key (no cross-priority cache hits) and
flow all the way into the result's ``qos`` section.  Co-scheduled jobs
with different priorities must still share one fabric — the priority
is per tenant, not per batch — and the service must learn bandwidth
classes from completed solo runs to seat future batches.
"""

import asyncio
import json

from repro.serve import ReproService, ServeConfig, dispatch, execute_job
from repro.serve.protocol import (MAX_PRIORITY, RequestError,
                                  parse_request)

PAIR = ["gemm", "tpchq6"]
QOS_BODY = {"apps": ["gemm", "tpchq6", "tpchq6"],
            "priorities": [8, 1, 1], "scale": "tiny"}


def _body(obj) -> bytes:
    return json.dumps(obj).encode("utf-8")


def _config(tmp_path, **kw) -> ServeConfig:
    kw.setdefault("jobs", 2)
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    kw.setdefault("data_dir", str(tmp_path / "data"))
    return ServeConfig(**kw)


def _parse_error(body, mode="multi"):
    try:
        parse_request(body, mode)
    except RequestError as err:
        return err
    raise AssertionError("expected RequestError")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def test_params_priority_parses_and_bounds():
    request = parse_request({"app": "gemm",
                             "params": {"priority": 3}}, "simulate")
    assert request.params.priority == 3
    assert parse_request({"app": "gemm"}, "simulate") \
        .params.priority == 1
    for bad in (0, -1, MAX_PRIORITY + 1, True, "high", 2.5):
        err = _parse_error({"app": "gemm",
                            "params": {"priority": bad}}, "simulate")
        assert err.status == 400, bad


def test_params_priority_joins_job_key():
    base = parse_request({"app": "gemm",
                          "params": {"coschedule": True}}, "simulate")
    hi = parse_request({"app": "gemm",
                        "params": {"coschedule": True,
                                   "priority": 8}}, "simulate")
    assert base.key != hi.key


def test_multi_priorities_parse():
    request = parse_request(QOS_BODY, "multi")
    assert request.priorities == (8, 1, 1)
    assert request.payload(None, None)["priorities"] == [8, 1, 1]
    assert parse_request({"apps": PAIR}, "multi").priorities is None


def test_multi_priorities_rejections():
    assert _parse_error({"apps": PAIR, "priorities": [8]}).status == 400
    assert _parse_error({"apps": PAIR,
                         "priorities": "high"}).status == 400
    for bad in (0, MAX_PRIORITY + 1, True, "x", None):
        err = _parse_error({"apps": PAIR, "priorities": [1, bad]})
        assert err.status == 400, bad


def test_multi_priorities_join_job_key():
    plain = parse_request({"apps": PAIR}, "multi")
    weighted = parse_request({"apps": PAIR,
                              "priorities": [8, 1]}, "multi")
    uniform = parse_request({"apps": PAIR,
                             "priorities": [1, 1]}, "multi")
    assert len({plain.key, weighted.key, uniform.key}) == 3


# ---------------------------------------------------------------------------
# Weighted /multi end to end
# ---------------------------------------------------------------------------


def test_weighted_multi_endpoint(tmp_path):
    async def scenario():
        service = ReproService(_config(tmp_path), runner=execute_job)
        response = await dispatch(service, "POST", "/multi",
                                  _body(QOS_BODY))
        assert response.status == 200, response.json
        result = response.json
        assert result["priorities"] == [8, 1, 1]
        assert result["qos"]["weighted"] is True
        tenants = result["qos"]["tenants"]
        assert tenants["gemm"]["priority"] == 8
        assert [t["priority"] for t in result["tenants"]] == [8, 1, 1]

        # same workload, no priorities: a different cache entry
        plain = await dispatch(
            service, "POST", "/multi",
            _body({"apps": QOS_BODY["apps"], "scale": "tiny"}))
        assert plain.status == 200
        assert plain.json.get("served") != "result-cache"
        assert plain.json["qos"]["weighted"] is False

        stats = (await dispatch(service, "GET", "/statsz")).json
        assert stats["qos"]["priority_jobs"] == 1
        await service.drain()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Mixed-priority co-scheduling
# ---------------------------------------------------------------------------


def test_mixed_priority_jobs_share_one_fabric(tmp_path):
    """The group key normalizes priority away: a weight-8 job and a
    weight-1 job arriving together ride the same fabric, each keeping
    its own weight in the shared arbitration."""
    async def scenario():
        service = ReproService(
            _config(tmp_path, coschedule_window_s=5.0,
                    coschedule_max=2),
            runner=execute_job)

        def post(app, priority):
            return dispatch(service, "POST", "/simulate",
                            _body({"app": app, "scale": "tiny",
                                   "params": {"coschedule": True,
                                              "priority": priority}}))

        responses = await asyncio.gather(post("gemm", 8),
                                         post("tpchq6", 1))
        payloads = [r.json for r in responses]
        for payload in payloads:
            assert payload["ok"], payload
            assert payload["served"] == "coscheduled"
            assert sorted(payload["coscheduled"]["apps"]) \
                == sorted(PAIR)
            assert payload["qos"]["weighted"] is True
        prios = {p["app"]: p["coscheduled"]["priority"]
                 for p in payloads}
        assert prios == {"gemm": 8, "tpchq6": 1}
        # one batch, one fabric
        assert payloads[0]["coscheduled"]["fabric_cycles"] \
            == payloads[1]["coscheduled"]["fabric_cycles"]

        stats = (await dispatch(service, "GET", "/statsz")).json
        assert stats["work"]["coschedule_batches"] == 1
        assert stats["qos"]["priority_jobs"] == 1
        await service.drain()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Bandwidth-class learning + batch composition
# ---------------------------------------------------------------------------


def test_service_learns_classes_from_solo_runs(tmp_path):
    async def scenario():
        service = ReproService(_config(tmp_path), runner=execute_job)
        for app in PAIR:
            response = await dispatch(
                service, "POST", "/simulate",
                _body({"app": app, "scale": "tiny"}))
            assert response.status == 200, response.json
        stats = (await dispatch(service, "GET", "/statsz")).json
        classes = stats["qos"]["bandwidth_classes"]
        assert classes["gemm:tiny"] == "compute"
        assert classes["tpchq6:tiny"] == "memory"
        await service.drain()

    asyncio.run(scenario())


def test_compose_cosched_seats_by_priority_and_class(tmp_path):
    """Unit-level: an oversized flush splits into batches with the
    high-priority job seated first and memory-bound jobs spread."""
    service = ReproService(_config(tmp_path, coschedule_max=2))
    service._bw_classes = {("tpchq6", "tiny"): "memory",
                           ("gda", "tiny"): "memory",
                           ("gemm", "tiny"): "compute"}

    def entry(app, priority):
        request = parse_request(
            {"app": app, "scale": "tiny",
             "params": {"coschedule": True,
                        "priority": priority}}, "simulate")
        return (request, None)

    entries = [entry("tpchq6", 1), entry("gda", 1),
               entry("gemm", 8), entry("gemm", 1)]
    batches = service._compose_cosched(entries, "tiny")
    assert len(batches) == 2
    assert all(len(batch) == 2 for batch in batches)
    for batch in batches:
        classes = sorted(service._bw_classes[(request.app, "tiny")]
                         for request, _ in batch)
        assert classes == ["compute", "memory"]
    # seating differs from FIFO arrival order
    flat = [request.app for batch in batches for request, _ in batch]
    assert flat != [request.app for request, _ in entries]


def test_statsz_qos_section_shape(tmp_path):
    async def scenario():
        service = ReproService(_config(tmp_path))
        stats = (await dispatch(service, "GET", "/statsz")).json
        assert stats["qos"] == {"priority_jobs": 0,
                                "cosched_reordered": 0,
                                "bandwidth_classes": {}}
        await service.drain()

    asyncio.run(scenario())
