"""Loadtest harness units: the deterministic request mix, exact
percentiles, and the baseline comparator (no sockets here — the
live-replay path is exercised by the CI serve-smoke job)."""

import pytest

from repro.eval.loadtest import compare, make_requests, _percentile
from repro.serve.protocol import spec_digest


def test_request_mix_is_deterministic_and_has_duplicates():
    a = make_requests(40, 10, seed=3, trace_every=7)
    b = make_requests(40, 10, seed=3, trace_every=7)
    assert a == b
    assert make_requests(40, 10, seed=4) != a
    digests = [spec_digest(body["spec"]) for body in a]
    assert len(set(digests)) == 10          # exactly `unique` specs
    assert len(digests) == 40               # padded with duplicates
    traced = [body for body in a if "params" in body]
    assert len(traced) == pytest.approx(40 / 7, abs=1)


def test_request_mix_clamps_unique():
    assert len({spec_digest(b["spec"])
                for b in make_requests(5, 99, seed=0)}) == 5
    assert len(make_requests(3, 0, seed=0)) == 3


def test_percentile_is_exact_and_interpolated():
    samples = [float(k) for k in range(1, 101)]
    assert _percentile(samples, 50) == 50.5
    assert _percentile(samples, 99) == pytest.approx(99.01)
    assert _percentile(samples, 100) == 100.0
    assert _percentile([], 50) == 0.0
    assert _percentile([7.0], 99) == 7.0


def _report(**overrides):
    report = {
        "errors": 0, "p50_ms": 100.0, "p99_ms": 400.0,
        "throughput_rps": 20.0,
        "server": {"coalesced": 5, "result_cache_hits": 3},
    }
    report.update(overrides)
    return report


def test_compare_accepts_within_threshold():
    assert compare(_report(p50_ms=120.0), _report(),
                   threshold=0.5) == []


def test_compare_flags_errors_latency_and_lost_dedup():
    baseline = _report()
    problems = compare(
        _report(errors=2, p50_ms=500.0, throughput_rps=5.0,
                server={"coalesced": 0, "result_cache_hits": 0}),
        baseline, threshold=0.5)
    text = "\n".join(problems)
    assert "failed requests" in text
    assert "p50_ms" in text
    assert "throughput_rps" in text
    assert "coalesced" in text
    # a baseline that never deduped imposes no dedup requirement
    no_dedup = _report(server={"coalesced": 0, "result_cache_hits": 0})
    assert compare(no_dedup, no_dedup, threshold=0.5) == []


def test_request_mix_multi_slots_are_deterministic():
    a = make_requests(40, 10, seed=3, multi_every=5)
    assert a == make_requests(40, 10, seed=3, multi_every=5)
    multi = [b for b in a if b.get("_path") == "/multi"]
    cosched = [b for b in a if b.get("params", {}).get("coschedule")]
    assert len(multi) == 8                  # every 5th of 40 slots
    assert len(cosched) == 8                # the slot halfway between
    for body in multi:
        assert body["scale"] == "tiny"
        assert len(body["apps"]) == 2
        assert body["apps"][0] != body["apps"][1]
    for body in cosched:
        assert body["_path"] == "/simulate"
        assert isinstance(body["app"], str)
    # the rest are plain spec jobs with no path hint
    rest = [b for b in a
            if "_path" not in b and "spec" in b]
    assert len(rest) == 40 - 16


def test_request_mix_without_multi_has_no_path_hints():
    assert all("_path" not in b
               for b in make_requests(20, 5, seed=1))
