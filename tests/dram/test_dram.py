"""Unit and invariant tests for the DDR3 memory model."""

import pytest

from repro.dram import (DDR3_1600, DEFAULT_GEOMETRY, Bank, DramModel,
                        DramRequest, DramGeometry)


def run_until_idle(model, limit=100000):
    done = []
    for _ in range(limit):
        model.tick()
        done.extend(model.deliver())
        if model.idle:
            break
    return done


# -- address mapping -----------------------------------------------------------

def test_adjacent_bursts_interleave_channels():
    geo = DEFAULT_GEOMETRY
    channels = [geo.map_address(burst * 64)[0] for burst in range(8)]
    assert channels == [0, 1, 2, 3, 0, 1, 2, 3]


def test_same_burst_same_mapping():
    geo = DEFAULT_GEOMETRY
    assert geo.map_address(100) == geo.map_address(70)  # same 64B burst


def test_row_change_beyond_row_bytes():
    geo = DramGeometry(channels=1, banks_per_channel=1, row_bytes=1024)
    _, _, row0, _ = geo.map_address(0)
    _, _, row1, _ = geo.map_address(1024)
    assert row1 == row0 + 1


# -- bank state machine -----------------------------------------------------------

def test_bank_empty_then_hit_latency():
    bank = Bank(DDR3_1600)
    done0 = bank.issue(row=5, now=0, is_write=False)
    assert done0 == DDR3_1600.row_empty_latency
    done1 = bank.issue(row=5, now=bank.ready_at, is_write=False)
    assert done1 - bank.ready_at <= DDR3_1600.row_hit_latency
    assert bank.hits == 1 and bank.empties == 1


def test_bank_conflict_pays_precharge():
    bank = Bank(DDR3_1600)
    bank.issue(row=1, now=0, is_write=False)
    now = bank.ready_at
    done = bank.issue(row=2, now=now, is_write=False)
    # must wait for tRAS since activation, then precharge + activate + cas
    assert done - now >= DDR3_1600.t_rp
    assert bank.misses == 1


def test_bank_access_latency_is_consistent_with_issue():
    bank = Bank(DDR3_1600)
    bank.issue(row=1, now=0, is_write=False)
    now = bank.ready_at + 3
    predicted = bank.access_latency(2, now)
    done = bank.issue(2, now, is_write=False)
    assert done - now == predicted


def test_bank_hit_miss_counters():
    bank = Bank(DDR3_1600)
    for row in (1, 1, 1, 2, 2, 1):
        bank.issue(row, bank.ready_at, is_write=False)
    assert bank.empties == 1
    assert bank.hits == 3
    assert bank.misses == 2


# -- full model -----------------------------------------------------------------

def test_single_read_completes():
    model = DramModel()
    model.submit(DramRequest(byte_addr=0))
    done = run_until_idle(model)
    assert len(done) == 1
    assert done[0].complete_cycle >= DDR3_1600.row_empty_latency


def test_callback_fired_once():
    model = DramModel()
    seen = []
    model.submit(DramRequest(byte_addr=64), callback=seen.append)
    run_until_idle(model)
    assert len(seen) == 1


def test_stream_achieves_high_bandwidth():
    """Dense sequential bursts should get near the 51.2 GB/s peak."""
    model = DramModel()
    n_bursts = 512
    pending = [DramRequest(byte_addr=64 * i) for i in range(n_bursts)]
    submitted = 0
    for _ in range(200000):
        while submitted < n_bursts and model.can_accept(
                pending[submitted].byte_addr):
            model.submit(pending[submitted])
            submitted += 1
        model.tick()
        model.deliver()
        if submitted == n_bursts and model.idle:
            break
    gbps = model.achieved_gbps()
    assert gbps > 35.0  # > ~70% of 51.2 peak for a pure stream
    stats = model.stats()
    assert stats["row_hits"] > stats["row_misses"]


def test_random_bandwidth_below_stream():
    import random
    rng = random.Random(7)
    model_rand = DramModel()
    model_seq = DramModel()
    n_bursts = 256
    seq = [64 * i for i in range(n_bursts)]
    rand = [64 * rng.randrange(0, 1 << 20) for _ in range(n_bursts)]

    def run(model, addrs):
        submitted = 0
        for _ in range(500000):
            while submitted < len(addrs) and model.can_accept(
                    addrs[submitted]):
                model.submit(DramRequest(byte_addr=addrs[submitted]))
                submitted += 1
            model.tick()
            model.deliver()
            if submitted == len(addrs) and model.idle:
                break
        return model.cycle

    t_seq = run(model_seq, seq)
    t_rand = run(model_rand, rand)
    assert t_rand > 1.5 * t_seq


def test_writes_counted():
    model = DramModel()
    model.submit(DramRequest(byte_addr=0, is_write=True))
    model.submit(DramRequest(byte_addr=64))
    run_until_idle(model)
    assert model.writes == 1 and model.reads == 1


def test_queue_depth_respected():
    model = DramModel(queue_depth=2)
    model.submit(DramRequest(byte_addr=0))
    model.submit(DramRequest(byte_addr=256))
    assert not model.can_accept(0)
    with pytest.raises(Exception):
        model.submit(DramRequest(byte_addr=512))


def test_completions_monotone_with_bus_serialisation():
    """Two hits to the same bank cannot overlap on the data bus."""
    model = DramModel(geometry=DramGeometry(channels=1,
                                            banks_per_channel=1))
    model.submit(DramRequest(byte_addr=0))
    model.submit(DramRequest(byte_addr=64))
    done = run_until_idle(model)
    assert len(done) == 2
    times = sorted(r.complete_cycle for r in done)
    assert times[1] - times[0] >= DDR3_1600.t_burst


def test_pending_counts():
    model = DramModel()
    model.submit(DramRequest(byte_addr=0))
    assert model.pending == 1
    run_until_idle(model)
    assert model.pending == 0
