"""Weighted (QoS) DRAM arbitration: deficit credits over FR-FCFS.

The load-bearing invariant: with *equal* weights — any value, including
no registrations at all — the scheduler must be bit-identical to plain
FR-FCFS (the weighted path is never entered, no counter is touched).
With non-uniform weights the high-weight tenant's requests must finish
measurably earlier, but never by starving anyone: every tenant with
queued work gains credit each refill round.

Also pins the timing-derived scheduler constants (the tFAW activate cap
and the busy-bank skip horizon used to come from magic numbers).
"""

import dataclasses

import pytest

from repro.dram import DDR3_1600, DramModel, DramRequest
from repro.errors import DramProtocolError


def _drain(model, limit=100_000):
    """Tick until idle; completions in delivery order."""
    done = []
    for _ in range(limit):
        model.tick()
        done.extend(model.deliver())
        if model.idle:
            break
    assert model.idle, "workload did not drain"
    return done


def _submit_streams(model, tenants, per_tenant=24):
    """Interleaved row-miss-heavy streams, one per tenant.

    Each tenant walks its own distant address range (distinct rows in
    the same banks), submissions interleaved so every channel sees all
    tenants contending from cycle zero.
    """
    for k in range(per_tenant):
        for t in tenants:
            model.tenant = t
            model.submit(DramRequest(
                byte_addr=t * 1_000_003 * 64 + k * 64))
    model.tenant = None


def _signature(done):
    """Order-and-cycle fingerprint of one drained run."""
    return [(r.tenant, r.byte_addr, r.complete_cycle) for r in done]


def _mean_completion(done, tenant):
    cycles = [r.complete_cycle for r in done if r.tenant == tenant]
    assert cycles, f"tenant {tenant} never completed a request"
    return sum(cycles) / len(cycles)


# ---------------------------------------------------------------------------
# Equal weights == plain FR-FCFS, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("weight", [None, 1, 7])
def test_equal_weights_bit_identical_to_unweighted(weight):
    baseline = DramModel()
    _submit_streams(baseline, (0, 1, 2))
    want = _signature(_drain(baseline))

    model = DramModel()
    if weight is not None:
        for tenant in (0, 1, 2):
            model.set_tenant_weight(tenant, weight)
        assert model.weighted is False
    _submit_streams(model, (0, 1, 2))
    assert _signature(_drain(model)) == want
    # the weighted path never ran: no arbitration tallies anywhere
    assert all(not c.arb_stats for c in model.channels)
    assert all("arb_won" not in entry for entry
               in model.channel_util(None, model.cycle).values())


def test_weight_registration_validates():
    model = DramModel()
    with pytest.raises(DramProtocolError):
        model.set_tenant_weight(0, 0)
    model.set_tenant_weight(0, 3)
    model.set_tenant_weight(1, 3)
    assert model.weighted is False
    model.set_tenant_weight(2, 1)
    assert model.weighted is True


# ---------------------------------------------------------------------------
# Non-uniform weights: effective, work-conserving, starvation-free
# ---------------------------------------------------------------------------


def test_high_weight_tenant_completes_earlier():
    flat = DramModel()
    _submit_streams(flat, (0, 1))
    flat_done = _drain(flat)

    weighted = DramModel()
    weighted.set_tenant_weight(0, 8)
    weighted.set_tenant_weight(1, 1)
    _submit_streams(weighted, (0, 1))
    done = _drain(weighted)

    assert _mean_completion(done, 0) < _mean_completion(done, 1)
    assert _mean_completion(done, 0) < _mean_completion(flat_done, 0)


@pytest.mark.parametrize("weights", [(8, 1), (5, 2, 1), (8, 8, 1),
                                     (2, 3, 4, 5)])
def test_no_tenant_starves(weights):
    """Every tenant retires every request, whatever the weights."""
    model = DramModel()
    tenants = tuple(range(len(weights)))
    for tenant, weight in zip(tenants, weights):
        model.set_tenant_weight(tenant, weight)
    assert model.weighted is True
    per_tenant = 20
    _submit_streams(model, tenants, per_tenant=per_tenant)
    done = _drain(model)
    by_tenant = {t: [r for r in done if r.tenant == t] for t in tenants}
    for t in tenants:
        assert len(by_tenant[t]) == per_tenant
    # weakest tenant makes continuous progress, not a trailing burst:
    # its first completion lands before the strongest tenant's last
    weakest = min(tenants, key=lambda t: weights[t])
    strongest = max(tenants, key=lambda t: weights[t])
    assert min(r.complete_cycle for r in by_tenant[weakest]) \
        < max(r.complete_cycle for r in by_tenant[strongest])


def test_arbitration_counters_reconcile():
    model = DramModel()
    model.set_tenant_weight(0, 8)
    model.set_tenant_weight(1, 1)
    _submit_streams(model, (0, 1))
    _drain(model)
    util = model.channel_util(None, model.cycle)
    per0 = model.channel_util(0, model.cycle)
    per1 = model.channel_util(1, model.cycle)
    contested = 0
    for name, entry in util.items():
        assert entry["arb_won"] == per0[name]["arb_won"] \
            + per1[name]["arb_won"]
        assert entry["arb_deferred"] == per0[name]["arb_deferred"] \
            + per1[name]["arb_deferred"]
        # two contenders: each contested grant defers exactly one
        assert entry["arb_won"] == entry["arb_deferred"]
        contested += entry["arb_won"]
    assert contested > 0, "streams never contended"


# ---------------------------------------------------------------------------
# Timing-derived scheduler constants (were hardcoded magic numbers)
# ---------------------------------------------------------------------------


def test_scheduler_constants_derive_from_timing():
    assert DDR3_1600.faw_activates == 4
    assert DDR3_1600.busy_skip_cycles == DDR3_1600.t_ccd * 4
    custom = dataclasses.replace(DDR3_1600, faw_activates=2, t_ccd=7)
    assert custom.busy_skip_cycles == 14


def test_tighter_faw_cap_slows_activate_storms():
    """Halving the allowed activates per tFAW window must not speed a
    row-miss storm up (and should visibly slow it)."""
    def last_completion(timing):
        model = DramModel(timing=timing)
        _submit_streams(model, (0,), per_tenant=32)
        return max(r.complete_cycle for r in _drain(model))

    default = last_completion(DDR3_1600)
    tight = last_completion(
        dataclasses.replace(DDR3_1600, faw_activates=1))
    assert tight >= default


# measured once on the pre-refactor (magic-number) scheduler; any
# drift means the derived constants changed the schedule
PINNED_LAST_CYCLE = 107
PINNED_DRAIN_CYCLE = 107


def test_schedule_cycle_counts_pinned():
    """Regression pin: deriving the tFAW cap and busy-bank skip window
    from DdrTiming must reproduce the magic-number scheduler exactly."""
    model = DramModel()
    _submit_streams(model, (0, 1), per_tenant=16)
    done = _drain(model)
    assert max(r.complete_cycle for r in done) == PINNED_LAST_CYCLE
    assert model.cycle == PINNED_DRAIN_CYCLE
