"""Fault injection inside a real simulated machine.

Pins the contract the chaos harness relies on: a dead unit is detected
as a typed, attributed FaultError on BOTH schedulers; timing-only
degradation completes bit-correct but slower; DRAM corruption is
caught by the end-to-end checksums; and — critically — a machine with
no plan (or an empty one) stays bit-identical to the golden run.
"""

import pytest

from repro.compiler.artifact import compile_to_bitstream
from repro.errors import FaultError
from repro.faults import FaultEvent, FaultPlan

WATCHDOG = 2_500
MAX_CYCLES = 100_000


@pytest.fixture(scope="module")
def artifact():
    return compile_to_bitstream("innerproduct", "tiny")


@pytest.fixture(scope="module")
def golden(artifact):
    machine = artifact.machine(watchdog=WATCHDOG,
                               max_cycles=MAX_CYCLES)
    stats = machine.run()
    return stats, machine.image.checksums()


def _compute_leaf(artifact) -> str:
    return sorted(n for n, t in artifact.config.leaf_timing.items()
                  if t.num_pcus)[0]


def _machine(artifact, plan, **kwargs):
    return artifact.machine(fault_plan=plan, watchdog=WATCHDOG,
                            max_cycles=MAX_CYCLES, **kwargs)


def test_empty_plan_is_bit_identical(artifact, golden):
    stats, sums = golden
    machine = _machine(artifact, FaultPlan([]))
    again = machine.run()
    assert again.same_as(stats)
    assert machine.image.checksums() == sums


@pytest.mark.parametrize("scheduler", ["dense", "event"])
def test_unit_fail_raises_attributed_fault_error(artifact, golden,
                                                 scheduler):
    leaf = _compute_leaf(artifact)
    plan = FaultPlan([FaultEvent(cycle=5, kind="unit_fail",
                                 unit=leaf)])
    machine = _machine(artifact, plan, scheduler=scheduler)
    with pytest.raises(FaultError) as excinfo:
        machine.run()
    err = excinfo.value
    assert err.kind == "unit_fail"
    assert err.unit == leaf
    assert err.cycle == 5          # the injection cycle
    assert "injected fault" in str(err)
    assert "detected at cycle" in str(err)
    attribution = err.attribution()
    assert attribution["kind"] == "unit_fail"
    assert attribution["detail"]["busy_leaves"]


def test_detection_is_scheduler_identical(artifact):
    leaf = _compute_leaf(artifact)
    plan = FaultPlan([FaultEvent(cycle=5, kind="unit_fail",
                                 unit=leaf)])
    messages = []
    for scheduler in ("dense", "event"):
        with pytest.raises(FaultError) as excinfo:
            _machine(artifact, plan, scheduler=scheduler).run()
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]


def test_fault_sites_flow_into_attribution(artifact):
    leaf = _compute_leaf(artifact)
    plan = FaultPlan([FaultEvent(cycle=5, kind="unit_fail",
                                 unit=leaf)])
    machine = _machine(artifact, plan,
                       fault_sites={leaf: [(3, 1)]})
    with pytest.raises(FaultError) as excinfo:
        machine.run()
    assert excinfo.value.sites == ((3, 1),)
    assert "(3, 1)" in str(excinfo.value)


def test_max_cycles_trip_is_typed_when_faults_fired(artifact):
    leaf = _compute_leaf(artifact)
    plan = FaultPlan([FaultEvent(cycle=5, kind="unit_fail",
                                 unit=leaf)])
    machine = artifact.machine(fault_plan=plan,
                               watchdog=10 * MAX_CYCLES,
                               max_cycles=3_000)
    with pytest.raises(FaultError) as excinfo:
        machine.run()
    assert "max_cycles" in str(excinfo.value)
    assert excinfo.value.kind == "unit_fail"


@pytest.mark.parametrize("scheduler", ["dense", "event"])
def test_degradation_completes_bit_correct_but_slower(artifact,
                                                      golden,
                                                      scheduler):
    stats, sums = golden
    leaf = _compute_leaf(artifact)
    plan = FaultPlan([
        FaultEvent(cycle=5, kind="link_degrade", unit=leaf, extra=24),
        FaultEvent(cycle=9, kind="dram_slow", channel=0, extra=40),
    ])
    machine = _machine(artifact, plan, scheduler=scheduler)
    degraded = machine.run()
    assert degraded.cycles > stats.cycles
    assert machine.image.checksums() == sums
    assert len(machine.faults.fired) == 2


def test_degradation_is_scheduler_identical(artifact):
    leaf = _compute_leaf(artifact)
    plan = FaultPlan([
        FaultEvent(cycle=5, kind="link_degrade", unit=leaf, extra=24),
        FaultEvent(cycle=9, kind="dram_slow", channel=0, extra=40),
    ])
    runs = [_machine(artifact, plan, scheduler=s)
            for s in ("dense", "event")]
    stats = [m.run() for m in runs]
    assert stats[0].same_as(stats[1])
    assert runs[0].image.checksums() == runs[1].image.checksums()


def test_dram_corruption_caught_by_checksums(artifact, golden):
    _, sums = golden
    array = sorted(ref.name for ref in artifact.dhdl.drams)[0]
    plan = FaultPlan([FaultEvent(cycle=2, kind="dram_corrupt",
                                 array=array, word=0, xor_mask=1)])
    machine = _machine(artifact, plan)
    machine.run()       # corruption is silent at runtime...
    assert machine.image.checksums() != sums   # ...but not end-to-end


def test_degrade_does_not_mutate_shared_config(artifact, golden):
    """The artifact's LeafTiming must never change: chaos reuses one
    artifact across scenarios."""
    stats, sums = golden
    leaf = _compute_leaf(artifact)
    before = artifact.config.leaf_timing[leaf].pipeline_depth
    plan = FaultPlan([FaultEvent(cycle=5, kind="link_degrade",
                                 unit=leaf, extra=24)])
    _machine(artifact, plan).run()
    assert artifact.config.leaf_timing[leaf].pipeline_depth == before
    # and a fresh no-fault machine still reproduces the golden run
    clean = artifact.machine(watchdog=WATCHDOG,
                             max_cycles=MAX_CYCLES)
    assert clean.run().same_as(stats)
    assert clean.image.checksums() == sums
