"""Multi-tenant fault attribution: a dying tenant names itself.

Satellite of the fault-injection issue: when a shared fabric stalls,
the report must say WHICH tenant and WHERE (its region) — a fabric
hosting N tenants is useless if a deadlock report reads like a solo
machine's.
"""

import pytest

from repro.errors import FaultError
from repro.faults import FaultEvent, FaultPlan
from repro.sim.fabric import Fabric
from repro.tenancy.packer import pack_apps

APPS = ["gemm", "tpchq6"]


@pytest.fixture(scope="module")
def packing():
    report = pack_apps(APPS, "tiny")
    assert report.feasible, report.reason
    return report


def _victim_leaf(tenant) -> str:
    timing = tenant.artifact.config.leaf_timing
    placed = sorted(n for n, t in timing.items() if t.num_pcus)
    return placed[0]


@pytest.mark.parametrize("victim_index", [0, 1])
def test_tenant_fault_names_tenant_and_region(packing, victim_index):
    fabric = Fabric(watchdog=2_500, max_cycles=200_000)
    plan = FaultPlan([FaultEvent(
        cycle=5, kind="unit_fail",
        unit=_victim_leaf(packing.tenants[victim_index]))])
    for i, (tenant, app) in enumerate(zip(packing.tenants, APPS)):
        fabric.add_tenant(tenant.artifact.dhdl, tenant.artifact.config,
                          name=app,
                          fault_plan=plan if i == victim_index
                          else None)
    with pytest.raises(FaultError) as excinfo:
        fabric.run()
    err = excinfo.value
    victim = packing.tenants[victim_index]
    assert err.tenant == APPS[victim_index]
    assert tuple(err.region) == victim.region.as_tuple()
    # the message itself carries the tenant id, name and region
    message = str(err)
    assert f"({APPS[victim_index]})" in message
    assert f"tenant {victim_index}" in message
    cols, rows = victim.region.cols, victim.region.rows
    assert f"{cols}x{rows}@" in message


def test_healthy_cotenant_is_not_blamed(packing):
    fabric = Fabric(watchdog=2_500, max_cycles=200_000)
    plan = FaultPlan([FaultEvent(
        cycle=5, kind="unit_fail",
        unit=_victim_leaf(packing.tenants[0]))])
    for i, (tenant, app) in enumerate(zip(packing.tenants, APPS)):
        fabric.add_tenant(tenant.artifact.dhdl, tenant.artifact.config,
                          name=app,
                          fault_plan=plan if i == 0 else None)
    with pytest.raises(FaultError) as excinfo:
        fabric.run()
    assert excinfo.value.tenant == APPS[0]
    assert excinfo.value.tenant != APPS[1]
