"""The chaos harness invariant: every scenario classifies, none hang.

Campaigns here are small (CI runs the real 25-scenario smoke and the
nightly 500); what these tests pin is determinism, the classification
taxonomy, recovery actually recompiling around dead sites, and the
multi-tenant migrate-and-replay path.
"""

import pytest

from repro.faults.chaos import (ChaosReport, run_campaign,
                                run_multi_scenario, run_scenario)


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(seed=1, scenarios=8, multi_every=4)


def test_every_scenario_classifies(campaign):
    assert len(campaign.scenarios) == 8
    assert campaign.ok, campaign.failures()
    for record in campaign.scenarios:
        assert record["outcome"] in ChaosReport.ACCEPTABLE


def test_campaign_is_deterministic(campaign):
    again = run_campaign(seed=1, scenarios=8, multi_every=4)
    assert [r["outcome"] for r in again.scenarios] == \
        [r["outcome"] for r in campaign.scenarios]
    assert [r.get("plan") for r in again.scenarios] == \
        [r.get("plan") for r in campaign.scenarios]


def test_multi_every_mixes_in_tenant_scenarios(campaign):
    multi = [r for r in campaign.scenarios if r.get("multi")]
    assert len(multi) == 1          # index 4 of 0..7
    assert multi[0]["scenario"] == 4


def test_unit_fail_scenario_recovers_by_recompiling():
    # seed chosen so the plan contains a unit_fail that actually trips
    # (gemm, seed 1*1_000_003+1 from the deterministic campaign above)
    record = run_scenario(1, 1_000_004)
    assert record["outcome"] in ("recovered", "degraded", "fault",
                                 "clean")
    if record["outcome"] == "recovered" and record["attribution"]:
        assert record["recoveries"]


def test_multi_scenario_names_tenant_and_region():
    record = run_multi_scenario(0, 0)
    assert record["outcome"] == "recovered", record
    attribution = record["attribution"]
    assert attribution["tenant"] in ("gemm", "tpchq6")
    assert attribution["region"] is not None
    assert attribution["kind"] == "unit_fail"
    assert record["recoveries"]


def test_report_shapes():
    report = run_campaign(seed=3, scenarios=3, multi_every=0)
    data = report.as_dict()
    assert data["total"] == 3
    assert data["ok"] is True
    assert sum(data["counts"].values()) == 3
    rendered = report.render()
    assert "repro chaos" in rendered
    assert "recovered" in rendered
