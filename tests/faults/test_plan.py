"""FaultPlan semantics: validation, ordering, pruning, serialization,
and seeded random generation."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (DEGRADE_KINDS, KINDS, TRANSIENT_KINDS,
                               FaultEvent, FaultPlan, random_plan)


def test_event_validation():
    with pytest.raises(ConfigError):
        FaultEvent(cycle=5, kind="meteor_strike")
    with pytest.raises(ConfigError):
        FaultEvent(cycle=0, kind="unit_fail", unit="u")
    event = FaultEvent(cycle=5, kind="unit_fail", unit="u")
    assert "unit_fail" in event.describe()


def test_plan_sorts_events_by_cycle():
    plan = FaultPlan([
        FaultEvent(cycle=9, kind="dram_slow", channel=1, extra=8),
        FaultEvent(cycle=2, kind="unit_fail", unit="u"),
        FaultEvent(cycle=9, kind="link_degrade", unit="v", extra=4),
    ])
    assert [e.cycle for e in plan] == [2, 9, 9]
    assert len(plan) == 3
    # ties break deterministically by kind
    assert plan.events[1].kind < plan.events[2].kind or \
        plan.events[1].cycle < plan.events[2].cycle


def test_without_prunes_kinds_and_events():
    events = [FaultEvent(cycle=2, kind="unit_fail", unit="u"),
              FaultEvent(cycle=3, kind="dram_corrupt", array="a",
                         word=0, xor_mask=1),
              FaultEvent(cycle=4, kind="dram_slow", channel=0,
                         extra=8)]
    plan = FaultPlan(events)
    assert [e.kind for e in plan.without(TRANSIENT_KINDS)] == \
        ["unit_fail", "dram_slow"]
    assert [e.kind for e in plan.without_events([events[0]])] == \
        ["dram_corrupt", "dram_slow"]
    # pruning never mutates the original
    assert len(plan) == 3


def test_plan_round_trips_through_dict():
    plan = FaultPlan([
        FaultEvent(cycle=7, kind="dram_corrupt", array="b", word=3,
                   xor_mask=0x10),
        FaultEvent(cycle=2, kind="link_degrade", unit="u", extra=6),
    ], seed=42)
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.seed == 42
    assert clone.events == plan.events


def test_random_plan_is_deterministic_and_bounded():
    kwargs = dict(units=("u0", "u1"), arrays=(("a", 64), ("b", 64)),
                  channels=4, max_cycle=100, max_events=5)
    one = random_plan(7, **kwargs)
    two = random_plan(7, **kwargs)
    other = random_plan(8, **kwargs)
    assert one.events == two.events
    assert 1 <= len(one) <= 5
    assert all(1 <= e.cycle <= 100 for e in one)
    assert one.events != other.events or one.seed != other.seed


def test_random_plan_skips_kinds_without_candidates():
    plan = random_plan(3, units=(), arrays=(), channels=0,
                       max_cycle=50)
    assert len(plan) == 0
    dram_only = random_plan(3, units=(), arrays=(("a", 8),),
                            channels=0, max_cycle=50, max_events=8)
    assert all(e.kind == "dram_corrupt" for e in dram_only)


def test_kind_taxonomy_is_complete():
    assert set(DEGRADE_KINDS) < set(KINDS)
    assert set(TRANSIENT_KINDS) < set(KINDS)
    assert "unit_fail" in KINDS
