"""Replay every checked-in fuzz corpus entry through the oracle.

Each ``tests/fuzz/corpus/*.json`` file is a shrunk spec that once
crashed or diverged; the bug it found is fixed, so every entry must now
pass the full three-way oracle. A new failure here means a regression
in whatever that spec exercises.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_spec, run_oracle
from repro.fuzz.harness import replay_corpus

CORPUS = Path(__file__).parent / "corpus"

_entries = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert _entries, "fuzz corpus should hold at least one regression"


@pytest.mark.parametrize("path", _entries, ids=lambda p: p.stem)
def test_corpus_entry_passes_oracle(path):
    result = run_oracle(load_spec(path), trip_error=True)
    assert result.ok, f"{path.name}: {result.describe()}"


def test_replay_corpus_helper_covers_all_entries():
    results = replay_corpus(CORPUS)
    assert [p for p, _ in results] == _entries
    assert all(r.ok for _, r in results)
