"""Generator determinism and spec round-trip."""

import json

import numpy as np
import pytest

from repro.errors import PatternError
from repro.fuzz import (SPEC_VERSION, build_program, gen_spec, load_spec,
                        save_spec, spec_name)


def test_gen_spec_is_deterministic():
    assert gen_spec(7) == gen_spec(7)
    assert gen_spec(7) != gen_spec(8)


def test_spec_is_json_round_trippable(tmp_path):
    spec = gen_spec(3)
    path = save_spec(spec, tmp_path / "fuzz_3.json")
    assert load_spec(path) == spec
    # and plain json agrees (no numpy scalars leaked into the spec)
    assert json.loads(json.dumps(spec)) == spec


def test_build_program_is_deterministic():
    spec = gen_spec(5)
    prog_a, outs_a = build_program(spec)
    prog_b, outs_b = build_program(spec)
    assert outs_a == outs_b
    assert list(prog_a.arrays) == list(prog_b.arrays)
    for name, a in prog_a.arrays.items():
        b = prog_b.arrays[name]
        if a.data is not None:
            np.testing.assert_array_equal(a.data, b.data)


def test_build_rejects_unknown_version():
    spec = gen_spec(0)
    spec["version"] = SPEC_VERSION + 1
    with pytest.raises(PatternError, match="spec version"):
        build_program(spec)


def test_build_rejects_unknown_kind():
    spec = {"version": SPEC_VERSION, "seed": 0, "n": 16,
            "steps": [{"kind": "warp_drive"}]}
    with pytest.raises(PatternError, match=r"steps\[0\].kind"):
        build_program(spec)


def test_build_rejects_empty_steps():
    spec = {"version": SPEC_VERSION, "seed": 0, "n": 16, "steps": []}
    with pytest.raises(PatternError, match="steps"):
        build_program(spec)


def test_spec_name_uses_seed():
    assert spec_name(gen_spec(12)) == "fuzz_12"


def test_every_kind_is_reachable():
    """The first 60 seeds between them cover every step kind."""
    seen = set()
    for seed in range(60):
        for step in gen_spec(seed)["steps"]:
            seen.add(step["kind"])
    assert seen == {"map", "map2d", "fold", "map_fold", "segfold",
                    "filter", "hash_reduce", "scatter", "loop"}


def test_scatter_first_step_does_not_collide_with_base_input():
    """Regression: a scatter at step 0 once declared a second 'in0'."""
    spec = {"version": SPEC_VERSION, "seed": 0, "n": 16,
            "steps": [{"kind": "scatter", "m": 4, "stride": 5,
                       "offset": 1, "depth": 1, "expr_seed": 1,
                       "data_seed": 2}]}
    # duplicate names raise PatternError at registration, so simply
    # building is the assertion
    program, outputs = build_program(spec)
    assert "in0" in program.arrays and "scat0" in program.arrays
    assert outputs == ["out0"]
