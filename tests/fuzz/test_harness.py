"""Campaign driver and ``repro fuzz`` CLI plumbing."""

import json

from repro.cli import main
from repro.fuzz import SPEC_VERSION, run_campaign
from repro.fuzz.harness import FuzzCampaign


def test_campaign_all_ok():
    campaign = run_campaign(0, 3)
    assert campaign.ok == 3
    assert campaign.divergences == 0
    assert campaign.total_cycles > 0
    assert "3 programs from seed 0: 3 ok, 0 divergent" in \
        campaign.summary()


def test_campaign_records_and_saves_failures(tmp_path, monkeypatch):
    """Force one failing seed; the campaign must shrink it and write
    both the original and minimized specs."""
    import repro.fuzz.harness as harness_mod

    bad_spec = {"version": SPEC_VERSION, "seed": 7, "n": 256,
                "steps": [
                    {"kind": "map", "reads": 1, "depth": 1,
                     "expr_seed": 1, "data_seed": 2, "par": 1},
                    {"kind": "warp_drive"},
                ]}
    real_gen = harness_mod.gen_spec
    monkeypatch.setattr(
        harness_mod, "gen_spec",
        lambda seed: bad_spec if seed == 7 else real_gen(seed))

    notes = []
    campaign = run_campaign(6, 3, shrink=True, save_dir=tmp_path,
                            progress=notes.append)
    assert campaign.ok == 2
    assert campaign.divergences == 1
    assert any("FAIL" in note for note in notes)
    assert any("shrunk to" in note for note in notes)
    original = json.loads((tmp_path / "fuzz_7.json").read_text())
    minimized = json.loads((tmp_path / "fuzz_7.min.json").read_text())
    assert original == bad_spec
    assert len(minimized["steps"]) == 1
    assert minimized["steps"][0]["kind"] == "warp_drive"
    assert "1 divergent" in campaign.summary()


def test_cli_fuzz_ok(capsys):
    assert main(["fuzz", "--seed", "0", "--runs", "2"]) == 0
    out = capsys.readouterr().out
    assert "2 ok, 0 divergent" in out


def test_cli_fuzz_replays_corpus(capsys):
    assert main(["fuzz", "--seed", "0", "--runs", "1",
                 "--corpus", "tests/fuzz/corpus"]) == 0
    out = capsys.readouterr().out
    assert "specs replayed, 0 failing" in out


def test_cli_fuzz_exit_code_on_divergence(monkeypatch, capsys):
    import repro.fuzz.harness as harness_mod

    bad_spec = {"version": SPEC_VERSION, "seed": 0, "n": 16,
                "steps": [{"kind": "warp_drive"}]}
    monkeypatch.setattr(harness_mod, "gen_spec", lambda seed: bad_spec)
    assert main(["fuzz", "--seed", "0", "--runs", "1"]) == 1
    assert "1 divergent" in capsys.readouterr().out


def test_summary_mentions_each_failure():
    campaign = FuzzCampaign(seed=0, runs=1)
    from repro.fuzz.oracle import OracleResult
    campaign.failures.append(OracleResult(
        spec={"seed": 9}, ok=False, stage="sim-event",
        error="DeadlockError: no forward progress"))
    assert "fuzz_9: FAIL at sim-event" in campaign.summary()
