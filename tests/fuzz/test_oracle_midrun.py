"""Oracle classification when a simulator raises *mid-run*.

A scheduler that dies partway through a simulation (deadlock watchdog,
DRAM protocol violation, injected fault) must come back as a cleanly
classified failure at the ``sim-dense`` / ``sim-event`` stage — never
as a confusing ``compare`` divergence report built from a half-written
memory image, and never as an unhandled traceback.
"""

import pytest

from repro.errors import SimulationError
from repro.fuzz import gen_spec, run_oracle
from repro.sim.machine import Machine

SPEC = gen_spec(0)


@pytest.fixture
def midrun_raise(monkeypatch):
    """Patch ``Machine.run`` to die mid-run on selected schedulers."""
    real_run = Machine.run

    def arm(schedulers, exc=None):
        def boom(self, max_cycles=None, scheduler=None):
            mode = (scheduler if scheduler is not None
                    else self.scheduler)
            if mode in schedulers:
                # simulate partial progress before the failure: some
                # cycles elapsed, the image possibly half-written
                self.cycle = 17
                raise (exc or SimulationError(
                    f"synthetic mid-run failure on {mode}"))
            return real_run(self, max_cycles=max_cycles,
                            scheduler=scheduler)

        monkeypatch.setattr(Machine, "run", boom)

    return arm


def test_dense_midrun_error_classified_not_compared(midrun_raise):
    midrun_raise({"dense"})
    result = run_oracle(SPEC)
    assert not result.ok
    assert result.stage == "sim-dense"
    assert "synthetic mid-run failure on dense" in result.error
    # a mid-run death must never leak into divergence reporting
    assert result.mismatches == []
    assert "FAIL at sim-dense" in result.describe()


def test_event_midrun_error_classified_not_compared(midrun_raise):
    midrun_raise({"event"})
    result = run_oracle(SPEC)
    assert not result.ok
    assert result.stage == "sim-event"
    assert "synthetic mid-run failure on event" in result.error
    assert result.mismatches == []


def test_both_legs_dying_reports_the_first(midrun_raise):
    midrun_raise({"dense", "event"})
    result = run_oracle(SPEC)
    assert not result.ok
    assert result.stage == "sim-dense"
    assert result.mismatches == []


def test_unexpected_midrun_crash_still_classified(midrun_raise):
    """A non-ReproError crasher is a finding, not a harness failure."""
    midrun_raise({"event"}, exc=ZeroDivisionError("lane / 0"))
    result = run_oracle(SPEC)
    assert not result.ok
    assert result.stage == "sim-event"
    assert "ZeroDivisionError" in result.error
    assert result.mismatches == []


def test_unexpected_midrun_crash_reraises_under_trip_error(
        midrun_raise):
    midrun_raise({"dense"}, exc=ZeroDivisionError("lane / 0"))
    with pytest.raises(ZeroDivisionError):
        run_oracle(SPEC, trip_error=True)


def test_fault_error_midrun_is_a_typed_sim_failure(midrun_raise):
    """An injected FaultError surfacing mid-sim keeps its type name in
    the classification (chaos + fuzz composing cleanly)."""
    from repro.errors import FaultError
    midrun_raise({"dense"},
                 exc=FaultError("unit dead", cycle=17, unit="u0",
                                kind="unit_fail"))
    result = run_oracle(SPEC)
    assert not result.ok
    assert result.stage == "sim-dense"
    assert "FaultError" in result.error
    assert result.mismatches == []
