"""Three-way oracle behaviour: passes on good seeds, catches injected
divergence, and reports build failures with the right stage."""

import numpy as np
import pytest

from repro.fuzz import SPEC_VERSION, gen_spec, run_oracle
from repro.fuzz.oracle import OracleResult


# cheap but structurally varied seeds (cover several step kinds)
@pytest.mark.parametrize("seed", [0, 3, 4, 17, 23])
def test_known_good_seeds_pass(seed):
    result = run_oracle(gen_spec(seed), trip_error=True)
    assert result.ok, result.describe()
    assert result.cycles > 0
    assert "OK" in result.describe()


def test_build_failure_is_reported_at_build_stage():
    spec = {"version": SPEC_VERSION, "seed": 99, "n": 16,
            "steps": [{"kind": "no_such_kind"}]}
    result = run_oracle(spec)
    assert not result.ok
    assert result.stage == "build"
    assert "InvalidSpecError" in result.error
    assert "FAIL at build" in result.describe()


def test_injected_executor_divergence_is_caught(monkeypatch):
    """Corrupt the executor's answer; the oracle must flag both
    sim-vs-executor legs (and only those)."""
    import repro.fuzz.oracle as oracle_mod

    real = oracle_mod._expected_images

    def skewed(program, names):
        images = real(program, names)
        for arr in images.values():
            if arr.dtype.kind == "f" and arr.size:
                arr.flat[0] += 1.0  # far outside rtol/atol
                break
        return images

    monkeypatch.setattr(oracle_mod, "_expected_images", skewed)
    result = run_oracle(gen_spec(0))
    assert not result.ok
    assert result.stage == "compare"
    legs = {m.split(":", 1)[0] for m in result.mismatches}
    assert legs == {"dense-vs-executor", "event-vs-executor"}


def test_injected_stats_divergence_is_caught(monkeypatch):
    """Skew the event scheduler's stats; the oracle must flag stats
    inequality even when memory images agree."""
    import repro.fuzz.oracle as oracle_mod

    real_asdict = oracle_mod.dataclasses.asdict
    calls = []

    def skewed(obj):
        data = real_asdict(obj)
        calls.append(data)
        if len(calls) == 2:  # second call = event stats
            data["cycles"] = data["cycles"] + 1
        return data

    monkeypatch.setattr(oracle_mod.dataclasses, "asdict", skewed)
    result = run_oracle(gen_spec(0))
    assert not result.ok
    assert result.mismatches == ["stats:cycles"]


def test_trip_error_reraises_unexpected_exceptions(monkeypatch):
    import repro.fuzz.oracle as oracle_mod

    def boom(program, names):
        raise RuntimeError("synthetic crash")

    monkeypatch.setattr(oracle_mod, "_expected_images", boom)
    spec = gen_spec(0)
    # folded by default ...
    result = run_oracle(spec)
    assert not result.ok and "RuntimeError" in result.error
    assert result.stage == "execute"
    # ... raised under trip_error
    with pytest.raises(RuntimeError, match="synthetic crash"):
        run_oracle(spec, trip_error=True)


def test_int_outputs_compared_exactly():
    want = np.array([1, 2, 3], dtype=np.int32)
    got = want.copy()
    got[1] += 1
    from repro.fuzz.oracle import _compare_output
    mismatches = []
    _compare_output("c", want, got, "dense-vs-executor", mismatches)
    assert mismatches == ["dense-vs-executor:c"]
    mismatches.clear()
    _compare_output("c", want, want.copy(), "dense-vs-executor",
                    mismatches)
    assert mismatches == []


def test_describe_lists_mismatches():
    result = OracleResult(spec={"seed": 5}, ok=False, stage="compare",
                          mismatches=["dense-vs-event:x", "stats:cycles"])
    text = result.describe()
    assert "fuzz_5" in text
    assert "dense-vs-event:x" in text and "stats:cycles" in text
