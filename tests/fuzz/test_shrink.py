"""Shrinker behaviour: signature extraction, candidate ordering, and
greedy minimization of a synthetic failure."""

import copy

import pytest

from repro.fuzz import SPEC_VERSION, failure_signature, gen_spec, shrink_spec
from repro.fuzz.oracle import OracleResult
from repro.fuzz.shrink import _candidates


def test_signature_classes():
    ok = OracleResult(spec={}, ok=True)
    assert failure_signature(ok) == ("ok",)
    err = OracleResult(spec={}, ok=False, stage="build",
                       error="PatternError: duplicate array name 'in0'")
    assert failure_signature(err) == ("build", "PatternError")
    cmp_ = OracleResult(spec={}, ok=False, stage="compare",
                        mismatches=["dense-vs-event:a",
                                    "dense-vs-event:b",
                                    "stats:cycles"])
    assert failure_signature(cmp_) == (
        "compare", ("dense-vs-event", "stats"))


def test_candidates_do_not_mutate_the_spec():
    spec = gen_spec(17)
    frozen = copy.deepcopy(spec)
    for cand in _candidates(spec):
        assert cand is not spec
    assert spec == frozen


def test_candidates_drop_steps_last_first():
    spec = gen_spec(17)
    assert len(spec["steps"]) > 1
    cands = list(_candidates(spec))
    first = cands[0]
    assert len(first["steps"]) == len(spec["steps"]) - 1
    # the *last* step went first (consumers before producers)
    assert first["steps"] == spec["steps"][:-1]


def test_shrink_returns_passing_spec_unchanged():
    spec = gen_spec(0)
    mini, result = shrink_spec(spec)
    assert result.ok
    assert mini == spec


def test_shrink_minimizes_synthetic_failure():
    """A spec with an unbuildable step amid healthy ones must shrink to
    (close to) just the broken step at the minimum domain size."""
    bad_step = {"kind": "warp_drive"}
    spec = {"version": SPEC_VERSION, "seed": 1234, "n": 256,
            "steps": [
                {"kind": "map", "reads": 2, "depth": 3,
                 "expr_seed": 1, "data_seed": 2, "par": 8},
                bad_step,
                {"kind": "fold", "combine": "sum", "depth": 2,
                 "expr_seed": 3, "data_seed": 4, "par": 4,
                 "outer": 2},
            ]}
    mini, result = shrink_spec(spec)
    assert not result.ok
    assert failure_signature(result) == ("build", "InvalidSpecError")
    assert mini["steps"] == [bad_step]
    assert mini["n"] == 16


def test_shrink_respects_max_attempts():
    bad = {"version": SPEC_VERSION, "seed": 1, "n": 256,
           "steps": [{"kind": "warp_drive"},
                     {"kind": "also_bad"}]}
    mini, result = shrink_spec(bad, max_attempts=1)
    assert not result.ok
    # one attempt only tried dropping the last step
    assert len(mini["steps"]) <= 2


@pytest.mark.parametrize("field,value,expect", [
    ("par", 8, 1),
    ("par", [1, 8], [1, 1]),
    ("depth", 3, 2),
])
def test_knob_candidates(field, value, expect):
    spec = {"version": SPEC_VERSION, "seed": 0, "n": 16,
            "steps": [{"kind": "map", "reads": 1, "depth": 1,
                       "expr_seed": 1, "data_seed": 2, "par": 1,
                       field: value}]}
    produced = [c["steps"][0][field] for c in _candidates(spec)
                if c["steps"][0].get(field) != value]
    assert expect in produced
