"""Batch-vs-sequential oracle over generated specs and the corpus."""

from pathlib import Path

import pytest

from repro.fuzz import (BATCH_VARIANTS, gen_spec, load_spec,
                        run_campaign, run_oracle_batched)

CORPUS = Path(__file__).parent / "corpus"


@pytest.mark.parametrize("seed", range(4))
def test_generated_specs_batch_equivalent(seed):
    result = run_oracle_batched(gen_spec(seed), trip_error=True)
    assert result.ok, result.describe()
    assert result.cycles > 0


@pytest.mark.parametrize("path", sorted(CORPUS.glob("*.json")),
                         ids=lambda p: p.stem)
def test_corpus_batch_equivalent(path):
    result = run_oracle_batched(load_spec(path), trip_error=True)
    assert result.ok, result.describe()


def test_default_variants_cover_timing_axes():
    keys = set().union(*(set(v) for v in BATCH_VARIANTS))
    assert {"stages", "banks", "dram_queue_depth"} <= keys
    assert {} in BATCH_VARIANTS  # the as-compiled design must be pinned


def test_campaign_batched_mode_counts():
    campaign = run_campaign(seed=0, runs=3, batched=True)
    assert campaign.divergences == 0
    assert campaign.batched_ok == 3
    assert "batched oracle: 3 specs" in campaign.summary()


def test_campaign_default_skips_batched_oracle():
    campaign = run_campaign(seed=0, runs=2)
    assert campaign.batched_ok == 0
    assert "batched oracle" not in campaign.summary()
