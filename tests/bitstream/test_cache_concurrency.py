"""CompileCache under concurrent multi-process writers.

The serving tier points every pool worker at one shared cache
directory, so identical compile keys race: each writer must land a
valid entry (unique temp name + atomic rename; canonical bytes make
"last writer wins" indistinguishable from "first writer wins") and
count its own store exactly once.
"""

import json
import multiprocessing

import pytest

from repro.bitstream import Bitstream, CompileCache
from repro.compiler.artifact import freeze_program
from repro.fuzz.generator import build_program

SPEC = {"version": 1, "seed": 5, "n": 48,
        "steps": [{"kind": "map", "reads": 1, "depth": 1,
                   "expr_seed": 3, "data_seed": 4, "par": 4}]}


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    program, _ = build_program(SPEC)
    art = freeze_program(program, "cache-race", "tiny")
    path = tmp_path_factory.mktemp("art") / "artifact.json"
    art.save(path)
    return path


def _hammer(task):
    """Worker: load the artifact and put it repeatedly into one cache."""
    artifact_path, cache_dir, rounds = task
    art = Bitstream.load(artifact_path)
    cache = CompileCache(cache_dir)
    for _ in range(rounds):
        cache.put(art)
    return cache.stats.stores


def test_racing_puts_of_one_key_all_succeed(artifact, tmp_path):
    cache_dir = tmp_path / "cache"
    rounds, workers = 25, 4
    tasks = [(str(artifact), str(cache_dir), rounds)] * workers
    with multiprocessing.Pool(workers) as pool:
        stores = pool.map(_hammer, tasks)
    # every put counted once, no writer crashed on a racing rename
    assert stores == [rounds] * workers
    cache = CompileCache(cache_dir)
    assert cache.entries() == 1
    art = Bitstream.load(artifact)
    got = cache.get(art.key)
    assert got is not None and got.content_hash == art.content_hash
    # no temp-file litter left behind by any racer
    leftovers = [p for p in cache.dir.rglob("*.tmp")]
    assert leftovers == []


def _recover(task):
    """Worker: rendezvous on a barrier, then hit the corrupt entry.

    Every worker calls ``get`` at (as close as the OS allows) the same
    instant, so several of them observe the corrupt bytes and race to
    unlink the entry.  Returns what happened, or the exception that
    escaped — the parent asserts none did.
    """
    artifact_path, cache_dir, barrier = task
    art = Bitstream.load(artifact_path)
    cache = CompileCache(cache_dir)
    barrier.wait(timeout=30)
    try:
        got = cache.get(art.key)
    except Exception as err:  # noqa: BLE001 — the test wants the type
        return f"raised {type(err).__name__}: {err}"
    if got is not None:
        return "returned an artifact from corrupt bytes"
    return ("corrupt" if cache.stats.corrupt else "miss")


def test_concurrent_corrupt_entry_recovery(artifact, tmp_path):
    """Two+ processes recovering one corrupt entry must not surface
    ``FileNotFoundError``: the loser of the unlink race swallows it and
    reports a plain miss/corrupt outcome."""
    cache_dir = tmp_path / "cache"
    art = Bitstream.load(artifact)
    cache = CompileCache(cache_dir)
    path = cache.put(art)
    path.write_bytes(b'{"truncated": ')  # a torn write
    workers = 4
    with multiprocessing.Manager() as manager:
        barrier = manager.Barrier(workers)
        tasks = [(str(artifact), str(cache_dir), barrier)] * workers
        with multiprocessing.Pool(workers) as pool:
            outcomes = pool.map(_recover, tasks)
    # nobody raised and nobody decoded garbage; at least one worker saw
    # (and dropped) the corrupt entry
    assert all(o in ("corrupt", "miss") for o in outcomes), outcomes
    assert "corrupt" in outcomes
    assert not path.exists()
    # the slot is immediately rewritable and serves clean afterwards
    cache2 = CompileCache(cache_dir)
    cache2.put(art)
    got = cache2.get(art.key)
    assert got is not None and got.content_hash == art.content_hash


def test_save_is_atomic_and_litter_free(artifact, tmp_path):
    art = Bitstream.load(artifact)
    out = tmp_path / "deep" / "nested" / "a.json"
    art.save(out)
    art.save(out)  # overwrite in place is fine
    assert json.loads(out.read_text())["app"] == "cache-race"
    assert list(out.parent.glob("*.tmp")) == []


def test_stats_snapshot_is_a_detached_copy(artifact, tmp_path):
    cache = CompileCache(tmp_path / "cache")
    art = Bitstream.load(artifact)
    assert cache.get(art.key) is None
    cache.put(art)
    snap = cache.stats_snapshot()
    assert snap == {"hits": 0, "misses": 1, "stores": 1, "corrupt": 0,
                    "lookups": 1}
    snap["hits"] = 999  # mutating the snapshot must not touch the cache
    assert cache.stats.hits == 0
    assert cache.stats_snapshot()["hits"] == 0
