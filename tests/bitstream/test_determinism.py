"""Golden determinism: compilation is a pure function of its inputs.

Artifacts are canonical JSON produced by traversing only *ordered*
containers, so the same (app, scale, params, options) must yield
byte-identical bitstreams in any process — regardless of
``PYTHONHASHSEED``, dict insertion history, or anything else ambient.
The golden hashes below pin that property per registry app; a diff
here means the compiler's output changed and the schema/cache story
needs a deliberate decision (bump ``SCHEMA_VERSION`` or accept the new
hashes).

Regenerate after an intentional compiler change with::

    PYTHONPATH=src python -c "
    from repro.apps import ALL_APPS
    from repro.compiler.artifact import compile_to_bitstream
    for a in ALL_APPS:
        b = compile_to_bitstream(a.name, 'tiny')
        print(f'    \"{a.name}\": \"{b.content_hash}\",')"
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps import ALL_APPS
from repro.compiler.artifact import compile_to_bitstream

GOLDEN_TINY = {
    "innerproduct": "2a5dd66db5972d1165278275de3bf842"
                    "0777994c5ee11961626736ba10ce6bfc",
    "outerproduct": "c3f872250ec40dacd98f1a75b421cfed"
                    "6fd85b96c95e4ca9f424ee8e4cadd5ca",
    "blackscholes": "a3a73e6eadf5beaabd177a0030c43fe6"
                    "a047a3fd0e0519e9a967a754874e01cc",
    "tpchq6": "0b524445c368a4bf7437f46950df03d6"
              "5d1ca28b873ab69de4601623a07d78bc",
    "gemm": "fb214e7a6a748a173ad1649a5ba4c203"
            "24791b56e625b2e8f3bd479b4fb61aaa",
    "gda": "add3505e07dca270a38122258b33dd93"
           "fd9472935b48ee2ff1dbedd56ccb75e8",
    "logreg": "bc198a331e08b5f2a0857bc65dcbec02"
              "1cb7cdd29cbf5dc61b9ed2c1e80e5310",
    "sgd": "79e5023510c666ad64bc1b086744a63c"
           "581f66cdf23662598433e02b01e9eaa8",
    "kmeans": "6971c74816c6f43c9689b6204bd8f09e"
              "628704345e07b3f9c4aedd034240dfd3",
    "cnn": "1baa47cf1813d7f65d30e047aad898e5"
           "498f9d8928ccff09d1a01425109674e5",
    "smdv": "a48358da55b48c5fc45eeeb2a0cf6157"
            "119f789ffd3a70c19eb0d2d7c6a29927",
    "pagerank": "f0a018df0db4207e2b495378ae29d5a1"
                "685604768f66016a55607954b755fef7",
    "bfs": "88241642df0ada49a689f0bb8fa354f8"
           "0296ab527e80b20ac1f3b0f0f3d7eb10",
}


def test_golden_covers_every_registry_app():
    assert set(GOLDEN_TINY) == {a.name for a in ALL_APPS}


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_content_hash_pinned(app):
    artifact = compile_to_bitstream(app.name, "tiny")
    assert artifact.content_hash == GOLDEN_TINY[app.name], (
        f"{app.name} artifact bytes changed — see the module docstring "
        "for the regeneration recipe")


_SNIPPET = ("import sys\n"
            "from repro.compiler.artifact import compile_to_bitstream\n"
            "sys.stdout.write("
            "compile_to_bitstream('kmeans', 'tiny').content_hash)\n")


def test_fresh_processes_agree_bytewise():
    """Two interpreters with different hash seeds produce the same
    artifact — the golden test's premise, checked explicitly."""
    src = str(Path(__file__).resolve().parents[2] / "src")
    hashes = []
    for seed in ("0", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", _SNIPPET],
                              env=env, capture_output=True, text=True,
                              check=True)
        hashes.append(proc.stdout.strip())
    assert hashes[0] == hashes[1] == GOLDEN_TINY["kmeans"]
