"""Bitstream artifacts: round-trip fidelity, cache behaviour, schema.

The contract under test: a saved artifact, loaded in a different
process (or the same one), simulates *identically* to the in-memory
compile it was frozen from — same cycle counts, same results — and the
cache never changes what a run computes, only whether the compiler ran.
"""

import dataclasses

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.arch.params import DEFAULT
from repro.bitstream import (SCHEMA_VERSION, Bitstream, CompileCache,
                             CompileOptions, compile_key)
from repro.compiler.artifact import compile_app_cached, compile_to_bitstream
from repro.errors import ConfigError


def _run(artifact, names):
    machine = artifact.machine()
    stats = machine.run()
    return stats, {n: machine.result(n) for n in names}


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
def test_artifact_simulates_identically(app, tmp_path):
    artifact = compile_to_bitstream(app.name, "tiny")
    path = artifact.save(tmp_path / f"{app.name}.bitstream.json")
    clone = Bitstream.load(path)
    assert clone.content_hash == artifact.content_hash
    assert clone.key == artifact.key

    expected = app.expected(app.build("tiny"))
    stats, results = _run(artifact, expected)
    stats2, results2 = _run(clone, expected)
    assert stats2.cycles == stats.cycles
    assert stats2.ops_executed == stats.ops_executed
    assert stats2.busy_cycles == stats.busy_cycles
    for name in expected:
        np.testing.assert_array_equal(np.asarray(results2[name]),
                                      np.asarray(results[name]))
    app.check(clone.dhdl, results2, expected)


def test_cache_miss_then_hit(tmp_path):
    cache = CompileCache(tmp_path)
    art, outcome = compile_app_cached("gemm", "tiny", cache=cache)
    assert outcome == "miss"
    assert (cache.stats.misses, cache.stats.stores) == (1, 1)

    art2, outcome2 = compile_app_cached("gemm", "tiny", cache=cache)
    assert outcome2 == "hit"
    assert art2.content_hash == art.content_hash
    assert cache.entries() == 1

    # layout: <root>/bitstreams-v<schema>/<key[:2]>/<key>.json
    entry = cache.path_for(art.key)
    assert entry.exists()
    rel = entry.relative_to(tmp_path)
    assert rel.parts[0] == f"bitstreams-v{SCHEMA_VERSION}"
    assert rel.parts[1] == art.key[:2]
    assert rel.parts[2] == f"{art.key}.json"


def test_cache_off_still_compiles():
    art, outcome = compile_app_cached("gemm", "tiny", cache=None)
    assert outcome == "off"
    assert art.app == "gemm"


def test_corrupt_entry_is_dropped_and_recompiled(tmp_path):
    cache = CompileCache(tmp_path)
    art, _ = compile_app_cached("gemm", "tiny", cache=cache)
    cache.path_for(art.key).write_text("{this is not json")

    fresh = CompileCache(tmp_path)
    art2, outcome = compile_app_cached("gemm", "tiny", cache=fresh)
    assert outcome == "miss"  # corrupt entry dropped, recompiled
    assert art2.content_hash == art.content_hash
    # corruption is accounted apart from plain misses
    assert (fresh.stats.corrupt, fresh.stats.misses) == (1, 0)
    assert fresh.stats.lookups == 1
    assert "1 corrupt" in fresh.stats.summary()
    _, outcome3 = compile_app_cached("gemm", "tiny", cache=fresh)
    assert outcome3 == "hit"  # ... and the rewritten entry is good


@pytest.mark.parametrize("payload", [
    b"",                               # truncated write
    b"\xff\xfe garbage",               # not UTF-8
    b"[1, 2, 3]",                      # JSON, wrong shape
    b'{"schema": 1}',                  # missing fields
])
def test_undecodable_payloads_count_as_corrupt(tmp_path, payload):
    cache = CompileCache(tmp_path)
    art, _ = compile_app_cached("gemm", "tiny", cache=cache)
    entry = cache.path_for(art.key)
    entry.write_bytes(payload)
    fresh = CompileCache(tmp_path)
    assert fresh.get(art.key) is None
    assert fresh.stats.corrupt == 1
    assert not entry.exists()  # dropped to make room for a re-put


def test_transient_read_error_is_miss_without_unlink(tmp_path,
                                                     monkeypatch):
    cache = CompileCache(tmp_path)
    art, _ = compile_app_cached("gemm", "tiny", cache=cache)
    entry = cache.path_for(art.key)

    from pathlib import Path
    real_read = Path.read_bytes

    def flaky_read(self):
        if self == entry:
            raise OSError(5, "Input/output error")
        return real_read(self)

    fresh = CompileCache(tmp_path)
    monkeypatch.setattr(Path, "read_bytes", flaky_read)
    assert fresh.get(art.key) is None
    assert (fresh.stats.misses, fresh.stats.corrupt) == (1, 0)
    monkeypatch.undo()
    # the entry survived the transient failure and still hits
    assert entry.exists()
    assert fresh.get(art.key) is not None
    assert fresh.stats.hits == 1


def test_programming_bug_in_decode_propagates(tmp_path, monkeypatch):
    """A bug inside Bitstream.from_dict must surface, not silently
    degrade every lookup into a recompile."""
    cache = CompileCache(tmp_path)
    art, _ = compile_app_cached("gemm", "tiny", cache=cache)

    def broken_from_dict(data):
        raise AttributeError("'NoneType' object has no attribute 'x'")

    fresh = CompileCache(tmp_path)
    monkeypatch.setattr(Bitstream, "from_dict",
                        staticmethod(broken_from_dict))
    with pytest.raises(AttributeError):
        fresh.get(art.key)
    # ... and the (healthy) entry was not unlinked
    assert cache.path_for(art.key).exists()


def test_cache_stats_merge_folds_corrupt(tmp_path):
    from repro.bitstream.cache import CacheStats
    a = CacheStats(hits=2, misses=1, stores=1, corrupt=1)
    b = CacheStats(hits=1, misses=0, stores=0, corrupt=2)
    a.merge(b)
    assert (a.hits, a.misses, a.corrupt) == (3, 1, 3)
    assert a.lookups == 7


def test_schema_mismatch_rejected():
    art = compile_to_bitstream("gemm", "tiny")
    stale = art.to_dict()
    stale["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(ConfigError):
        Bitstream.from_dict(stale)


def test_compile_key_covers_every_input():
    base = compile_key("gemm", "tiny")
    assert base == compile_key("gemm", "tiny")  # deterministic
    assert compile_key("gemm", "small") != base
    assert compile_key("kmeans", "tiny") != base
    assert compile_key(
        "gemm", "tiny",
        options=CompileOptions(tile_words=256)) != base
    bigger = dataclasses.replace(DEFAULT, num_ags=DEFAULT.num_ags + 2)
    assert compile_key("gemm", "tiny", params=bigger) != base


def test_content_hash_is_canonical_bytes(tmp_path):
    art = compile_to_bitstream("tpchq6", "tiny")
    again = compile_to_bitstream("tpchq6", "tiny")
    assert art.to_bytes() == again.to_bytes()
    assert art.content_hash == again.content_hash


# -- CLI surface ------------------------------------------------------------

def test_cli_compile_then_run_artifact(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "gemm.bitstream.json"
    assert main(["compile", "gemm", "--scale", "tiny",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "compiled and cached" in text

    assert main(["compile", "gemm", "--scale", "tiny",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "loaded from cache" in capsys.readouterr().out

    assert main(["run", "--artifact", str(out)]) == 0
    text = capsys.readouterr().out
    assert "VALIDATED" in text
    assert "cycles" in text


def test_cli_run_artifact_rejects_floorplan(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "gemm.bitstream.json"
    assert main(["compile", "gemm", "--scale", "tiny", "--no-cache",
                 "--out", str(out)]) == 0
    capsys.readouterr()
    assert main(["run", "--artifact", str(out), "--floorplan"]) == 2


def test_cli_run_needs_app_or_artifact(capsys):
    from repro.cli import main
    assert main(["run"]) == 2
