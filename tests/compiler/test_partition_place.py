"""Unit tests for partitioning and placement/routing."""

import pytest

from repro.arch.params import DEFAULT, PcuParams
from repro.compiler.partition import (chip_fits, feasible, partition_pcu,
                                      partition_pmu)
from repro.compiler.place_route import Fabric
from repro.compiler.scheduling import StageSchedule
from repro.errors import MappingError


def sched(stages=6, live=3, vin=2, vout=1, sin=2, sout=1, reduce=0):
    return StageSchedule(stages=[None] * stages, max_live=live,
                         vector_reads=vin, vector_writes=vout,
                         scalar_reads=sin, scalar_writes=sout,
                         reduction_stages=reduce)


# -- partitioning ---------------------------------------------------------------

def test_small_body_fits_one_pcu():
    part = partition_pcu(sched(stages=4), DEFAULT.pcu)
    assert part.num_pcus == 1
    assert part.pipeline_depth == 4
    assert part.wasted_stages == 2


def test_deep_body_splits():
    part = partition_pcu(sched(stages=20), DEFAULT.pcu)
    assert part.num_pcus == 4
    # chain pays one boundary register per hop
    assert part.pipeline_depth == 20 + 3


def test_register_pressure_forces_shorter_chunks():
    relaxed = partition_pcu(sched(stages=12, live=4), DEFAULT.pcu)
    pressured = partition_pcu(sched(stages=12, live=14), DEFAULT.pcu)
    assert pressured.num_pcus > relaxed.num_pcus


def test_vector_io_limits_cut_width():
    narrow_pcu = PcuParams(vector_in=1)
    wide_pcu = PcuParams(vector_in=10)
    body = sched(stages=12, live=5, vin=4)
    assert partition_pcu(body, narrow_pcu).num_pcus >= \
        partition_pcu(body, wide_pcu).num_pcus


def test_feasibility_limits():
    assert feasible(sched(), DEFAULT.pcu)
    assert not feasible(sched(sin=100), DEFAULT.pcu)
    assert not feasible(sched(vin=100), DEFAULT.pcu)
    assert not feasible(sched(live=100), DEFAULT.pcu)


def test_pmu_partition_capacity():
    one = partition_pmu(1000, 1, 16, DEFAULT.pmu)
    assert one.num_pmus == 1
    # 256KB per PMU = 65536 words; double-buffered 50k words -> 2 PMUs
    two = partition_pmu(50_000, 2, 16, DEFAULT.pmu)
    assert two.num_pmus == 2


def test_pmu_partition_rejects_giant_tiles():
    with pytest.raises(MappingError):
        partition_pmu(10_000_000, 2, 16, DEFAULT.pmu)


def test_chip_fits():
    chip_fits(10, 10, 64, 64)
    with pytest.raises(MappingError):
        chip_fits(65, 10, 64, 64)
    with pytest.raises(MappingError):
        chip_fits(10, 65, 64, 64)


# -- placement / routing ------------------------------------------------------------

def test_checkerboard_split():
    fabric = Fabric(DEFAULT)
    assert len(fabric.free_pcus) == 64
    assert len(fabric.free_pmus) == 64


def test_pmu_fraction_changes_mix():
    fabric = Fabric(DEFAULT, pmu_fraction=2 / 3)
    assert len(fabric.free_pmus) > len(fabric.free_pcus)
    total = len(fabric.free_pmus) + len(fabric.free_pcus)
    assert total == 128


def test_placement_allocates_and_counts():
    fabric = Fabric(DEFAULT)
    sites = fabric.place_pcus("k", 3)
    assert len(sites) == 3
    assert fabric.pcus_used() == 3
    assert fabric.pmus_used() == 0


def test_placement_prefers_nearby_sites():
    fabric = Fabric(DEFAULT)
    fabric.place_pmus("mem", 1, near=(8, 4))
    site = fabric.placed["mem"][0]
    assert abs(site[0] - 8) + abs(site[1] - 4) <= 2


def test_placement_exhaustion():
    fabric = Fabric(DEFAULT)
    fabric.place_pcus("big", 64)
    with pytest.raises(MappingError):
        fabric.place_pcus("more", 1)


def test_routing_finds_paths_and_counts_switches():
    fabric = Fabric(DEFAULT)
    fabric.place_pcus("src", 1, near=(0, 0))
    fabric.place_pmus("dst", 1, near=(10, 6))
    net = fabric.route("src", "dst")
    assert net.hops >= 1
    assert fabric.switches_used() >= net.hops


def test_routing_respects_capacity():
    fabric = Fabric(DEFAULT, tracks_per_link=1)
    fabric.place_pcus("a", 1, near=(0, 0))
    fabric.place_pmus("b", 1, near=(0, 1))
    # two disjoint 2-hop paths exist; the third route cannot leave the
    # source switch and must fail
    first = fabric.route("a", "b")
    second = fabric.route("a", "b")
    assert first.path != second.path  # capacity forced a detour
    with pytest.raises(MappingError):
        fabric.route("a", "b")


def test_routing_unplaced_endpoint():
    fabric = Fabric(DEFAULT)
    fabric.place_pcus("a", 1)
    with pytest.raises(MappingError):
        fabric.route("a", "ghost")
