"""Region-constrained placement and routing.

Region compiles are the foundation of multi-tenancy: every site a
constrained compile allocates must lie inside the requested rectangle,
sites outside stay untouched, and a footprint that exceeds the region
must fail loudly — the historical bug class here was placement
silently assuming a (0, 0) origin and spilling past the rectangle,
which would let co-resident tenants overlap.
"""

import pytest

from repro.arch.params import DEFAULT
from repro.compiler import compile_program
from repro.compiler.artifact import compile_to_bitstream
from repro.compiler.partition import region_fits
from repro.compiler.place_route import (Fabric, Region, region_capacity,
                                        site_kinds)
from repro.errors import MappingError


# ---------------------------------------------------------------------------
# Region geometry
# ---------------------------------------------------------------------------


def test_region_validate_rejects_out_of_grid():
    with pytest.raises(MappingError, match="does not fit"):
        Region(12, 0, 8, 2).validate(DEFAULT)
    with pytest.raises(MappingError, match="empty"):
        Region(0, 0, 0, 2).validate(DEFAULT)


def test_region_capacity_partitions_the_grid():
    """Disjoint regions tiling the grid account for every site, and
    each site keeps the kind the full-grid checkerboard gives it."""
    kinds = site_kinds(DEFAULT)
    left = Region(0, 0, 8, DEFAULT.grid_rows)
    right = Region(8, 0, DEFAULT.grid_cols - 8, DEFAULT.grid_rows)
    lp, lm = region_capacity(DEFAULT, left)
    rp, rm = region_capacity(DEFAULT, right)
    assert lp + rp == sum(1 for k in kinds.values() if k == "pcu")
    assert lm + rm == sum(1 for k in kinds.values() if k == "pmu")
    assert lp + lm == left.area and rp + rm == right.area


def test_checkerboard_anchored_to_full_grid():
    """A region's site kinds never depend on the region itself."""
    kinds = site_kinds(DEFAULT)
    region = Region(5, 2, 6, 4)
    fabric = Fabric(region=region)
    for site in fabric.free_pcus:
        assert kinds[site] == "pcu" and region.contains(site)
    for site in fabric.free_pmus:
        assert kinds[site] == "pmu" and region.contains(site)


# ---------------------------------------------------------------------------
# Constrained placement
# ---------------------------------------------------------------------------


def test_placement_never_escapes_the_region():
    region = Region(9, 3, 4, 3)
    fabric = Fabric(region=region)
    pcus = fabric.place_pcus("u", 3, near=(0, 0))
    pmus = fabric.place_pmus("m", 3, near=(0, 0))
    for site in pcus + pmus:
        assert region.contains(site), f"{site} outside {region}"


def test_footprint_exceeding_region_raises_clearly():
    region = Region(0, 0, 2, 1)
    fabric = Fabric(region=region)
    cap_pcus, _ = region_capacity(DEFAULT, region)
    fabric.place_pcus("u", cap_pcus)
    with pytest.raises(MappingError) as err:
        fabric.place_pcus("overflow", 1)
    message = str(err.value)
    assert "exceeds region" in message
    assert str(region) in message
    assert "larger region" in message


def test_region_fits_precheck_names_the_shortfall():
    region = Region(0, 0, 4, 1)
    capacity = region_capacity(DEFAULT, region)
    region_fits(capacity[0], capacity[1], region, capacity)  # exact fit
    with pytest.raises(MappingError, match="PCU"):
        region_fits(capacity[0] + 1, 0, region, capacity)
    with pytest.raises(MappingError, match="PMU"):
        region_fits(0, capacity[1] + 1, region, capacity)


def test_region_compile_stays_inside_and_records_region():
    from repro.apps.registry import get_app
    region = Region(0, 4, 8, 4)
    program = get_app("gemm").build("tiny")
    compiled = compile_program(program, region=region)
    assert compiled.config.region == region.as_tuple()
    for placement in compiled.config.sram_place.values():
        for site in placement.pmu_sites:
            assert region.contains(site), \
                f"scratchpad at {site} escapes {region}"


def test_region_compile_too_small_fails_not_spills():
    with pytest.raises(MappingError, match="region"):
        compile_to_bitstream("gemm", "tiny", region=Region(0, 0, 1, 1))


def test_same_region_shape_placement_translates():
    """Anchoring the same shape elsewhere still succeeds — placement
    must not assume a (0, 0) origin."""
    for anchor in ((0, 0), (8, 4), (11, 6)):
        artifact = compile_to_bitstream(
            "gemm", "tiny", region=Region(anchor[0], anchor[1], 5, 2))
        region = Region(*artifact.config.region)
        for placement in artifact.config.sram_place.values():
            for site in placement.pmu_sites:
                assert region.contains(site)
