"""Unit tests for the pattern-to-DHDL lowering strategies."""

import numpy as np
import pytest

from repro.compiler.lowering import Lowerer, lower
from repro.dhdl import (BankingMode, Gather, InnerCompute,
                        OuterController, Scatter, Scheme, StreamStore,
                        TileLoad, TileStore)
from repro.errors import LoweringError
from repro.patterns import Dyn, Fold, Program
from repro.patterns import expr as E


def leaves_of(dhdl, kind):
    return [l for l in dhdl.leaves() if isinstance(l, kind)]


def test_large_array_is_tiled_with_double_buffering():
    p = Program("t")
    n = 100_000  # way over the whole-array budget
    a = p.input("a", (n,), data=np.zeros(n, dtype=np.float32))
    o = p.output("o", (n,))
    p.map("scale", o, n, lambda i: a[i] * 2.0)
    dhdl = lower(p)
    loads = leaves_of(dhdl, TileLoad)
    assert loads
    a_tiles = [l for l in loads if l.dram.name == "a"]
    assert a_tiles[0].sram.nbuf == 2  # double buffered
    assert a_tiles[0].tile_shape[0] < n


def test_small_array_loaded_whole():
    p = Program("t")
    a = p.input("a", (64,), data=np.zeros(64, dtype=np.float32))
    o = p.output("o")
    p.fold("sum", o, 64, 0.0, lambda i: a[i], lambda x, y: x + y)
    dhdl = Lowerer(p, tile_words=1024).lower()
    loads = leaves_of(dhdl, TileLoad)
    assert any(l.tile_shape == (64,) for l in loads)


def test_offchip_random_reads_become_gathers():
    p = Program("t")
    idx = p.input("idx", (32,), E.INT32,
                  data=np.zeros(32, dtype=np.int32))
    table = p.input("tbl", (64,), data=np.zeros(64, dtype=np.float32),
                    offchip=True)
    o = p.output("o", (32,))
    p.map("g", o, 32, lambda i: table[idx[i]])
    dhdl = lower(p)
    gathers = leaves_of(dhdl, Gather)
    assert len(gathers) == 1
    assert gathers[0].dst_sram.banking is BankingMode.DUPLICATION


def test_onchip_random_reads_use_duplication_buffer():
    p = Program("t")
    idx = p.input("idx", (32,), E.INT32,
                  data=np.zeros(32, dtype=np.int32))
    table = p.input("tbl", (64,), data=np.zeros(64, dtype=np.float32))
    o = p.output("o", (32,))
    p.map("g", o, 32, lambda i: table[idx[i]])
    dhdl = lower(p)
    assert not leaves_of(dhdl, Gather)  # served on chip
    tbl_srams = [s for s in dhdl.srams if s.name.startswith("tbl")]
    assert tbl_srams[0].banking is BankingMode.DUPLICATION


def test_sliding_window_gets_line_buffer():
    p = Program("t")
    img = p.input("img", (16,), data=np.zeros(16, dtype=np.float32))
    o = p.output("o", (14,))
    p.map("blur", o, 14,
          lambda i: Fold(3, 0.0, lambda k: img[i + k] * (1.0 / 3),
                         lambda x, y: x + y))
    dhdl = lower(p)
    img_srams = [s for s in dhdl.srams if s.name.startswith("img")]
    assert img_srams[0].banking is BankingMode.LINE_BUFFER


def test_flatmap_lowered_to_streaming_scope():
    p = Program("t")
    a = p.input("a", (64,), data=np.zeros(64, dtype=np.float32))
    n_out = p.output("n", (), E.INT32)
    kept = p.output("kept", (Dyn(n_out),), max_elems=64)
    p.filter("pos", kept, n_out, 64, lambda i: a[i] > 0.0,
             lambda i: a[i])
    dhdl = lower(p)
    streams = [c for c in dhdl.controllers()
               if isinstance(c, OuterController)
               and c.scheme is Scheme.STREAMING]
    assert streams
    assert leaves_of(dhdl, StreamStore)


def test_scatter_step_lowered_to_scatter_node():
    p = Program("t")
    idx = p.input("idx", (16,), E.INT32,
                  data=np.arange(16, dtype=np.int32))
    tgt = p.temp("tgt", (16,), E.INT32,
                 data=np.zeros(16, dtype=np.int32))
    p.scatter("sc", tgt, 16, index=lambda i: idx[i],
              value=lambda i: E.to_int(i))
    dhdl = lower(p)
    assert leaves_of(dhdl, Scatter)


def test_loop_becomes_sequential_controller():
    p = Program("t")
    x = p.temp("x", (), E.FLOAT32, data=np.float32(1.0))
    with p.loop("iters", 5):
        p.update("double", x, lambda: x.scalar() * 2.0)
    dhdl = lower(p)
    loops = [c for c in dhdl.controllers()
             if isinstance(c, OuterController)
             and c.scheme is Scheme.SEQUENTIAL and c.chain is not None]
    assert any(c.max_trip == 5 for c in loops)


def test_fold_results_map_to_registers():
    p = Program("t")
    a = p.input("a", (64,), data=np.zeros(64, dtype=np.float32))
    o = p.output("o")
    p.fold("sum", o, 64, 0.0, lambda i: a[i], lambda x, y: x + y)
    dhdl = lower(p)
    assert any(name == "o" for name in dhdl.reg_outputs.values())


def test_untileable_huge_array_rejected():
    p = Program("t")
    idx = p.input("idx", (100_000,), E.INT32)
    idx.set_data(np.zeros(100_000, dtype=np.int32))
    o = p.output("o", (64,))
    # random access into a huge *on-chip-required* table: the direct
    # read of idx[i*i] is non-affine and the array cannot be resident
    p.map("bad", o, 64, lambda i: E.to_float(idx[i * i]))
    with pytest.raises(LoweringError):
        lower(p)


def test_bank_stride_configured_for_column_access():
    p = Program("t")
    m = p.input("m", (16, 16), data=np.zeros((16, 16),
                                             dtype=np.float32))
    o = p.output("o", (16,))
    # column sums: vector lanes stride by the row length
    p.map("colsum", o, 16,
          lambda j: Fold(16, 0.0, lambda i: m[i, j],
                         lambda x, y: x + y)).set_par(1, inner=16)
    dhdl = lower(p)
    m_srams = [s for s in dhdl.srams if s.name.startswith("m")]
    assert m_srams[0].bank_stride == 16


def test_address_class_marking():
    p = Program("t")
    a = p.input("a", (64,), data=np.zeros(64, dtype=np.float32))
    o = p.output("o")
    p.fold("sum", o, 64, 0.0, lambda i: a[i], lambda x, y: x + y)
    dhdl = lower(p)
    inits = [l for l in dhdl.leaves() if isinstance(l, InnerCompute)
             and l.address_class]
    bodies = [l for l in dhdl.leaves() if isinstance(l, InnerCompute)
              and not l.address_class]
    assert inits and bodies
