"""Unit tests for N-buffer depth inference (Section 3.5)."""

import numpy as np

from repro.compiler.buffering import infer_buffer_depths
from repro.compiler.lowering import lower
from repro.patterns import Fold, Program
from repro.patterns import expr as E


def test_adjacent_producer_consumer_double_buffers():
    p = Program("t")
    n = 100_000
    a = p.input("a", (n,), data=np.zeros(n, dtype=np.float32))
    o = p.output("o", (n,))
    p.map("scale", o, n, lambda i: a[i] * 2.0)
    dhdl = lower(p)
    a_tiles = [s for s in dhdl.srams if s.name.startswith("a_")]
    assert a_tiles[0].nbuf == 2


def test_gather_chain_gets_deeper_buffers():
    p = Program("t")
    rows = 64
    ptr = p.input("ptr", (rows + 1,), E.INT32,
                  data=np.arange(rows + 1, dtype=np.int32) * 2)
    val = p.input("val", (rows * 2,),
                  data=np.zeros(rows * 2, dtype=np.float32))
    x = p.input("x", (rows,), data=np.zeros(rows, dtype=np.float32),
                offchip=True)
    col = p.input("col", (rows * 2,), E.INT32,
                  data=np.zeros(rows * 2, dtype=np.int32))
    y = p.output("y", (rows,))
    p.map("spmv", y, rows,
          lambda i: Fold((ptr[i], ptr[i + 1]), 0.0,
                         lambda j: val[j] * x[col[j]],
                         lambda a, b: a + b))
    dhdl = lower(p)
    depths = {s.name: s.nbuf for s in dhdl.srams}
    # the gather destination sits several pipeline stages after the
    # pointer tile load, so upstream tiles buffer deeper than 2
    assert max(depths.values()) >= 3


def test_sequential_loop_memories_stay_shallow():
    p = Program("t")
    x = p.temp("x", (), E.FLOAT32, data=np.float32(1.0))
    with p.loop("iters", 3):
        p.update("double", x, lambda: x.scalar() * 2.0)
    dhdl = lower(p)
    assert all(s.nbuf <= 2 for s in dhdl.srams)


def test_depth_is_bounded():
    p = Program("t")
    n = 64
    a = p.input("a", (n,), data=np.zeros(n, dtype=np.float32))
    # a chain of dependent steps all reading the first tile
    prev = a
    for k in range(6):
        nxt = p.temp(f"s{k}", (n,)) if k < 5 else p.output("o", (n,))
        p.map(f"step{k}", nxt, n,
              lambda i, src=prev: src[i] + 1.0)
        prev = nxt
    dhdl = lower(p)
    depths = infer_buffer_depths(dhdl, max_depth=4)
    assert max(depths.values()) <= 4


def test_inference_improves_pipelining():
    """Deeper buffers must never slow the pipeline down."""
    from repro.apps import get_app
    from repro.compiler import compile_program
    from repro.sim import Machine
    compiled = compile_program(get_app("smdv").build("tiny"))
    machine = Machine(compiled.dhdl, compiled.config)
    with_inference = machine.run().cycles

    shallow = compile_program(get_app("smdv").build("tiny"))
    for sram in shallow.dhdl.srams:
        sram.nbuf = 1
    machine = Machine(shallow.dhdl, shallow.config)
    without = machine.run().cycles
    assert with_inference <= without
