"""Tests for outer-loop unrolling (Section 3.6 parallelization)."""

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.dhdl import InnerCompute
from repro.patterns import Fold, Program
from repro.patterns import expr as E
from repro.sim import Machine


def _dot_program(n, outer, tile=None):
    p = Program("u")
    rng = np.random.default_rng(3)
    a_data = rng.standard_normal(n).astype(np.float32)
    b_data = rng.standard_normal(n).astype(np.float32)
    a = p.input("a", (n,), data=a_data)
    b = p.input("b", (n,), data=b_data)
    o = p.output("dot")
    step = p.fold("dp", o, n, 0.0, lambda i: a[i] * b[i],
                  lambda x, y: x + y)
    step.set_par(16, outer=outer)
    if tile:
        step.tile = (tile,)
    return p, float(a_data.astype(np.float64) @ b_data)


def _run(p):
    compiled = compile_program(p, tile_words=256, whole_budget=64)
    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()
    return compiled, machine, stats


def test_unrolled_fold_is_correct():
    p, want = _dot_program(2048, outer=4)
    compiled, machine, stats = _run(p)
    assert machine.scalar("dot") == pytest.approx(want, rel=1e-3)


def test_unrolling_duplicates_inner_controllers():
    p1, _ = _dot_program(2048, outer=1)
    p4, _ = _dot_program(2048, outer=4)
    c1, _, _ = _run(p1)
    c4, _, _ = _run(p4)
    bodies1 = [l for l in c1.dhdl.leaves()
               if isinstance(l, InnerCompute) and not l.address_class]
    bodies4 = [l for l in c4.dhdl.leaves()
               if isinstance(l, InnerCompute) and not l.address_class]
    # 4 copies + 1 merge controller
    assert len(bodies4) == 4 * len(bodies1) + 1
    assert c4.config.pcus_used > c1.config.pcus_used


def test_unrolling_speeds_up_compute():
    p1, _ = _dot_program(4096, outer=1)
    p4, _ = _dot_program(4096, outer=4)
    _, _, s1 = _run(p1)
    _, _, s4 = _run(p4)
    assert s4.cycles < s1.cycles


def test_unroll_ignored_when_too_few_tiles():
    # 256 elements / 256-word tiles = 1 tile: nothing to unroll
    p, want = _dot_program(256, outer=4)
    compiled, machine, _ = _run(p)
    assert machine.scalar("dot") == pytest.approx(want, rel=1e-3)
    merges = [l for l in compiled.dhdl.leaves()
              if "merge" in l.name]
    assert not merges


def test_unrolled_map_partitions_output_correctly():
    n = 1024
    p = Program("um")
    data = np.arange(n, dtype=np.float32)
    a = p.input("a", (n,), data=data)
    o = p.output("o", (n,))
    p.map("x2", o, n, lambda i: a[i] * 2.0).set_par(16, outer=2)
    compiled = compile_program(p, tile_words=128, whole_budget=64)
    machine = Machine(compiled.dhdl, compiled.config)
    machine.run()
    np.testing.assert_allclose(machine.result("o"), data * 2)


def test_unroll_with_non_dividing_extent():
    # 3 tiles of 256 across 2 copies: one copy sees the ragged tail
    n = 768
    p = Program("ur")
    data = np.ones(n, dtype=np.float32)
    a = p.input("a", (n,), data=data)
    o = p.output("s")
    p.fold("sum", o, n, 0.0, lambda i: a[i],
           lambda x, y: x + y).set_par(16, outer=2)
    compiled = compile_program(p, tile_words=256, whole_budget=64)
    machine = Machine(compiled.dhdl, compiled.config)
    machine.run()
    assert machine.scalar("s") == pytest.approx(768.0)


def test_unroll_rejected_factor():
    p, _ = _dot_program(2048, outer=1)
    step = next(iter(p.walk_steps()))
    with pytest.raises(Exception):
        step.set_par(16, outer=0)


def test_multi_width_fold_merge():
    """Unrolled argmin-style fold: cross-referencing combine survives
    the partial merge."""
    n = 512
    p = Program("am")
    rng = np.random.default_rng(9)
    data = rng.standard_normal(n).astype(np.float32)
    a = p.input("a", (n,), data=data)
    best = p.output("best")
    arg = p.output("arg", (), E.INT32)
    step = p.fold("argmin", (best, arg), n, (1e30, 0),
                  lambda i: (a[i], E.to_int(i)),
                  lambda x, y: (E.select(y[0] < x[0], y[0], x[0]),
                                E.select(y[0] < x[0], y[1], x[1])))
    step.set_par(16, outer=2)
    compiled = compile_program(p, tile_words=128, whole_budget=64)
    machine = Machine(compiled.dhdl, compiled.config)
    machine.run()
    assert machine.scalar("arg") == int(np.argmin(data))
    assert machine.scalar("best") == pytest.approx(float(data.min()),
                                                   rel=1e-4)
