"""Unit tests for expression rewriting, simplification, and stage
scheduling."""

import pytest

from repro.compiler.rewrite import rewrite, simplify, substitute
from repro.compiler.scheduling import schedule
from repro.dhdl import (Counter, CounterChain, EmitStmt, FifoDecl,
                        InnerCompute, ReduceStmt, Reg, Sram, WriteStmt)
from repro.patterns import Array
from repro.patterns import expr as E


# -- rewrite -----------------------------------------------------------------

def test_substitute_replaces_indices():
    i, j = E.Idx("i"), E.Idx("j")
    root = i * 2 + i
    out = substitute(root, {i: j})
    indices = E.collect_indices(out)
    assert indices == (j,)


def test_rewrite_preserves_sharing():
    i = E.Idx("i")
    shared = i * 2
    root = shared + shared
    out = rewrite(root, lambda n: None)
    assert out is root  # nothing changed -> same object


def test_rewrite_rebuilds_loads():
    a = Array("a", (8,))
    i, j = E.Idx("i"), E.Idx("j")
    out = substitute(a[i], {i: j})
    assert isinstance(out, E.Load)
    assert out.indices[0] is j


def test_simplify_identities():
    i = E.Idx("i")
    assert simplify(i * 1) is i
    assert simplify(i + 0) is i
    assert simplify(E.wrap(0) + i) is i
    assert simplify(i - 0) is i
    folded = simplify(E.wrap(3) + E.wrap(4))
    assert isinstance(folded, E.Const) and folded.value == 7


def test_simplify_nested():
    i = E.Idx("i")
    out = simplify((i - (E.wrap(0) + i.__class__("o") * 1)))
    # i - o  (mul-by-1 and add-0 folded away)
    assert isinstance(out, E.BinOp) and out.op == "sub"
    assert out.lhs is i
    assert isinstance(out.rhs, E.Idx)


def test_simplify_select_constant_condition():
    i = E.Idx("i")
    taken = simplify(E.select(E.wrap(True), i, i * 2))
    assert taken is i


def test_simplify_preserves_semantics():
    from repro.patterns.executor import Env, eval_expr
    from repro.patterns.program import Program
    i = E.Idx("i")
    root = (i * 1 + 0) * 3 + (E.wrap(2) + E.wrap(5))
    slim = simplify(root)
    env = Env(Program("t"))
    for value in (0, 1, 7):
        assert eval_expr(root, env, {i: value}) == \
            eval_expr(slim, env, {i: value})


# -- scheduling ----------------------------------------------------------------

def _leaf(stmts, par=16, extent=64):
    i = E.Idx("i")
    ch = CounterChain([Counter(0, extent, par=par)], [i])
    return InnerCompute("t", ch, stmts(i)), i


def test_schedule_counts_value_ops_only():
    a = Sram("a", (64,), E.FLOAT32)
    out = Sram("o", (64,), E.FLOAT32)
    leaf, i = _leaf(lambda i: [WriteStmt(out, (i + 1 - 1,),
                                         a[i * 1] * 2.0 + 1.0)])
    sched = schedule(leaf)
    # mul + add of the value; address arithmetic is PMU-side
    assert len(sched.stages) == 2


def test_schedule_reduction_tree_stages():
    a = Sram("a", (64,), E.FLOAT32)
    acc = Reg("acc")
    va, vb = E.Var("a0"), E.Var("b0")
    leaf, i = _leaf(lambda i: [ReduceStmt((acc,), (a[i],), (va + vb,),
                                          (va,), (vb,), (0.0,))])
    sched = schedule(leaf)
    # 16 lanes: log2(16)=4 tree levels + 1 accumulate
    assert sched.reduction_stages == 5
    assert sched.num_stages == 5  # value is a bare load: 0 compute ops


def test_schedule_scalar_lane_reduction():
    a = Sram("a", (64,), E.FLOAT32)
    acc = Reg("acc")
    va, vb = E.Var("a0"), E.Var("b0")
    i = E.Idx("i")
    ch = CounterChain([Counter(0, 64, par=1)], [i])
    leaf = InnerCompute("t", ch,
                        [ReduceStmt((acc,), (a[i],), (va + vb,), (va,),
                                    (vb,), (0.0,))])
    sched = schedule(leaf)
    assert sched.reduction_stages == 1  # accumulate only, no tree


def test_schedule_io_counts():
    a = Sram("a", (64,), E.FLOAT32)
    b = Sram("b", (64,), E.FLOAT32)
    r = Reg("scale")
    out = Sram("o", (64,), E.FLOAT32)
    leaf, i = _leaf(lambda i: [WriteStmt(out, (i,),
                                         (a[i] + b[i]) * r.read())])
    sched = schedule(leaf)
    assert sched.vector_reads == 2    # a and b
    assert sched.scalar_reads >= 1    # the register
    assert sched.vector_writes == 1


def test_schedule_emit_counts_as_vector_write():
    a = Sram("a", (64,), E.FLOAT32)
    fifo = FifoDecl("f")
    leaf, i = _leaf(lambda i: [EmitStmt(fifo, a[i] > 0.0, a[i])])
    sched = schedule(leaf)
    assert sched.vector_writes >= 1
    assert len(sched.stages) == 1     # the comparison


def test_max_live_tracks_dag_width():
    a = Sram("a", (64,), E.FLOAT32)
    out = Sram("o", (64,), E.FLOAT32)
    # wide expression: four independent products summed pairwise
    leaf, i = _leaf(lambda i: [WriteStmt(
        out, (i,),
        (a[i] * 1.5 + a[i] * 2.5) + (a[i] * 3.5 + a[i] * 4.5))])
    sched = schedule(leaf)
    assert sched.max_live >= 2
