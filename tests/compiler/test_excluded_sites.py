"""Recompiling around failed unit sites (``excluded_sites``)."""

import pytest

from repro.apps.registry import get_app
from repro.arch.params import DEFAULT
from repro.compiler.driver import compile_program
from repro.compiler.place_route import Region
from repro.errors import MappingError


@pytest.fixture(scope="module")
def program():
    return get_app("innerproduct").build("tiny")


def test_excluded_sites_are_never_used(program):
    baseline = compile_program(program)
    # fail every site the baseline used: the recompile must find a
    # completely disjoint placement
    used = sorted({site for sites in baseline.fabric.placed.values()
                   for site in sites})
    rerouted = compile_program(program, excluded_sites=used)
    reused = {site for sites in rerouted.fabric.placed.values()
              for site in sites}
    assert not reused & set(used)
    assert rerouted.config.pcus_used == baseline.config.pcus_used
    assert rerouted.config.pmus_used == baseline.config.pmus_used


def test_excluding_nothing_changes_nothing(program):
    from repro.bitstream.artifact import config_to_dict
    baseline = compile_program(program)
    same = compile_program(program, excluded_sites=[])
    assert same.fabric.placed == baseline.fabric.placed
    assert config_to_dict(same.config) == \
        config_to_dict(baseline.config)


def test_exhaustion_mentions_excluded_sites(program):
    params = DEFAULT
    all_sites = [(c, r) for c in range(params.grid_cols)
                 for r in range(params.grid_rows)]
    with pytest.raises(MappingError) as excinfo:
        compile_program(program, excluded_sites=all_sites)
    assert "excluded as failed" in str(excinfo.value)


def test_region_capacity_discounts_failed_sites(program):
    """A region exactly sized for the design must be rejected once a
    needed site inside it is declared failed."""
    region = Region(0, 0, 4, 4)
    compiled = compile_program(program, region=region)
    used = sorted({site for sites in compiled.fabric.placed.values()
                   for site in sites})
    # fail every site of one kind the design needs inside the region:
    # with a 4x4 region there may still be spares, so fail ALL the
    # region's sites of that kind
    from repro.compiler.place_route import site_kinds
    kinds = site_kinds(params=DEFAULT)
    kind_needed = kinds[used[0]]
    failed = [s for s in region.sites() if kinds[s] == kind_needed]
    with pytest.raises(MappingError):
        compile_program(program, region=region, excluded_sites=failed)
