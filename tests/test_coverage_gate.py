"""The coverage ratchet gate (tools/coverage_gate.py)."""

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
spec = importlib.util.spec_from_file_location(
    "coverage_gate", REPO / "tools" / "coverage_gate.py")
coverage_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(coverage_gate)


def _cov(percent):
    return {"totals": {"percent_covered": percent}}


def test_gate_passes_above_floor():
    summary, status = coverage_gate.gate(
        _cov(72.5), {"min_percent": 70.0})
    assert status == 0
    assert "Pass." in summary
    assert "72.50%" in summary and "70.00%" in summary


def test_gate_fails_below_floor():
    summary, status = coverage_gate.gate(
        _cov(69.9), {"min_percent": 70.0})
    assert status == 1
    assert "FAIL" in summary
    assert "do not lower" in summary


def test_gate_suggests_ratcheting_on_headroom():
    summary, status = coverage_gate.gate(
        _cov(80.0), {"min_percent": 70.0, "ratchet_margin": 3.0})
    assert status == 0
    assert "ratcheting" in summary


def test_main_end_to_end(tmp_path, capsys):
    cov = tmp_path / "coverage.json"
    ratchet = tmp_path / "ratchet.json"
    cov.write_text(json.dumps(_cov(65.0)))
    ratchet.write_text(json.dumps({"min_percent": 60.0}))
    assert coverage_gate.main(["gate", str(cov), str(ratchet)]) == 0
    assert "Coverage ratchet" in capsys.readouterr().out
    ratchet.write_text(json.dumps({"min_percent": 99.0}))
    assert coverage_gate.main(["gate", str(cov), str(ratchet)]) == 1
    assert "FAIL" in capsys.readouterr().err


def test_committed_ratchet_is_wired():
    committed = json.loads(
        (REPO / "benchmarks" / "coverage_ratchet.json").read_text())
    assert committed["min_percent"] >= 60.0
    summary, status = coverage_gate.gate(_cov(100.0), committed)
    assert status == 0


def test_main_usage_error():
    assert coverage_gate.main(["gate"]) == 2
