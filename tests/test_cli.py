"""CLI tests (python -m repro)."""

import pytest

from repro.cli import build_parser, main, render_floorplan


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "112.796" in out
    assert "TFLOPS" in out


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gemm" in out and "pagerank" in out
    assert out.count("\n") == 13


def test_run_validates(capsys):
    assert main(["run", "innerproduct", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "VALIDATED" in out
    assert "cycles" in out


def test_run_with_ir_and_floorplan(capsys):
    assert main(["run", "gemm", "--scale", "tiny", "--ir",
                 "--floorplan"]) == 0
    out = capsys.readouterr().out
    assert "dhdl gemm" in out
    assert "floorplan" in out


def test_run_unknown_app():
    with pytest.raises(KeyError):
        main(["run", "nonexistent"])


def test_table5(capsys):
    assert main(["table5"]) == 0
    assert "Table 5" in capsys.readouterr().out


def test_figure7_unknown_param(capsys):
    assert main(["figure7", "bogus"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_floorplan_marks_units():
    from repro.apps import get_app
    from repro.compiler import compile_program
    compiled = compile_program(get_app("gemm").build("tiny"))
    text = render_floorplan(compiled)
    assert "floorplan" in text
    assert "matmul_body" in text
    # grid is 8 rows of 16 sites
    grid_lines = [l for l in text.splitlines()
                  if l and l[0] in ".,ABCDEFGHIJKLMNOPQRSTUVWXYZ"]
    assert len(grid_lines) == 8


def test_run_with_trace_prints_attribution(capsys):
    assert main(["run", "gemm", "--scale", "tiny", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "VALIDATED" in out
    assert "Stall attribution" in out
    assert "utilization waterfall" in out
    assert "legend:" in out


def test_run_with_trace_path_writes_chrome_json(tmp_path, capsys):
    import json
    path = tmp_path / "trace.json"
    assert main(["run", "gemm", "--scale", "tiny",
                 f"--trace={path}", "--trace-sample", "4"]) == 0
    out = capsys.readouterr().out
    assert "wrote Chrome trace" in out
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]
    assert doc["otherData"]["sample"] == 4


def test_run_without_trace_has_no_attribution(capsys):
    assert main(["run", "gemm", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Stall attribution" not in out
