"""Tenancy packer: disjointness properties and feasibility reports.

The core safety property of a packing — for *every* packing the packer
emits — is that any two tenants claim pairwise-disjoint regions, and
that each tenant's committed artifact only uses unit sites inside its
own region, so no two tenants can ever touch the same PCU, PMU or
scratchpad bank.  The property test sweeps seeded random app subsets;
the rest pin down the planner's shape (first-fit-decreasing, stable
tenant order) and the infeasibility report.
"""

import random

import pytest

from repro.apps import ALL_APPS
from repro.arch.params import DEFAULT
from repro.compiler.place_route import Region, region_capacity
from repro.tenancy import PackReport, pack_apps, plan_regions
from repro.tenancy.packer import Footprint

APP_NAMES = [a.name for a in ALL_APPS]


def _pmu_sites(artifact):
    sites = set()
    for placement in artifact.config.sram_place.values():
        sites.update(placement.pmu_sites)
    return sites


# ---------------------------------------------------------------------------
# The disjointness property
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_random_packings_are_pairwise_disjoint(seed):
    rng = random.Random(seed)
    apps = rng.sample(APP_NAMES, rng.randint(2, 4))
    packing = pack_apps(apps, "tiny")
    assert packing.feasible, packing.reason
    assert [t.app for t in packing.tenants] == apps

    regions = [t.region for t in packing.tenants]
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            assert not a.overlaps(b), f"{a} overlaps {b}"

    # every committed artifact stays inside its region, so unit sites
    # and scratchpad bank assignments are disjoint across tenants
    all_pmu_sites = []
    for tenant in packing.tenants:
        assert tenant.artifact is not None
        assert tenant.artifact.config.region \
            == tenant.region.as_tuple()
        sites = _pmu_sites(tenant.artifact)
        for site in sites:
            assert tenant.region.contains(site), \
                f"{tenant.app} scratchpad at {site} escapes " \
                f"{tenant.region}"
        all_pmu_sites.append(sites)
    for i, a in enumerate(all_pmu_sites):
        for b in all_pmu_sites[i + 1:]:
            assert not (a & b), f"shared scratchpad sites {a & b}"


def test_duplicate_apps_get_distinct_tenants():
    packing = pack_apps(["gemm", "gemm"], "tiny")
    assert packing.feasible, packing.reason
    names = [t.app for t in packing.tenants]
    assert names == ["gemm", "gemm#1"]
    a, b = (t.region for t in packing.tenants)
    assert not a.overlaps(b)


# ---------------------------------------------------------------------------
# Planner shape
# ---------------------------------------------------------------------------


def test_plan_keeps_input_order_but_packs_largest_first():
    small = Footprint("small", 1, 1)
    large = Footprint("large", 20, 20)
    report = plan_regions([small, large])
    assert report.feasible
    assert [t.app for t in report.tenants] == ["small", "large"]
    by_app = {t.app: t for t in report.tenants}
    # FFD: the large app anchors at the origin, the small one fits
    # into remaining space
    assert by_app["large"].region.col0 == 0
    assert by_app["large"].region.row0 == 0
    assert not by_app["small"].region.overlaps(by_app["large"].region)


def test_plan_regions_capacity_covers_footprint():
    fps = [Footprint("a", 5, 7), Footprint("b", 3, 2)]
    report = plan_regions(fps)
    assert report.feasible
    for tenant, fp in zip(report.tenants, fps):
        cap = region_capacity(DEFAULT, tenant.region)
        assert cap == tenant.capacity
        assert cap[0] >= fp.pcus and cap[1] >= fp.pmus
    assert report.sites_used \
        == sum(t.region.area for t in report.tenants)
    assert report.sites_total \
        == DEFAULT.grid_cols * DEFAULT.grid_rows


def test_infeasible_plan_names_the_offender():
    whale = Footprint("whale", 60, 60)
    minnow = Footprint("minnow", 1, 1)
    report = plan_regions([whale, whale, minnow])
    assert not report.feasible
    assert report.failed_app == "whale"
    assert "no free rectangle" in report.reason
    d = report.as_dict()
    assert d["feasible"] is False
    assert d["failed_app"] == "whale"


def test_pack_report_as_dict_is_json_shaped():
    packing = pack_apps(["gemm", "tpchq6"], "tiny")
    d = packing.as_dict()
    assert d["feasible"] is True
    assert len(d["tenants"]) == 2
    for row in d["tenants"]:
        assert isinstance(row["region"], list) and len(row["region"]) == 4
        assert row["pcus"] >= 1 and row["pmus"] >= 1
        assert isinstance(row["capacity"], list)
    assert 0 < d["sites_used"] <= d["sites_total"]


def test_pack_report_type_exported():
    assert isinstance(pack_apps(["gemm"], "tiny"), PackReport)


def test_region_helpers():
    region = Region(2, 1, 4, 3)
    assert region.area == 12
    assert region.contains((2, 1)) and region.contains((5, 3))
    assert not region.contains((6, 1)) and not region.contains((2, 4))
    assert region.overlaps(Region(5, 3, 2, 2))
    assert not region.overlaps(Region(6, 1, 2, 2))
    cap = region_capacity(DEFAULT, region)
    assert cap[0] + cap[1] == region.area
