"""co_run with priorities: validation, neutrality, effectiveness.

The contract mirrors the DRAM/fabric layers: priorities only matter
when they differ.  ``co_run(priorities=(3, 3))`` must be bit-identical
to ``co_run()`` — weights are relative — while a genuinely skewed run
must pull the high-priority tenant's finish cycle forward without
breaking any tenant's validation.
"""

import dataclasses

import pytest

from repro.tenancy import co_run

PAIR = ["gemm", "tpchq6"]
QOS_WORKLOAD = ["gemm", "tpchq6", "tpchq6", "tpchq6"]
QOS_PRIORITIES = (8, 1, 1, 1)


def test_priorities_must_line_up_with_apps():
    with pytest.raises(ValueError, match="priorities"):
        co_run(PAIR, scale="tiny", priorities=(8,))


def test_equal_priorities_identical_to_default():
    plain = co_run(PAIR, scale="tiny")
    equal = co_run(PAIR, scale="tiny", priorities=(3, 3))
    assert equal.qos["weighted"] is False
    assert equal.fabric_cycles == plain.fabric_cycles
    for base, tenant in zip(plain.tenants, equal.tenants):
        assert tenant.finish_cycle == base.finish_cycle
        assert dataclasses.asdict(tenant.stats) \
            == dataclasses.asdict(base.stats)
    assert [t.priority for t in equal.tenants] == [3, 3]


def test_weighted_run_improves_hi_priority_finish():
    plain = co_run(QOS_WORKLOAD, scale="tiny")
    weighted = co_run(QOS_WORKLOAD, scale="tiny",
                      priorities=QOS_PRIORITIES)
    assert weighted.qos["weighted"] is True
    hi_plain, hi = plain.tenants[0], weighted.tenants[0]
    assert hi.app == "gemm"
    assert hi.finish_cycle < hi_plain.finish_cycle
    for tenant in weighted.tenants:
        assert tenant.validated, f"{tenant.name} failed validation"
    arb = weighted.qos["tenants"][hi.name]
    assert arb["priority"] == 8
    assert arb["arb_won"] > 0


def test_as_dict_carries_priority_and_qos():
    result = co_run(PAIR, scale="tiny", priorities=(4, 1))
    d = result.as_dict()
    assert d["qos"]["weighted"] is True
    assert [t["priority"] for t in d["tenants"]] == [4, 1]
    for name, entry in d["qos"]["tenants"].items():
        assert {"priority", "arb_won", "arb_deferred",
                "finish_cycle"} <= set(entry)


def test_bandwidth_aware_pack_report():
    result = co_run(PAIR, scale="tiny", bandwidth_aware=True)
    section = result.pack_report["bandwidth"]
    assert section["tenants"]["gemm"]["class"] == "compute"
    assert section["tenants"]["tpchq6"]["class"] == "memory"
