"""Bandwidth profiling and bandwidth-aware packing.

Profiles are *measured* (a solo sim, not a heuristic), so the class
assignments asserted here — gemm compute-bound, the streaming apps
memory-bound — are properties of the model, and the cache must hand
back the very same measurement to every caller.
"""

import pytest

from repro.tenancy import (BandwidthProfile, compose_batches, pack_apps,
                           profile_app)
from repro.tenancy.profile import (MEMORY_BOUND_UTIL, classify,
                                   clear_profile_cache,
                                   predicted_channel_demand)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_profile_cache()
    yield
    clear_profile_cache()


# ---------------------------------------------------------------------------
# Measurement + classification
# ---------------------------------------------------------------------------


def test_classify_threshold():
    assert classify(MEMORY_BOUND_UTIL) == "memory"
    assert classify(MEMORY_BOUND_UTIL - 0.01) == "compute"
    assert classify(0.9, threshold=0.95) == "compute"


def test_gemm_is_compute_bound():
    profile = profile_app("gemm", "tiny")
    assert profile.klass == "compute"
    assert profile.memory_bound is False
    assert profile.bus_util < MEMORY_BOUND_UTIL
    assert profile.cycles > 0
    assert profile.dram_bytes > 0


def test_streaming_apps_are_memory_bound():
    for app in ("tpchq6", "gda"):
        profile = profile_app(app, "tiny")
        assert profile.memory_bound, \
            f"{app} bus_util={profile.bus_util}"


def test_profile_is_cached():
    first = profile_app("gemm", "tiny")
    assert profile_app("gemm", "tiny") is first
    clear_profile_cache()
    assert profile_app("gemm", "tiny") is not first


def test_as_dict_shape():
    d = profile_app("tpchq6", "tiny").as_dict()
    assert d["app"] == "tpchq6"
    assert d["scale"] == "tiny"
    assert d["class"] == "memory"
    assert set(d) == {"app", "scale", "cycles", "dram_bytes",
                      "bytes_per_cycle", "bus_util", "class"}


def test_predicted_channel_demand():
    profiles = [profile_app(a, "tiny") for a in ("gemm", "tpchq6")]
    demand = predicted_channel_demand(profiles)
    assert set(demand) == {"ch0", "ch1", "ch2", "ch3"}
    want = round(sum(p.bytes_per_cycle for p in profiles) / 4, 3)
    for entry in demand.values():
        assert entry["bytes_per_cycle"] == want
        assert 0.0 < entry["fraction_of_peak"] < 1.0


# ---------------------------------------------------------------------------
# Batch composition
# ---------------------------------------------------------------------------


def _item(name, klass):
    return (name, klass)


def test_compose_batches_spreads_memory_bound():
    items = [_item("m1", "memory"), _item("m2", "memory"),
             _item("c1", "compute"), _item("c2", "compute")]
    groups = compose_batches(items, 2)
    assert len(groups) == 2
    for group in groups:
        classes = sorted(klass for _, klass in group)
        assert classes == ["compute", "memory"]


def test_compose_batches_accepts_profiles_strings_and_none():
    profile = BandwidthProfile(
        app="x", scale="tiny", cycles=10, dram_bytes=640,
        bytes_per_cycle=64.0, bus_util=0.5, klass="memory")
    items = [("a", profile), ("b", None), ("c", "compute"),
             ("d", "memory")]
    groups = compose_batches(items, 2)
    assert sorted(name for g in groups for name, _ in g) \
        == ["a", "b", "c", "d"]
    # the two memory-bound items land in different groups
    homes = [k for k, g in enumerate(groups)
             for name, _ in g if name in ("a", "d")]
    assert homes[0] != homes[1]


def test_compose_batches_preserves_order_within_class():
    items = [_item(f"m{k}", "memory") for k in range(4)]
    groups = compose_batches(items, 2)
    flat = [name for g in groups for name, _ in g]
    assert sorted(flat) == ["m0", "m1", "m2", "m3"]
    # round-robin deal: group 0 gets m0,m2 / group 1 gets m1,m3
    assert [name for name, _ in groups[0]] == ["m0", "m2"]
    assert [name for name, _ in groups[1]] == ["m1", "m3"]


def test_compose_batches_single_group():
    items = [_item("a", "memory"), _item("b", "compute")]
    assert compose_batches(items, 4) == [items[:1] + items[1:]]


def test_compose_batches_rejects_bad_max_size():
    with pytest.raises(ValueError, match="max_size"):
        compose_batches([("a", None)], 0)


def test_compose_batches_empty():
    assert compose_batches([], 3) == []


# ---------------------------------------------------------------------------
# pack_apps integration
# ---------------------------------------------------------------------------


def test_pack_apps_bandwidth_aware_attaches_report():
    packing = pack_apps(["gemm", "tpchq6"], "tiny",
                        bandwidth_aware=True)
    assert packing.feasible, packing.reason
    section = packing.as_dict()["bandwidth"]
    tenants = section["tenants"]
    assert tenants["gemm"]["class"] == "compute"
    assert tenants["tpchq6"]["class"] == "memory"
    assert set(section["predicted_channel_demand"]) \
        == {"ch0", "ch1", "ch2", "ch3"}


def test_pack_apps_default_has_no_bandwidth_section():
    packing = pack_apps(["gemm", "tpchq6"], "tiny")
    assert packing.feasible
    assert packing.as_dict()["bandwidth"] is None
