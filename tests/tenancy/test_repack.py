"""Tenant migration after a region failure: ``repack`` + replay."""

import pytest

from repro.compiler.place_route import Region
from repro.errors import MappingError
from repro.tenancy.packer import PackReport, pack_apps, repack
from repro.tenancy.run import co_run

APPS = ["gemm", "tpchq6"]


@pytest.fixture(scope="module")
def packing():
    report = pack_apps(APPS, "tiny")
    assert report.feasible, report.reason
    return report


def test_repack_migrates_only_overlapping_tenants(packing):
    victim = packing.tenants[0]
    failed = victim.region
    migrated = repack(packing, failed, APPS, "tiny")
    assert migrated.feasible, migrated.reason
    assert len(migrated.tenants) == len(packing.tenants)
    # the victim moved off the failed region...
    assert not migrated.tenants[0].region.overlaps(failed)
    assert migrated.tenants[0].artifact is not None
    # ...the healthy tenant kept its committed artifact untouched
    assert migrated.tenants[1] is packing.tenants[1]
    # and the new regions are still pairwise disjoint
    a, b = (t.region for t in migrated.tenants)
    assert not a.overlaps(b)


def test_repack_without_overlap_is_identity(packing):
    taken = [t.region for t in packing.tenants]
    for col0 in range(16):
        for row0 in range(16):
            probe = Region(col0, row0, 1, 1)
            try:
                probe.validate(packing.tenants[0].artifact.config
                               .params)
            except MappingError:
                continue
            if not any(probe.overlaps(r) for r in taken):
                assert repack(packing, probe, APPS, "tiny") is packing
                return
    pytest.skip("grid fully packed; no untouched probe region")


def test_repacked_fleet_replays_through_co_run(packing):
    failed = packing.tenants[0].region
    migrated = repack(packing, failed, APPS, "tiny")
    result = co_run(APPS, "tiny", packing=migrated)
    assert [t.validated for t in result.tenants] == [True, True]
    assert result.tenants[0].region == \
        migrated.tenants[0].region.as_tuple()


def test_repack_rejects_infeasible_report():
    broken = PackReport(feasible=False, failed_app="gemm",
                        reason="synthetic")
    with pytest.raises(MappingError):
        repack(broken, Region(0, 0, 2, 2), APPS, "tiny")


def test_repack_rejects_mismatched_apps(packing):
    with pytest.raises(MappingError):
        repack(packing, packing.tenants[0].region, ["gemm"], "tiny")


def test_repack_infeasible_when_grid_exhausted(packing):
    """Failing (almost) the whole grid leaves nowhere to migrate."""
    params = packing.tenants[0].artifact.config.params
    whole = Region(0, 0, params.grid_cols, params.grid_rows)
    report = repack(packing, whole, APPS, "tiny")
    assert not report.feasible
    assert report.failed_app
    assert "no free rectangle" in report.reason


def test_repack_infeasible_preserves_input_order(packing):
    """Regression: the infeasible report used to come back in the
    internal largest-first placement order, so callers indexing it by
    the apps list read the wrong tenant."""
    params = packing.tenants[0].artifact.config.params
    whole = Region(0, 0, params.grid_cols, params.grid_rows)
    report = repack(packing, whole, APPS, "tiny")
    assert not report.feasible
    assert [t.app for t in report.tenants] == APPS
    assert len(report.tenants) == len(packing.tenants)


def test_repack_infeasible_clears_stale_artifacts(packing):
    """Regression: unmigrated movers kept bitstreams targeting the
    failed hardware.  They must come back artifact-less (replaying
    them would program broken sites) while their stale rectangles
    remain readable for diagnostics."""
    params = packing.tenants[0].artifact.config.params
    whole = Region(0, 0, params.grid_cols, params.grid_rows)
    report = repack(packing, whole, APPS, "tiny")
    assert not report.feasible
    for original, tenant in zip(packing.tenants, report.tenants):
        assert tenant.artifact is None
        assert tenant.region == original.region


def test_repack_infeasible_never_mutates_caller(packing):
    """The caller's feasible report must survive a failed repack
    intact — artifacts still committed, still replayable."""
    params = packing.tenants[0].artifact.config.params
    whole = Region(0, 0, params.grid_cols, params.grid_rows)
    before = [(t.app, t.region, t.artifact) for t in packing.tenants]
    repack(packing, whole, APPS, "tiny")
    assert packing.feasible
    for (app, region, artifact), tenant in zip(before,
                                               packing.tenants):
        assert tenant.app == app
        assert tenant.region == region
        assert tenant.artifact is artifact
        assert tenant.artifact is not None
