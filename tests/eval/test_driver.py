"""Parallel eval driver: ordering, cache accounting, jobs-equivalence.

Two of the PR's acceptance criteria live here: a cache-warm
``table7 --scale=small`` run performs *zero* compilations, and a
``--jobs=N`` table is identical to a sequential one.
"""

from repro.apps import ALL_APPS, get_app
from repro.bitstream.cache import CompileCache
from repro.eval import bench, figure7, table6, table7
from repro.eval.driver import CacheTally, map_tasks


def _square(x):
    return x * x


def test_map_tasks_preserves_order_inline_and_pooled():
    tasks = list(range(8))
    expected = [x * x for x in tasks]
    assert map_tasks(_square, tasks, jobs=1) == expected
    assert map_tasks(_square, tasks, jobs=4) == expected
    assert map_tasks(_square, [], jobs=4) == []


def test_cache_tally_summary_and_flags():
    tally = CacheTally()
    for _ in range(13):
        tally.record("hit")
    assert tally.summary() == \
        "compile cache: 13 hits, 0 misses (0 compiled)"
    assert tally.all_hits and tally.lookups == 13

    mixed = CacheTally()
    mixed.record("miss")
    mixed.record("hit")
    assert mixed.summary() == "compile cache: 1 hit, 1 miss (1 compiled)"
    assert not mixed.all_hits

    off = CacheTally()
    off.record("off")
    assert off.lookups == 0 and not off.all_hits


def test_cached_table7_small_recompiles_nothing(tmp_path):
    """Acceptance: the second cache-backed ``table7 --scale=small``
    performs zero compilations and reproduces the table exactly."""
    cold = CacheTally()
    rows = table7.generate(scale="small", validate=False,
                           cache=CompileCache(tmp_path), tally=cold)
    assert (cold.misses, cold.hits) == (len(ALL_APPS), 0)

    warm = CacheTally()
    rows2 = table7.generate(scale="small", validate=False,
                            cache=CompileCache(tmp_path), tally=warm)
    assert (warm.hits, warm.misses) == (len(ALL_APPS), 0)
    assert warm.all_hits
    assert warm.summary() == \
        "compile cache: 13 hits, 0 misses (0 compiled)"
    assert rows2 == rows


def test_table7_jobs_equivalence(tmp_path):
    """Acceptance: ``--jobs=4`` produces a table identical to
    ``--jobs=1`` (same rows, same order, same floats)."""
    seq = table7.generate(scale="tiny", validate=False, jobs=1)
    par = table7.generate(scale="tiny", validate=False, jobs=4)
    assert par == seq

    # ... and caching changes neither
    cache = CompileCache(tmp_path)
    cached = table7.generate(scale="tiny", validate=False, jobs=4,
                             cache=cache)
    assert cached == seq


def test_table6_and_figure7_share_the_cache(tmp_path):
    apps = [get_app("gemm"), get_app("tpchq6")]
    tally = CacheTally()
    overheads = table6.generate(scale="tiny", apps=apps,
                                cache=CompileCache(tmp_path),
                                tally=tally)
    assert tally.misses == 2 and set(overheads) == {"gemm", "tpchq6"}

    # figure7 at the same scale reuses the very same entries
    sweep_tally = CacheTally()
    curves = figure7.sweep("stages", (5, 6), apps=apps, scale="tiny",
                           cache=CompileCache(tmp_path),
                           tally=sweep_tally)
    assert (sweep_tally.hits, sweep_tally.misses) == (2, 0)
    assert set(curves) == {"gemm", "tpchq6"}

    ctl_tally = CacheTally()
    control = table6.control_overhead(scale="tiny", apps=apps, jobs=2,
                                      cache=CompileCache(tmp_path),
                                      tally=ctl_tally)
    assert (ctl_tally.hits, ctl_tally.misses) == (2, 0)
    assert all(r["cycles"] > 0 for r in control.values())


def test_bench_reports_wall_split_and_jobs(tmp_path):
    tally = CacheTally()
    report = bench.run_benchmarks(scale="tiny", repeat=1,
                                  apps=["gemm", "dram_rowconf"],
                                  cache=CompileCache(tmp_path),
                                  tally=tally, jobs=2)
    assert report["jobs"] == 2
    totals = report["totals"]
    assert "compile_s" in totals and "simulate_s" in totals
    assert totals["wall_s"] >= 0 and totals["compile_s"] >= 0
    # synthetic benchmarks bypass the cache: only gemm is tallied
    assert tally.lookups == 1
    names = [r["name"] for r in report["benchmarks"]]
    assert names == ["gemm", "dram_rowconf"]

    seq = bench.run_benchmarks(scale="tiny", repeat=1,
                               apps=["gemm", "dram_rowconf"], jobs=1)
    assert [r["cycles"] for r in seq["benchmarks"]] == \
        [r["cycles"] for r in report["benchmarks"]]
