"""The multi-tenancy benchmark and its CI gate logic.

One real ``run_multi_benchmark`` call (tiny scale) anchors the report
shape and the solo-equivalence invariant; the gate tests then exercise
``compare_multi`` against doctored baselines — the cycle counts are
deterministic, so the gate demands *exact* equality and a committed
aggregate-throughput floor.
"""

import copy

import pytest

from repro.eval.multi import (DEFAULT_PAIR, compare_multi,
                              render_multi, run_multi_benchmark)


@pytest.fixture(scope="module")
def report():
    return run_multi_benchmark(DEFAULT_PAIR, scale="tiny")


def test_report_shape_and_equivalence(report):
    assert report["apps"] == list(DEFAULT_PAIR)
    assert report["equivalence_failures"] == []
    assert report["fabric_cycles"] > 0
    assert report["sequential_cycles"] > report["fabric_cycles"]
    assert report["aggregate_speedup"] > 1.0
    assert report["pack_report"]["feasible"] is True
    assert len(report["tenants"]) == 2
    for row in report["tenants"]:
        assert row["validated"] is True
        assert row["co_cycles"] >= row["solo_cycles"]
        assert row["slowdown"] >= 1.0
        assert row["region"] is not None
        assert row["channel_util"]
    # co-residency slows at least one tenant via DRAM contention
    assert any(row["co_cycles"] > row["solo_cycles"]
               for row in report["tenants"])


def test_gate_passes_against_its_own_numbers(report):
    baseline = {
        "apps": report["apps"],
        "sequential_cycles": report["sequential_cycles"],
        "fabric_cycles": report["fabric_cycles"],
        "min_aggregate_speedup": round(
            report["aggregate_speedup"] - 0.05, 3),
    }
    assert compare_multi(report, baseline) == []


def test_gate_catches_cycle_drift(report):
    baseline = {"apps": report["apps"],
                "fabric_cycles": report["fabric_cycles"] + 1}
    failures = compare_multi(report, baseline)
    assert any("fabric_cycles changed" in f for f in failures)


def test_gate_catches_throughput_regression(report):
    baseline = {"apps": report["apps"],
                "min_aggregate_speedup":
                    report["aggregate_speedup"] + 0.5}
    failures = compare_multi(report, baseline)
    assert any("aggregate-throughput regression" in f
               for f in failures)


def test_gate_catches_workload_change(report):
    failures = compare_multi(report, {"apps": ["gemm", "kmeans"]})
    assert len(failures) == 1
    assert "workload changed" in failures[0]


def test_gate_propagates_equivalence_and_validation_failures(report):
    doctored = copy.deepcopy(report)
    doctored["equivalence_failures"] = ["gemm: diverged"]
    doctored["tenants"][0]["validated"] = False
    failures = compare_multi(doctored, {"apps": report["apps"]})
    assert "gemm: diverged" in failures
    assert any("not validated" in f for f in failures)


def test_render_mentions_every_tenant(report):
    text = render_multi(report)
    for row in report["tenants"]:
        assert row["name"] in text
    assert "aggregate" in text
