"""Unit tests for the evaluation harnesses and the performance model."""

import pytest

from repro.apps import get_app
from repro.arch.workload import WorkloadProfile
from repro.eval import figure7, table3, table5, table6, table7
from repro.eval.paper_data import TABLE5, TABLE7
from repro.eval.report import format_table
from repro.perf import (DEFAULT_KNOBS, bound_of, plasticine_runtime_s,
                        random_access_gbps)


# -- perf model ----------------------------------------------------------------

def test_random_bandwidth_is_tfaw_limited():
    gbps = random_access_gbps()
    # 16 activates / 30 ns x 1.6 useful words x 4 B
    assert gbps == pytest.approx(16 / 30 * 1.6 * 4, rel=1e-6)


def test_runtime_scales_linearly_in_work():
    small = WorkloadProfile("s", flops=1e9, stream_bytes=1e6)
    large = WorkloadProfile("l", flops=4e9, stream_bytes=1e6)
    assert plasticine_runtime_s(large) == pytest.approx(
        4 * plasticine_runtime_s(small), rel=0.01)


def test_memory_bound_workload_ignores_flops():
    base = WorkloadProfile("m", flops=1e6, stream_bytes=1e9)
    more_compute = WorkloadProfile("m", flops=5e6, stream_bytes=1e9)
    assert plasticine_runtime_s(base) == pytest.approx(
        plasticine_runtime_s(more_compute), rel=0.01)


def test_bound_classification():
    assert bound_of(WorkloadProfile("c", flops=1e12,
                                    stream_bytes=1e6)) == "compute"
    assert bound_of(WorkloadProfile("s", flops=1e3,
                                    stream_bytes=1e9)) == "stream"
    assert bound_of(WorkloadProfile("r", flops=1e3,
                                    random_accesses=1e9)) == "random"


def test_coalesce_hint_speeds_random_workloads():
    base = WorkloadProfile("r", random_accesses=1e8)
    hinted = WorkloadProfile("r", random_accesses=1e8,
                             plasticine_coalesce_words=4.0)
    assert plasticine_runtime_s(hinted) < plasticine_runtime_s(base)


def test_sparse_profiles_are_random_bound():
    for name in ("smdv", "pagerank", "bfs"):
        profile = get_app(name).paper_profile()
        assert bound_of(profile) == "random", name


def test_streaming_profiles_are_stream_bound():
    for name in ("innerproduct", "tpchq6"):
        profile = get_app(name).paper_profile()
        assert bound_of(profile) == "stream", name


def test_compute_profiles_are_compute_bound():
    for name in ("gemm", "gda"):
        profile = get_app(name).paper_profile()
        assert bound_of(profile) == "compute", name


# -- report helpers --------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(("a", "bb"), [(1, 2.5), ("xx", 0.001)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[1:])


# -- tables ---------------------------------------------------------------------

def test_table5_matches_paper_everywhere():
    measured = table5.generate()
    for key, value in TABLE5.items():
        assert measured[key] == pytest.approx(value, rel=0.02), key
    assert "paper" in table5.render(measured)


def test_table7_single_app_row():
    row = table7.evaluate_app(get_app("innerproduct"), scale="tiny",
                              validate=True)
    assert row.perf_ratio > 1.0
    assert 0 < row.util_pcu < 1
    assert row.plasticine_power_w > 4.0
    assert "innerproduct" in table7.render([row])


def test_table6_two_apps():
    results = table6.generate(scale="tiny",
                              apps=[get_app("gemm"), get_app("sgd")])
    for table in results.values():
        assert table["a"] > 1.0
        assert table["e_cum"] >= table["a"] * 0.5
    assert "GeoMean" in table6.render(results)


def test_figure7_sweep_structure():
    curves = figure7.sweep("stages", (4, 6, 8),
                           apps=[get_app("gemm")], scale="tiny")
    curve = curves["gemm"]
    assert set(curve) == {4, 6, 8}
    feasible = [v for v in curve.values() if v is not None]
    assert min(feasible) == 0.0  # normalized to the per-app minimum


def test_figure7_infeasible_marked_none():
    from repro.eval.figure7 import area_for
    from repro.compiler.scheduling import StageSchedule
    from dataclasses import replace
    from repro.arch.params import DEFAULT
    impossible = StageSchedule(stages=[None] * 4, max_live=50,
                               vector_reads=2, vector_writes=1,
                               scalar_reads=2, scalar_writes=1,
                               reduction_stages=0)
    assert area_for([impossible], DEFAULT.pcu) is None


def test_table3_ranges_without_sweeps():
    rows = table3.generate(run_sweeps=False)
    assert rows["stages"]["selected"] == 6
    assert rows["stages"]["paper"] == 6
    assert "Table 3" in table3.render(rows)


# -- control overhead (stall attribution) ------------------------------------------


def test_control_overhead_values_pinned():
    """Regression-pin the token/credit overhead of three benchmarks as
    measured by the exact attribution pass (the sim is deterministic,
    so these are equalities up to float formatting)."""
    from repro.apps import get_app
    from repro.eval import table6

    results = table6.control_overhead(
        scale="tiny",
        apps=[get_app(n) for n in ("gemm", "tpchq6", "kmeans")])
    expected = {
        "gemm": (0.43260188087774293, 138, 143),
        "tpchq6": (0.19823788546255505, 45, 78),
        "kmeans": (0.90641467013279, 12901, 1052),
    }
    for name, (overhead, token, cycles) in expected.items():
        r = results[name]
        assert r["control_overhead"] == pytest.approx(overhead,
                                                      abs=1e-12), name
        assert r["token_wait"] == token, name
        assert r["credit_wait"] == 0, name
        assert r["cycles"] == cycles, name


def test_control_overhead_render():
    from repro.apps import get_app
    from repro.eval import table6

    results = table6.control_overhead(scale="tiny",
                                      apps=[get_app("gemm")])
    text = table6.render_control(results)
    assert "Control overhead" in text
    assert "gemm" in text
    assert "0.433" in text
