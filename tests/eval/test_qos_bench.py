"""The QoS arbitration benchmark and its CI gate logic.

One real ``run_qos_benchmark`` call (a small two-tenant workload)
anchors the report shape; the gate tests then drive ``compare_qos``
against doctored baselines.  Cycle counts are deterministic, so the
gate demands exact equality, a strict weighted-beats-unweighted check,
and a committed high-priority-speedup floor.
"""

import copy

import pytest

from repro.eval.multi import (QOS_APPS, QOS_PRIORITIES, compare_qos,
                              render_qos, run_qos_benchmark)


@pytest.fixture(scope="module")
def report():
    return run_qos_benchmark(("gemm", "tpchq6", "tpchq6"), (8, 1, 1),
                             scale="tiny")


def test_report_shape(report):
    assert report["apps"] == ["gemm", "tpchq6", "tpchq6"]
    assert report["priorities"] == [8, 1, 1]
    assert report["hi_tenant"] == "gemm"
    assert report["validated"] is True
    assert report["unweighted_hi_cycles"] > 0
    assert report["weighted_hi_cycles"] > 0
    assert report["hi_speedup"] == pytest.approx(
        report["unweighted_hi_cycles"] / report["weighted_hi_cycles"],
        abs=1e-4)
    assert report["bandwidth_classes"] == {"gemm": "compute",
                                           "tpchq6": "memory"}
    assert report["qos"]["weighted"] is True


def test_priority_actually_buys_latency(report):
    assert report["weighted_hi_cycles"] < report["unweighted_hi_cycles"]


def test_default_workload_is_one_hi_many_riders():
    assert len(QOS_APPS) == len(QOS_PRIORITIES)
    assert QOS_PRIORITIES.count(max(QOS_PRIORITIES)) == 1


def test_mismatched_priorities_rejected():
    with pytest.raises(ValueError, match="priorities"):
        run_qos_benchmark(("gemm", "tpchq6"), (8,))


def test_render_mentions_the_key_numbers(report):
    text = render_qos(report)
    assert str(report["weighted_hi_cycles"]) in text
    assert "gemm" in text and "weight 8" in text


# ---------------------------------------------------------------------------
# Gate logic (doctored baselines; no simulation)
# ---------------------------------------------------------------------------


def _baseline(report, **overrides):
    base = {
        "apps": report["apps"],
        "priorities": report["priorities"],
        "unweighted_hi_cycles": report["unweighted_hi_cycles"],
        "weighted_hi_cycles": report["weighted_hi_cycles"],
        "unweighted_fabric_cycles": report["unweighted_fabric_cycles"],
        "weighted_fabric_cycles": report["weighted_fabric_cycles"],
        "min_hi_speedup": 1.0,
    }
    base.update(overrides)
    return base


def test_gate_passes_against_matching_baseline(report):
    assert compare_qos(report, _baseline(report)) == []


def test_gate_fails_on_workload_mismatch(report):
    failures = compare_qos(report,
                           _baseline(report, apps=["gemm", "gemm"]))
    assert failures and "workload changed" in failures[0]


def test_gate_pins_exact_cycles(report):
    doctored = _baseline(report,
                         weighted_hi_cycles=report["weighted_hi_cycles"]
                         + 1)
    failures = compare_qos(report, doctored)
    assert any("weighted_hi_cycles changed" in f for f in failures)


def test_gate_enforces_speedup_floor(report):
    failures = compare_qos(
        report, _baseline(report,
                          min_hi_speedup=report["hi_speedup"] + 1.0))
    assert any("committed floor" in f for f in failures)


def test_gate_rejects_useless_priority(report):
    doctored = copy.deepcopy(report)
    doctored["weighted_hi_cycles"] = doctored["unweighted_hi_cycles"]
    doctored["hi_speedup"] = 1.0
    baseline = _baseline(
        doctored, weighted_hi_cycles=doctored["weighted_hi_cycles"],
        min_hi_speedup=0.0)
    failures = compare_qos(doctored, baseline)
    assert any("priority buys nothing" in f for f in failures)


def test_gate_rejects_unvalidated_report(report):
    doctored = copy.deepcopy(report)
    doctored["validated"] = False
    failures = compare_qos(doctored, _baseline(report))
    assert any("not validated" in f for f in failures)
