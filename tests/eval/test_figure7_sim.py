"""The batched simulated sweeps added next to the Figure 7 area model."""

import pytest

from repro.eval.figure7 import SIM_SWEEPS, render_sim, sim_sweep


def test_sim_sweep_stages_curve():
    result = sim_sweep("stages", (3, 6, 12), app="innerproduct",
                       scale="tiny")
    curve = result["curve"]
    assert set(curve) == {3, 6, 12}
    assert all(isinstance(c, int) and c > 0 for c in curve.values())
    # a shallower pipeline cannot be slower than a deeper one here:
    # depth only adds fill latency on this design
    assert curve[3] <= curve[12]
    assert result["cohorts"] == 1
    assert result["replayed"] == 2


def test_sim_sweep_shares_one_leader_across_values():
    result = sim_sweep("banks", (4, 16), app="innerproduct",
                       scale="tiny")
    assert result["replayed"] == 1
    assert result["curve"][16] <= result["curve"][4]


def test_sim_sweep_rejects_area_only_parameters():
    with pytest.raises(ValueError, match="cannot sweep"):
        sim_sweep("regs_per_stage", (2, 4))


def test_render_sim_marks_best_value():
    result = sim_sweep("stages", (4, 8), app="innerproduct",
                       scale="tiny")
    out = render_sim(result)
    assert "1.00x" in out
    assert "simulated sweep: stages" in out


def test_sim_sweeps_are_timing_only():
    from repro.sim.batch import TIMING_KEYS
    assert set(SIM_SWEEPS) <= TIMING_KEYS
