"""The ``repro bench`` perf harness: report shape, regression gate,
synthetic workloads, and CLI wiring."""

import json

import pytest

from repro.eval import bench


def _report(**totals):
    base = {
        "format": bench.FORMAT,
        "rev": "abc1234",
        "scale": "tiny",
        "scheduler": "event",
        "repeat": 1,
        "benchmarks": [
            {"name": "gemm", "compile_s": 0.01, "cycles": 1000,
             "wall_s": 0.05, "cycles_per_sec": 20000,
             "executed_cycles": 400, "fast_forwarded_cycles": 600},
        ],
        "totals": {"cycles": 1000, "wall_s": 0.05,
                   "cycles_per_sec": 20000},
    }
    base["totals"].update(totals)
    return base


def test_compare_passes_against_itself():
    report = _report()
    assert bench.compare(report, report) == []


def test_compare_flags_cycle_count_change_as_correctness():
    current = _report()
    baseline = _report()
    baseline["benchmarks"][0]["cycles"] = 999
    failures = bench.compare(current, baseline)
    assert len(failures) == 1
    assert "gemm" in failures[0]
    assert "answer changed" in failures[0]


def test_compare_flags_throughput_regression_beyond_threshold():
    current = _report(cycles_per_sec=14000)   # 30% below baseline
    baseline = _report(cycles_per_sec=20000)
    failures = bench.compare(current, baseline, threshold=0.25)
    assert len(failures) == 1
    assert "throughput regression" in failures[0]


def test_compare_tolerates_regression_within_threshold():
    current = _report(cycles_per_sec=16000)   # 20% below baseline
    baseline = _report(cycles_per_sec=20000)
    assert bench.compare(current, baseline, threshold=0.25) == []


def test_compare_ignores_benchmarks_missing_from_baseline():
    current = _report()
    baseline = _report()
    baseline["benchmarks"] = []
    assert bench.compare(current, baseline) == []


def test_run_benchmarks_report_shape():
    report = bench.run_benchmarks(scale="tiny", repeat=1,
                                  apps=["innerproduct"])
    assert report["format"] == bench.FORMAT
    assert [r["name"] for r in report["benchmarks"]] == ["innerproduct"]
    row = report["benchmarks"][0]
    assert row["cycles"] > 0
    assert row["cycles_per_sec"] > 0
    assert (row["executed_cycles"] + row["fast_forwarded_cycles"]
            == row["cycles"])
    assert report["totals"]["cycles"] == row["cycles"]


def test_run_benchmarks_compare_dense_reports_speedup():
    report = bench.run_benchmarks(scale="tiny", repeat=1,
                                  apps=["dram_rowconf"],
                                  compare_dense=True)
    row = report["benchmarks"][0]
    assert row["cycles"] == row["dense"]["cycles"]
    assert row["speedup_vs_dense"] > 0
    assert row["compile_s"] == 0.0  # hand-built DHDL: no compiler run


def test_synthetic_rowconf_is_row_miss_bound():
    """The layout trick must actually produce row conflicts."""
    from repro.sim import Machine
    dhdl, config, check = bench.SYNTHETIC["dram_rowconf"]("tiny")
    machine = Machine(dhdl, config)
    stats = machine.run()
    check(machine)
    assert stats.dram["row_hits"] == 0
    assert stats.dram["row_misses"] > 0


def test_write_report_creates_directory(tmp_path):
    out = tmp_path / "nested" / "dir"
    path = bench.write_report(_report(), str(out))
    with open(path) as fh:
        assert json.load(fh)["rev"] == "abc1234"


def test_cli_bench_quick_with_baseline(tmp_path, capsys):
    from repro.cli import main
    baseline = tmp_path / "baseline.json"
    out = tmp_path / "out"
    rc = main(["bench", "--quick", "--apps", "innerproduct",
               "--out", str(out)])
    assert rc == 0
    report_path = next(out.glob("BENCH_*.json"))
    baseline.write_text(report_path.read_text())
    rc = main(["bench", "--quick", "--apps", "innerproduct",
               "--out", str(out), "--baseline", str(baseline)])
    assert rc == 0
    assert "baseline check passed" in capsys.readouterr().out


def test_cli_bench_fails_on_cycle_change(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "out"
    rc = main(["bench", "--quick", "--apps", "innerproduct",
               "--out", str(out)])
    assert rc == 0
    report = json.loads(next(out.glob("BENCH_*.json")).read_text())
    report["benchmarks"][0]["cycles"] += 1
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(report))
    rc = main(["bench", "--quick", "--apps", "innerproduct",
               "--out", str(out), "--baseline", str(baseline)])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().err


def test_render_lists_every_benchmark():
    text = bench.render(_report())
    assert "gemm" in text
    assert "total" in text
