"""The batch benchmark harness and its CI gate (`compare_batch`)."""

import copy

from repro.eval.bench import (batch_param_grid, compare_batch,
                              render_batch, run_batch_benchmark)


def _small_report():
    return run_batch_benchmark(
        app="innerproduct", scale="tiny",
        params=batch_param_grid(stages=(4, 8), banks=(4, 16),
                                output_hops=(1,)),
        sample=2)


def test_default_grid_shape():
    grid = batch_param_grid()
    assert len(grid) == 78
    assert {"stages", "banks", "output_hops"} == set(grid[0])
    assert len({tuple(sorted(g.items())) for g in grid}) == 78


def test_run_batch_benchmark_reports_and_verifies():
    report = _small_report()
    assert report["instances"] == 4
    assert report["cohorts"] == 1
    assert report["replayed"] == 3
    assert report["sampled"] == 2
    assert report["verified"] == 2
    assert report["mismatches"] == []
    assert report["errors"] == []
    assert report["batch_s"] > 0 and report["est_sequential_s"] > 0
    assert report["speedup"] > 0
    rendered = render_batch(report)
    assert "bit-identical" in rendered
    assert "speedup" in rendered


def test_compare_batch_gates_on_speedup_floor():
    report = _small_report()
    baseline = {"min_speedup": report["speedup"] + 100,
                "instances": report["instances"]}
    failures = compare_batch(report, baseline)
    assert any("speedup regression" in f for f in failures)
    baseline["min_speedup"] = 0.0
    assert compare_batch(report, baseline) == []


def test_compare_batch_flags_workload_and_mismatch_changes():
    report = _small_report()
    baseline = {"min_speedup": 0.0, "instances": 78}
    failures = compare_batch(report, baseline)
    assert any("workload changed" in f for f in failures)
    bad = copy.deepcopy(report)
    bad["mismatches"] = ["instance 1: SimStats diverge"]
    assert "instance 1: SimStats diverge" in compare_batch(
        bad, {"min_speedup": 0.0})
