"""Tracer unit tests: null tracer, ring buffer, sampling, RLE timelines."""

import pytest

from repro.trace import (NULL_TRACER, EventKind, RingTracer, StallCause,
                         Tracer)


def test_null_tracer_is_inert():
    t = Tracer()
    assert t.enabled is False
    # every hook is a no-op and returns None
    t.register_unit("u", "pcu", ("root",))
    t.register_track("f", "fifo")
    t.begin_cycle(1)
    t.mark("u", StallCause.BUSY)
    t.emit(EventKind.ISSUE, "u", (16, 0))
    t.progress(1)
    t.end_cycle()
    t.finalize(1)
    assert NULL_TRACER.enabled is False


def test_first_mark_wins():
    t = RingTracer()
    t.register_unit("u", "pcu", ("root",))
    t.begin_cycle(1)
    t.mark("u", StallCause.TOKEN_WAIT)
    t.mark("u", StallCause.BUSY)  # later mark must not override
    t.end_cycle()
    assert t.counts["u"][StallCause.TOKEN_WAIT] == 1
    assert StallCause.BUSY not in t.counts["u"]


def test_unmarked_cycles_fill_idle():
    t = RingTracer()
    t.register_unit("u", "pcu", ("root",))
    for cycle in range(1, 6):
        t.begin_cycle(cycle)
        if cycle == 3:
            t.mark("u", StallCause.BUSY)
        t.end_cycle()
    assert t.counts["u"][StallCause.IDLE] == 4
    assert t.counts["u"][StallCause.BUSY] == 1


def test_ring_buffer_bounded():
    t = RingTracer(capacity=10)
    t.register_unit("u", "pcu", ("root",))
    for cycle in range(1, 101):
        t.begin_cycle(cycle)
        t.emit(EventKind.ISSUE, "u", (16, 0))
        t.end_cycle()
    assert len(t.events) == 10
    assert t.events_emitted == 100
    assert t.events_dropped == 90
    # ring keeps the newest events
    assert t.events[-1].cycle == 100


def test_sampling_skips_off_cycles_but_attribution_is_exact():
    t = RingTracer(sample=4)
    t.register_unit("u", "pcu", ("root",))
    for cycle in range(1, 17):
        t.begin_cycle(cycle)
        t.mark("u", StallCause.BUSY)
        t.emit(EventKind.ISSUE, "u", (16, 0))
        t.end_cycle()
    # events only on cycles 4, 8, 12, 16
    assert len(t.events) == 4
    assert all(e.cycle % 4 == 0 for e in t.events)
    # attribution counters never sampled
    assert t.counts["u"][StallCause.BUSY] == 16


def test_rle_timeline_merges_runs():
    t = RingTracer()
    t.register_unit("u", "pcu", ("root",))
    plan = [StallCause.BUSY] * 3 + [StallCause.IDLE] * 2 + [StallCause.BUSY]
    for cycle, cause in enumerate(plan, start=1):
        t.begin_cycle(cycle)
        if cause is not StallCause.IDLE:
            t.mark("u", cause)
        t.end_cycle()
    timeline = t.timeline_of("u")
    assert list(timeline) == [(1, StallCause.BUSY), (4, StallCause.IDLE),
                              (6, StallCause.BUSY)]


def test_timeline_capacity_bounds_memory():
    t = RingTracer(timeline_capacity=4)
    t.register_unit("u", "pcu", ("root",))
    for cycle in range(1, 21):
        t.begin_cycle(cycle)
        # alternate causes so every cycle opens a new RLE segment
        t.mark("u", StallCause.BUSY if cycle % 2 else StallCause.DRAIN)
        t.end_cycle()
    assert len(t.timeline_of("u")) == 4
    assert t.timeline_truncated("u")


def test_mark_unknown_unit_rejected():
    t = RingTracer()
    t.begin_cycle(1)
    with pytest.raises(KeyError):
        t.mark("ghost", StallCause.BUSY)


def test_cause_cycles_helpers():
    t = RingTracer()
    t.register_unit("a", "pcu", ("root",))
    t.register_unit("b", "ag", ("root",))
    t.begin_cycle(1)
    t.mark("a", StallCause.BUSY)
    t.mark("b", StallCause.DRAM_LATENCY)
    t.end_cycle()
    assert t.cause_cycles("a", StallCause.BUSY) == 1
    assert t.total_cause_cycles(StallCause.DRAM_LATENCY) == 1
    assert t.total_cause_cycles(StallCause.IDLE) == 0
