"""Exporter tests: Chrome Trace Event JSON and terminal waterfall."""

import json

import pytest

from repro.apps import get_app
from repro.compiler import compile_program
from repro.sim import Machine
from repro.trace import (CAUSE_GLYPHS, RingTracer, StallCause,
                         chrome_trace, render_waterfall,
                         write_chrome_trace)


@pytest.fixture(scope="module")
def traced_gemm():
    compiled = compile_program(get_app("gemm").build("tiny"))
    tracer = RingTracer()
    machine = Machine(compiled.dhdl, compiled.config, tracer=tracer)
    machine.run()
    return tracer, machine.trace_report()


def test_chrome_trace_shape(traced_gemm):
    tracer, report = traced_gemm
    doc = chrome_trace(tracer, report)
    json.dumps(doc)  # must serialise
    events = doc["traceEvents"]
    assert events
    # required metadata: process names for all three tracks
    process_names = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    assert process_names == {"fabric units", "FIFOs", "DRAM channels"}
    # every unit has a thread_name metadata record
    thread_names = {e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    for unit, kind in report.unit_kind.items():
        assert f"{kind}:{unit}" in thread_names


def test_chrome_trace_slices_cover_non_idle(traced_gemm):
    tracer, report = traced_gemm
    doc = chrome_trace(tracer, report)
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert slices
    for e in slices:
        assert e["dur"] > 0
        assert e["ts"] >= 0
        assert e["name"] != str(StallCause.IDLE)
    # per-unit slice durations equal the unit's non-idle cycles
    by_tid = {}
    for e in slices:
        by_tid[e["tid"]] = by_tid.get(e["tid"], 0) + e["dur"]
    non_idle = {unit: sum(n for c, n in counts.items()
                          if c is not StallCause.IDLE)
                for unit, counts in report.per_unit.items()}
    assert sorted(by_tid.values()) == sorted(
        v for v in non_idle.values() if v)


def test_chrome_trace_other_data(traced_gemm):
    tracer, report = traced_gemm
    other = chrome_trace(tracer, report)["otherData"]
    assert other["cycles"] == report.cycles
    assert other["control_overhead"] == report.control_overhead()
    assert sum(other["totals"].values()) == report.unit_cycles()


def test_write_chrome_trace_roundtrip(tmp_path, traced_gemm):
    tracer, report = traced_gemm
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), tracer, report)
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_waterfall_renders_all_units(traced_gemm):
    tracer, report = traced_gemm
    text = render_waterfall(tracer, report)
    lines = text.splitlines()
    assert "utilization waterfall" in lines[0]
    for unit in report.per_unit:
        assert any(line.startswith(unit) for line in lines), unit
    assert "legend:" in lines[-1]
    # rows only use known glyphs
    glyphs = set(CAUSE_GLYPHS.values())
    for line in lines[1:-1]:
        row = line.split("|")[1]
        assert set(row) <= glyphs, row


def test_waterfall_width_clamps_to_cycles():
    t = RingTracer()
    t.register_unit("u", "pcu", ("root",))
    for cycle in range(1, 4):
        t.begin_cycle(cycle)
        t.mark("u", StallCause.BUSY)
        t.end_cycle()
    t.finalize(3)

    from repro.trace import build_report

    class FakeStats:
        cycles = 3

    report = build_report(t, FakeStats())
    text = render_waterfall(t, report, width=64)
    row = text.splitlines()[1].split("|")[1]
    assert row == "###"
