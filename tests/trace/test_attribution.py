"""Stall-attribution tests: exact reconciliation against SimStats and
invariants against the legacy ad-hoc counters."""

import pytest

from repro.apps import get_app
from repro.compiler import compile_program
from repro.errors import SimulationError
from repro.sim import Machine
from repro.trace import (CAUSE_ORDER, CONTROL_CAUSES, RingTracer,
                         StallCause)

APPS = ("gemm", "innerproduct", "kmeans", "tpchq6", "pagerank")


def traced_run(name, scale="tiny", **tracer_kw):
    compiled = compile_program(get_app(name).build(scale))
    tracer = RingTracer(**tracer_kw)
    machine = Machine(compiled.dhdl, compiled.config, tracer=tracer)
    stats = machine.run()
    return tracer, stats, machine


@pytest.mark.parametrize("name", APPS)
def test_attribution_reconciles_exactly(name):
    """Every unit's cause counts sum to exactly stats.cycles."""
    tracer, stats, machine = traced_run(name)
    report = machine.trace_report()
    assert report.cycles == stats.cycles
    for unit, counts in report.per_unit.items():
        assert sum(counts.values()) == stats.cycles, unit
    report.reconcile()  # must not raise


def test_reconcile_raises_on_corruption():
    tracer, stats, machine = traced_run("gemm")
    report = machine.trace_report()
    unit = next(iter(report.per_unit))
    report.per_unit[unit][StallCause.IDLE] += 1
    with pytest.raises(SimulationError, match="reconcil"):
        report.reconcile()


@pytest.mark.parametrize("name", APPS)
def test_attributed_stalls_cover_legacy_counters(name):
    """The taxonomy must account for at least every stall the old
    ad-hoc counters saw (it sees more: waits legacy counters miss)."""
    tracer, stats, machine = traced_run(name, scale="small")
    assert (tracer.total_cause_cycles(StallCause.BANK_CONFLICT)
            >= stats.conflict_cycles)
    assert (tracer.total_cause_cycles(StallCause.FIFO_FULL)
            >= stats.fifo_stall_cycles)
    assert (tracer.total_cause_cycles(StallCause.FIFO_EMPTY)
            >= stats.fifo_empty_stall_cycles)
    assert (tracer.total_cause_cycles(StallCause.DRAM_BANDWIDTH)
            >= stats.dram_stall_cycles)


@pytest.mark.parametrize("name", APPS)
def test_busy_attribution_brackets_stats_busy_cycles(name):
    """The legacy busy counter sits between the attributed BUSY cycles
    and BUSY plus occupancy-charged stalls (conflict serialisation,
    drain, in-flight DRAM)."""
    tracer, stats, machine = traced_run(name)
    report = machine.trace_report()
    occupancy = (StallCause.BUSY, StallCause.BANK_CONFLICT,
                 StallCause.DRAIN, StallCause.DRAM_LATENCY,
                 StallCause.DRAM_BANDWIDTH)
    for unit, counts in report.per_unit.items():
        busy = stats.busy_cycles.get(unit, 0)
        low = counts.get(StallCause.BUSY, 0)
        high = sum(counts.get(c, 0) for c in occupancy)
        assert low <= busy <= high, unit


def test_per_controller_rollup_sums_children():
    tracer, stats, machine = traced_run("kmeans")
    report = machine.trace_report()
    assert report.per_controller
    for ctrl, counts in report.per_controller.items():
        members = [u for u, path in report.unit_path.items()
                   if ctrl in path]
        assert members, ctrl
        assert (sum(counts.values())
                == stats.cycles * len(members))


def test_control_overhead_fraction_in_range():
    tracer, stats, machine = traced_run("gemm")
    report = machine.trace_report()
    assert 0.0 <= report.control_overhead() <= 1.0
    control = report.control_cycles()
    totals = report.totals()
    assert control == sum(totals.get(c, 0) for c in CONTROL_CAUSES)


def test_breakdown_is_json_shaped():
    import json
    tracer, stats, machine = traced_run("innerproduct")
    report = machine.trace_report()
    d = report.breakdown()
    json.dumps(d)  # must serialise
    assert d["cycles"] == stats.cycles
    assert set(d["totals"]) <= {str(c) for c in CAUSE_ORDER}


def test_trace_report_requires_enabled_tracer():
    compiled = compile_program(get_app("gemm").build("tiny"))
    machine = Machine(compiled.dhdl, compiled.config)
    machine.run()
    with pytest.raises(SimulationError):
        machine.trace_report()


def test_disabled_tracer_not_attached():
    from repro.trace import NULL_TRACER
    compiled = compile_program(get_app("gemm").build("tiny"))
    machine = Machine(compiled.dhdl, compiled.config,
                      tracer=NULL_TRACER)
    assert machine.tracer is None
    stats = machine.run()
    assert stats.cycles > 0


def test_traced_run_matches_untraced_results():
    """Tracing must not perturb simulation semantics."""
    import numpy as np
    compiled = compile_program(get_app("gemm").build("tiny"))
    plain = Machine(compiled.dhdl, compiled.config)
    plain_stats = plain.run()
    tracer, stats, machine = traced_run("gemm")
    assert stats.cycles == plain_stats.cycles
    assert stats.ops_executed == plain_stats.ops_executed
    np.testing.assert_array_equal(machine.result("c"),
                                  plain.result("c"))
