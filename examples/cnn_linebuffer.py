#!/usr/bin/env python
"""A convolution layer on Plasticine: sliding windows and line buffers.

The convolution's input access ``image[ic, oy+ky, ox+kx]`` has two
indices per dimension — the compiler detects the sliding window, loads
the halo region, and configures the scratchpad in line-buffer mode so
window reads never bank-conflict (Section 4.5's CNN discussion).

Run:  python examples/cnn_linebuffer.py
"""

import numpy as np

from repro.apps.ml import Cnn
from repro.compiler import compile_program
from repro.dhdl import BankingMode
from repro.sim import Machine


def main():
    app = Cnn()
    prog = app.build("small")
    compiled = compile_program(prog)

    print("scratchpad configurations chosen by the compiler:")
    for sram in compiled.dhdl.srams:
        print(f"  {sram.name:18s} {str(sram.banking):12s} "
              f"shape={list(sram.shape)} nbuf={sram.nbuf}")
    line_buffered = [s for s in compiled.dhdl.srams
                     if s.banking is BankingMode.LINE_BUFFER]
    assert line_buffered, "expected a line-buffered input tile"

    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()
    expected = app.expected(prog)
    got = machine.result("activated")
    print("\nconvolution + ReLU matches the reference:",
          np.allclose(got, expected["activated"], rtol=1e-3, atol=1e-4))
    print(f"cycles: {stats.cycles}, bank-conflict stalls: "
          f"{stats.conflict_cycles}")


if __name__ == "__main__":
    main()
