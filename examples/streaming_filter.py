#!/usr/bin/env python
"""A database-style filter: FlatMap, streaming control, dynamic sizes.

Selects high-value orders from a table, producing a dynamically sized
result.  The compiler lowers the filter to a streaming scope: the PCU
emits matching values into a FIFO (with cross-lane valid-word
coalescing) and a StreamStore drains it to DRAM, counting as it goes —
the paper's FlatMap support (Table 2).

Run:  python examples/streaming_filter.py
"""

import numpy as np

from repro.compiler import compile_program
from repro.dhdl import format_program
from repro.patterns import Dyn, Program
from repro.patterns import expr as E
from repro.sim import Machine


def main():
    n = 2048
    rng = np.random.default_rng(7)
    amounts = rng.exponential(120.0, n).astype(np.float32)
    regions = rng.integers(0, 4, n).astype(np.int32)

    prog = Program("high_value_orders")
    amount = prog.input("amount", (n,), data=amounts)
    region = prog.input("region", (n,), E.INT32, data=regions)
    count = prog.output("count", (), E.INT32)
    selected = prog.output("selected", (Dyn(count),), max_elems=n)
    prog.filter(
        "select", selected, count, n,
        cond=lambda i: (amount[i] > 250.0) & region[i].eq(2),
        value=lambda i: amount[i]).set_par(16)

    compiled = compile_program(prog)
    print(format_program(compiled.dhdl))

    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()

    expect = amounts[(amounts > 250.0) & (regions == 2)]
    got_count = machine.scalar("count")
    got = machine.result("selected")[:got_count]
    print(f"\nselected {got_count} of {n} orders "
          f"(expected {len(expect)})")
    print("values match:", np.allclose(got, expect, rtol=1e-5))
    print(f"cycles: {stats.cycles}, FIFO backpressure stalls: "
          f"{stats.fifo_stall_cycles}")


if __name__ == "__main__":
    main()
