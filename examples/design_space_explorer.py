#!/usr/bin/env python
"""Design-space exploration: re-run the paper's Section 3.7 sizing flow.

Sweeps PCU stage count and register depth over the benchmark suite,
printing the normalized-area-overhead curves of Figure 7 and the chip
area each candidate architecture would occupy.

Run:  python examples/design_space_explorer.py
"""

from dataclasses import replace

from repro.arch.area import chip_area
from repro.arch.params import DEFAULT
from repro.eval import figure7


def main():
    print("=== Figure 7a: stages per PCU ===")
    param, values = figure7.SWEEPS["a_stages"]
    curves = figure7.sweep(param, values, scale="small")
    print(figure7.render(param, curves))
    best = figure7.best_value(curves)
    print(f"\noverhead-minimising stage count: {best} "
          f"(paper selects 6 as the balanced choice)")

    print("\n=== Figure 7b: registers per FU ===")
    param, values = figure7.SWEEPS["b_registers"]
    curves = figure7.sweep(param, values, scale="small")
    print(figure7.render(param, curves))

    print("\n=== chip area at candidate stage counts ===")
    for stages in (4, 6, 8, 12):
        params = replace(DEFAULT, pcu=replace(DEFAULT.pcu,
                                              stages=stages))
        chip = chip_area(params)
        print(f"  {stages:2d} stages/PCU -> {chip.total:7.2f} mm^2 "
              f"({chip.pcus:6.2f} mm^2 of PCUs)")
    print(f"\nselected architecture: {DEFAULT.pcu.stages} stages, "
          f"{chip_area(DEFAULT).total:.1f} mm^2 "
          f"(paper: 6 stages, 112.8 mm^2)")


if __name__ == "__main__":
    main()
