#!/usr/bin/env python
"""PageRank on Plasticine: data-dependent gathers through the
coalescing units.

Shows the sparse path of the architecture: CSR row ranges become
data-dependent counter bounds, rank fetches become DRAM gathers (the
collections are marked ``offchip``), and the coalescing cache merges
addresses that share a burst.

Run:  python examples/sparse_pagerank.py
"""

import numpy as np

from repro.apps.sparse import PageRank
from repro.compiler import compile_program
from repro.sim import Machine


def main():
    app = PageRank()
    prog = app.build("small")
    compiled = compile_program(prog)
    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()

    ranks = machine.result("ranks")
    expected = app.expected(prog)["ranks"]
    print("ranks match the reference executor:",
          np.allclose(ranks, expected, rtol=1e-3, atol=1e-5))
    print(f"total cycles: {stats.cycles}")

    gathers = [leaf for leaf in machine._leaves
               if type(leaf).__name__ == "GatherSim"]
    total_hits = sum(g.coalesced_hits for g in gathers)
    dram = stats.dram
    print(f"gather engines: {len(gathers)}, coalesced address hits: "
          f"{total_hits}")
    print(f"DRAM: {dram['reads']} read bursts, "
          f"{dram['row_hits']} row hits / {dram['row_misses']} misses")
    print(f"achieved DRAM bandwidth: "
          f"{dram['bytes'] / stats.cycles:.1f} B/cycle "
          f"(peak 51.2)")
    top = np.argsort(ranks)[::-1][:5]
    print("top pages:", list(top), "ranks:",
          np.round(ranks[top], 4).tolist())


if __name__ == "__main__":
    main()
