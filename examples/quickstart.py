#!/usr/bin/env python
"""Quickstart: write a parallel-pattern program, compile it to the
Plasticine fabric, and cycle-simulate it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import compile_program
from repro.dhdl import format_program
from repro.patterns import Fold, Program, run_program
from repro.sim import Machine


def main():
    # 1. a program: GEMM written as a tiled Map of dot-product Folds
    m, k, n = 16, 32, 8
    rng = np.random.default_rng(42)
    a_data = rng.standard_normal((m, k)).astype(np.float32)
    b_data = rng.standard_normal((k, n)).astype(np.float32)

    prog = Program("quickstart_gemm")
    a = prog.input("a", (m, k), data=a_data)
    b = prog.input("b", (k, n), data=b_data)
    c = prog.output("c", (m, n))
    prog.map("matmul", c, (m, n),
             lambda i, j: Fold(k, 0.0,
                               lambda kk: a[i, kk] * b[kk, j],
                               lambda x, y: x + y)).set_par(1, 1, inner=16)

    # 2. functional semantics: the reference executor
    env = run_program(prog)
    print("reference result matches numpy:",
          np.allclose(env.buffers["c"], a_data @ b_data, rtol=1e-4))

    # 3. compile: tiling, partitioning, placement, routing
    compiled = compile_program(prog)
    print()
    print(format_program(compiled.dhdl))
    util = compiled.config.utilization()
    print(f"\nmapped onto {compiled.config.pcus_used} PCUs / "
          f"{compiled.config.pmus_used} PMUs "
          f"({100 * util['pcu']:.0f}% / {100 * util['pmu']:.0f}% of the "
          f"fabric)")

    # 4. cycle-level simulation against the DDR3 model
    machine = Machine(compiled.dhdl, compiled.config)
    stats = machine.run()
    print(f"simulated {stats.cycles} cycles "
          f"({stats.dram['reads']} DRAM read bursts, "
          f"{stats.dram['writes']} writes, "
          f"{stats.ops_executed} datapath ops)")
    print("simulated result matches numpy:",
          np.allclose(machine.result("c"), a_data @ b_data, rtol=1e-3))


if __name__ == "__main__":
    main()
