"""The serializable compile artifact: a frozen, runnable bitstream.

A :class:`Bitstream` bundles everything the simulator needs to execute
one compiled application — the DHDL program (controller tree, memory
declarations, DRAM input data) and the placed-and-routed
:class:`~repro.bitstream.config.FabricConfig` — detached from every
compiler-internal object (no ``Fabric``, no pattern ``Program``).

Serialization is *canonical*: dict keys are sorted and separators fixed,
so the same compilation always produces the same bytes regardless of
process, platform, or hash randomization.  Two hashes follow from that:

* :func:`compile_key` — the cache address, computed from the *inputs* to
  compilation (schema version, app name, dataset scale, architecture
  parameters, compiler options).  Knowable without compiling.
* :attr:`Bitstream.content_hash` — sha256 of the canonical artifact
  bytes, computed from the *output*.  Golden tests pin these to catch
  accidental compiler nondeterminism.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.arch.params import (DEFAULT, DramParams, PcuParams,
                               PlasticineParams, PmuParams)
from repro.arch.requirements import (DesignRequirements, VirtualPcuReq,
                                     VirtualPmuReq)
from repro.bitstream.config import (AgAssignment, FabricConfig, LeafTiming,
                                    MemoryPlacement)
from repro.dhdl.ir import DhdlProgram
from repro.dhdl.serialize import program_from_dict, program_to_dict
from repro.errors import ConfigError

#: Bump whenever the serialized layout changes; the cache segregates
#: artifacts by schema so stale entries are never misread.
SCHEMA_VERSION = 1


def canonical_json(data: dict) -> bytes:
    """The one true byte encoding of an artifact dict."""
    return json.dumps(data, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# ---------------------------------------------------------------------------
# Compile options (part of the cache key)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompileOptions:
    """The compiler knobs that shape an artifact (defaults match
    :func:`repro.compiler.driver.compile_program`)."""

    tile_words: int = 512
    whole_budget: int = 16384
    ags_per_transfer: int = 2
    pmu_fraction: float = 0.5

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "CompileOptions":
        return CompileOptions(**data)


# ---------------------------------------------------------------------------
# Params / config (de)serialization
# ---------------------------------------------------------------------------


def params_to_dict(params: PlasticineParams) -> dict:
    """Architecture parameters as a plain nested dict."""
    return asdict(params)


def params_from_dict(data: dict) -> PlasticineParams:
    """Rebuild :class:`PlasticineParams` from :func:`params_to_dict`."""
    data = dict(data)
    return PlasticineParams(
        pcu=PcuParams(**data.pop("pcu")),
        pmu=PmuParams(**data.pop("pmu")),
        dram=DramParams(**data.pop("dram")),
        **data)


def _requirements_to_dict(req: Optional[DesignRequirements]
                          ) -> Optional[dict]:
    if req is None:
        return None
    return {"name": req.name,
            "pcus": [asdict(r) for r in req.pcus],
            "pmus": [asdict(r) for r in req.pmus]}


def _requirements_from_dict(data: Optional[dict]
                            ) -> Optional[DesignRequirements]:
    if data is None:
        return None
    return DesignRequirements(
        data["name"],
        pcus=[VirtualPcuReq(**r) for r in data["pcus"]],
        pmus=[VirtualPmuReq(**r) for r in data["pmus"]])


def config_to_dict(config: FabricConfig) -> dict:
    """Serialize a :class:`FabricConfig` to a JSON-compatible dict.

    The ``region`` key is emitted only for region-constrained compiles:
    whole-fabric artifacts keep the exact canonical bytes (and golden
    content hashes) they had before regions existed.
    """
    data = {
        "params": params_to_dict(config.params),
        "leaf_timing": {name: asdict(t)
                        for name, t in config.leaf_timing.items()},
        "ag_assign": {name: list(a.ag_ids)
                      for name, a in config.ag_assign.items()},
        "sram_place": {name: [list(site) for site in p.pmu_sites]
                       for name, p in config.sram_place.items()},
        "dram_base": dict(config.dram_base),
        "requirements": _requirements_to_dict(config.requirements),
        "pcus_used": config.pcus_used,
        "pmus_used": config.pmus_used,
        "ags_used": config.ags_used,
        "switches_used": config.switches_used,
        "fus_used": config.fus_used,
        "registers_used": config.registers_used,
        "coalesce_entries": config.coalesce_entries,
        "banks_override": config.banks_override,
    }
    if config.region is not None:
        data["region"] = list(config.region)
    return data


def config_from_dict(data: dict) -> FabricConfig:
    """Rebuild a :class:`FabricConfig` from :func:`config_to_dict`."""
    region = data.get("region")
    return FabricConfig(
        region=tuple(region) if region is not None else None,
        params=params_from_dict(data["params"]),
        leaf_timing={name: LeafTiming(**t)
                     for name, t in data["leaf_timing"].items()},
        ag_assign={name: AgAssignment(tuple(ids))
                   for name, ids in data["ag_assign"].items()},
        sram_place={name: MemoryPlacement(
                        tuple(tuple(site) for site in sites))
                    for name, sites in data["sram_place"].items()},
        dram_base=dict(data["dram_base"]),
        requirements=_requirements_from_dict(data["requirements"]),
        pcus_used=data["pcus_used"],
        pmus_used=data["pmus_used"],
        ags_used=data["ags_used"],
        switches_used=data["switches_used"],
        fus_used=data["fus_used"],
        registers_used=data["registers_used"],
        coalesce_entries=data["coalesce_entries"],
        banks_override=data["banks_override"],
    )


# ---------------------------------------------------------------------------
# Cache key
# ---------------------------------------------------------------------------


def compile_key(app: str, scale: str,
                params: PlasticineParams = DEFAULT,
                options: Optional[CompileOptions] = None) -> str:
    """The content address of a compilation *request*.

    Everything that can change the emitted artifact participates:
    schema version, app name, dataset scale, the full architecture
    parameter set, and the compiler options.
    """
    options = options or CompileOptions()
    blob = canonical_json({
        "schema": SCHEMA_VERSION,
        "app": app,
        "scale": scale,
        "params": params_to_dict(params),
        "options": options.to_dict(),
    })
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# The artifact
# ---------------------------------------------------------------------------


class Bitstream:
    """One compiled application, frozen and runnable.

    Holds the live DHDL program and fabric configuration; converts to
    and from a canonical dict (and JSON file) without loss.  Construct
    via :func:`repro.compiler.artifact.compile_to_bitstream` or
    :meth:`load`.
    """

    def __init__(self, app: str, scale: str, dhdl: DhdlProgram,
                 config: FabricConfig,
                 options: Optional[CompileOptions] = None,
                 schema: int = SCHEMA_VERSION):
        self.app = app
        self.scale = scale
        self.dhdl = dhdl
        self.config = config
        self.options = options or CompileOptions()
        self.schema = schema

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "app": self.app,
            "scale": self.scale,
            "options": self.options.to_dict(),
            "program": program_to_dict(self.dhdl),
            "config": config_to_dict(self.config),
        }

    @staticmethod
    def from_dict(data: dict) -> "Bitstream":
        if not isinstance(data, dict):
            raise ConfigError(
                f"artifact must decode to a dict, got "
                f"{type(data).__name__}")
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ConfigError(
                f"artifact schema {schema!r} != supported "
                f"{SCHEMA_VERSION} (recompile the app)")
        return Bitstream(
            app=data["app"], scale=data["scale"],
            dhdl=program_from_dict(data["program"]),
            config=config_from_dict(data["config"]),
            options=CompileOptions.from_dict(data["options"]),
            schema=schema)

    def to_bytes(self) -> bytes:
        """Canonical serialized form (deterministic across processes)."""
        return canonical_json(self.to_dict())

    @property
    def content_hash(self) -> str:
        """sha256 of the canonical bytes — the artifact's identity."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    @property
    def key(self) -> str:
        """The cache address of this artifact's compilation request."""
        return compile_key(self.app, self.scale, self.config.params,
                           self.options)

    # -- files --------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact to ``path`` (canonical JSON, atomic).

        The temp name is unique per process, so concurrent writers of
        the same path (e.g. pool workers all missing on one cache key)
        never clobber each other's half-written temp file; each rename
        is atomic and the bytes are identical, so whichever lands last
        wins silently.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        try:
            tmp.write_bytes(self.to_bytes())
            tmp.replace(path)
        finally:
            # a failed rename (e.g. ENOSPC midway) must not litter the
            # cache directory with temp files
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> "Bitstream":
        """Read an artifact previously written by :meth:`save`."""
        return Bitstream.from_dict(
            json.loads(Path(path).read_bytes().decode("utf-8")))

    # -- execution ----------------------------------------------------------------
    def machine(self, **kwargs) -> Any:
        """A fresh simulator instance for this artifact.

        Keyword arguments pass through to
        :class:`~repro.sim.machine.Machine` (``tracer``, ``scheduler``,
        ``watchdog``...).  Imported lazily so the compiler/cache side
        never loads the simulator package.
        """
        from repro.sim.machine import Machine
        return Machine(self.dhdl, self.config, **kwargs)

    def summary(self) -> Dict[str, Any]:
        """Small human-facing description (CLI ``repro compile``)."""
        return {
            "app": self.app,
            "scale": self.scale,
            "schema": self.schema,
            "key": self.key,
            "content_hash": self.content_hash,
            "leaves": len(self.config.leaf_timing),
            "srams": len(self.dhdl.srams),
            "pcus_used": self.config.pcus_used,
            "pmus_used": self.config.pmus_used,
            "bytes": len(self.to_bytes()),
        }

    def __repr__(self):
        return (f"Bitstream({self.app!r}, scale={self.scale!r}, "
                f"hash={self.content_hash[:12]})")
