"""The frozen compiler->simulator artifact ("bitstream") and its cache.

``repro.bitstream`` sits between :mod:`repro.compiler` and
:mod:`repro.sim`: the compiler emits a :class:`~repro.bitstream.artifact.
Bitstream` (placed-and-routed configuration plus the DHDL program, with
input data), the simulator consumes one, and neither imports the other.
Artifacts serialize to canonical JSON — byte-identical across processes —
and are stored in a content-addressed on-disk cache keyed by
(app, scale, architecture parameters, compiler options).
"""

from repro.bitstream.artifact import (SCHEMA_VERSION, Bitstream,
                                      CompileOptions, compile_key)
from repro.bitstream.cache import CacheStats, CompileCache
from repro.bitstream.config import (AgAssignment, FabricConfig, LeafTiming,
                                    MemoryPlacement)

__all__ = [
    "SCHEMA_VERSION", "Bitstream", "CompileOptions", "compile_key",
    "CacheStats", "CompileCache",
    "AgAssignment", "FabricConfig", "LeafTiming", "MemoryPlacement",
]
