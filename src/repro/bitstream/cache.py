"""Content-addressed on-disk cache of compiled bitstreams.

Layout (under the cache root, default ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``):

    <root>/bitstreams-v<SCHEMA_VERSION>/<key[:2]>/<key>.json

where ``key`` is :func:`~repro.bitstream.artifact.compile_key` — a hash
over (schema, app, scale, architecture params, compiler options).  The
schema version is baked into the directory name, so bumping it orphans
(never misreads) old entries; a corrupt or truncated file is treated as
a miss and overwritten on the next put.

Writes are atomic (temp file + rename), so concurrent workers compiling
the same app race benignly: last writer wins with identical bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.bitstream.artifact import SCHEMA_VERSION, Bitstream


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        """Total get() calls."""
        return self.hits + self.misses

    def merge(self, other: "CacheStats") -> None:
        """Fold another tally (e.g. from a worker process) into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores

    def summary(self) -> str:
        """One-line report, e.g. ``3 hits, 1 miss (1 compiled)``."""
        plural = "" if self.misses == 1 else "es"
        return (f"{self.hits} hit{'' if self.hits == 1 else 's'}, "
                f"{self.misses} miss{plural} ({self.misses} compiled)")


class CompileCache:
    """A content-addressed store of :class:`Bitstream` artifacts."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.dir = self.root / f"bitstreams-v{SCHEMA_VERSION}"
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Where an artifact with this compile key lives."""
        return self.dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Bitstream]:
        """The cached artifact for ``key``, or None (counted as a miss).

        Unreadable entries (truncated writes, schema drift inside a
        versioned directory) are misses, not errors.
        """
        path = self.path_for(key)
        try:
            artifact = Bitstream.load(path)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            try:
                path.unlink()  # corrupt entry: make room for a re-put
            except OSError:
                pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return artifact

    def put(self, artifact: Bitstream) -> Path:
        """Store an artifact under its own compile key (atomic)."""
        path = self.path_for(artifact.key)
        artifact.save(path)
        self.stats.stores += 1
        return path

    def entries(self) -> int:
        """Number of artifacts currently stored."""
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*/*.json"))

    def __repr__(self):
        return f"CompileCache({str(self.dir)!r})"


def open_cache(cache_dir: Optional[Union[str, Path]] = None,
               enabled: bool = True) -> Optional[CompileCache]:
    """CLI helper: a cache instance, or None when caching is disabled."""
    if not enabled:
        return None
    return CompileCache(cache_dir)
