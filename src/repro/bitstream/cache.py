"""Content-addressed on-disk cache of compiled bitstreams.

Layout (under the cache root, default ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``):

    <root>/bitstreams-v<SCHEMA_VERSION>/<key[:2]>/<key>.json

where ``key`` is :func:`~repro.bitstream.artifact.compile_key` — a hash
over (schema, app, scale, architecture params, compiler options).  The
schema version is baked into the directory name, so bumping it orphans
(never misreads) old entries; a corrupt or truncated file is treated as
a miss and overwritten on the next put.

Writes are atomic (temp file + rename), so concurrent workers compiling
the same app race benignly: last writer wins with identical bytes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.bitstream.artifact import SCHEMA_VERSION, Bitstream
from repro.errors import ConfigError


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: entries present on disk but undecodable (truncated write, schema
    #: drift, hand-edited file) — dropped and recompiled, counted apart
    #: from plain misses so corruption is visible in reports
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        """Total get() calls."""
        return self.hits + self.misses + self.corrupt

    def merge(self, other: "CacheStats") -> None:
        """Fold another tally (e.g. from a worker process) into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.corrupt += other.corrupt

    def to_dict(self) -> dict:
        """Counters as a plain dict (JSON-able snapshot)."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt,
                "lookups": self.lookups}

    def summary(self) -> str:
        """One-line report, e.g. ``3 hits, 1 miss (1 compiled)``."""
        compiled = self.misses + self.corrupt
        plural = "" if self.misses == 1 else "es"
        line = (f"{self.hits} hit{'' if self.hits == 1 else 's'}, "
                f"{self.misses} miss{plural} ({compiled} compiled)")
        if self.corrupt:
            line += f", {self.corrupt} corrupt"
        return line


class CompileCache:
    """A content-addressed store of :class:`Bitstream` artifacts."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.dir = self.root / f"bitstreams-v{SCHEMA_VERSION}"
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Where an artifact with this compile key lives."""
        return self.dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Bitstream]:
        """The cached artifact for ``key``, or None (caller recompiles).

        Outcomes are kept distinct: an absent entry is a miss; a
        *transient* read failure (EIO, EACCES, ...) is a miss but the
        entry — which may be perfectly fine — is left in place; an
        undecodable entry (truncated write, schema drift inside a
        versioned directory) is dropped and counted in
        ``stats.corrupt``.  Anything else is a programming bug and
        propagates instead of masquerading as a cache miss.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            # transient read error: do NOT unlink — the entry may be
            # intact and readable on the next lookup
            self.stats.misses += 1
            return None
        try:
            artifact = Bitstream.from_dict(
                json.loads(raw.decode("utf-8")))
        except (ValueError, KeyError, TypeError, ConfigError):
            # undecodable entry (JSONDecodeError/UnicodeDecodeError are
            # ValueErrors; missing or mistyped fields raise
            # KeyError/TypeError; ConfigError covers schema mismatch):
            # drop it so the next put can rewrite it
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return artifact

    def put(self, artifact: Bitstream) -> Path:
        """Store an artifact under its own compile key (atomic).

        Safe under multi-process races: concurrent writers of the same
        key each write a uniquely named temp file and atomically rename
        it into place — the artifact bytes are canonical, so the second
        rename wins silently with identical content.  Each ``put`` call
        counts exactly one store regardless of how the race resolves.
        """
        path = self.path_for(artifact.key)
        artifact.save(path)
        self.stats.stores += 1
        return path

    def stats_snapshot(self) -> dict:
        """JSON-able counter snapshot (for pollers like ``/statsz``).

        A copy, not a live view: mutating the returned dict cannot
        corrupt the cache's own accounting, and callers never touch
        private fields.
        """
        return self.stats.to_dict()

    def entries(self) -> int:
        """Number of artifacts currently stored."""
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*/*.json"))

    def __repr__(self):
        return f"CompileCache({str(self.dir)!r})"


def open_cache(cache_dir: Optional[Union[str, Path]] = None,
               enabled: bool = True) -> Optional[CompileCache]:
    """CLI helper: a cache instance, or None when caching is disabled."""
    if not enabled:
        return None
    return CompileCache(cache_dir)
