"""The compiler->simulator contract: a placed-and-routed configuration.

A :class:`FabricConfig` is the per-unit half of this reproduction's
"bitstream": for each DHDL leaf controller it records the physical
resources backing it (how many PCUs the partitioner chained together,
the pipeline depth, SIMD lanes, interconnect hop latencies) and for each
transfer the address generator serving it.  The cycle-level simulator
consumes exactly this — it never re-runs placement decisions.

The module lives in :mod:`repro.bitstream` (not :mod:`repro.sim`) so
that the compiler can emit configurations without importing the
simulator; :mod:`repro.sim.config` re-exports everything for backward
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.params import DEFAULT, PlasticineParams
from repro.arch.requirements import DesignRequirements
from repro.errors import ConfigError


@dataclass
class LeafTiming:
    """Physical timing of one leaf controller after mapping.

    ``pipeline_depth`` — cycles from issuing a vector of indices to its
    results being architecturally visible (physical PCU stages across the
    partition chain, plus registered switch hops between them).
    ``lanes`` — SIMD width exercised per cycle.
    ``input_hops`` / ``output_hops`` — network distance to the unit's
    operand sources / result sinks (adds transport latency).
    ``num_pcus`` — physical PCUs implementing the (virtual) unit.
    """

    pipeline_depth: int = 6
    lanes: int = 16
    input_hops: int = 1
    output_hops: int = 1
    num_pcus: int = 1

    def validate(self, params: PlasticineParams) -> "LeafTiming":
        """Sanity-check against the architecture."""
        if self.lanes < 1 or self.lanes > params.pcu.lanes:
            raise ConfigError(f"lanes={self.lanes} outside 1.."
                              f"{params.pcu.lanes}")
        if self.pipeline_depth < 1:
            raise ConfigError("pipeline depth must be >= 1")
        if self.num_pcus < 0:
            raise ConfigError("num_pcus must be >= 0")
        return self


@dataclass
class AgAssignment:
    """Address generators allocated to one transfer leaf.

    ``ag_ids`` — the physical AGs issuing this transfer's streams (more
    AGs = more parallel address streams, as in the paper's outer-loop
    parallelisation of sparse apps).
    """

    ag_ids: Tuple[int, ...] = (0,)

    @property
    def streams(self) -> int:
        """Parallel address streams available to the transfer."""
        return len(self.ag_ids)


@dataclass
class MemoryPlacement:
    """Physical backing of one logical SRAM: which PMUs hold it."""

    pmu_sites: Tuple[Tuple[int, int], ...] = ((0, 0),)

    @property
    def num_pmus(self) -> int:
        """PMUs this logical scratchpad occupies."""
        return len(self.pmu_sites)


@dataclass
class FabricConfig:
    """Everything the simulator needs about one compiled application."""

    params: PlasticineParams = field(default_factory=lambda: DEFAULT)
    #: leaf controller name -> physical timing
    leaf_timing: Dict[str, LeafTiming] = field(default_factory=dict)
    #: transfer leaf name -> AG assignment
    ag_assign: Dict[str, AgAssignment] = field(default_factory=dict)
    #: logical SRAM name -> PMU placement
    sram_place: Dict[str, MemoryPlacement] = field(default_factory=dict)
    #: DRAM array name -> base byte address
    dram_base: Dict[str, int] = field(default_factory=dict)
    #: virtual-unit requirements (drives Table 6 / Figure 7 and power)
    requirements: Optional[DesignRequirements] = None
    #: resource usage summary for Table 7 utilization columns
    pcus_used: int = 0
    pmus_used: int = 0
    ags_used: int = 0
    switches_used: int = 0
    #: total FUs configured (for the FU-utilization column)
    fus_used: int = 0
    registers_used: int = 0
    #: coalescing-cache entries per gather/scatter engine (ablations set
    #: this to 1 to disable request merging)
    coalesce_entries: int = 48
    #: override scratchpad banks (ablations; None = params.pmu.banks)
    banks_override: Optional[int] = None
    #: rectangular sub-grid this design was placed into, as
    #: ``(col0, row0, cols, rows)``; None = the whole fabric.  Region
    #: compiles (multi-tenancy) record it so packers can keep tenants
    #: disjoint without re-deriving footprints.
    region: Optional[Tuple[int, int, int, int]] = None

    def timing_for(self, leaf_name: str) -> LeafTiming:
        """Timing for a leaf, with a safe default for un-mapped leaves."""
        timing = self.leaf_timing.get(leaf_name)
        if timing is None:
            raise ConfigError(f"no timing configured for leaf "
                              f"{leaf_name!r}")
        return timing

    def ags_for(self, leaf_name: str) -> AgAssignment:
        """AG assignment for a transfer leaf."""
        assign = self.ag_assign.get(leaf_name)
        if assign is None:
            raise ConfigError(f"no AG assigned to transfer {leaf_name!r}")
        return assign

    def utilization(self) -> Dict[str, float]:
        """Fractions of fabric resources configured (Table 7 columns)."""
        params = self.params
        total_fus = params.num_pcus * params.pcu.fus
        total_regs = params.num_pcus * params.pcu.pipeline_registers
        switches = (params.grid_cols + 1) * (params.grid_rows + 1)
        return {
            "pcu": self.pcus_used / params.num_pcus,
            "pmu": self.pmus_used / params.num_pmus,
            "ag": self.ags_used / params.num_ags,
            "fu": self.fus_used / total_fus,
            "register": self.registers_used / total_regs,
            "switch": self.switches_used / switches,
        }
