"""Pattern-to-DHDL lowering (the front half of Section 3.6).

Each program step becomes a controller subtree::

    step scope (coarse-grained pipeline, one activation)
      [whole-array tile loads]           -- small / irregular inputs
      [accumulator / count initialisers]
      tile loop (pipeline over tile origins, double-buffered tiles)
        [per-tile loads]                 -- translation-affine inputs
        [gather address compute + Gather]-- data-dependent reads
        main inner compute               -- the pattern body
        [per-tile output stores]
      [final stores]                     -- reductions, hash bins

Supported input strategies per collection:

* **CELL** — 0-d collections live in registers (results, lengths).
* **WHOLE** — the collection fits the whole-array budget; loaded once per
  step activation and indexed with the original expressions.
* **TILED** — every access dimension is affine in the chain indices with
  non-negative coefficients; the touched region per tile is loaded and
  indices are translated to tile-local form.  Data-dependent segment
  bases (CSR rows) are supported when the range's lower bound is
  monotone in the tiled index.
* **GATHER** — the address itself is loaded data: an address-compute
  controller materialises addresses, a Gather transfers the words, and
  the access is rewritten to the gathered tile (duplication banking).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.rewrite import rewrite, simplify, substitute
from repro.dhdl.control import Scheme
from repro.dhdl.ir import (Counter, CounterChain, DhdlProgram, EmitStmt,
                           Gather, HashReduceStmt, InnerCompute,
                           OuterController, ReduceStmt, Scatter,
                           StreamStore, TileLoad, TileStore, WriteStmt)
from repro.dhdl.memory import BankingMode, Reg, Sram
from repro.dhdl.validate import validate
from repro.errors import LoweringError
from repro.patterns import expr as E
from repro.patterns.analysis import as_affine, classify_load
from repro.patterns.collections import Array
from repro.patterns.domain import DynDim, RangeDim, StaticDim
from repro.patterns.patterns import (FlatMap, Fold, HashReduce, Map,
                                     ScatterMap)
from repro.patterns.program import Loop, Program, Step

#: default words per tiled dimension (innermost tile extent)
DEFAULT_TILE = 512
#: collections up to this many words may be loaded whole
WHOLE_BUDGET = 16384
#: words fetched per data-dependent segment (CSR row tiles)
SEG_BUDGET = 2048


class _DimInfo:
    """Per-chain-dimension lowering info."""

    def __init__(self, idx: E.Idx, kind: str, extent: Optional[int],
                 tile: Optional[int], origin: Optional[E.Expr],
                 base_expr: Optional[E.Expr]):
        self.idx = idx
        self.kind = kind          # "tiled" | "full" | "dyn" | "range"
        self.extent = extent      # static extent when known
        self.tile = tile          # tile extent (static dims)
        self.origin = origin      # tile origin expression
        self.base_expr = base_expr  # local base (origin / range lo)


class _ArrayPlan:
    """How one input collection is made available on chip."""

    def __init__(self, kind: str, sram: Optional[Sram] = None,
                 reg: Optional[Reg] = None,
                 offsets: Sequence[E.Expr] = (),
                 extents: Sequence[int] = (),
                 serve_gathers: bool = False):
        self.kind = kind          # "cell" | "whole" | "tiled"
        self.sram = sram
        self.reg = reg
        self.offsets = tuple(offsets)
        self.extents = tuple(extents)
        #: whole-resident copies of on-chip collections also serve random
        #: reads (duplication banking); off-chip collections never do
        self.serve_gathers = serve_gathers


class Lowerer:
    """Lowers one :class:`~repro.patterns.program.Program` to DHDL."""

    def __init__(self, program: Program, tile_words: int = DEFAULT_TILE,
                 whole_budget: int = WHOLE_BUDGET,
                 seg_budget: int = SEG_BUDGET):
        self.program = program
        self.tile_words = tile_words
        self.whole_budget = whole_budget
        self.seg_budget = seg_budget
        self.dhdl = DhdlProgram(program.name)
        self._cell_regs: Dict[str, Reg] = {}

    # ------------------------------------------------------------------ API --
    def lower(self) -> DhdlProgram:
        """Lower the whole program and validate the result."""
        from repro.compiler.buffering import infer_buffer_depths
        self._lower_body(self.program.body, self.dhdl.root)
        infer_buffer_depths(self.dhdl)
        validate(self.dhdl)
        return self.dhdl

    # -------------------------------------------------------------- helpers --
    def _cell_reg(self, array: Array) -> Reg:
        """The register mirroring a 0-d DRAM cell."""
        reg = self._cell_regs.get(array.name)
        if reg is None:
            init = array.data[()].item() if array.data is not None else 0
            reg = self.dhdl.reg(f"{array.name}_reg", array.dtype,
                                init=init)
            self._cell_regs[array.name] = reg
            self.dhdl.dram(array)
            self.dhdl.reg_outputs[reg.name] = array.name
        return reg

    def _lower_body(self, body, parent: OuterController) -> None:
        for node in body:
            if isinstance(node, Step):
                _StepCoordinator(self, node, parent).run()
            elif isinstance(node, Loop):
                chain = CounterChain([Counter(0, node.trip)],
                                     [E.Idx(f"{node.name}_it")])
                stop = None
                if node.stop_when_zero is not None:
                    stop = self._cell_reg(node.stop_when_zero)
                loop = OuterController(self.dhdl.fresh(node.name),
                                       Scheme.SEQUENTIAL, chain=chain,
                                       stop_when_zero=stop,
                                       max_trip=node.trip)
                parent.add(loop)
                if node.index_cell is not None:
                    reg = self._cell_reg(node.index_cell)
                    idx_chain = CounterChain([Counter(0, 1)],
                                             [E.Idx("z")])
                    loop.add(InnerCompute(
                        self.dhdl.fresh(f"{node.name}_idx"), idx_chain,
                        [WriteStmt(reg, (), chain.indices[0])],
                        address_class=True))
                self._lower_body(node.body, loop)
            else:
                raise LoweringError(f"unknown program node {node!r}")


def lower(program: Program, **kwargs) -> DhdlProgram:
    """Convenience wrapper: lower a program with default budgets."""
    return Lowerer(program, **kwargs).lower()


class _SharedStep:
    """State shared by the unrolled copies of one step.

    Outer-loop parallelization (Section 3.6's unrolling) duplicates a
    step's inner controllers ``unroll`` times; the copies share the step
    scope, the tile loop (whose unrolled counter steps ``unroll`` tiles
    at a time), whole-array buffer plans, and the list of partial fold
    accumulators merged by a final combiner.
    """

    def __init__(self, scope: OuterController, unroll: int):
        self.scope = scope
        self.unroll = unroll
        self.unroll_axis: Optional[int] = None
        self.counters_ready = False
        self.tile_chain_counters: List[Counter] = []
        self.tile_chain_indices: List[E.Idx] = []
        self.loop: Optional[OuterController] = None
        self.whole_plans: Dict[str, _ArrayPlan] = {}
        #: fold output name -> list over copies of per-width partial regs
        self.fold_parts: Dict[str, List[List[Reg]]] = {}


class _StepCoordinator:
    """Creates the step scope and drives the unrolled copies."""

    def __init__(self, owner: Lowerer, step: Step,
                 parent: OuterController):
        self.owner = owner
        self.dhdl = owner.dhdl
        self.step = step
        self.scope = OuterController(self.dhdl.fresh(step.name),
                                     Scheme.PIPELINE)
        parent.add(self.scope)

    def run(self) -> None:
        requested = self.step.outer_par
        if not isinstance(self.step.pattern, (Map, Fold)):
            requested = 1  # unrolling supported for Map/Fold steps
        shared = _SharedStep(self.scope, min(requested, 8))
        first = _StepLowerer(self.owner, self.step, self.scope,
                             copy_id=0, shared=shared)
        first.run()
        for copy_id in range(1, shared.unroll):
            _StepLowerer(self.owner, self.step, self.scope,
                         copy_id=copy_id, shared=shared).run()
        self._merge_fold_partials(shared)

    def _merge_fold_partials(self, shared: _SharedStep) -> None:
        """Combine per-copy partial accumulators into the outputs."""
        if not shared.fold_parts:
            return
        pattern: Fold = self.step.pattern
        width = pattern.width
        parts = shared.fold_parts[self.step.outputs[0].name]
        current = [E.Load(parts[0][w], ()) for w in range(width)]
        for copy in parts[1:]:
            mapping = {}
            for w in range(width):
                mapping[pattern.acc_a[w]] = current[w]
                mapping[pattern.acc_b[w]] = E.Load(copy[w], ())
            current = [substitute(pattern.combine[w], mapping, {})
                       for w in range(width)]
        chain = CounterChain([Counter(0, 1)], [E.Idx("z")])
        writes = [WriteStmt(self.owner._cell_reg(out), (), current[w])
                  for w, out in enumerate(self.step.outputs)]
        self.scope.add(InnerCompute(
            self.dhdl.fresh(f"{self.step.name}_merge"), chain, writes))


class _StepLowerer:
    """Lowers one (copy of a possibly unrolled) pattern step."""

    def __init__(self, owner: Lowerer, step: Step,
                 scope: OuterController, copy_id: int = 0,
                 shared: Optional[_SharedStep] = None):
        self.owner = owner
        self.dhdl = owner.dhdl
        self.step = step
        self.pattern = step.pattern
        self.copy_id = copy_id
        self.shared = shared or _SharedStep(scope, 1)
        self.scope = self.shared.scope
        self.dims: List[_DimInfo] = []
        self.tile_chain_counters = self.shared.tile_chain_counters
        self.tile_chain_indices = self.shared.tile_chain_indices
        self.plans: Dict[str, _ArrayPlan] = {}
        self.pre_loads: List = []      # whole-array loads (scope level)
        self.tile_loads: List = []     # per-tile loads (tile loop level)
        self.gather_nodes: List = []   # (addr compute, Gather) pairs
        self._gather_cache: Dict[int, E.Load] = {}
        self._rewrite_memo: Dict[E.Expr, E.Expr] = {}
        self._simplify_memo: Dict[E.Expr, E.Expr] = {}
        self._origin_subst: Dict[E.Expr, E.Expr] = {}

    # ------------------------------------------------------------ entry -----
    def run(self) -> None:
        self._build_dims()
        self._plan_arrays()
        self._emit()

    # ------------------------------------------------------- domain / dims --
    def _pattern_dim_list(self):
        """(dims, indices, n_map_dims): pattern dims plus nested fold
        dims, flagged by how many leading dims are map (output) dims."""
        pattern = self.pattern
        if isinstance(pattern, Map) and pattern.inner is not None:
            dims = list(pattern.dims) + list(pattern.inner.dims)
            indices = list(pattern.indices) + list(pattern.inner.indices)
            return dims, indices, len(pattern.dims)
        if isinstance(pattern, Fold):
            # a plain Fold's own static dims tile (carry accumulation
            # stitches the partial reductions together)
            return list(pattern.dims), list(pattern.indices), len(
                pattern.dims)
        n = len(pattern.dims)
        return list(pattern.dims), list(pattern.indices), n

    def _tile_of(self, axis: int, extent: int) -> int:
        if self.step.tile is not None and axis < len(self.step.tile):
            return min(self.step.tile[axis], extent)
        # only the innermost tiled dim gets a large tile; outer dims get
        # modest tiles so 2-d tiles stay within one PMU
        return min(extent, self.owner.tile_words)

    def _build_dims(self) -> None:
        dims, indices, n_map = self._pattern_dim_list()
        self.n_map_dims = n_map
        shared = self.shared
        tiled_axes = []
        for axis, (dim, idx) in enumerate(zip(dims, indices)):
            if isinstance(dim, StaticDim) and axis < n_map:
                tiled_axes.append(axis)
        # budget 2-d+ tiles: shrink outer tiled dims so tile products of
        # the *output* stay reasonable
        tile_sizes: Dict[int, int] = {}
        budget = self.owner.tile_words
        for axis in reversed(tiled_axes):
            extent = dims[axis].extent
            tile = min(self._tile_of(axis, extent), max(1, budget))
            tile_sizes[axis] = tile
            budget = max(1, budget // max(1, tile))

        # pick the unroll axis (copy 0 decides for all copies): the
        # first tiled axis with enough tiles to feed every copy
        if not shared.counters_ready and shared.unroll > 1:
            chosen = None
            for axis in tiled_axes:
                extent = dims[axis].extent
                tile = tile_sizes[axis]
                if tile < extent and extent >= tile * shared.unroll:
                    chosen = axis
                    break
            if chosen is None:
                shared.unroll = 1
            shared.unroll_axis = chosen

        chain_pos = 0
        for axis, (dim, idx) in enumerate(zip(dims, indices)):
            if isinstance(dim, StaticDim):
                if axis in tile_sizes and tile_sizes[axis] < dim.extent:
                    tile = tile_sizes[axis]
                    if shared.counters_ready:
                        origin = self.tile_chain_indices[chain_pos]
                    else:
                        origin = E.Idx(f"{idx.name}_o")
                        step_size = tile
                        if axis == shared.unroll_axis:
                            step_size = tile * shared.unroll
                        self.tile_chain_counters.append(
                            Counter(0, dim.extent, step=step_size))
                        self.tile_chain_indices.append(origin)
                    chain_pos += 1
                    origin_expr: E.Expr = origin
                    if axis == shared.unroll_axis and self.copy_id:
                        origin_expr = origin + self.copy_id * tile
                    info = _DimInfo(idx, "tiled", dim.extent,
                                    tile, origin_expr, origin_expr)
                    self._origin_subst[idx] = origin_expr
                elif axis in tile_sizes:
                    info = _DimInfo(idx, "full", dim.extent,
                                    tile_sizes[axis], E.wrap(0), E.wrap(0))
                    self._origin_subst[idx] = E.wrap(0)
                else:
                    info = _DimInfo(idx, "full", dim.extent, dim.extent,
                                    E.wrap(0), E.wrap(0))
                    self._origin_subst[idx] = E.wrap(0)
            elif isinstance(dim, DynDim):
                reg = self.owner._cell_reg(dim.dyn.length_of)
                info = _DimInfo(idx, "dyn", None, None, None, E.wrap(0))
                info.length_reg = reg
                self._origin_subst[idx] = E.wrap(0)
            elif isinstance(dim, RangeDim):
                info = _DimInfo(idx, "range", None, None, None, None)
                info.range_dim = dim
            else:
                raise LoweringError(f"unsupported dim {dim!r}")
            self.dims.append(info)
        shared.counters_ready = True

    # -------------------------------------------------------- array plans --
    def _all_roots(self) -> List[E.Expr]:
        pattern = self.pattern
        roots: List[E.Expr] = []
        if isinstance(pattern, Map):
            if pattern.inner is not None:
                roots += list(pattern.inner.body)
                roots += list(pattern.inner.combine)
                for dim in pattern.inner.dims:
                    if isinstance(dim, RangeDim):
                        roots += [dim.lo, dim.hi]
            else:
                roots += list(pattern.body)
        elif isinstance(pattern, Fold):
            roots += list(pattern.body) + list(pattern.combine)
        elif isinstance(pattern, FlatMap):
            for cond, value in pattern.emits:
                roots += [cond, value]
        elif isinstance(pattern, HashReduce):
            roots += [pattern.key] + list(pattern.value)
            roots += list(pattern.combine)
        elif isinstance(pattern, ScatterMap):
            roots += [pattern.index, pattern.value]
        for dim in self.pattern.dims:
            if isinstance(dim, RangeDim):
                roots += [dim.lo, dim.hi]
        return roots

    def _plan_arrays(self) -> None:
        """Decide a strategy per accessed collection, in dependency
        rounds (index arrays before the arrays indexed through them)."""
        loads_by_array: Dict[str, List[E.Load]] = {}
        for root in self._all_roots():
            for load in E.collect_loads(root):
                if isinstance(load.array, Array):
                    loads_by_array.setdefault(load.array.name,
                                              []).append(load)
        pending = dict(loads_by_array)
        progressed = True
        while pending and progressed:
            progressed = False
            for name in list(pending):
                loads = pending[name]
                array = self.owner.program.arrays[name]
                if array.shape == ():
                    self.plans[name] = _ArrayPlan(
                        "cell", reg=self.owner._cell_reg(array))
                    del pending[name]
                    progressed = True
                    continue
                if self._deps_ready(loads, pending):
                    self.plans[name] = self._plan_one(array, loads)
                    del pending[name]
                    progressed = True
        if pending:
            raise LoweringError(
                f"circular index dependencies among arrays "
                f"{sorted(pending)}")

    def _deps_ready(self, loads: List[E.Load], pending) -> bool:
        range_deps: Dict[E.Idx, set] = {}
        for info in self.dims:
            if info.kind == "range":
                names = set()
                for bound in (info.range_dim.lo, info.range_dim.hi):
                    for inner in E.collect_loads(bound):
                        if isinstance(inner.array, Array):
                            names.add(inner.array.name)
                range_deps[info.idx] = names
        for load in loads:
            for idx_expr in load.indices:
                for inner in E.collect_loads(idx_expr):
                    if isinstance(inner.array, Array) and \
                            inner.array.name in pending and \
                            inner.array.name != load.array.name:
                        return False
                # segment bases depend on the range-bound arrays
                for idx in E.collect_indices(idx_expr):
                    for name in range_deps.get(idx, ()):
                        if name in pending and \
                                name != load.array.name:
                            return False
        return True

    def _is_gather(self, load: E.Load) -> bool:
        return any(E.collect_loads(i) for i in load.indices)

    def _plan_one(self, array: Array, loads: List[E.Load]) -> _ArrayPlan:
        affine_loads = [l for l in loads if not self._is_gather(l)]
        gather_loads = [l for l in loads if self._is_gather(l)]
        if array.offchip:
            # the paper's sparse collections: random reads stay in DRAM
            # and go through the coalescing units
            self.dhdl.dram(array)
            if affine_loads:
                tiled = self._try_tiled(array, affine_loads)
                if tiled is not None:
                    return tiled
                # dense linear scans stream the collection through a
                # per-activation buffer (no persistent caching)
                if array.static_elems() <= self.owner.whole_budget:
                    return self._plan_whole(array, affine_loads, [])
                raise LoweringError(
                    f"off-chip array {array.name!r} has affine "
                    f"accesses that cannot be tiled")
            return _ArrayPlan("gather-only")
        if gather_loads and not affine_loads:
            words = array.static_elems()
            if words <= self.owner.whole_budget:
                return self._plan_whole(array, affine_loads, gather_loads)
            self.dhdl.dram(array)
            return _ArrayPlan("gather-only")
        tiled = self._try_tiled(array, affine_loads)
        if tiled is not None:
            if gather_loads:
                self.dhdl.dram(array)
            return tiled
        words = array.static_elems()
        if words <= self.owner.whole_budget:
            return self._plan_whole(array, affine_loads, gather_loads)
        if affine_loads:
            raise LoweringError(
                f"array {array.name!r} ({words} words) is too large to "
                f"load whole and its accesses are not tileable")
        self.dhdl.dram(array)
        return _ArrayPlan("gather-only")

    def _plan_whole(self, array, affine_loads, gather_loads) -> _ArrayPlan:
        cached = self.shared.whole_plans.get(array.name)
        if cached is not None:
            return cached  # copies share the whole-array buffer
        banking = self._banking_for(affine_loads + gather_loads)
        shape = array.shape if not array.is_dynamic else (
            array.static_elems(),)
        sram = self.dhdl.sram(f"{array.name}_buf", shape, array.dtype,
                              banking=banking, nbuf=1)
        dram = self.dhdl.dram(array)
        load_node = TileLoad(self.dhdl.fresh(f"load_{array.name}"), dram,
                             sram, tuple(0 for _ in shape), shape)
        self.pre_loads.append(load_node)
        plan = _ArrayPlan("whole", sram=sram,
                          serve_gathers=not array.offchip)
        self.shared.whole_plans[array.name] = plan
        return plan

    def _banking_for(self, loads) -> BankingMode:
        for load in loads:
            for idx_expr in load.indices:
                form = as_affine(idx_expr)
                if form is None:
                    return BankingMode.DUPLICATION
                active = [i for i, c in form.coeffs.items() if c]
                if len(active) >= 2:
                    return BankingMode.LINE_BUFFER
        return BankingMode.STRIDED

    def _try_tiled(self, array: Array,
                   loads: List[E.Load]) -> Optional[_ArrayPlan]:
        """Translation-affine tiling plan, or None when not applicable."""
        if not loads or array.is_dynamic:
            return None
        rank = array.ndim
        dim_by_idx = {info.idx: info for info in self.dims}
        # collect per-dim affine forms across all loads
        consts: List[List[int]] = [[] for _ in range(rank)]
        coeffs: List[Dict[E.Idx, int]] = [{} for _ in range(rank)]
        range_base: List[Optional[E.Expr]] = [None] * rank
        for load in loads:
            for d, idx_expr in enumerate(load.indices):
                form = as_affine(idx_expr)
                if form is None:
                    return None
                active = {i: c for i, c in form.coeffs.items() if c}
                for idx, coeff in active.items():
                    if coeff < 0 or idx not in dim_by_idx:
                        return None
                    info = dim_by_idx[idx]
                    if info.kind == "dyn":
                        return None
                    if info.kind == "range":
                        if coeff != 1 or len(active) != 1:
                            return None
                        if not self._range_base_static(info):
                            return None
                        range_base[d] = info  # marker; resolved below
                    prev = coeffs[d].get(idx)
                    if prev is not None and prev != coeff:
                        return None
                    coeffs[d][idx] = coeff
                consts[d].append(form.const)
        # compute offsets and extents
        offsets: List[E.Expr] = []
        extents: List[int] = []
        locals_needed = False
        for d in range(rank):
            if not consts[d]:
                return None
            cmin, cmax = min(consts[d]), max(consts[d])
            if range_base[d] is not None:
                info = range_base[d]
                lo = info.range_dim.lo
                base = substitute(lo, self._origin_subst, {})
                offsets.append(self._rewrite_for_inner(base))
                extents.append(min(self.owner.seg_budget,
                                   _static_dim_size(array, d)))
                locals_needed = True
                continue
            offset: E.Expr = E.wrap(cmin)
            extent = cmax - cmin + 1
            for idx, coeff in coeffs[d].items():
                info = dim_by_idx[idx]
                if info.kind == "tiled":
                    offset = offset + info.origin * coeff
                    extent += coeff * (info.tile - 1)
                    locals_needed = True
                else:  # full
                    extent += coeff * (info.extent - 1)
            extent = min(extent, _static_dim_size(array, d))
            offsets.append(offset)
            extents.append(extent)
        words = 1
        for extent in extents:
            words *= extent
        if words > self.owner.whole_budget * 4:
            return None
        # degenerate to WHOLE when nothing is actually translated and
        # the collection fits the whole-array budget
        if not locals_needed and words == array.static_elems() \
                and words <= self.owner.whole_budget:
            return None
        banking = self._banking_for(loads)
        nbuf = 2 if self.tile_chain_counters else 1
        offsets = [simplify(o, self._simplify_memo) for o in offsets]
        sram = self.dhdl.sram(f"{array.name}_tile", extents, array.dtype,
                              banking=banking, nbuf=nbuf)
        dram = self.dhdl.dram(array)
        load_node = TileLoad(self.dhdl.fresh(f"load_{array.name}"), dram,
                             sram, offsets, extents)
        self.tile_loads.append(load_node)
        return _ArrayPlan("tiled", sram=sram, offsets=offsets,
                          extents=extents)

    # -------------------------------------------------------- rewriting -----
    def _range_base_static(self, info: _DimInfo) -> bool:
        """A segment base is usable only when the range's lower bound
        depends solely on static (tiled/full) dims — otherwise positions
        are not contiguous within one tile activation."""
        static = {d.idx for d in self.dims if d.kind in ("tiled", "full")}
        for idx in E.collect_indices(info.range_dim.lo):
            if idx not in static:
                return False
        return True

    def _rewrite_for_inner(self, root: E.Expr) -> E.Expr:
        """Rewrite a traced expression for the inner compute body."""
        rewritten = rewrite(root, self._replace_node, self._rewrite_memo)
        return simplify(rewritten, self._simplify_memo)

    def _replace_node(self, node: E.Expr) -> Optional[E.Expr]:
        if not isinstance(node, E.Load) or not isinstance(node.array,
                                                          Array):
            return None
        array = node.array
        if array.shape == ():
            return E.Load(self.owner._cell_reg(array), ())
        plan = self.plans.get(array.name)
        if plan is None:
            raise LoweringError(f"no plan for array {array.name!r}")
        if self._is_gather(node) and not plan.serve_gathers:
            return self._lower_gather(node)
        if plan.kind == "whole":
            idxs = [self._rewrite_for_inner(i) for i in node.indices]
            if array.is_dynamic:
                return E.Load(plan.sram, idxs)
            return E.Load(plan.sram, idxs)
        if plan.kind == "tiled":
            local = []
            for d, idx_expr in enumerate(node.indices):
                rewritten = self._rewrite_for_inner(idx_expr)
                offset = plan.offsets[d]
                if isinstance(offset, E.Const) and offset.value == 0:
                    local.append(rewritten)
                else:
                    local.append(rewritten - offset)
            return E.Load(plan.sram, local)
        raise LoweringError(
            f"array {array.name!r} has plan {plan.kind!r} but is "
            f"accessed directly")

    def _inner_pos(self) -> Tuple[E.Expr, E.Expr]:
        """(position, base) of the innermost chain dim within its tile."""
        info = self.dims[-1]
        if info.kind == "tiled":
            return info.idx - info.origin, info.origin
        if info.kind == "full":
            return info.idx, E.wrap(0)
        if info.kind == "dyn":
            return info.idx, E.wrap(0)
        # range: position relative to the tile-wide segment base (the
        # range's lower bound evaluated at the tile origin; requires the
        # bound to be monotone in the tiled index, as CSR pointers are)
        if not self._range_base_static(info):
            raise LoweringError(
                f"step {self.step.name!r}: a gather/scatter position "
                f"cannot be derived for a range whose base depends on "
                f"dynamic dims; restructure as a 1-d pass (see BFS)")
        lo = info.range_dim.lo
        base = self._rewrite_for_inner(substitute(lo, self._origin_subst,
                                                  {}))
        return info.idx - base, base

    def _gather_budget(self) -> int:
        info = self.dims[-1]
        if info.kind in ("tiled", "full"):
            return info.tile
        if info.kind == "dyn":
            # budget from the dynamic collection bound
            length_of = None
            for dim in self.pattern.dims:
                if isinstance(dim, DynDim):
                    length_of = dim.dyn.length_of
            bound = getattr(length_of, "max_elems", None)
            if bound:
                return bound
            return self.owner.seg_budget
        return self.owner.seg_budget

    def _lower_gather(self, node: E.Load) -> E.Load:
        key = id(node)
        cached = self._gather_cache.get(key)
        if cached is not None:
            return cached
        array = node.array
        if array.ndim != 1:
            raise LoweringError(
                f"gather target {array.name!r} must be 1-d")
        idx_expr = self._rewrite_for_inner(node.indices[0])
        budget = self._gather_budget()
        pos, _base = self._inner_pos()
        addr = self.dhdl.sram(f"{array.name}_addr", (budget,), E.INT32,
                              banking=BankingMode.STRIDED, nbuf=2)
        dst = self.dhdl.sram(f"{array.name}_g", (budget,), array.dtype,
                             banking=BankingMode.DUPLICATION, nbuf=2)
        chain = self._inner_chain()
        addr_compute = InnerCompute(
            self.dhdl.fresh(f"{array.name}_addrs"), chain,
            [WriteStmt(addr, (pos,), idx_expr)], address_class=True)
        dram = self.dhdl.dram(array)
        gather = Gather(self.dhdl.fresh(f"gather_{array.name}"), dram,
                        addr, dst)
        self.gather_nodes.append((addr_compute, gather))
        result = E.Load(dst, (pos,))
        self._gather_cache[key] = result
        return result

    # ---------------------------------------------------------- chains ------
    def _inner_chain(self) -> CounterChain:
        counters = []
        indices = []
        for pos, info in enumerate(self.dims):
            is_inner = pos == len(self.dims) - 1
            par = self._par_for(pos) if is_inner else 1
            if info.kind == "tiled":
                hi = E.minimum(info.origin + info.tile,
                               E.wrap(info.extent))
                counters.append(Counter(info.origin, hi, par=par))
            elif info.kind == "full":
                counters.append(Counter(0, info.extent, par=par))
            elif info.kind == "dyn":
                counters.append(Counter(0, E.Load(info.length_reg, ()),
                                        par=par))
            else:
                lo = self._rewrite_for_inner(info.range_dim.lo)
                hi = self._rewrite_for_inner(info.range_dim.hi)
                counters.append(Counter(lo, hi, par=par))
            indices.append(info.idx)
        return CounterChain(counters, indices)

    def _par_for(self, pos: int) -> int:
        pattern = self.pattern
        lanes = 16
        if isinstance(pattern, Map) and pattern.inner is not None and \
                pos >= self.n_map_dims:
            requested = self.step.inner_par
        else:
            requested = self.step.par[pos] if pos < len(self.step.par) \
                else 1
        if requested > 1:
            return min(requested, lanes)
        info = self.dims[pos]
        hint = info.tile if info.tile else 16
        return max(1, min(lanes, hint))

    # ----------------------------------------------------------- emission ---
    def _emit(self) -> None:
        pattern = self.pattern
        if isinstance(pattern, Map):
            self._emit_map()
        elif isinstance(pattern, Fold):
            self._emit_fold()
        elif isinstance(pattern, FlatMap):
            self._emit_flatmap()
        elif isinstance(pattern, HashReduce):
            self._emit_hash_reduce()
        elif isinstance(pattern, ScatterMap):
            self._emit_scatter()
        else:
            raise LoweringError(f"cannot lower pattern {pattern!r}")

    def _tile_loop(self) -> OuterController:
        """The (possibly single-iteration) loop over tile origins."""
        if self.tile_chain_counters:
            chain = CounterChain(self.tile_chain_counters,
                                 self.tile_chain_indices)
        else:
            chain = None
        loop = OuterController(self.dhdl.fresh(f"{self.step.name}_tiles"),
                               Scheme.PIPELINE, chain=chain)
        return loop

    def _assign_bank_strides(self, computes) -> None:
        """Configure each tile's address decoder so the vectorised
        (innermost) access dimension interleaves across banks."""
        inner_idx = self.dims[-1].idx
        strides: Dict[str, set] = {}
        srams: Dict[str, Sram] = {}
        for compute in computes:
            if not isinstance(compute, InnerCompute):
                continue
            roots = []
            for stmt in compute.stmts:
                roots.extend(stmt.exprs())
            for root in roots:
                for load in E.collect_loads(root):
                    if not isinstance(load.array, Sram):
                        continue
                    lc = classify_load(load)
                    flat = lc.flat_affine(load.array.shape)
                    if flat is None:
                        continue
                    stride = flat.stride_of(inner_idx)
                    if stride > 0:
                        strides.setdefault(load.array.name,
                                           set()).add(stride)
                        srams[load.array.name] = load.array
        for name, found in strides.items():
            if len(found) == 1:
                srams[name].bank_stride = found.pop()

    def _assemble(self, inner_children, finals=()) -> None:
        """Wire scope = [pre_loads..., tile_loop[...], finals...].

        Later copies must still place their initialisers *before* the
        shared tile loop in program order (initialise -> accumulate ->
        merge dependency direction).
        """
        if self.shared.loop is None:
            for node in self.pre_loads:
                self.scope.add(node)
            self.shared.loop = self._tile_loop()
            self.scope.add(self.shared.loop)
        else:
            position = self.scope.children.index(self.shared.loop)
            for node in self.pre_loads:
                node.parent = self.scope
                self.scope.children.insert(position, node)
                position += 1
        loop = self.shared.loop
        for node in self.tile_loads:
            loop.add(node)
        for addr_compute, gather in self.gather_nodes:
            loop.add(addr_compute)
            loop.add(gather)
        strided = list(inner_children) + [a for a, _ in
                                          self.gather_nodes]
        self._assign_bank_strides(
            [c for c in strided if isinstance(c, InnerCompute)]
            + [c for node in strided if isinstance(node, OuterController)
               for c in node.children if isinstance(c, InnerCompute)])
        for child in inner_children:
            loop.add(child)
        for node in finals:
            self.scope.add(node)
        self._loop = loop

    def _out_tile(self, out: Array, map_dims: List[_DimInfo],
                  dtype: str) -> Tuple[Sram, List[E.Expr], List[int],
                                       List[E.Expr]]:
        """(sram, local addr exprs, tile shape, store offsets)."""
        if out.ndim == 0:
            raise LoweringError("0-d outputs use registers, not tiles")
        shape = []
        local = []
        offsets = []
        if out.is_dynamic:
            info = self.dims[0]
            budget = out.static_elems()
            shape = [budget]
            local = [info.idx]
            offsets = [E.wrap(0)]
        else:
            for info in map_dims:
                shape.append(info.tile if info.tile else
                             self.owner.seg_budget)
                if info.kind == "tiled":
                    local.append(info.idx - info.origin)
                    offsets.append(info.origin)
                else:
                    local.append(info.idx)
                    offsets.append(E.wrap(0))
        sram = self.dhdl.sram(f"{out.name}_tile", shape, dtype,
                              nbuf=2 if self.tile_chain_counters else 1)
        return sram, local, shape, offsets

    def _emit_map(self) -> None:
        pattern: Map = self.pattern
        map_dims = self.dims[:self.n_map_dims] or self.dims
        outs = self.step.outputs
        stores = []
        stmts = []
        if pattern.inner is not None:
            fold = pattern.inner
            tiles = []
            for k, out in enumerate(outs):
                sram, local, shape, offsets = self._out_tile(
                    out, map_dims, fold.body[k].dtype)
                tiles.append((sram, local, shape, offsets, out))
            values = [self._rewrite_for_inner(b) for b in fold.body]
            combines = [self._rewrite_for_inner(c) for c in fold.combine]
            stmts.append(ReduceStmt(
                [t[0] for t in tiles], values, combines, fold.acc_a,
                fold.acc_b, fold.init, addr=tiles[0][1]))
            for sram, local, shape, offsets, out in tiles:
                dram = self.dhdl.dram(out)
                stores.append(TileStore(
                    self.dhdl.fresh(f"store_{out.name}"), dram, sram,
                    offsets, shape, count=self._dyn_count(out)))
        else:
            for k, out in enumerate(outs):
                if out.ndim == 0:
                    reg = self.owner._cell_reg(out)
                    stmts.append(WriteStmt(
                        reg, (), self._rewrite_for_inner(
                            pattern.body[k])))
                    continue
                sram, local, shape, offsets = self._out_tile(
                    out, map_dims, pattern.body[k].dtype)
                stmts.append(WriteStmt(sram, local,
                                       self._rewrite_for_inner(
                                           pattern.body[k])))
                dram = self.dhdl.dram(out)
                stores.append(TileStore(
                    self.dhdl.fresh(f"store_{out.name}"), dram, sram,
                    offsets, shape, count=self._dyn_count(out)))
        compute = InnerCompute(self.dhdl.fresh(f"{self.step.name}_body"),
                               self._inner_chain(), stmts)
        self._assemble([compute] + stores)

    def _dyn_count(self, out: Array) -> Optional[E.Expr]:
        if not out.is_dynamic:
            return None
        # store exactly as many elements as the (dynamic) domain produced
        info = self.dims[0]
        if info.kind == "dyn":
            return E.Load(info.length_reg, ())
        for dim in out.shape:
            length_reg = self.owner._cell_reg(dim.length_of)
            return E.Load(length_reg, ())
        return None

    def _emit_fold(self) -> None:
        pattern: Fold = self.pattern
        regs = []
        init_stmts = []
        unrolled = self.shared.unroll > 1
        for k, out in enumerate(self.step.outputs):
            if unrolled:
                reg = self.dhdl.reg(f"{out.name}_part",
                                    pattern.body[k].dtype,
                                    init=pattern.init[k])
            else:
                reg = self.owner._cell_reg(out)
            regs.append(reg)
            init_stmts.append(WriteStmt(reg, (),
                                        E.wrap(pattern.init[k])))
        if unrolled:
            parts = self.shared.fold_parts.setdefault(
                self.step.outputs[0].name, [])
            parts.append(regs)
        init_chain = CounterChain([Counter(0, 1)], [E.Idx("z")])
        init = InnerCompute(self.dhdl.fresh(f"{self.step.name}_init"),
                            init_chain, init_stmts, address_class=True)
        values = [self._rewrite_for_inner(b) for b in pattern.body]
        combines = [self._rewrite_for_inner(c) for c in pattern.combine]
        stmt = ReduceStmt(regs, values, combines, pattern.acc_a,
                          pattern.acc_b, pattern.init, carry=True)
        compute = InnerCompute(self.dhdl.fresh(f"{self.step.name}_body"),
                               self._inner_chain(), [stmt])
        self.pre_loads.insert(0, init)
        self._assemble([compute])

    def _emit_flatmap(self) -> None:
        pattern: FlatMap = self.pattern
        out = self.step.outputs[0]
        count_reg = self.owner._cell_reg(self.step.length_output)
        init_chain = CounterChain([Counter(0, 1)], [E.Idx("z")])
        init = InnerCompute(self.dhdl.fresh(f"{self.step.name}_rst"),
                            init_chain, [WriteStmt(count_reg, (),
                                                   E.wrap(0))],
                            address_class=True)
        fifo = self.dhdl.fifo(f"{out.name}_fifo", out.dtype, depth=8)
        emit_stmts = [EmitStmt(fifo, self._rewrite_for_inner(cond),
                               self._rewrite_for_inner(value))
                      for cond, value in pattern.emits]
        compute = InnerCompute(self.dhdl.fresh(f"{self.step.name}_body"),
                               self._inner_chain(), emit_stmts)
        dram = self.dhdl.dram(out)
        drain = StreamStore(self.dhdl.fresh(f"{self.step.name}_drain"),
                            dram, fifo, count_reg,
                            base_offset=E.Load(count_reg, ()),
                            accumulate=True)
        stream = OuterController(
            self.dhdl.fresh(f"{self.step.name}_stream"), Scheme.STREAMING)
        stream.add(compute)
        stream.add(drain)
        self.pre_loads.insert(0, init)
        self._assemble([stream])

    def _emit_hash_reduce(self) -> None:
        pattern: HashReduce = self.pattern
        self._check_componentwise(pattern)
        bins = pattern.bins
        stores = []
        stmts = []
        init_computes = []
        for k, out in enumerate(self.step.outputs):
            sram = self.dhdl.sram(f"{out.name}_bins", (bins,),
                                  pattern.value[k].dtype, nbuf=1)
            zidx = E.Idx("b")
            init_chain = CounterChain(
                [Counter(0, bins, par=min(16, bins))], [zidx])
            init_computes.append(InnerCompute(
                self.dhdl.fresh(f"{self.step.name}_init{k}"), init_chain,
                [WriteStmt(sram, (zidx,), E.wrap(pattern.init[k]))],
                address_class=True))
            stmts.append(HashReduceStmt(
                sram, self._rewrite_for_inner(pattern.key),
                self._rewrite_for_inner(pattern.value[k]),
                self._rewrite_for_inner(pattern.combine[k]),
                pattern.acc_a[k], pattern.acc_b[k], pattern.init[k],
                carry=True))
            dram = self.dhdl.dram(out)
            stores.append(TileStore(self.dhdl.fresh(f"store_{out.name}"),
                                    dram, sram, (0,), (bins,)))
        compute = InnerCompute(self.dhdl.fresh(f"{self.step.name}_body"),
                               self._inner_chain(), stmts)
        for init in reversed(init_computes):
            self.pre_loads.insert(0, init)
        self._assemble([compute], finals=stores)

    def _check_componentwise(self, pattern: HashReduce) -> None:
        for k, combine in enumerate(pattern.combine):
            allowed = {pattern.acc_a[k], pattern.acc_b[k]}
            for node in E.postorder(combine):
                if isinstance(node, E.Var) and node not in allowed:
                    raise LoweringError(
                        "HashReduce combine functions must be "
                        "component-wise (component "
                        f"{k} references other accumulators)")

    def _emit_scatter(self) -> None:
        pattern: ScatterMap = self.pattern
        target = self.step.outputs[0]
        budget = self._gather_budget()
        pos, _ = self._inner_pos()
        addr = self.dhdl.sram(f"{self.step.name}_addr", (budget,),
                              E.INT32, nbuf=2)
        vals = self.dhdl.sram(f"{self.step.name}_val", (budget,),
                              pattern.value.dtype, nbuf=2)
        compute = InnerCompute(
            self.dhdl.fresh(f"{self.step.name}_body"),
            self._inner_chain(),
            [WriteStmt(addr, (pos,),
                       self._rewrite_for_inner(pattern.index)),
             WriteStmt(vals, (pos,),
                       self._rewrite_for_inner(pattern.value))])
        dram = self.dhdl.dram(target)
        scatter = Scatter(self.dhdl.fresh(f"{self.step.name}_scatter"),
                          dram, addr, vals)
        self._assemble([compute, scatter])


def _static_dim_size(array: Array, d: int) -> int:
    size = array.shape[d]
    if isinstance(size, int):
        return size
    return array.static_elems()
