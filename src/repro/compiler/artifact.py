"""Compile an application straight to a frozen :class:`Bitstream`.

This is the module that ties the compiler to the artifact layer: it runs
:func:`~repro.compiler.driver.compile_program`, freezes the DRAM layout
into the configuration, and discards every compiler-internal object
(``Fabric``, the pattern ``Program``) so what remains is exactly the
serializable compiler->simulator contract.  The cached variant consults
a :class:`~repro.bitstream.cache.CompileCache` first and reports whether
the result was a hit, a miss, or uncached.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.params import DEFAULT, PlasticineParams
from repro.bitstream.artifact import Bitstream, CompileOptions, compile_key
from repro.bitstream.cache import CompileCache
from repro.compiler.driver import compile_program
from repro.dhdl.analysis import assign_bases
from repro.patterns.program import Program


def freeze_program(program: Program, app: str, scale: str,
                   params: PlasticineParams = DEFAULT,
                   options: Optional[CompileOptions] = None,
                   region=None, excluded_sites=None) -> Bitstream:
    """Compile an already-built pattern program into an artifact.

    ``region`` (a :class:`~repro.compiler.place_route.Region`) produces
    a region-constrained artifact for multi-tenant packing.  Region is
    *not* part of :class:`CompileOptions`, so region artifacts must not
    go through the compile cache (the tenancy packer compiles them
    directly — they are packing-specific, not reusable).

    ``excluded_sites`` recompiles around failed unit sites (fault
    recovery); like ``region`` it bypasses the cache — the artifact is
    specific to the failure, not reusable.
    """
    options = options or CompileOptions()
    compiled = compile_program(
        program, params=params,
        tile_words=options.tile_words,
        whole_budget=options.whole_budget,
        ags_per_transfer=options.ags_per_transfer,
        pmu_fraction=options.pmu_fraction,
        region=region, excluded_sites=excluded_sites)
    if not compiled.config.dram_base:
        compiled.config.dram_base = assign_bases(compiled.dhdl.drams)
    return Bitstream(app, scale, compiled.dhdl, compiled.config, options)


def compile_to_bitstream(app: str, scale: str = "small",
                         params: PlasticineParams = DEFAULT,
                         options: Optional[CompileOptions] = None,
                         region=None, excluded_sites=None) -> Bitstream:
    """Build a registry app at ``scale`` and compile it to an artifact."""
    from repro.apps.registry import get_app  # lazy: apps sit above us
    program = get_app(app).build(scale)
    return freeze_program(program, app, scale, params=params,
                          options=options, region=region,
                          excluded_sites=excluded_sites)


def compile_app_cached(app: str, scale: str = "small",
                       params: PlasticineParams = DEFAULT,
                       options: Optional[CompileOptions] = None,
                       cache: Optional[CompileCache] = None
                       ) -> Tuple[Bitstream, str]:
    """Compile through the cache; returns ``(artifact, outcome)``.

    ``outcome`` is ``"hit"`` (loaded from disk), ``"miss"`` (compiled
    and stored), or ``"off"`` (no cache supplied).
    """
    options = options or CompileOptions()
    if cache is None:
        return (compile_to_bitstream(app, scale, params, options), "off")
    key = compile_key(app, scale, params, options)
    cached = cache.get(key)
    if cached is not None:
        return cached, "hit"
    artifact = compile_to_bitstream(app, scale, params, options)
    cache.put(artifact)
    return artifact, "miss"
