"""Partitioning: fit virtual units into physical PCU/PMU shapes.

Section 3.6: virtual PCUs with more stages, live values, or IO than a
physical PCU provides are split into chains of physical PCUs connected
over the vector network.  "A greedy algorithm with a few simple
heuristics can reasonably approximate a perfect physical unit
partitioning."

The cost metric mirrors the paper's: number of physical stages, live
variables per stage, and scalar/vector IO buses required by a proposed
split.  The same code drives the Figure 7 sizing sweeps: given candidate
PCU parameters, :func:`partition` reports how many physical units each
benchmark needs, from which the sweep computes total area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arch.params import PcuParams, PmuParams
from repro.arch.requirements import VirtualPcuReq, VirtualPmuReq
from repro.compiler.scheduling import StageSchedule
from repro.errors import MappingError


@dataclass
class PcuPartition:
    """Result of splitting one virtual PCU across physical PCUs."""

    num_pcus: int
    #: physical pipeline depth across the whole chain (stages actually
    #: occupied, which is what the data traverses)
    pipeline_depth: int
    #: stages left idle in the last unit (utilization loss)
    wasted_stages: int

    @property
    def total_stages(self) -> int:
        """Physical stages occupied plus wasted."""
        return self.pipeline_depth + self.wasted_stages


def partition_pcu(sched: StageSchedule, pcu: PcuParams) -> PcuPartition:
    """Split one schedule into a chain of physical PCUs.

    Greedy: fill each physical PCU with up to ``pcu.stages`` consecutive
    stages, subject to the live-value count at every cut fitting the
    vector IO (values crossing a cut ride the vector network) and the
    register file (live values within a unit need registers).
    """
    if sched.max_live > pcu.regs_per_stage * 2:
        # heavy register pressure forces shorter chunks: every extra live
        # value beyond the register budget must be re-materialised via
        # an extra pass-through stage
        effective_stages = max(1, pcu.stages - (
            sched.max_live - pcu.regs_per_stage * 2))
    else:
        effective_stages = pcu.stages
    cross_cut = min(sched.max_live, sched.vector_reads + 1)
    if cross_cut > pcu.vector_in:
        # not enough vector inputs to carry the live set between units:
        # shorten chunks further so fewer values are live at each cut
        effective_stages = max(1, effective_stages - (cross_cut
                                                      - pcu.vector_in))
    total = sched.num_stages
    num_pcus = -(-total // effective_stages)
    depth = total + (num_pcus - 1)  # one boundary register per hop
    wasted = num_pcus * pcu.stages - total
    return PcuPartition(num_pcus=num_pcus, pipeline_depth=depth,
                        wasted_stages=max(0, wasted))


def feasible(sched: StageSchedule, pcu: PcuParams) -> bool:
    """Can this schedule be mapped at all with the given PCU shape?

    Mirrors the X marks in Figure 7: a configuration is infeasible when
    even a single-stage chunk cannot carry the live values (vector IO +
    registers) or the scalar IO demand exceeds the unit's ports.
    """
    if sched.scalar_reads > pcu.scalar_in * 3:
        return False
    if sched.scalar_writes > pcu.scalar_out * 3:
        return False
    if sched.vector_reads > pcu.vector_in * 4:
        return False
    if sched.max_live > pcu.regs_per_stage * 2 + pcu.vector_in * 2:
        return False
    return True


def pcu_requirement(sched: StageSchedule, lanes_used: int,
                    pcu: PcuParams) -> VirtualPcuReq:
    """Summarize one schedule as a virtual-unit requirement."""
    return VirtualPcuReq(
        stages=sched.num_stages,
        live_regs=sched.max_live,
        scalar_in=min(16, max(1, sched.scalar_reads)),
        scalar_out=min(6, max(1, sched.scalar_writes)),
        vector_in=min(10, max(1, sched.vector_reads)),
        vector_out=min(6, max(1, sched.vector_writes)),
        lanes_used=lanes_used,
    )


@dataclass
class PmuPartition:
    """Result of placing one logical SRAM across physical PMUs."""

    num_pmus: int
    kb: float


def partition_pmu(words: int, nbuf: int, banks: int,
                  pmu: PmuParams) -> PmuPartition:
    """How many physical PMUs one logical scratchpad occupies."""
    total_words = max(1, words) * max(1, nbuf)
    capacity = pmu.scratch_words
    num = -(-total_words // capacity)
    if num > 64:
        raise MappingError(
            f"scratchpad of {total_words} words needs {num} PMUs; "
            f"tile sizes are too large for the architecture")
    return PmuPartition(num_pmus=num, kb=total_words * 4 / 1024.0)


def pmu_requirement(words: int, nbuf: int, banks: int) -> VirtualPmuReq:
    """Summarize one logical scratchpad as a virtual requirement."""
    return VirtualPmuReq(kb=max(1, words) * max(1, nbuf) * 4 / 1024.0,
                         banks=banks)


def chip_fits(num_pcus: int, num_pmus: int, pcu_budget: int,
              pmu_budget: int) -> None:
    """Raise MappingError when the design exceeds the fabric."""
    if num_pcus > pcu_budget:
        raise MappingError(
            f"design needs {num_pcus} PCUs but the fabric has "
            f"{pcu_budget}")
    if num_pmus > pmu_budget:
        raise MappingError(
            f"design needs {num_pmus} PMUs but the fabric has "
            f"{pmu_budget}")


def region_fits(num_pcus: int, num_pmus: int, region,
                capacity: "tuple[int, int]") -> None:
    """Raise MappingError when the design exceeds its *region*.

    A design whose footprint spills past the requested rectangle must
    be rejected outright — silently wrapping onto sites outside the
    region would let co-resident tenants overlap.  ``capacity`` is the
    ``(pcu_sites, pmu_sites)`` pair the region actually provides (see
    :func:`repro.compiler.place_route.region_capacity`).
    """
    pcu_cap, pmu_cap = capacity
    if num_pcus > pcu_cap:
        raise MappingError(
            f"design needs {num_pcus} PCUs but region {region} "
            f"provides {pcu_cap}; enlarge the region")
    if num_pmus > pmu_cap:
        raise MappingError(
            f"design needs {num_pmus} PMUs but region {region} "
            f"provides {pmu_cap}; enlarge the region")
