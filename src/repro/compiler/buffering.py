"""N-buffer depth inference (Section 3.5).

"To allow producers and consumers to work on the same data across
different iterations, each intermediate memory is M-buffered, where M is
the distance between the corresponding producer and consumer on their
data dependency path."

After lowering, every coarse-grained pipeline scope is analysed: for
each on-chip memory written by one child and read by another, the
pipeline distance between them (longest path through the scope's
dependency DAG) determines the buffer depth ``M + 1`` (adjacent stages
double-buffer).  Memories in sequential scopes keep a single buffer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dhdl.analysis import mem_reads as _mem_reads
from repro.dhdl.analysis import mem_writes as _mem_writes
from repro.dhdl.control import Scheme
from repro.dhdl.ir import DhdlProgram, OuterController
from repro.dhdl.memory import Sram


def _stage_positions(ctrl: OuterController) -> List[int]:
    """Pipeline stage index of each child: longest dependency path from
    any source (children with no in-scope producers are stage 0)."""
    n = len(ctrl.children)
    reads = [_mem_reads(c) for c in ctrl.children]
    writes = [_mem_writes(c) for c in ctrl.children]
    stage = [0] * n
    for j in range(n):
        for i in range(j):
            if writes[i] & (reads[j] | writes[j]):
                stage[j] = max(stage[j], stage[i] + 1)
    return stage


def infer_buffer_depths(program: DhdlProgram,
                        max_depth: int = 4) -> Dict[str, int]:
    """Set every SRAM's ``nbuf`` from its pipeline distances.

    Returns the chosen depth per SRAM name.  ``max_depth`` bounds the
    scratchpad cost (deep pipelines fall back to stalling rather than
    buffering unboundedly).
    """
    chosen: Dict[str, int] = {s.name: 1 for s in program.srams}
    by_name: Dict[str, Sram] = {s.name: s for s in program.srams}
    for ctrl in program.controllers():
        if not isinstance(ctrl, OuterController):
            continue
        if ctrl.scheme is not Scheme.PIPELINE:
            continue
        stage = _stage_positions(ctrl)
        reads = [_mem_reads(c) for c in ctrl.children]
        writes = [_mem_writes(c) for c in ctrl.children]
        for j in range(len(ctrl.children)):
            for i in range(j):
                shared = writes[i] & reads[j]
                for name in shared:
                    if name not in by_name:
                        continue
                    distance = max(1, stage[j] - stage[i])
                    depth = min(max_depth, distance + 1)
                    chosen[name] = max(chosen[name], depth)
    for name, depth in chosen.items():
        by_name[name].nbuf = depth
    return chosen
