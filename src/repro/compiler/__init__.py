"""The Plasticine compiler: patterns -> DHDL -> placed configuration."""

from repro.compiler.driver import CompiledApp, compile_program
from repro.compiler.lowering import Lowerer, lower
from repro.compiler.partition import (PcuPartition, PmuPartition, chip_fits,
                                      feasible, partition_pcu,
                                      partition_pmu, region_fits)
from repro.compiler.place_route import (Fabric, Net, Region,
                                        region_capacity, site_kinds)
from repro.compiler.rewrite import rewrite, substitute
from repro.compiler.scheduling import StageSchedule, schedule

__all__ = [
    "CompiledApp", "compile_program",
    "Lowerer", "lower",
    "PcuPartition", "PmuPartition", "chip_fits", "feasible",
    "partition_pcu", "partition_pmu", "region_fits",
    "Fabric", "Net", "Region", "region_capacity", "site_kinds",
    "rewrite", "substitute",
    "StageSchedule", "schedule",
]
