"""Stage scheduling: linearize inner-controller dataflow into SIMD stages.

Section 3.6: "The computation in inner controllers is scheduled by
linearizing the data flow graph and mapping the resulting list of
operations to virtual stages and registers."

Each compute op (BinOp/UnOp/Select) becomes one SIMD stage.  The schedule
is a topological order; the live-value high-water mark across stage
boundaries is the pipeline-register requirement, and the counts of
distinct scratchpad/register/FIFO operands give the unit's IO needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.dhdl.ir import (EmitStmt, HashReduceStmt, InnerCompute,
                           ReduceStmt, WriteStmt)
from repro.dhdl.memory import FifoDecl, Reg, Sram
from repro.patterns import expr as E


@dataclass
class StageSchedule:
    """Linearized schedule of one inner controller's body."""

    #: compute ops in issue order (one per SIMD stage)
    stages: List[E.Expr]
    #: maximum values live across any stage boundary
    max_live: int
    #: distinct vector operand sources (SRAM reads -> vector inputs)
    vector_reads: int
    #: distinct vector result sinks (SRAM writes / FIFO emissions)
    vector_writes: int
    #: distinct scalar operand sources (register reads, counter values)
    scalar_reads: int
    #: distinct scalar sinks (register writes / reduction results)
    scalar_writes: int
    #: extra stages needed for a full cross-lane reduction tree
    reduction_stages: int

    @property
    def num_stages(self) -> int:
        """Total virtual pipeline stages including reduction trees."""
        return max(1, len(self.stages) + self.reduction_stages)


def _gather_roots(leaf: InnerCompute) -> List[E.Expr]:
    """Expression roots that occupy datapath stages.

    Reduce/hash combines are excluded: the cross-lane part runs on the
    dedicated reduction tree and the read-modify-write on the
    accumulation stage, both already counted as ``reduction_stages``.
    """
    roots: List[E.Expr] = []
    for stmt in leaf.stmts:
        if isinstance(stmt, ReduceStmt):
            roots.extend(stmt.addr)
            roots.extend(stmt.values)
        elif isinstance(stmt, HashReduceStmt):
            roots.extend((stmt.key, stmt.value))
        elif isinstance(stmt, WriteStmt):
            roots.append(stmt.value)
        else:
            roots.extend(stmt.exprs())
    # write/counter address expressions are evaluated on the PMU scalar
    # address datapath, not in PCU SIMD stages, so only values count
    return roots


def _value_nodes(roots):
    """Post-order over value computation, NOT descending into Load
    addresses (address calculation runs on the PMU scalar datapath,
    Section 3.2)."""
    seen: Set[E.Expr] = set()
    order: List[E.Expr] = []

    def visit(node):
        if node in seen:
            return
        seen.add(node)
        if not isinstance(node, E.Load):
            for child in node.children():
                visit(child)
        order.append(node)

    for root in roots:
        visit(root)
    return order


def schedule(leaf: InnerCompute) -> StageSchedule:
    """Schedule one inner controller body into virtual stages."""
    roots = _gather_roots(leaf)
    order = _value_nodes(roots)

    compute = [n for n in order
               if isinstance(n, (E.BinOp, E.UnOp, E.Select))]

    # consumers map to compute live ranges
    consumers: Dict[E.Expr, List[int]] = {}
    position = {node: k for k, node in enumerate(compute)}
    for node in compute:
        for child in node.children():
            if child in position:
                consumers.setdefault(child, []).append(position[node])
    root_set = set(roots)
    max_live = 0
    live: Set[E.Expr] = set()
    for k, node in enumerate(compute):
        for child in node.children():
            if child in live and consumers.get(child) and \
                    max(consumers[child]) <= k and child not in root_set:
                live.discard(child)
        live.add(node)
        max_live = max(max_live, len(live))

    sram_reads: Set[str] = set()
    reg_reads: Set[str] = set()
    scan_roots = list(roots)
    for counter in leaf.chain.counters:
        scan_roots.extend((counter.lo, counter.hi))
    for root in scan_roots:
        for node in E.postorder(root):
            if isinstance(node, E.Load):
                if isinstance(node.array, Sram):
                    sram_reads.add(node.array.name)
                elif isinstance(node.array, Reg):
                    reg_reads.add(node.array.name)

    vector_writes = 0
    scalar_writes = 0
    reduction_stages = 0
    lanes = leaf.chain.inner_par
    for stmt in leaf.stmts:
        if isinstance(stmt, WriteStmt):
            if isinstance(stmt.mem, Reg):
                scalar_writes += 1
            else:
                vector_writes += 1
        elif isinstance(stmt, ReduceStmt):
            scalar_writes += stmt.width
            if lanes > 1:
                # log2(lanes) tree levels plus one accumulation stage
                reduction_stages = max(reduction_stages,
                                       max(1, lanes.bit_length() - 1) + 1)
            else:
                reduction_stages = max(reduction_stages, 1)
        elif isinstance(stmt, HashReduceStmt):
            vector_writes += 1
            # on-the-fly combine is one read-modify-write stage
            reduction_stages = max(reduction_stages, 1)
        elif isinstance(stmt, EmitStmt):
            vector_writes += 1

    return StageSchedule(
        stages=compute,
        max_live=max(1, max_live),
        vector_reads=len(sram_reads),
        vector_writes=max(1, vector_writes),
        scalar_reads=len(reg_reads) + leaf.chain.depth,
        scalar_writes=max(scalar_writes, 1),
        reduction_stages=reduction_stages,
    )
