"""The compilation driver: pattern program -> placed configuration.

``compile_program`` runs the whole Section 3.6 pipeline:

1. lower patterns to DHDL (tiling, memory planning, control hierarchy);
2. schedule each inner controller into virtual stages;
3. partition virtual units into physical PCU chains (cost metric);
4. place units on the checkerboard and route producer->consumer nets;
5. allocate address generators to transfers;
6. emit the :class:`~repro.bitstream.config.FabricConfig` ("bitstream") plus
   the design's virtual requirements (for Table 6 / Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.params import DEFAULT, PlasticineParams
from repro.arch.requirements import DesignRequirements
from repro.bitstream.config import (AgAssignment, FabricConfig, LeafTiming,
                                    MemoryPlacement)
from repro.compiler.lowering import Lowerer
from repro.compiler.partition import (chip_fits, feasible, partition_pcu,
                                      partition_pmu, pcu_requirement,
                                      pmu_requirement, region_fits)
from repro.compiler.place_route import Fabric, Region, region_capacity
from repro.compiler.scheduling import schedule
from repro.dhdl.analysis import mem_writes
from repro.dhdl.ir import (DhdlProgram, Gather, InnerCompute,
                           OuterController, Scatter, StreamStore, TileLoad,
                           TileStore)
from repro.errors import MappingError
from repro.patterns.program import Program


@dataclass
class CompiledApp:
    """Everything produced by one compilation."""

    program: Program
    dhdl: DhdlProgram
    config: FabricConfig
    requirements: DesignRequirements
    fabric: Fabric

    @property
    def name(self) -> str:
        """Application name."""
        return self.program.name


def compile_program(program: Program,
                    params: PlasticineParams = DEFAULT,
                    tile_words: int = 512,
                    whole_budget: int = 16384,
                    ags_per_transfer: int = 2,
                    pmu_fraction: float = 0.5,
                    region: Optional[Region] = None,
                    excluded_sites=None) -> CompiledApp:
    """Compile a pattern program onto the given architecture.

    ``pmu_fraction`` changes the fabric's PMU:PCU mix (Section 3.7's
    ratio study); 0.5 is the paper's 1:1 checkerboard.

    ``region`` constrains placement and routing to a rectangular
    sub-grid (multi-tenancy); a design whose footprint exceeds the
    region raises :class:`~repro.errors.MappingError` instead of
    spilling onto sites outside it.

    ``excluded_sites`` masks out failed unit sites: placement routes
    the design *around* broken hardware (graceful degradation after a
    detected unit fault) instead of reusing it.
    """
    dhdl = Lowerer(program, tile_words=tile_words,
                   whole_budget=whole_budget).lower()
    config = FabricConfig(params=params)
    requirements = DesignRequirements(program.name)
    fabric = Fabric(params, pmu_fraction=pmu_fraction, region=region,
                    excluded_sites=excluded_sites)

    inner_leaves = [l for l in dhdl.leaves()
                    if isinstance(l, InnerCompute)]
    transfer_leaves = [l for l in dhdl.leaves()
                       if not isinstance(l, InnerCompute)]

    # 1. schedule + partition + place every inner controller
    fus_used = 0
    regs_used = 0
    for leaf in inner_leaves:
        if leaf.address_class:
            # bookkeeping bodies run on PMU address datapaths / switch
            # control logic: no PCU cost, short fixed pipeline
            config.leaf_timing[leaf.name] = LeafTiming(
                pipeline_depth=2, lanes=min(leaf.chain.inner_par,
                                            params.pcu.lanes),
                num_pcus=0)
            continue
        sched = schedule(leaf)
        if not feasible(sched, params.pcu):
            raise MappingError(
                f"inner controller {leaf.name!r} cannot be mapped with "
                f"PCU shape {params.pcu}")
        part = partition_pcu(sched, params.pcu)
        lanes = min(leaf.chain.inner_par, params.pcu.lanes)
        sites = fabric.place_pcus(leaf.name, part.num_pcus)
        config.leaf_timing[leaf.name] = LeafTiming(
            pipeline_depth=part.pipeline_depth,
            lanes=lanes,
            input_hops=1,
            output_hops=1,
            num_pcus=part.num_pcus,
        )
        requirements.pcus.append(pcu_requirement(sched, lanes,
                                                 params.pcu))
        fus_used += min(part.num_pcus * params.pcu.stages,
                        sched.num_stages) * lanes
        regs_used += sched.max_live * lanes * part.num_pcus

    # 2. place scratchpads near their consumers
    for sram in dhdl.srams:
        part = partition_pmu(sram.words(), sram.nbuf, params.pmu.banks,
                             params.pmu)
        near = None
        for leaf in inner_leaves:
            mems = [m.name for m in leaf.memories_read()]
            if sram.name in mems:
                near = fabric.centroid(leaf.name)
                break
        sites = fabric.place_pmus(sram.name, part.num_pmus, near=near)
        config.sram_place[sram.name] = MemoryPlacement(tuple(sites))
        requirements.pmus.append(pmu_requirement(
            sram.words(), sram.nbuf, params.pmu.banks))

    if region is not None:
        capacity = region_capacity(params, region, pmu_fraction)
        if fabric.excluded:
            # failed sites inside the region contribute no capacity
            from repro.compiler.place_route import site_kinds
            kinds = site_kinds(params, pmu_fraction)
            gone = [s for s in fabric.excluded if region.contains(s)]
            capacity = (
                capacity[0] - sum(1 for s in gone
                                  if kinds[s] == "pcu"),
                capacity[1] - sum(1 for s in gone
                                  if kinds[s] == "pmu"))
        region_fits(fabric.pcus_used(), fabric.pmus_used(), region,
                    capacity)
        config.region = region.as_tuple()
    else:
        pcu_budget = (params.num_units - int(params.num_units
                                             * pmu_fraction))
        chip_fits(fabric.pcus_used(), fabric.pmus_used(),
                  pcu_budget, params.num_units - pcu_budget)

    # 3. route producer->consumer nets (vector network) and refine the
    # leaf timings with real hop distances
    _route_dataflow(dhdl, fabric, config)

    # 4. allocate AGs round-robin with the requested width per transfer
    next_ag = 0
    for leaf in transfer_leaves:
        streams = _streams_for(leaf, ags_per_transfer)
        ids = []
        for _ in range(streams):
            if next_ag >= params.num_ags:
                next_ag = 0  # AGs are time-shared beyond the physical set
            ids.append(next_ag)
            next_ag += 1
        config.ag_assign[leaf.name] = AgAssignment(tuple(ids))

    config.pcus_used = fabric.pcus_used()
    config.pmus_used = fabric.pmus_used()
    config.ags_used = min(params.num_ags,
                          sum(len(a.ag_ids)
                              for a in config.ag_assign.values()))
    config.switches_used = max(fabric.switches_used(),
                               config.pcus_used)
    config.fus_used = fus_used
    config.registers_used = regs_used
    config.requirements = requirements

    return CompiledApp(program=program, dhdl=dhdl, config=config,
                       requirements=requirements, fabric=fabric)


def _streams_for(leaf, default: int) -> int:
    if isinstance(leaf, (Gather, Scatter)):
        return max(default, leaf.par, 4)
    if isinstance(leaf, (TileLoad, TileStore)):
        return max(default, getattr(leaf, "par", 1))
    return default


def _route_dataflow(dhdl: DhdlProgram, fabric: Fabric,
                    config: FabricConfig) -> None:
    """Route every on-chip producer->consumer pair that is placed.

    Scratchpad traffic rides the vector network; register (scalar)
    traffic rides the scalar network between the producing and consuming
    units.  Both share the switch topology (Section 3.3).
    """
    from repro.dhdl.memory import Reg as _Reg

    reg_names = {r.name for r in dhdl.regs}
    reg_producer: Dict[str, str] = {}
    for leaf in dhdl.leaves():
        if isinstance(leaf, InnerCompute) and leaf.address_class:
            continue
        for name in sorted(mem_writes(leaf)):
            if name in reg_names and leaf.name in fabric.placed:
                reg_producer.setdefault(name, leaf.name)

    # routing allocates switch-link capacity greedily, so the iteration
    # order below is part of the compiled artifact: keep it sorted (set
    # order varies with hash randomization across processes)
    for leaf in dhdl.leaves():
        if not isinstance(leaf, InnerCompute) or leaf.address_class:
            continue
        hops_in = []
        for mem_name in sorted({m.name for m in leaf.memories_read()}):
            if mem_name in fabric.placed:
                net = fabric.route(mem_name, leaf.name, "vector")
                hops_in.append(net.hops)
            elif mem_name in reg_producer and                     reg_producer[mem_name] != leaf.name:
                fabric.route(reg_producer[mem_name], leaf.name,
                             "scalar")
        hops_out = []
        for name in sorted(mem_writes(leaf)):
            if name in fabric.placed:
                net = fabric.route(leaf.name, name, "vector")
                hops_out.append(net.hops)
        timing = config.leaf_timing[leaf.name]
        if hops_in:
            timing.input_hops = max(hops_in)
        if hops_out:
            timing.output_hops = max(hops_out)
        timing.pipeline_depth += timing.input_hops
