"""Placement and routing on the Plasticine checkerboard (Section 3.6).

The fabric is a ``cols x rows`` checkerboard of PCUs and PMUs with a
switch at every grid corner (``(cols+1) x (rows+1)`` switches) shared by
the three networks.  Placement is greedy: each virtual unit takes the
free site of the right kind nearest its already-placed neighbours.
Routing is BFS over the switch grid with per-link capacity; a route's
length gives the hop latency the simulator charges.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.params import DEFAULT, PlasticineParams
from repro.errors import MappingError

Site = Tuple[int, int]


@dataclass
class Net:
    """One routed connection between two placed entities."""

    src: str
    dst: str
    network: str = "vector"      # "vector" | "scalar" | "control"
    path: Tuple[Site, ...] = ()

    @property
    def hops(self) -> int:
        """Registered switch hops along the route."""
        return max(1, len(self.path) - 1)


class Fabric:
    """Placement state for one compilation."""

    def __init__(self, params: PlasticineParams = DEFAULT,
                 tracks_per_link: int = 4,
                 pmu_fraction: float = 0.5):
        """``pmu_fraction`` sets the PMU:PCU mix (0.5 = the paper's 1:1
        checkerboard; 2/3 = the 2:1 ratio studied in Section 3.7)."""
        self.params = params
        self.tracks = tracks_per_link
        self.pmu_fraction = pmu_fraction
        self.free_pcus: List[Site] = []
        self.free_pmus: List[Site] = []
        quota = 0.0
        for row in range(params.grid_rows):
            for col in range(params.grid_cols):
                quota += pmu_fraction
                if quota >= 1.0:
                    quota -= 1.0
                    self.free_pmus.append((col, row))
                else:
                    self.free_pcus.append((col, row))
        self._initial_pcus = len(self.free_pcus)
        self._initial_pmus = len(self.free_pmus)
        self.placed: Dict[str, List[Site]] = {}
        self._link_use: Dict[Tuple[Site, Site, str], int] = {}
        self.nets: List[Net] = []

    # -- placement ---------------------------------------------------------------
    def _take_nearest(self, pool: List[Site],
                      near: Optional[Site]) -> Site:
        if not pool:
            raise MappingError("fabric exhausted: no free unit of the "
                               "requested kind")
        if near is None:
            return pool.pop(0)
        best = min(pool, key=lambda s: abs(s[0] - near[0])
                   + abs(s[1] - near[1]))
        pool.remove(best)
        return best

    def centroid(self, name: str) -> Optional[Site]:
        """Mean site of an already-placed entity."""
        sites = self.placed.get(name)
        if not sites:
            return None
        col = sum(s[0] for s in sites) // len(sites)
        row = sum(s[1] for s in sites) // len(sites)
        return (col, row)

    def place_pcus(self, name: str, count: int,
                   near: Optional[Site] = None) -> List[Site]:
        """Allocate ``count`` PCU sites for a (partitioned) unit."""
        sites = []
        anchor = near
        for _ in range(count):
            site = self._take_nearest(self.free_pcus, anchor)
            sites.append(site)
            anchor = site
        self.placed.setdefault(name, []).extend(sites)
        return sites

    def place_pmus(self, name: str, count: int,
                   near: Optional[Site] = None) -> List[Site]:
        """Allocate ``count`` PMU sites for a logical scratchpad."""
        sites = []
        anchor = near
        for _ in range(count):
            site = self._take_nearest(self.free_pmus, anchor)
            sites.append(site)
            anchor = site
        self.placed.setdefault(name, []).extend(sites)
        return sites

    # -- routing -----------------------------------------------------------------
    def _switch_of(self, site: Site) -> Site:
        """The switch at a unit's north-west corner."""
        return site

    def route(self, src_name: str, dst_name: str,
              network: str = "vector") -> Net:
        """BFS route between two placed entities on one network."""
        src_sites = self.placed.get(src_name)
        dst_sites = self.placed.get(dst_name)
        if not src_sites or not dst_sites:
            raise MappingError(
                f"routing {src_name!r}->{dst_name!r}: endpoint not "
                f"placed")
        start = self._switch_of(src_sites[-1])
        goals = {self._switch_of(s) for s in dst_sites}
        path = self._bfs(start, goals, network)
        if path is None:
            raise MappingError(
                f"no capacity to route {src_name!r}->{dst_name!r} on "
                f"the {network} network")
        for a, b in zip(path, path[1:]):
            self._link_use[(a, b, network)] = self._link_use.get(
                (a, b, network), 0) + 1
        net = Net(src_name, dst_name, network, tuple(path))
        self.nets.append(net)
        return net

    def _bfs(self, start: Site, goals: Set[Site],
             network: str) -> Optional[List[Site]]:
        max_col = self.params.grid_cols
        max_row = self.params.grid_rows
        frontier = deque([start])
        came: Dict[Site, Optional[Site]] = {start: None}
        while frontier:
            node = frontier.popleft()
            if node in goals:
                path = [node]
                while came[path[-1]] is not None:
                    path.append(came[path[-1]])
                return list(reversed(path))
            col, row = node
            for nxt in ((col + 1, row), (col - 1, row), (col, row + 1),
                        (col, row - 1)):
                if not (0 <= nxt[0] <= max_col and 0 <= nxt[1] <= max_row):
                    continue
                if nxt in came:
                    continue
                if self._link_use.get((node, nxt, network),
                                      0) >= self.tracks:
                    continue
                came[nxt] = node
                frontier.append(nxt)
        return None

    # -- reporting ---------------------------------------------------------------
    def switches_used(self) -> int:
        """Distinct switch sites any net passes through."""
        used: Set[Site] = set()
        for net in self.nets:
            used.update(net.path)
        return len(used)

    def pcus_used(self) -> int:
        """PCU sites allocated."""
        return self._initial_pcus - len(self.free_pcus)

    def pmus_used(self) -> int:
        """PMU sites allocated."""
        return self._initial_pmus - len(self.free_pmus)
