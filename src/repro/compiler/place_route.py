"""Placement and routing on the Plasticine checkerboard (Section 3.6).

The fabric is a ``cols x rows`` checkerboard of PCUs and PMUs with a
switch at every grid corner (``(cols+1) x (rows+1)`` switches) shared by
the three networks.  Placement is greedy: each virtual unit takes the
free site of the right kind nearest its already-placed neighbours.
Routing is BFS over the switch grid with per-link capacity; a route's
length gives the hop latency the simulator charges.

Placement may be constrained to a rectangular :class:`Region` of the
grid (multi-tenancy: several independent designs packed onto disjoint
sub-grids).  A region-scoped fabric draws sites only from inside its
rectangle and routes only through the region's own switches, so two
fabrics over disjoint regions can never share a unit or a link.  The
kind of each site (PCU vs PMU) is a function of its *absolute* grid
position, so a region carved out of the full fabric sees exactly the
sites the full-fabric checkerboard puts there.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.arch.params import DEFAULT, PlasticineParams
from repro.errors import MappingError

Site = Tuple[int, int]


@dataclass(frozen=True)
class Region:
    """A rectangular sub-grid: ``cols x rows`` units anchored at the
    north-west corner ``(col0, row0)``."""

    col0: int
    row0: int
    cols: int
    rows: int

    def validate(self, params: PlasticineParams) -> "Region":
        """Raise :class:`MappingError` unless the rectangle lies fully
        inside the fabric."""
        if self.cols < 1 or self.rows < 1:
            raise MappingError(f"region {self} is empty")
        if (self.col0 < 0 or self.row0 < 0
                or self.col0 + self.cols > params.grid_cols
                or self.row0 + self.rows > params.grid_rows):
            raise MappingError(
                f"region {self} does not fit the "
                f"{params.grid_cols}x{params.grid_rows} fabric")
        return self

    @staticmethod
    def full(params: PlasticineParams) -> "Region":
        """The whole fabric as a region."""
        return Region(0, 0, params.grid_cols, params.grid_rows)

    def contains(self, site: Site) -> bool:
        """Is the unit site inside this rectangle?"""
        col, row = site
        return (self.col0 <= col < self.col0 + self.cols
                and self.row0 <= row < self.row0 + self.rows)

    def overlaps(self, other: "Region") -> bool:
        """Do two rectangles share any unit site?"""
        return not (self.col0 + self.cols <= other.col0
                    or other.col0 + other.cols <= self.col0
                    or self.row0 + self.rows <= other.row0
                    or other.row0 + other.rows <= self.row0)

    def sites(self) -> Iterator[Site]:
        """Row-major iteration over the unit sites inside."""
        for row in range(self.row0, self.row0 + self.rows):
            for col in range(self.col0, self.col0 + self.cols):
                yield (col, row)

    @property
    def area(self) -> int:
        """Unit sites covered."""
        return self.cols * self.rows

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """Serializable form (``FabricConfig.region``)."""
        return (self.col0, self.row0, self.cols, self.rows)

    def __str__(self):
        return (f"{self.cols}x{self.rows}@"
                f"({self.col0},{self.row0})")


def site_kinds(params: PlasticineParams,
               pmu_fraction: float = 0.5) -> Dict[Site, str]:
    """Kind (``"pcu"``/``"pmu"``) of every site on the full grid.

    The quota scan runs over the *whole* fabric regardless of any
    region, so a site's kind never depends on which region looks at it.
    """
    kinds: Dict[Site, str] = {}
    quota = 0.0
    for row in range(params.grid_rows):
        for col in range(params.grid_cols):
            quota += pmu_fraction
            if quota >= 1.0:
                quota -= 1.0
                kinds[(col, row)] = "pmu"
            else:
                kinds[(col, row)] = "pcu"
    return kinds


def region_capacity(params: PlasticineParams, region: Region,
                    pmu_fraction: float = 0.5) -> Tuple[int, int]:
    """``(pcu_sites, pmu_sites)`` the region contributes."""
    kinds = site_kinds(params, pmu_fraction)
    pcus = sum(1 for s in region.sites() if kinds[s] == "pcu")
    return pcus, region.area - pcus


@dataclass
class Net:
    """One routed connection between two placed entities."""

    src: str
    dst: str
    network: str = "vector"      # "vector" | "scalar" | "control"
    path: Tuple[Site, ...] = ()

    @property
    def hops(self) -> int:
        """Registered switch hops along the route."""
        return max(1, len(self.path) - 1)


class Fabric:
    """Placement state for one compilation."""

    def __init__(self, params: PlasticineParams = DEFAULT,
                 tracks_per_link: int = 4,
                 pmu_fraction: float = 0.5,
                 region: Optional[Region] = None,
                 excluded_sites: Optional[Sequence[Site]] = None):
        """``pmu_fraction`` sets the PMU:PCU mix (0.5 = the paper's 1:1
        checkerboard; 2/3 = the 2:1 ratio studied in Section 3.7).

        ``region`` restricts placement and routing to a rectangular
        sub-grid (``None`` = the whole fabric).  The checkerboard
        pattern stays anchored to the full grid, so disjoint regions of
        one chip agree on which sites are PCUs and which are PMUs.

        ``excluded_sites`` masks out individual unit sites (failed
        hardware): placement never uses them, so a design can be
        recompiled *around* broken units inside the same region.
        """
        self.params = params
        self.tracks = tracks_per_link
        self.pmu_fraction = pmu_fraction
        self.region = (region.validate(params) if region is not None
                       else Region.full(params))
        self._constrained = region is not None
        self.excluded: Set[Site] = set(
            (int(c), int(r)) for c, r in (excluded_sites or ()))
        self.free_pcus: List[Site] = []
        self.free_pmus: List[Site] = []
        quota = 0.0
        for row in range(params.grid_rows):
            for col in range(params.grid_cols):
                quota += pmu_fraction
                site = (col, row)
                usable = (self.region.contains(site)
                          and site not in self.excluded)
                if quota >= 1.0:
                    quota -= 1.0
                    if usable:
                        self.free_pmus.append(site)
                elif usable:
                    self.free_pcus.append(site)
        self._initial_pcus = len(self.free_pcus)
        self._initial_pmus = len(self.free_pmus)
        self.placed: Dict[str, List[Site]] = {}
        self._link_use: Dict[Tuple[Site, Site, str], int] = {}
        self.nets: List[Net] = []

    # -- placement ---------------------------------------------------------------
    def _take_nearest(self, pool: List[Site],
                      near: Optional[Site],
                      kind: str = "unit") -> Site:
        if not pool:
            masked = (f" ({len(self.excluded)} sites excluded as "
                      f"failed)" if self.excluded else "")
            if self._constrained:
                raise MappingError(
                    f"design footprint exceeds region "
                    f"{self.region}: no free {kind} site "
                    f"left ({self._initial_pcus} PCU / "
                    f"{self._initial_pmus} PMU sites total{masked}); "
                    f"choose a larger region instead of spilling "
                    f"outside it")
            raise MappingError(f"fabric exhausted: no free {kind} "
                               f"site left{masked}")
        if near is None:
            return pool.pop(0)
        best = min(pool, key=lambda s: abs(s[0] - near[0])
                   + abs(s[1] - near[1]))
        pool.remove(best)
        return best

    def centroid(self, name: str) -> Optional[Site]:
        """Mean site of an already-placed entity."""
        sites = self.placed.get(name)
        if not sites:
            return None
        col = sum(s[0] for s in sites) // len(sites)
        row = sum(s[1] for s in sites) // len(sites)
        return (col, row)

    def place_pcus(self, name: str, count: int,
                   near: Optional[Site] = None) -> List[Site]:
        """Allocate ``count`` PCU sites for a (partitioned) unit."""
        sites = []
        anchor = near
        for _ in range(count):
            site = self._take_nearest(self.free_pcus, anchor, "PCU")
            sites.append(site)
            anchor = site
        self.placed.setdefault(name, []).extend(sites)
        return sites

    def place_pmus(self, name: str, count: int,
                   near: Optional[Site] = None) -> List[Site]:
        """Allocate ``count`` PMU sites for a logical scratchpad."""
        sites = []
        anchor = near
        for _ in range(count):
            site = self._take_nearest(self.free_pmus, anchor, "PMU")
            sites.append(site)
            anchor = site
        self.placed.setdefault(name, []).extend(sites)
        return sites

    # -- routing -----------------------------------------------------------------
    def _switch_of(self, site: Site) -> Site:
        """The switch at a unit's north-west corner."""
        return site

    def route(self, src_name: str, dst_name: str,
              network: str = "vector") -> Net:
        """BFS route between two placed entities on one network."""
        src_sites = self.placed.get(src_name)
        dst_sites = self.placed.get(dst_name)
        if not src_sites or not dst_sites:
            raise MappingError(
                f"routing {src_name!r}->{dst_name!r}: endpoint not "
                f"placed")
        start = self._switch_of(src_sites[-1])
        goals = {self._switch_of(s) for s in dst_sites}
        path = self._bfs(start, goals, network)
        if path is None:
            raise MappingError(
                f"no capacity to route {src_name!r}->{dst_name!r} on "
                f"the {network} network")
        for a, b in zip(path, path[1:]):
            self._link_use[(a, b, network)] = self._link_use.get(
                (a, b, network), 0) + 1
        net = Net(src_name, dst_name, network, tuple(path))
        self.nets.append(net)
        return net

    def _bfs(self, start: Site, goals: Set[Site],
             network: str) -> Optional[List[Site]]:
        # routes stay inside the region's own switch sub-grid, so
        # tenants on disjoint regions never contend for a link
        min_col, min_row = self.region.col0, self.region.row0
        max_col = self.region.col0 + self.region.cols
        max_row = self.region.row0 + self.region.rows
        frontier = deque([start])
        came: Dict[Site, Optional[Site]] = {start: None}
        while frontier:
            node = frontier.popleft()
            if node in goals:
                path = [node]
                while came[path[-1]] is not None:
                    path.append(came[path[-1]])
                return list(reversed(path))
            col, row = node
            for nxt in ((col + 1, row), (col - 1, row), (col, row + 1),
                        (col, row - 1)):
                if not (min_col <= nxt[0] <= max_col
                        and min_row <= nxt[1] <= max_row):
                    continue
                if nxt in came:
                    continue
                if self._link_use.get((node, nxt, network),
                                      0) >= self.tracks:
                    continue
                came[nxt] = node
                frontier.append(nxt)
        return None

    # -- reporting ---------------------------------------------------------------
    def switches_used(self) -> int:
        """Distinct switch sites any net passes through."""
        used: Set[Site] = set()
        for net in self.nets:
            used.update(net.path)
        return len(used)

    def pcus_used(self) -> int:
        """PCU sites allocated."""
        return self._initial_pcus - len(self.free_pcus)

    def pmus_used(self) -> int:
        """PMU sites allocated."""
        return self._initial_pmus - len(self.free_pmus)
