"""Expression rewriting utilities for the lowering passes.

``rewrite`` rebuilds an expression DAG applying a node-replacement
function, preserving sharing (a shared subtree is rewritten once).
``substitute`` is the common special case of replacing index leaves.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.patterns import expr as E


def rewrite(root: E.Expr, replace: Callable[[E.Expr], Optional[E.Expr]],
            memo: Optional[Dict[E.Expr, E.Expr]] = None) -> E.Expr:
    """Rebuild ``root`` bottom-up, applying ``replace`` at every node.

    ``replace`` is consulted *before* recursion: returning a node stops
    descent (the replacement is used as-is); returning None rewrites the
    children and reconstructs the node if any child changed.
    """
    if memo is None:
        memo = {}
    if root in memo:
        return memo[root]
    replaced = replace(root)
    if replaced is not None:
        memo[root] = replaced
        return replaced
    result = _rebuild(root, replace, memo)
    memo[root] = result
    return result


def _rebuild(node: E.Expr, replace, memo) -> E.Expr:
    if isinstance(node, (E.Const, E.Idx, E.Var)):
        return node
    if isinstance(node, E.Load):
        new_indices = [rewrite(i, replace, memo) for i in node.indices]
        if all(a is b for a, b in zip(new_indices, node.indices)):
            return node
        return E.Load(node.array, new_indices)
    if isinstance(node, E.BinOp):
        lhs = rewrite(node.lhs, replace, memo)
        rhs = rewrite(node.rhs, replace, memo)
        if lhs is node.lhs and rhs is node.rhs:
            return node
        return E.BinOp(node.op, lhs, rhs)
    if isinstance(node, E.UnOp):
        operand = rewrite(node.operand, replace, memo)
        if operand is node.operand:
            return node
        return E.UnOp(node.op, operand)
    if isinstance(node, E.Select):
        cond = rewrite(node.cond, replace, memo)
        if_true = rewrite(node.if_true, replace, memo)
        if_false = rewrite(node.if_false, replace, memo)
        if (cond is node.cond and if_true is node.if_true
                and if_false is node.if_false):
            return node
        return E.Select(cond, if_true, if_false)
    raise TypeError(f"cannot rewrite {node!r}")


def substitute(root: E.Expr, mapping: Dict[E.Expr, E.Expr],
               memo: Optional[Dict[E.Expr, E.Expr]] = None) -> E.Expr:
    """Replace exact nodes (by identity) throughout a DAG."""
    return rewrite(root, lambda n: mapping.get(n), memo)


def simplify(root: E.Expr,
             memo: Optional[Dict[E.Expr, E.Expr]] = None) -> E.Expr:
    """Constant-fold trivial arithmetic (x*1, x+0, const op const).

    Keeps generated address expressions readable and stage counts
    honest; only int-safe identities are applied.
    """
    if memo is None:
        memo = {}
    if root in memo:
        return memo[root]
    result = _simplify_node(root, memo)
    memo[root] = result
    return result


def _is_const(node, value=None):
    return isinstance(node, E.Const) and (value is None
                                          or node.value == value)


def _simplify_node(node: E.Expr, memo) -> E.Expr:
    if isinstance(node, (E.Const, E.Idx, E.Var)):
        return node
    if isinstance(node, E.Load):
        idxs = [simplify(i, memo) for i in node.indices]
        if all(a is b for a, b in zip(idxs, node.indices)):
            return node
        return E.Load(node.array, idxs)
    if isinstance(node, E.UnOp):
        operand = simplify(node.operand, memo)
        if isinstance(operand, E.Const) and node.op in ("neg", "not"):
            return E.wrap(E.eval_unary(node.op, operand.value))
        if operand is node.operand:
            return node
        return E.UnOp(node.op, operand)
    if isinstance(node, E.Select):
        cond = simplify(node.cond, memo)
        if_true = simplify(node.if_true, memo)
        if_false = simplify(node.if_false, memo)
        if _is_const(cond):
            return if_true if cond.value else if_false
        if (cond is node.cond and if_true is node.if_true
                and if_false is node.if_false):
            return node
        return E.Select(cond, if_true, if_false)
    if isinstance(node, E.BinOp):
        lhs = simplify(node.lhs, memo)
        rhs = simplify(node.rhs, memo)
        op = node.op
        if _is_const(lhs) and _is_const(rhs) and op in (
                "add", "sub", "mul", "min", "max"):
            return E.wrap(E.eval_binary(op, lhs.value, rhs.value))
        if op == "add":
            if _is_const(lhs, 0):
                return rhs
            if _is_const(rhs, 0):
                return lhs
        elif op == "sub":
            if _is_const(rhs, 0):
                return lhs
        elif op == "mul":
            if _is_const(lhs, 1):
                return rhs
            if _is_const(rhs, 1):
                return lhs
            if _is_const(lhs, 0) or _is_const(rhs, 0):
                return E.wrap(0) if node.dtype == E.INT32 else node
        if lhs is node.lhs and rhs is node.rhs:
            return node
        return E.BinOp(op, lhs, rhs)
    return node
