"""``repro.serve`` — the async compile-and-simulate service tier.

The PR 3 compile/run split made serving natural: a compiled
:class:`~repro.bitstream.artifact.Bitstream` is a frozen, deterministic
function of its request, the shared content-addressed
:class:`~repro.bitstream.cache.CompileCache` makes a warm compile key
free, and a simulation is a deterministic function of
{artifact, params}.  This package stands a real service on top of
those guarantees:

* :mod:`~repro.serve.protocol` — request parsing/normalization and the
  job key that makes coalescing and result caching sound;
* :mod:`~repro.serve.jobs` — the in-flight coalescing table and the
  bounded completed-result LRU;
* :mod:`~repro.serve.workers` — stateless, picklable job execution for
  the process pool (compile through the cache, simulate, store
  artifacts and traces content-addressed);
* :mod:`~repro.serve.service` — the asyncio core: bounded queue with
  429 backpressure, request coalescing, per-job wall timeouts clamped
  to the simulator's own watchdog, graceful drain;
* :mod:`~repro.serve.metrics` — counters plus a log-scale latency
  histogram behind ``/statsz``;
* :mod:`~repro.serve.http` — the stdlib HTTP/1.1 front end and the
  transport-free router (unit tests dispatch in-process);
* :mod:`~repro.serve.client` — async + blocking clients (the load-test
  harness in :mod:`repro.eval.loadtest` fans out the async one).

``repro serve`` runs the server; ``repro loadtest`` replays thousands
of concurrent requests against it and reports p50/p99 latency,
throughput, and coalesce/cache-hit rates.
"""

from repro.serve.client import ServeClient, sync_request, wait_healthy
from repro.serve.http import ReproServer, Response, dispatch, run_server
from repro.serve.metrics import LatencyHistogram, ServiceStats
from repro.serve.protocol import (JobParams, JobRequest, RequestError,
                                  parse_request, spec_digest)
from repro.serve.service import ReproService, ServeConfig
from repro.serve.workers import execute_job

__all__ = [
    "JobParams",
    "JobRequest",
    "LatencyHistogram",
    "ReproServer",
    "ReproService",
    "RequestError",
    "Response",
    "ServeClient",
    "ServeConfig",
    "ServiceStats",
    "dispatch",
    "execute_job",
    "parse_request",
    "run_server",
    "spec_digest",
    "sync_request",
    "wait_healthy",
]
