"""Minimal asyncio HTTP/1.1 front end for the service.

Stdlib only: a hand-rolled request parser over ``asyncio`` streams —
request line, headers, ``Content-Length`` body, persistent connections
unless either side says ``Connection: close``.  It speaks exactly the
subset of HTTP the service needs; anything else gets a clean 4xx.

The router is transport-free: :func:`dispatch` maps a parsed
``(method, path, body)`` onto the service and returns a
:class:`Response`, so endpoint unit tests drive it in-process without
opening a socket.

Endpoints
---------
``GET  /healthz``            liveness (503 while draining)
``GET  /statsz``             counters, queue gauges, latency histogram
``POST /compile``            compile a spec or registry app; stores the
                             artifact content-addressed
``POST /simulate``           compile if needed, then simulate; returns
                             SimStats (+ attribution / trace URL with
                             ``params.trace``); ``params.coschedule``
                             opts an app job into service-side batching
                             onto a shared fabric
``POST /multi``              co-simulate several registry apps as
                             tenants of one fabric; returns per-tenant
                             SimStats plus shared-channel utilization
``GET  /artifacts/<hash>``   download a stored bitstream artifact
``GET  /traces/<name>``      download a recorded Chrome trace
``POST /chaos/kill``         SIGKILL one pool worker (fault-injection
                             for loadtests; 404 unless the server was
                             started with ``--chaos``)
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import sys
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.serve.service import ReproService
from repro.serve.workers import artifact_path, trace_path

#: refuse request bodies beyond this (a spec is a few KB)
MAX_BODY_BYTES = 8 * 1024 * 1024
#: refuse absurd header blocks
MAX_HEADER_BYTES = 64 * 1024

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 408: "Request Timeout",
                409: "Conflict", 413: "Payload Too Large",
                422: "Unprocessable Entity", 429: "Too Many Requests",
                500: "Internal Server Error",
                503: "Service Unavailable", 504: "Gateway Timeout"}

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")
_TRACE_RE = re.compile(r"^[0-9a-f]{1,64}\.trace\.json$")


@dataclass
class Response:
    """One HTTP response, transport-free."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def json(self) -> dict:
        """Decoded body (test convenience)."""
        return json.loads(self.body.decode("utf-8"))


def json_response(status: int, obj,
                  headers: Optional[Dict[str, str]] = None) -> Response:
    body = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
    return Response(status, body, headers=headers or {})


async def dispatch(service: ReproService, method: str, path: str,
                   body: bytes = b"") -> Response:
    """Route one request onto the service (used directly by tests)."""
    path = path.split("?", 1)[0]
    if path == "/healthz":
        if method != "GET":
            return json_response(405, {"error": "GET only"})
        status, payload = service.healthz()
        return json_response(status, payload)
    if path == "/statsz":
        if method != "GET":
            return json_response(405, {"error": "GET only"})
        return json_response(200, service.statsz())
    if path in ("/compile", "/simulate", "/multi"):
        if method != "POST":
            return json_response(405, {"error": "POST only"})
        try:
            parsed = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError) as err:
            return json_response(
                400, {"error": f"request body is not valid JSON: "
                               f"{err}"})
        status, payload = await service.submit(path[1:], parsed)
        headers = {}
        if status in (429, 503) and isinstance(payload, dict) \
                and "retry_after_s" in payload:
            headers["Retry-After"] = str(payload["retry_after_s"])
        return json_response(status, payload, headers)
    if path == "/chaos/kill":
        if method != "POST":
            return json_response(405, {"error": "POST only"})
        status, payload = service.chaos_kill_worker()
        return json_response(status, payload)
    if path.startswith("/artifacts/"):
        if method != "GET":
            return json_response(405, {"error": "GET only"})
        digest = path[len("/artifacts/"):]
        if not _HASH_RE.match(digest):
            return json_response(
                400, {"error": "artifact path must be a sha256 hex "
                               "digest"})
        file = artifact_path(service.data_dir, digest)
        if not file.is_file():
            return json_response(404, {"error": "no such artifact"})
        return Response(200, file.read_bytes())
    if path.startswith("/traces/"):
        if method != "GET":
            return json_response(405, {"error": "GET only"})
        name = path[len("/traces/"):]
        if not _TRACE_RE.match(name):
            return json_response(400, {"error": "bad trace name"})
        file = trace_path(service.data_dir, name.split(".")[0])
        if not file.is_file():
            return json_response(404, {"error": "no such trace"})
        return Response(200, file.read_bytes())
    return json_response(404, {"error": f"no route for {path!r}"})


# ---------------------------------------------------------------------------
# The socket server
# ---------------------------------------------------------------------------


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, Dict[str, str],
                                            bytes]]:
    """Parse one request off the stream; None on clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise ValueError("header block too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValueError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _encode(response: Response, keep_alive: bool) -> bytes:
    head = [f"HTTP/1.1 {response.status} "
            f"{_STATUS_TEXT.get(response.status, 'Status')}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    head.extend(f"{k}: {v}" for k, v in response.headers.items())
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") \
        + response.body


class ReproServer:
    """The asyncio socket server wrapping one :class:`ReproService`."""

    def __init__(self, service: ReproService, host: str = "127.0.0.1",
                 port: int = 8642):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)

    @property
    def bound_port(self) -> int:
        """The actual port (after binding port 0)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                except ValueError as err:
                    writer.write(_encode(json_response(
                        400, {"error": str(err)}), keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                response = await dispatch(self.service, method, target,
                                          body)
                keep = headers.get("connection", "").lower() != "close"
                writer.write(_encode(response, keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # server shutdown cancelled this connection handler; close
            # the socket and end the task cleanly
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass

    async def shutdown(self) -> None:
        """Graceful: stop accepting, drain the queue, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.drain()


async def _serve_until_signal(server: ReproServer) -> None:
    await server.start()
    config = server.service.config
    print(f"repro serve listening on "
          f"http://{server.host}:{server.bound_port} "
          f"(jobs={config.jobs}, queue-depth={config.queue_depth}, "
          f"cache={server.service.cache_dir or 'off'})",
          flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # non-unix
            pass
    await stop.wait()
    print("repro serve: draining...", flush=True)
    await server.shutdown()
    print("repro serve: stopped", flush=True)


def run_server(service: ReproService, host: str = "127.0.0.1",
               port: int = 8642) -> int:
    """Blocking entry point behind ``repro serve``."""
    server = ReproServer(service, host, port)
    try:
        asyncio.run(_serve_until_signal(server))
    except KeyboardInterrupt:
        pass
    except OSError as err:
        print(f"repro serve: cannot bind {host}:{port}: {err}",
              file=sys.stderr)
        return 1
    return 0
