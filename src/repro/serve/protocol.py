"""Wire protocol of the serving tier: requests, params, job keys.

A client submits one of three job *kinds*:

* ``spec`` — a fuzz-schema program spec (validated by
  :mod:`repro.fuzz.validate`; schema errors come back as a structured
  400 with field paths);
* ``app`` — a benchmark-registry name plus a scale;
* ``artifact`` — the content hash of a bitstream the service compiled
  earlier (``POST /compile`` stores every artifact it produces under
  ``/artifacts/<content_hash>``).

and one of two *modes*: ``compile`` (produce and store the artifact,
no simulation) or ``simulate`` (compile if needed — through the shared
:class:`~repro.bitstream.cache.CompileCache` — then run the simulator
and return ``SimStats``, optionally with stall attribution and a
downloadable trace).

Everything that can change the answer participates in the **job key**:
the identifying payload (canonical spec / app+scale / artifact hash),
the mode, and the normalized :class:`JobParams`.  Concurrent requests
with equal keys coalesce onto one in-flight job, and completed keys may
be served from the result cache — both are sound because compilation
and simulation are fully deterministic functions of the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.validate import validate_spec

SCHEDULERS = ("event", "dense")
SCALES = ("tiny", "small")
MODES = ("compile", "simulate", "multi")

#: tenants one multi request (or one co-schedule batch) may carry
MAX_TENANTS = 6

#: highest QoS weight a request may claim in the shared DRAM
#: arbitration (weights are small integers; 1 = best effort)
MAX_PRIORITY = 8

#: server-side ceilings a request may not exceed (the service clamps
#: its own defaults to these too)
MAX_CYCLES_CAP = 20_000_000
WATCHDOG_CAP = 200_000


class RequestError(Exception):
    """A request the service refuses, with an HTTP status and a list
    of field-level problems (same shape as spec-validator errors)."""

    def __init__(self, status: int, message: str,
                 errors: Optional[List[Dict[str, str]]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.errors = errors or []

    def body(self) -> dict:
        out: Dict[str, Any] = {"error": self.message}
        if self.errors:
            out["detail"] = self.errors
        return out


@dataclass(frozen=True)
class JobParams:
    """Normalized per-job execution knobs (part of the job key)."""

    scheduler: str = "event"
    max_cycles: int = 2_000_000
    watchdog: int = 50_000
    #: record stall attribution + a downloadable Chrome trace
    trace: bool = False
    trace_sample: int = 1
    #: compile options for spec jobs (small tiles by default, matching
    #: the fuzz harness: spec programs are fuzz-sized)
    tile_words: int = 128
    whole_budget: int = 4096
    #: opt in to service-side co-scheduling: app-simulate requests with
    #: this flag may be batched onto one shared fabric with other
    #: queued coschedule jobs (answers then depend on the batch mix, so
    #: they bypass the result cache)
    coschedule: bool = False
    #: QoS weight in the shared DRAM arbitration when this job lands on
    #: a multi-tenant fabric (co-scheduling); 1 = best effort, up to
    #: :data:`MAX_PRIORITY`.  Solo runs ignore it (nothing to arbitrate)
    priority: int = 1

    def to_dict(self) -> dict:
        return asdict(self)


_PARAM_FIELDS = {
    "scheduler": str, "max_cycles": int, "watchdog": int, "trace": bool,
    "trace_sample": int, "tile_words": int, "whole_budget": int,
    "coschedule": bool, "priority": int,
}


def _parse_params(data: Any) -> JobParams:
    """Validate and clamp the optional ``params`` object."""
    if data is None:
        return JobParams()
    if not isinstance(data, dict):
        raise RequestError(400, "params must be an object",
                           [{"path": "params",
                             "message": f"got {type(data).__name__}"}])
    errors = []
    for name, value in sorted(data.items()):
        if name not in _PARAM_FIELDS:
            errors.append({"path": f"params.{name}",
                           "message": "unknown parameter"})
            continue
        want = _PARAM_FIELDS[name]
        if want is int and isinstance(value, bool):
            errors.append({"path": f"params.{name}",
                           "message": "expected an integer"})
        elif not isinstance(value, want):
            errors.append({"path": f"params.{name}",
                           "message": f"expected {want.__name__}, got "
                                      f"{type(value).__name__}"})
    if data.get("scheduler") not in (None, *SCHEDULERS):
        errors.append({"path": "params.scheduler",
                       "message": f"expected one of {list(SCHEDULERS)}"})
    for name in ("max_cycles", "watchdog", "trace_sample", "tile_words",
                 "whole_budget", "priority"):
        value = data.get(name)
        if isinstance(value, int) and not isinstance(value, bool) \
                and value < 1:
            errors.append({"path": f"params.{name}",
                           "message": "must be a positive integer"})
    priority = data.get("priority")
    if isinstance(priority, int) and not isinstance(priority, bool) \
            and priority > MAX_PRIORITY:
        errors.append({"path": "params.priority",
                       "message": f"at most {MAX_PRIORITY}"})
    if errors:
        raise RequestError(400, "invalid params", errors)
    merged = {**JobParams().to_dict(), **data}
    merged["max_cycles"] = min(merged["max_cycles"], MAX_CYCLES_CAP)
    merged["watchdog"] = min(merged["watchdog"], WATCHDOG_CAP)
    return JobParams(**merged)


def spec_digest(spec: dict) -> str:
    """Content address of one spec (canonical JSON, sha256)."""
    blob = json.dumps(spec, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class JobRequest:
    """One parsed, validated submission."""

    mode: str                       # "compile" | "simulate" | "multi"
    kind: str                       # "spec" | "app" | "artifact" | "multi"
    params: JobParams
    spec: Optional[dict] = None
    app: Optional[str] = None
    scale: str = "small"
    artifact_hash: Optional[str] = None
    #: co-resident registry apps for mode="multi"
    apps: Optional[Tuple[str, ...]] = None
    #: per-tenant QoS weights for mode="multi" (lines up with ``apps``;
    #: None = all best-effort).  Weights change the answer, so they are
    #: part of the job key
    priorities: Optional[Tuple[int, ...]] = None
    #: identity of the work (spec digest / app+scale / artifact hash)
    ident: str = field(default="", compare=False)

    @property
    def key(self) -> str:
        """Coalescing / result-cache key: identity + mode + params."""
        blob = json.dumps({"ident": self.ident, "mode": self.mode,
                           "params": self.params.to_dict(),
                           "priorities": (list(self.priorities)
                                          if self.priorities else None)},
                          sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def describe(self) -> str:
        if self.kind == "spec":
            return f"spec:{self.ident[:12]}"
        if self.kind == "app":
            return f"app:{self.app}:{self.scale}"
        if self.kind == "multi":
            return f"multi:{'+'.join(self.apps or ())}:{self.scale}"
        return f"artifact:{self.ident[:12]}"

    def payload(self, cache_dir: Optional[str],
                data_dir: str) -> dict:
        """The picklable worker payload (crosses the process pool)."""
        return {
            "mode": self.mode,
            "kind": self.kind,
            "spec": self.spec,
            "app": self.app,
            "scale": self.scale,
            "artifact_hash": self.artifact_hash,
            "apps": list(self.apps) if self.apps else None,
            "priorities": (list(self.priorities)
                           if self.priorities else None),
            "params": self.params.to_dict(),
            "cache_dir": cache_dir,
            "data_dir": data_dir,
            "job_id": self.key[:16],
        }


def _registry_names() -> Tuple[str, ...]:
    from repro.apps import ALL_APPS
    return tuple(app.name for app in ALL_APPS)


def parse_request(body: Any, mode: str) -> JobRequest:
    """Parse one POST body into a :class:`JobRequest`.

    Raises :class:`RequestError` (HTTP 400) with field-level detail for
    anything malformed — including spec-schema violations, which carry
    the validator's ``steps[k].field`` paths.
    """
    if mode not in MODES:
        raise RequestError(404, f"unknown mode {mode!r}")
    if not isinstance(body, dict):
        raise RequestError(
            400, "request body must be a JSON object",
            [{"path": "", "message": f"got {type(body).__name__}"}])
    if mode == "multi":
        return _parse_multi(body)
    unknown = sorted(set(body) - {"spec", "app", "scale",
                                  "artifact_hash", "params"})
    if unknown:
        raise RequestError(
            400, "unknown request fields",
            [{"path": name, "message": "unknown field"}
             for name in unknown])
    sources = [name for name in ("spec", "app", "artifact_hash")
               if body.get(name) is not None]
    if len(sources) != 1:
        raise RequestError(
            400, "give exactly one of: spec, app, artifact_hash",
            [{"path": "", "message": f"got {sources or 'none'}"}])
    params = _parse_params(body.get("params"))
    source = sources[0]
    if source == "spec":
        spec = body["spec"]
        errors = validate_spec(spec)
        if errors:
            raise RequestError(
                400, "invalid program spec",
                [{"path": f"spec.{e.path}" if e.path else "spec",
                  "message": e.message} for e in errors])
        return JobRequest(mode=mode, kind="spec", params=params,
                          spec=spec, ident=spec_digest(spec))
    if source == "app":
        app = body["app"]
        scale = body.get("scale", "small")
        if not isinstance(app, str) or app not in _registry_names():
            raise RequestError(
                400, "unknown app",
                [{"path": "app",
                  "message": f"expected one of {list(_registry_names())}, "
                             f"got {app!r}"}])
        if scale not in SCALES:
            raise RequestError(
                400, "unknown scale",
                [{"path": "scale",
                  "message": f"expected one of {list(SCALES)}, "
                             f"got {scale!r}"}])
        return JobRequest(mode=mode, kind="app", params=params, app=app,
                          scale=scale, ident=f"{app}:{scale}")
    digest = body["artifact_hash"]
    if (not isinstance(digest, str) or len(digest) != 64
            or any(c not in "0123456789abcdef" for c in digest)):
        raise RequestError(
            400, "artifact_hash must be a 64-char lowercase sha256 hex "
                 "digest", [{"path": "artifact_hash",
                             "message": f"got {digest!r}"}])
    if mode == "compile":
        raise RequestError(
            400, "artifact_hash cannot be compiled (it already is)",
            [{"path": "artifact_hash",
              "message": "use POST /simulate for precompiled artifacts"}])
    return JobRequest(mode=mode, kind="artifact", params=params,
                      artifact_hash=digest, ident=digest)


def _parse_multi(body: dict) -> JobRequest:
    """Parse one ``POST /multi`` body: co-resident registry apps.

    Deterministic like every other mode (packing and co-simulation are
    pure functions of apps+scale+params), so multi jobs coalesce and
    result-cache exactly like solo ones.
    """
    unknown = sorted(set(body) - {"apps", "scale", "params",
                                  "priorities"})
    if unknown:
        raise RequestError(
            400, "unknown request fields",
            [{"path": name, "message": "unknown field"}
             for name in unknown])
    params = _parse_params(body.get("params"))
    apps = body.get("apps")
    if not isinstance(apps, list) or not apps:
        raise RequestError(
            400, "apps must be a non-empty list of registry names",
            [{"path": "apps",
              "message": f"got {type(apps).__name__}"}])
    if len(apps) > MAX_TENANTS:
        raise RequestError(
            400, f"at most {MAX_TENANTS} co-resident apps",
            [{"path": "apps", "message": f"got {len(apps)}"}])
    names = _registry_names()
    errors = [{"path": f"apps[{k}]",
               "message": f"expected one of {list(names)}, got {a!r}"}
              for k, a in enumerate(apps)
              if not isinstance(a, str) or a not in names]
    if errors:
        raise RequestError(400, "unknown app", errors)
    scale = body.get("scale", "tiny")
    if scale not in SCALES:
        raise RequestError(
            400, "unknown scale",
            [{"path": "scale",
              "message": f"expected one of {list(SCALES)}, "
                         f"got {scale!r}"}])
    priorities = body.get("priorities")
    if priorities is not None:
        if not isinstance(priorities, list) \
                or len(priorities) != len(apps):
            raise RequestError(
                400, "priorities must line up with apps",
                [{"path": "priorities",
                  "message": f"expected a list of {len(apps)} "
                             f"integers"}])
        errors = [{"path": f"priorities[{k}]",
                   "message": f"expected an integer in "
                              f"1..{MAX_PRIORITY}, got {p!r}"}
                  for k, p in enumerate(priorities)
                  if not isinstance(p, int) or isinstance(p, bool)
                  or not 1 <= p <= MAX_PRIORITY]
        if errors:
            raise RequestError(400, "invalid priorities", errors)
        priorities = tuple(priorities)
    return JobRequest(mode="multi", kind="multi", params=params,
                      apps=tuple(apps), scale=scale,
                      priorities=priorities,
                      ident=f"multi:{'+'.join(apps)}:{scale}")
