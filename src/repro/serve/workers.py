"""Stateless job execution, run on the service's process pool.

:func:`execute_job` is a module-level function of one picklable payload
dict — no service object, no shared interpreter state — so it runs
identically inline (unit tests), on a thread (injected runners), or in
a pool worker process.  All state it touches is derived from the
payload: a worker-local :class:`~repro.bitstream.cache.CompileCache`
handle on the shared cache directory (safe under concurrent writers:
unique temp names + atomic renames of canonical bytes) and the service
data directory for content-addressed artifacts and trace files.

It never raises for job-shaped failures: every outcome is a result
dict with ``ok``, an HTTP-ish ``status``, and either the result fields
or a structured ``error`` — the async service maps those straight onto
responses without unpickling exceptions across process boundaries.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Optional, Tuple

from repro.bitstream.artifact import Bitstream, CompileOptions, compile_key
from repro.bitstream.cache import CompileCache
from repro.errors import DeadlockError, ReproError, SimulationError


def artifact_path(data_dir: str, content_hash: str) -> Path:
    """Where the content-addressed artifact store keeps one bitstream."""
    return Path(data_dir) / "artifacts" / f"{content_hash}.json"


def trace_path(data_dir: str, job_id: str) -> Path:
    """Where one job's Chrome/Perfetto trace JSON lives."""
    return Path(data_dir) / "traces" / f"{job_id}.trace.json"


def _error(status: int, stage: str, err: BaseException) -> dict:
    return {"ok": False, "status": status,
            "error": {"stage": stage, "type": type(err).__name__,
                      "message": str(err)}}


def _options(params: dict) -> CompileOptions:
    return CompileOptions(tile_words=int(params["tile_words"]),
                          whole_budget=int(params["whole_budget"]))


def _resolve_artifact(payload: dict,
                      cache: Optional[CompileCache]
                      ) -> Tuple[Bitstream, dict]:
    """Obtain the bitstream for a job: load, cache hit, or compile."""
    params = payload["params"]
    kind = payload["kind"]
    started = time.perf_counter()
    if kind == "artifact":
        path = artifact_path(payload["data_dir"],
                             payload["artifact_hash"])
        if not path.is_file():
            raise FileNotFoundError(
                f"no stored artifact {payload['artifact_hash']}; "
                f"compile it first via POST /compile")
        artifact = Bitstream.load(path)
        meta = {"outcome": "stored", "corrupt": 0, "compiled": False}
    elif kind == "app":
        from repro.compiler.artifact import compile_app_cached
        artifact, outcome = compile_app_cached(
            payload["app"], payload["scale"], cache=cache)
        meta = {"outcome": outcome,
                "corrupt": cache.stats.corrupt if cache else 0,
                "compiled": outcome in ("miss", "off")}
    else:  # spec
        from repro.compiler.artifact import freeze_program
        from repro.fuzz.generator import build_program
        from repro.serve.protocol import spec_digest
        spec = payload["spec"]
        options = _options(params)
        app_name = f"spec-{spec_digest(spec)[:16]}"
        key = compile_key(app_name, "serve", options=options)
        artifact = cache.get(key) if cache is not None else None
        if artifact is not None:
            meta = {"outcome": "hit", "corrupt": 0, "compiled": False}
        else:
            program, _ = build_program(spec)
            artifact = freeze_program(program, app_name, "serve",
                                      options=options)
            if cache is not None:
                cache.put(artifact)
                meta = {"outcome": "miss",
                        "corrupt": cache.stats.corrupt,
                        "compiled": True}
            else:
                meta = {"outcome": "off", "corrupt": 0,
                        "compiled": True}
    meta["compile_ms"] = round(
        (time.perf_counter() - started) * 1e3, 3)
    return artifact, meta


def _store_artifact(artifact: Bitstream, data_dir: str) -> str:
    """Content-address the artifact under the data dir; returns hash."""
    digest = artifact.content_hash
    path = artifact_path(data_dir, digest)
    if not path.is_file():
        artifact.save(path)
    return digest


def execute_multi(payload: dict) -> dict:
    """Pack and co-simulate several registry apps on one fabric.

    The tenancy packer compiles region-constrained artifacts, which are
    packing-specific — so multi jobs bypass the compile cache and the
    artifact store; the deterministic result is still safe to coalesce
    and result-cache by job key.
    """
    from repro.errors import MappingError
    from repro.tenancy import co_run

    params = payload["params"]
    priorities = payload.get("priorities")
    started = time.perf_counter()
    try:
        res = co_run(payload["apps"], scale=payload["scale"],
                     watchdog=int(params["watchdog"]),
                     max_cycles=int(params["max_cycles"]),
                     validate=True, priorities=priorities)
    except MappingError as err:
        return _error(422, "pack", err)
    except (DeadlockError, SimulationError) as err:
        return _error(422, "simulate", err)
    sim_ms = round((time.perf_counter() - started) * 1e3, 3)
    out = res.as_dict()
    return {
        "ok": True, "status": 200, "mode": "multi",
        "apps": payload["apps"], "scale": payload["scale"],
        "priorities": priorities,
        "simulate": {"sim_ms": sim_ms,
                     "fabric_cycles": out["fabric_cycles"]},
        "fabric_cycles": out["fabric_cycles"],
        "channel_util": out["channel_util"],
        "pack_report": out["pack_report"],
        "qos": out["qos"],
        "tenants": out["tenants"],
    }


def execute_job(payload: dict) -> dict:
    """Run one job payload to a result dict (never raises for
    job-shaped failures; programming bugs do propagate and are mapped
    to a 500 by the service)."""
    if payload["kind"] == "multi":
        return execute_multi(payload)
    params = payload["params"]
    cache = (CompileCache(payload["cache_dir"])
             if payload["cache_dir"] is not None else None)
    try:
        artifact, compile_meta = _resolve_artifact(payload, cache)
    except FileNotFoundError as err:
        return _error(404, "resolve", err)
    except ReproError as err:
        # structurally valid spec the compiler still rejects
        return _error(422, "compile", err)
    content_hash = _store_artifact(artifact, payload["data_dir"])
    result = {
        "ok": True, "status": 200,
        "app": artifact.app, "scale": artifact.scale,
        "key": artifact.key, "content_hash": content_hash,
        "artifact_url": f"/artifacts/{content_hash}",
        "compile": compile_meta,
    }
    if payload["mode"] == "compile":
        summary = artifact.summary()
        result["artifact"] = {k: summary[k] for k in
                              ("bytes", "leaves", "srams", "pcus_used",
                               "pmus_used")}
        return result
    tracer = None
    if params["trace"]:
        from repro.trace import RingTracer
        tracer = RingTracer(sample=int(params["trace_sample"]))
    started = time.perf_counter()
    try:
        machine = artifact.machine(
            tracer=tracer, scheduler=params["scheduler"],
            max_cycles=int(params["max_cycles"]),
            watchdog=int(params["watchdog"]))
        stats = machine.run()
    except DeadlockError as err:
        return {**_error(422, "simulate", err), **{
            "content_hash": content_hash, "compile": compile_meta}}
    except SimulationError as err:
        return {**_error(422, "simulate", err), **{
            "content_hash": content_hash, "compile": compile_meta}}
    sim_ms = round((time.perf_counter() - started) * 1e3, 3)
    result["simulate"] = {"sim_ms": sim_ms, "cycles": stats.cycles,
                          "scheduler": params["scheduler"]}
    result["stats"] = dataclasses.asdict(stats)
    if tracer is not None:
        from repro.trace import write_chrome_trace
        report = machine.trace_report()
        result["attribution"] = report.breakdown()
        path = trace_path(payload["data_dir"], payload["job_id"])
        path.parent.mkdir(parents=True, exist_ok=True)
        write_chrome_trace(str(path), tracer, report)
        result["trace_url"] = f"/traces/{path.name}"
    return result
