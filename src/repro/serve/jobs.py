"""Job bookkeeping: in-flight coalescing table and completed-result LRU.

Both structures are keyed by :attr:`JobRequest.key` — a hash over the
job's identity, mode, and normalized params — and both exist because
compilation and simulation are *deterministic*: two requests with equal
keys must produce byte-identical answers, so sharing one in-flight run
(coalescing) or replaying a finished one (result cache) is sound.

Everything here runs on the event loop thread; no locks needed.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

#: a job's final (status, result-dict) pair
JobOutcome = Tuple[int, dict]


class Job:
    """One in-flight unit of work, shared by every coalesced waiter."""

    __slots__ = ("key", "describe", "future", "waiters", "created",
                 "started")

    def __init__(self, key: str, describe: str = ""):
        self.key = key
        self.describe = describe
        self.future: asyncio.Future = \
            asyncio.get_running_loop().create_future()
        self.waiters = 1
        self.created = time.perf_counter()
        self.started: Optional[float] = None

    def finish(self, outcome: JobOutcome) -> None:
        if not self.future.done():
            self.future.set_result(outcome)

    async def wait(self) -> JobOutcome:
        # shield: one waiter's disconnect must not cancel the shared job
        return await asyncio.shield(self.future)


class JobTable:
    """In-flight jobs by key, plus a bounded LRU of completed results."""

    def __init__(self, result_cache_size: int = 256):
        self.inflight: Dict[str, Job] = {}
        self.result_cache_size = max(0, int(result_cache_size))
        self._results: "OrderedDict[str, JobOutcome]" = OrderedDict()

    # -- coalescing ---------------------------------------------------------------
    def get_inflight(self, key: str) -> Optional[Job]:
        return self.inflight.get(key)

    def register(self, job: Job) -> None:
        self.inflight[job.key] = job

    def retire(self, job: Job) -> None:
        self.inflight.pop(job.key, None)

    # -- result LRU ---------------------------------------------------------------
    def lookup_result(self, key: str) -> Optional[JobOutcome]:
        hit = self._results.get(key)
        if hit is not None:
            self._results.move_to_end(key)
        return hit

    def remember(self, key: str, outcome: JobOutcome) -> None:
        if self.result_cache_size == 0:
            return
        status, _ = outcome
        if status != 200:
            return  # never cache failures
        self._results[key] = outcome
        self._results.move_to_end(key)
        while len(self._results) > self.result_cache_size:
            self._results.popitem(last=False)

    def clear_results(self) -> None:
        self._results.clear()

    def __len__(self) -> int:
        return len(self.inflight)
