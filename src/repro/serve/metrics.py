"""Service metrics: counters and a log-scale latency histogram.

Latencies span four orders of magnitude (a result-cache hit is
microseconds; a cold compile+simulate of a four-step spec is hundreds
of milliseconds; a traced registry app can take seconds), so the
histogram uses geometric buckets.  Percentiles are interpolated inside
the containing bucket — good to a few percent, which is plenty for a
p50/p99 dashboard — and the loadtest harness computes *exact*
percentiles client-side from raw samples for the committed baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


class LatencyHistogram:
    """Fixed geometric buckets over milliseconds, 0.1 ms .. ~2 min."""

    #: bucket upper bounds in ms: 0.1 * 2**k, 21 buckets -> ~105 s
    BOUNDS = tuple(0.1 * (2 ** k) for k in range(21))

    def __init__(self):
        self.counts = [0] * (len(self.BOUNDS) + 1)
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def record(self, ms: float) -> None:
        """Add one observation (milliseconds)."""
        ms = max(0.0, float(ms))
        self.total += 1
        self.sum_ms += ms
        self.max_ms = max(self.max_ms, ms)
        for k, bound in enumerate(self.BOUNDS):
            if ms <= bound:
                self.counts[k] += 1
                return
        self.counts[-1] += 1

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile in ms (0 <= p <= 100)."""
        if self.total == 0:
            return 0.0
        rank = p / 100.0 * self.total
        seen = 0
        for k, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= rank:
                hi = (self.BOUNDS[k] if k < len(self.BOUNDS)
                      else self.max_ms)
                lo = self.BOUNDS[k - 1] if k > 0 else 0.0
                # linear interpolation within the bucket
                frac = (rank - seen) / count
                return lo + (min(hi, self.max_ms) - lo) * frac
            seen += count
        return self.max_ms

    def to_dict(self) -> dict:
        mean = self.sum_ms / self.total if self.total else 0.0
        return {
            "count": self.total,
            "mean_ms": round(mean, 3),
            "p50_ms": round(self.percentile(50), 3),
            "p90_ms": round(self.percentile(90), 3),
            "p99_ms": round(self.percentile(99), 3),
            "max_ms": round(self.max_ms, 3),
            "buckets": {
                (f"<={bound:g}ms" if k < len(self.BOUNDS) else "inf"):
                    self.counts[k]
                for k, bound in enumerate((*self.BOUNDS, 0.0))
                if self.counts[k]},
        }


class CircuitBreaker:
    """Per-endpoint circuit breaker over infrastructure failures.

    Counts *consecutive* server-side failures (5xx from actual job
    execution — 4xx client errors never trip it).  After ``threshold``
    of them the breaker opens and the endpoint sheds load with 503s
    until ``cooldown_s`` has passed; then exactly one probe request is
    let through (half-open).  A successful probe closes the breaker, a
    failed one reopens it for another cooldown.
    """

    def __init__(self, threshold: int = 5, cooldown_s: float = 2.0,
                 clock=time.monotonic):
        self.threshold = max(1, int(threshold))
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self.state = "closed"       # "closed" | "open" | "half-open"
        self.failures = 0           # consecutive failures
        self.opened_total = 0       # closed/half-open -> open edges
        self.shed = 0               # requests rejected while open
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May a request proceed right now?  (half-open admits one)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at >= self.cooldown_s:
                self.state = "half-open"
                return True
            self.shed += 1
            return False
        # half-open: the single probe is already in flight
        self.shed += 1
        return False

    def record(self, ok: bool) -> None:
        """Report the outcome of a request that was allowed through."""
        if ok:
            self.failures = 0
            self.state = "closed"
            return
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            if self.state != "open":
                self.opened_total += 1
            self.state = "open"
            self._opened_at = self._clock()

    def retry_after(self) -> float:
        """Seconds until the next half-open probe is admitted."""
        remaining = self.cooldown_s - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def snapshot(self) -> dict:
        return {"state": self.state,
                "consecutive_failures": self.failures,
                "opened_total": self.opened_total,
                "shed": self.shed}


@dataclass
class ServiceStats:
    """Everything ``/statsz`` reports (gauges are supplied by the
    service at snapshot time; these are the monotonic counters)."""

    received: int = 0
    completed: int = 0
    failed: int = 0            # job ran but produced an error result
    rejected: int = 0          # 429 backpressure
    invalid: int = 0           # 400/404 before reaching the queue
    timeouts: int = 0          # wall-clock per-job timeout tripped
    coalesced: int = 0         # requests attached to an in-flight twin
    result_hits: int = 0       # served from the completed-result LRU
    compiles: int = 0          # actual compilations (cache miss or off)
    sims: int = 0              # actual simulator runs
    multis: int = 0            # multi-tenant fabric runs
    cosched_batches: int = 0   # co-schedule batches flushed to a fabric
    cosched_jobs: int = 0      # jobs served by co-scheduling
    cosched_reordered: int = 0  # flushes whose composed seating != FIFO
    priority_jobs: int = 0     # requests claiming a QoS weight > 1
    cache_hits: int = 0
    cache_misses: int = 0
    cache_off: int = 0
    cache_corrupt: int = 0
    worker_crashes: int = 0    # worker process died under a job
    retries: int = 0           # jobs re-dispatched after a crash
    respawns: int = 0          # pool rebuilds after a crash
    breaker_shed: int = 0      # requests shed with 503 by a breaker
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record_cache(self, outcome: str, corrupt: int = 0) -> None:
        """Fold one worker-reported compile-cache outcome."""
        if outcome == "hit":
            self.cache_hits += 1
        elif outcome == "miss":
            self.cache_misses += 1
        elif outcome == "off":
            self.cache_off += 1
        self.cache_corrupt += int(corrupt)

    def to_dict(self) -> dict:
        return {
            "requests": {
                "received": self.received,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "invalid": self.invalid,
                "timeouts": self.timeouts,
                "coalesced": self.coalesced,
                "result_cache_hits": self.result_hits,
            },
            "work": {
                "compiles": self.compiles,
                "sims": self.sims,
                "multis": self.multis,
                "coschedule_batches": self.cosched_batches,
                "coschedule_jobs": self.cosched_jobs,
            },
            "compile_cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "off": self.cache_off,
                "corrupt": self.cache_corrupt,
            },
            "faults": {
                "worker_crashes": self.worker_crashes,
                "retries": self.retries,
                "respawns": self.respawns,
                "breaker_shed": self.breaker_shed,
            },
            "latency": self.latency.to_dict(),
        }
