"""Clients for the serving tier.

:class:`ServeClient` is the asyncio client the load-test harness fans
out: one persistent HTTP/1.1 connection per instance, reconnecting
transparently when the server (or an idle timeout) closed it.
:func:`sync_request` is a one-shot blocking convenience on
``http.client`` for CLI probes and scripts; :func:`wait_healthy` polls
``/healthz`` until a freshly spawned server answers.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple


class ServeClient:
    """One persistent async connection to a repro server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      obj: Any = None
                      ) -> Tuple[int, Dict[str, str], Any]:
        """One request; returns ``(status, headers, decoded body)``.

        Retries exactly once on a stale kept-alive connection.
        """
        try:
            return await self._request(method, path, obj)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, OSError):
            await self.close()
            return await self._request(method, path, obj)

    async def _request(self, method: str, path: str, obj: Any
                       ) -> Tuple[int, Dict[str, str], Any]:
        if self._writer is None:
            await self._connect()
        assert self._reader is not None and self._writer is not None
        body = b""
        if obj is not None:
            body = json.dumps(obj).encode("utf-8")
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"\r\n").encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        try:
            decoded: Any = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            decoded = raw
        return status, headers, decoded


def sync_request(host: str, port: int, method: str, path: str,
                 obj: Any = None, timeout: float = 30.0
                 ) -> Tuple[int, Any]:
    """One-shot blocking request (CLI probes, scripts)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(obj) if obj is not None else None
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json",
                              "Connection": "close"})
        response = conn.getresponse()
        raw = response.read()
        try:
            decoded: Any = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            decoded = raw
        return response.status, decoded
    finally:
        conn.close()


def wait_healthy(host: str, port: int, timeout_s: float = 30.0,
                 interval_s: float = 0.1) -> bool:
    """Poll ``/healthz`` until it answers 200, or time out."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            status, body = sync_request(host, port, "GET", "/healthz",
                                        timeout=2.0)
            if status == 200 and isinstance(body, dict) \
                    and body.get("ok"):
                return True
        except OSError:
            pass
        time.sleep(interval_s)
    return False
