"""The async compile-and-simulate service core.

:class:`ReproService` is the transport-independent heart of the tier:
:mod:`repro.serve.http` feeds it parsed bodies, unit tests call
:meth:`ReproService.submit` directly.  One submission flows through:

1. **parse + validate** — :func:`repro.serve.protocol.parse_request`;
   schema problems return structured 400s without consuming a queue
   slot;
2. **result cache** — completed keys are replayed from a bounded LRU
   (simulations are deterministic, so this is exact);
3. **coalescing** — a key equal to an in-flight job's attaches to that
   job's future instead of queuing duplicate work;
4. **admission** — at most ``queue_depth`` jobs may be waiting for a
   worker slot; beyond that the request is rejected with 429 and a
   ``Retry-After`` estimate;
5. **execution** — ``jobs`` concurrent slots drain onto a
   :class:`~concurrent.futures.ProcessPoolExecutor` running the
   stateless :func:`repro.serve.workers.execute_job` (tests may inject
   any callable runner instead);
6. **timeout** — each job gets ``timeout_s`` of wall clock, enforced
   with ``asyncio.wait_for``.  The simulator itself is bounded too:
   request ``max_cycles``/``watchdog`` are clamped to server caps, so a
   runaway or deadlocked simulation trips the sim-side watchdog and the
   worker slot always comes back.

The tier is crash-tolerant: a worker process that dies mid-job (OOM
kill, segfault, chaos injection) surfaces as ``BrokenExecutor`` on the
pending future *immediately* — never by waiting out the wall timeout.
The service respawns the pool and retries the job up to ``max_retries``
times with exponential backoff + jitter; a job that keeps killing
workers comes back as a typed 503.  Each endpoint sits behind a
:class:`~repro.serve.metrics.CircuitBreaker` that sheds load with 503 +
``Retry-After`` after a run of infrastructure failures.

Shutdown is graceful: :meth:`drain` stops admissions (503), waits for
every in-flight job, then tears down the pool.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Optional

from repro.bitstream.cache import default_cache_root
from repro.serve.jobs import Job, JobOutcome, JobTable
from repro.serve.metrics import CircuitBreaker, ServiceStats
from repro.serve.protocol import JobRequest, RequestError, parse_request
from repro.serve.workers import execute_job


def default_data_dir() -> Path:
    """Artifact/trace store: ``<cache root>/serve`` by default."""
    return default_cache_root() / "serve"


def _worker_init() -> None:
    """Detach a pool worker from the parent's signal machinery.

    Fork-started workers inherit asyncio's signal wakeup fd; without
    this, a SIGTERM aimed at a worker (e.g. the pool tearing down
    siblings of a crashed process) echoes through the shared pipe and
    the *parent's* event loop dispatches its own shutdown handler —
    one killed worker would gracefully stop the whole server.
    """
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


@dataclass
class ServeConfig:
    """Tuning knobs for one service instance."""

    jobs: int = 2
    queue_depth: int = 64
    cache_dir: Optional[str] = None     # None -> default cache root
    no_cache: bool = False
    data_dir: Optional[str] = None      # None -> default_data_dir()
    timeout_s: float = 300.0
    result_cache: int = 256
    #: co-scheduling: app-simulate requests opting in via
    #: ``params.coschedule`` are held up to this long to be batched
    #: with other opted-in jobs onto one shared fabric
    coschedule_window_s: float = 0.05
    #: tenants per co-schedule batch (a full batch flushes early)
    coschedule_max: int = 4
    #: worker-crash recovery: re-dispatches per job after a
    #: ``BrokenExecutor``, and the base backoff before the first retry
    #: (doubled per retry, with jitter)
    max_retries: int = 2
    retry_base_s: float = 0.05
    #: circuit breaker: consecutive infra failures (5xx) per endpoint
    #: before it opens, and how long it sheds before a half-open probe
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 2.0
    #: enable the POST /chaos/kill fault-injection endpoint
    chaos: bool = False

    def resolved_cache_dir(self) -> Optional[str]:
        if self.no_cache:
            return None
        if self.cache_dir is not None:
            return str(self.cache_dir)
        return str(default_cache_root())

    def resolved_data_dir(self) -> str:
        if self.data_dir is not None:
            return str(self.data_dir)
        return str(default_data_dir())


class ReproService:
    """Queue + coalescer + worker pool behind the HTTP tier.

    ``runner`` (tests) replaces the process pool with any
    ``payload -> result-dict`` callable, executed on a thread so a
    blocking runner still exercises real queueing behaviour.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 runner: Optional[Callable[[dict], dict]] = None):
        self.config = config or ServeConfig()
        self.stats = ServiceStats()
        self.table = JobTable(self.config.result_cache)
        self._runner = runner
        self._executor: Optional[ProcessPoolExecutor] = None
        self._slots = asyncio.Semaphore(self.config.jobs)
        self._queued = 0       # admitted, waiting for a worker slot
        self._running = 0      # holding a worker slot right now
        self._draining = False
        self._tasks: "set[asyncio.Task]" = set()
        #: open co-schedule batches: (scale, params) -> (entries, event)
        #: where entries is a list of (JobRequest, Future) and the event
        #: flushes a full batch before its window expires.  The group
        #: params are priority-normalized so mixed-priority jobs share a
        #: fabric (each tenant keeps its own weight)
        self._cosched: dict = {}
        #: learned bandwidth classes: (app, scale) -> "memory"/"compute"
        #: folded from completed solo runs and profiled pack reports;
        #: co-schedule flushes seat batches with these
        self._bw_classes: "dict[tuple, str]" = {}
        self._breakers: "dict[str, CircuitBreaker]" = {
            mode: CircuitBreaker(self.config.breaker_threshold,
                                 self.config.breaker_cooldown_s)
            for mode in ("compile", "simulate", "multi")}
        Path(self.data_dir).mkdir(parents=True, exist_ok=True)

    # -- directories -------------------------------------------------------------
    @property
    def cache_dir(self) -> Optional[str]:
        return self.config.resolved_cache_dir()

    @property
    def data_dir(self) -> str:
        return self.config.resolved_data_dir()

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Spin up the worker pool (no-op with an injected runner)."""
        if self._runner is None and self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.jobs,
                initializer=_worker_init)

    async def drain(self) -> None:
        """Stop admitting, wait for in-flight jobs, shut the pool."""
        self._draining = True
        pending = [job.future for job in self.table.inflight.values()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for task in list(self._tasks):
            try:
                await task
            except Exception:       # noqa: BLE001 — already reported
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission --------------------------------------------------------------
    async def submit(self, mode: str, body) -> JobOutcome:
        """One request in, one ``(status, result)`` out."""
        self.stats.received += 1
        started = time.perf_counter()
        try:
            status, result = await self._submit(mode, body)
        finally:
            self.stats.latency.record(
                (time.perf_counter() - started) * 1e3)
        return status, result

    async def _submit(self, mode: str, body) -> JobOutcome:
        try:
            request = parse_request(body, mode)
        except RequestError as err:
            self.stats.invalid += 1
            return err.status, err.body()
        if request.params.priority > 1 or (
                request.priorities and max(request.priorities) > 1):
            self.stats.priority_jobs += 1
        if self._draining:
            return 503, {"error": "service is draining"}
        breaker = self._breakers.get(request.mode)
        if breaker is not None and not breaker.allow():
            self.stats.breaker_shed += 1
            return 503, {
                "error": f"circuit breaker open for /{request.mode} "
                         f"after repeated server-side failures",
                "retry_after_s": round(max(0.05,
                                           breaker.retry_after()), 3),
                "breaker": breaker.snapshot()}
        if (request.mode == "simulate" and request.kind == "app"
                and request.params.coschedule):
            return await self._submit_coscheduled(request)
        key = request.key
        cached = self.table.lookup_result(key)
        if cached is not None:
            self.stats.result_hits += 1
            status, result = cached
            return status, {**result, "served": "result-cache"}
        job = self.table.get_inflight(key)
        if job is not None:
            self.stats.coalesced += 1
            job.waiters += 1
            status, result = await job.wait()
            return status, {**result, "served": "coalesced"}
        if self._queued >= self.config.queue_depth:
            self.stats.rejected += 1
            return 429, {"error": "job queue is full",
                         "retry_after_s": self.retry_after()}
        job = Job(key, request.describe())
        self.table.register(job)
        self._queued += 1
        task = asyncio.get_running_loop().create_task(
            self._run_job(job, request))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return await job.wait()

    # -- co-scheduling -----------------------------------------------------------
    async def _submit_coscheduled(self, request: JobRequest
                                  ) -> JobOutcome:
        """Hold an opted-in app-simulate job briefly to share a fabric.

        Jobs arriving within ``coschedule_window_s`` of each other (and
        agreeing on scale + params, QoS priority aside) are packed as
        tenants of shared multi-tenant fabric runs; each gets back its
        own per-tenant stats.  Answers depend on the batch composition,
        so these jobs bypass the result cache and coalescing table
        entirely.
        """
        if self._queued >= self.config.queue_depth:
            self.stats.rejected += 1
            return 429, {"error": "job queue is full",
                         "retry_after_s": self.retry_after()}
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # priority is per tenant, not per batch: normalize it out of
        # the group key so mixed-priority arrivals share a fabric
        group = (request.scale, replace(request.params, priority=1))
        batch = self._cosched.get(group)
        if batch is None:
            batch = ([], asyncio.Event())
            self._cosched[group] = batch
            task = loop.create_task(self._flush_coscheduled(group))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        entries, full = batch
        entries.append((request, future))
        self._queued += 1
        if len(entries) >= self.config.coschedule_max:
            full.set()
        return await asyncio.shield(future)

    async def _flush_coscheduled(self, group) -> None:
        entries, full = self._cosched[group]
        try:
            await asyncio.wait_for(
                full.wait(), timeout=self.config.coschedule_window_s)
        except asyncio.TimeoutError:
            pass
        del self._cosched[group]
        scale, params = group
        batches = self._compose_cosched(entries, scale)
        if [e for batch in batches for e in batch] != entries:
            self.stats.cosched_reordered += 1
        await asyncio.gather(*(
            self._run_cosched_batch(batch, scale, params)
            for batch in batches))

    def _compose_cosched(self, entries, scale: str) -> "list[list]":
        """Seat a flush's jobs into fabric batches, not FIFO.

        High-priority jobs are seated first (they get fabric seats even
        when a flush overflows into several batches), then
        :func:`repro.tenancy.profile.compose_batches` deals memory-bound
        jobs — per the classes the service has learned from completed
        runs — round-robin across the batches so no single fabric
        stacks all the bandwidth demand.
        """
        from repro.tenancy.profile import compose_batches
        ranked = sorted(entries,
                        key=lambda e: -e[0].params.priority)  # stable
        items = [(entry, self._bw_classes.get((entry[0].app, scale)))
                 for entry in ranked]
        return [[item[0] for item in group] for group in
                compose_batches(items, self.config.coschedule_max)]

    async def _run_cosched_batch(self, entries, scale, params) -> None:
        """Run one composed batch on one shared fabric; wake waiters."""
        apps = [request.app for request, _ in entries]
        multi = JobRequest(
            mode="multi", kind="multi", params=params,
            apps=tuple(apps), scale=scale,
            priorities=tuple(request.params.priority
                             for request, _ in entries),
            ident=f"cosched:{'+'.join(apps)}:{scale}")
        try:
            await self._slots.acquire()
            self._queued -= len(entries)
            self._running += 1
            try:
                status, result = await self._execute(multi)
            finally:
                self._running -= 1
                self._slots.release()
        except BaseException as err:  # noqa: BLE001 — waiters must wake
            status, result = 500, {"error": f"internal error: "
                                            f"{type(err).__name__}: "
                                            f"{err}"}
        self.stats.cosched_batches += 1
        self.stats.cosched_jobs += len(entries)
        # one fabric execution, one breaker observation (the clients
        # all came through /simulate)
        self._breakers["simulate"].record(status < 500)
        if status == 200:
            self.stats.multis += 1
        for index, (request, future) in enumerate(entries):
            outcome = self._cosched_outcome(status, result, index,
                                            request, apps)
            self._account(outcome)
            if not future.done():
                future.set_result(outcome)

    @staticmethod
    def _cosched_outcome(status: int, result: dict, index: int,
                         request: JobRequest, apps) -> JobOutcome:
        """One tenant's slice of a co-scheduled batch result."""
        if status != 200 or not isinstance(result, dict):
            return status, result
        tenant = result["tenants"][index]
        return 200, {
            "ok": True, "status": 200, "served": "coscheduled",
            "app": request.app, "scale": request.scale,
            "coscheduled": {"batch": len(apps), "apps": list(apps),
                            "tenant": tenant["name"],
                            "region": tenant["region"],
                            "priority": tenant.get("priority", 1),
                            "fabric_cycles": result["fabric_cycles"]},
            "qos": result.get("qos"),
            "simulate": {"sim_ms": result["simulate"]["sim_ms"],
                         "cycles": tenant["stats"]["cycles"]},
            "stats": tenant["stats"],
            "channel_util": tenant.get("channel_util"),
        }

    def retry_after(self) -> int:
        """A Retry-After estimate (s): queue length x mean latency."""
        mean_s = (self.stats.latency.sum_ms / 1e3
                  / max(1, self.stats.latency.total))
        backlog = self._queued + self._running
        return max(1, int(backlog * mean_s / max(1, self.config.jobs)))

    # -- execution ---------------------------------------------------------------
    async def _run_job(self, job: Job, request: JobRequest) -> None:
        try:
            await self._slots.acquire()
            self._queued -= 1
            self._running += 1
            job.started = time.perf_counter()
            try:
                outcome = await self._execute(request)
            finally:
                self._running -= 1
                self._slots.release()
        except BaseException as err:  # noqa: BLE001 — waiters must wake
            outcome = (500, {"error": f"internal error: "
                                      f"{type(err).__name__}: {err}"})
        self._account(outcome, mode=request.mode)
        self.table.remember(job.key, outcome)  # 200s only, both modes
        self.table.retire(job)
        job.finish(outcome)

    async def _execute(self, request: JobRequest) -> JobOutcome:
        """Dispatch one job, riding out worker crashes.

        The whole job (all retry attempts together) gets ``timeout_s``
        of wall clock.  A dead worker raises ``BrokenExecutor`` on the
        pending future the moment the pool notices — failing fast
        instead of burning the rest of the timeout — after which the
        pool is respawned and the job re-dispatched with exponential
        backoff + jitter, ``max_retries`` times at most.
        """
        loop = asyncio.get_running_loop()
        payload = request.payload(self.cache_dir, self.data_dir)
        deadline = loop.time() + self.config.timeout_s
        attempts = 0
        backoff = self.config.retry_base_s
        while True:
            try:
                # run_in_executor itself raises BrokenExecutor when
                # the pool is already known-broken, so the dispatch
                # lives inside the retry net too
                if self._runner is not None:
                    fut = loop.run_in_executor(None, self._runner,
                                               payload)
                else:
                    self.start()
                    fut = loop.run_in_executor(self._executor,
                                               execute_job, payload)
                raw = await asyncio.wait_for(
                    fut, timeout=max(0.001, deadline - loop.time()))
            except asyncio.TimeoutError:
                self.stats.timeouts += 1
                return 504, {"error": f"job exceeded the "
                                      f"{self.config.timeout_s:g} s "
                                      f"wall timeout",
                             "job": request.describe()}
            except BrokenExecutor:
                self.stats.worker_crashes += 1
                self._respawn_pool()
                if attempts >= self.config.max_retries:
                    return 503, {
                        "ok": False, "status": 503,
                        "error": {
                            "stage": "worker",
                            "type": "WorkerCrashed",
                            "message": (
                                f"worker process died "
                                f"{attempts + 1} time(s) running "
                                f"this job; giving up after "
                                f"{self.config.max_retries} "
                                f"retries")},
                        "job": request.describe()}
                attempts += 1
                self.stats.retries += 1
                await asyncio.sleep(
                    min(backoff * (0.5 + random.random()),
                        max(0.0, deadline - loop.time())))
                backoff *= 2
                continue
            status = int(raw.get("status",
                                 200 if raw.get("ok") else 500))
            return status, raw

    def _respawn_pool(self) -> None:
        """Throw away a broken process pool; ``start()`` rebuilds it."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
            self.stats.respawns += 1

    def _account(self, outcome: JobOutcome,
                 mode: Optional[str] = None) -> None:
        status, result = outcome
        if status == 200:
            self.stats.completed += 1
        else:
            self.stats.failed += 1
        # breaker sees executed jobs only (never cache hits or
        # coalesced waiters): 5xx = infrastructure failure
        if mode is not None and mode in self._breakers:
            self._breakers[mode].record(status < 500)
        if not isinstance(result, dict):
            return
        compile_meta = result.get("compile")
        if isinstance(compile_meta, dict):
            self.stats.record_cache(compile_meta.get("outcome", ""),
                                    compile_meta.get("corrupt", 0))
            if compile_meta.get("compiled"):
                self.stats.compiles += 1
        if "simulate" in result:
            self.stats.sims += 1
        if result.get("mode") == "multi":
            self.stats.multis += 1
        if status == 200:
            self._learn_bandwidth(result)

    def _learn_bandwidth(self, result: dict) -> None:
        """Fold a finished job's bandwidth evidence into the classes
        used to seat future co-schedule batches.

        Solo simulate results carry the exact per-channel occupancy the
        profiler would measure; bandwidth-profiled pack reports carry
        ready-made classes.  Co-scheduled per-tenant stats are skipped —
        co-resident occupancy is skewed by the batch mix.
        """
        from repro.tenancy.profile import classify
        app, scale = result.get("app"), result.get("scale")
        stats = result.get("stats")
        if (app and scale and isinstance(stats, dict)
                and not result.get("coscheduled")):
            channels = stats.get("dram_channels") or {}
            utils = [entry.get("util", 0.0)
                     for entry in channels.values()
                     if isinstance(entry, dict)]
            if utils:
                self._bw_classes[(app, scale)] = classify(
                    sum(utils) / len(utils))
        report = result.get("pack_report")
        bandwidth = (report.get("bandwidth")
                     if isinstance(report, dict) else None)
        if isinstance(bandwidth, dict):
            for prof in (bandwidth.get("tenants") or {}).values():
                if isinstance(prof, dict) and prof.get("app") \
                        and prof.get("class"):
                    self._bw_classes[(prof["app"],
                                      prof.get("scale", "tiny"))] = \
                        prof["class"]

    # -- chaos injection ---------------------------------------------------------
    def chaos_kill_worker(self) -> JobOutcome:
        """SIGKILL one pool worker (``POST /chaos/kill``, gated).

        Only available when the service was started with
        ``ServeConfig.chaos`` — loadtests use it to exercise the
        crash-recovery path against a live server.
        """
        if not self.config.chaos:
            return 404, {"error": "chaos endpoints are disabled "
                                  "(start the server with --chaos)"}
        if self._runner is not None:
            return 409, {"error": "service runs an injected runner, "
                                  "not a process pool"}
        self.start()
        procs = list(getattr(self._executor, "_processes",
                             {}).values())
        live = [p for p in procs if p.is_alive()]
        if not live:
            return 200, {"killed": None,
                         "note": "no live worker to kill (workers "
                                 "spawn on first dispatch)"}
        victim = live[0]
        os.kill(victim.pid, signal.SIGKILL)
        return 200, {"killed": victim.pid}

    # -- observability -----------------------------------------------------------
    def healthz(self) -> JobOutcome:
        if self._draining:
            return 503, {"ok": False, "draining": True}
        return 200, {"ok": True, "inflight": len(self.table),
                     "queued": self._queued, "running": self._running}

    def statsz(self) -> dict:
        snapshot = self.stats.to_dict()
        snapshot["queue"] = {
            "depth": self._queued,
            "capacity": self.config.queue_depth,
            "running": self._running,
            "slots": self.config.jobs,
            "inflight_keys": len(self.table),
            "draining": self._draining,
        }
        snapshot["breakers"] = {
            mode: breaker.snapshot()
            for mode, breaker in sorted(self._breakers.items())}
        snapshot["qos"] = {
            "priority_jobs": self.stats.priority_jobs,
            "cosched_reordered": self.stats.cosched_reordered,
            "bandwidth_classes": {
                f"{app}:{scale}": klass
                for (app, scale), klass
                in sorted(self._bw_classes.items())},
        }
        snapshot["config"] = {
            "jobs": self.config.jobs,
            "queue_depth": self.config.queue_depth,
            "timeout_s": self.config.timeout_s,
            "result_cache": self.config.result_cache,
            "coschedule_window_s": self.config.coschedule_window_s,
            "coschedule_max": self.config.coschedule_max,
            "max_retries": self.config.max_retries,
            "breaker_threshold": self.config.breaker_threshold,
            "breaker_cooldown_s": self.config.breaker_cooldown_s,
            "chaos": self.config.chaos,
            "cache_dir": self.cache_dir,
            "data_dir": self.data_dir,
        }
        return snapshot
