"""The async compile-and-simulate service core.

:class:`ReproService` is the transport-independent heart of the tier:
:mod:`repro.serve.http` feeds it parsed bodies, unit tests call
:meth:`ReproService.submit` directly.  One submission flows through:

1. **parse + validate** — :func:`repro.serve.protocol.parse_request`;
   schema problems return structured 400s without consuming a queue
   slot;
2. **result cache** — completed keys are replayed from a bounded LRU
   (simulations are deterministic, so this is exact);
3. **coalescing** — a key equal to an in-flight job's attaches to that
   job's future instead of queuing duplicate work;
4. **admission** — at most ``queue_depth`` jobs may be waiting for a
   worker slot; beyond that the request is rejected with 429 and a
   ``Retry-After`` estimate;
5. **execution** — ``jobs`` concurrent slots drain onto a
   :class:`~concurrent.futures.ProcessPoolExecutor` running the
   stateless :func:`repro.serve.workers.execute_job` (tests may inject
   any callable runner instead);
6. **timeout** — each job gets ``timeout_s`` of wall clock, enforced
   with ``asyncio.wait_for``.  The simulator itself is bounded too:
   request ``max_cycles``/``watchdog`` are clamped to server caps, so a
   runaway or deadlocked simulation trips the sim-side watchdog and the
   worker slot always comes back.

Shutdown is graceful: :meth:`drain` stops admissions (503), waits for
every in-flight job, then tears down the pool.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.bitstream.cache import default_cache_root
from repro.serve.jobs import Job, JobOutcome, JobTable
from repro.serve.metrics import ServiceStats
from repro.serve.protocol import JobRequest, RequestError, parse_request
from repro.serve.workers import execute_job


def default_data_dir() -> Path:
    """Artifact/trace store: ``<cache root>/serve`` by default."""
    return default_cache_root() / "serve"


@dataclass
class ServeConfig:
    """Tuning knobs for one service instance."""

    jobs: int = 2
    queue_depth: int = 64
    cache_dir: Optional[str] = None     # None -> default cache root
    no_cache: bool = False
    data_dir: Optional[str] = None      # None -> default_data_dir()
    timeout_s: float = 300.0
    result_cache: int = 256
    #: co-scheduling: app-simulate requests opting in via
    #: ``params.coschedule`` are held up to this long to be batched
    #: with other opted-in jobs onto one shared fabric
    coschedule_window_s: float = 0.05
    #: tenants per co-schedule batch (a full batch flushes early)
    coschedule_max: int = 4

    def resolved_cache_dir(self) -> Optional[str]:
        if self.no_cache:
            return None
        if self.cache_dir is not None:
            return str(self.cache_dir)
        return str(default_cache_root())

    def resolved_data_dir(self) -> str:
        if self.data_dir is not None:
            return str(self.data_dir)
        return str(default_data_dir())


class ReproService:
    """Queue + coalescer + worker pool behind the HTTP tier.

    ``runner`` (tests) replaces the process pool with any
    ``payload -> result-dict`` callable, executed on a thread so a
    blocking runner still exercises real queueing behaviour.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 runner: Optional[Callable[[dict], dict]] = None):
        self.config = config or ServeConfig()
        self.stats = ServiceStats()
        self.table = JobTable(self.config.result_cache)
        self._runner = runner
        self._executor: Optional[ProcessPoolExecutor] = None
        self._slots = asyncio.Semaphore(self.config.jobs)
        self._queued = 0       # admitted, waiting for a worker slot
        self._running = 0      # holding a worker slot right now
        self._draining = False
        self._tasks: "set[asyncio.Task]" = set()
        #: open co-schedule batches: (scale, params) -> (entries, event)
        #: where entries is a list of (JobRequest, Future) and the event
        #: flushes a full batch before its window expires
        self._cosched: dict = {}
        Path(self.data_dir).mkdir(parents=True, exist_ok=True)

    # -- directories -------------------------------------------------------------
    @property
    def cache_dir(self) -> Optional[str]:
        return self.config.resolved_cache_dir()

    @property
    def data_dir(self) -> str:
        return self.config.resolved_data_dir()

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Spin up the worker pool (no-op with an injected runner)."""
        if self._runner is None and self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.jobs)

    async def drain(self) -> None:
        """Stop admitting, wait for in-flight jobs, shut the pool."""
        self._draining = True
        pending = [job.future for job in self.table.inflight.values()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for task in list(self._tasks):
            try:
                await task
            except Exception:       # noqa: BLE001 — already reported
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission --------------------------------------------------------------
    async def submit(self, mode: str, body) -> JobOutcome:
        """One request in, one ``(status, result)`` out."""
        self.stats.received += 1
        started = time.perf_counter()
        try:
            status, result = await self._submit(mode, body)
        finally:
            self.stats.latency.record(
                (time.perf_counter() - started) * 1e3)
        return status, result

    async def _submit(self, mode: str, body) -> JobOutcome:
        try:
            request = parse_request(body, mode)
        except RequestError as err:
            self.stats.invalid += 1
            return err.status, err.body()
        if self._draining:
            return 503, {"error": "service is draining"}
        if (request.mode == "simulate" and request.kind == "app"
                and request.params.coschedule):
            return await self._submit_coscheduled(request)
        key = request.key
        cached = self.table.lookup_result(key)
        if cached is not None:
            self.stats.result_hits += 1
            status, result = cached
            return status, {**result, "served": "result-cache"}
        job = self.table.get_inflight(key)
        if job is not None:
            self.stats.coalesced += 1
            job.waiters += 1
            status, result = await job.wait()
            return status, {**result, "served": "coalesced"}
        if self._queued >= self.config.queue_depth:
            self.stats.rejected += 1
            return 429, {"error": "job queue is full",
                         "retry_after_s": self.retry_after()}
        job = Job(key, request.describe())
        self.table.register(job)
        self._queued += 1
        task = asyncio.get_running_loop().create_task(
            self._run_job(job, request))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return await job.wait()

    # -- co-scheduling -----------------------------------------------------------
    async def _submit_coscheduled(self, request: JobRequest
                                  ) -> JobOutcome:
        """Hold an opted-in app-simulate job briefly to share a fabric.

        Jobs arriving within ``coschedule_window_s`` of each other (and
        agreeing on scale + params) are packed as tenants of one
        multi-tenant fabric run; each gets back its own per-tenant
        stats.  Answers depend on the batch composition, so these jobs
        bypass the result cache and coalescing table entirely.
        """
        if self._queued >= self.config.queue_depth:
            self.stats.rejected += 1
            return 429, {"error": "job queue is full",
                         "retry_after_s": self.retry_after()}
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        group = (request.scale, request.params)
        batch = self._cosched.get(group)
        if batch is None:
            batch = ([], asyncio.Event())
            self._cosched[group] = batch
            task = loop.create_task(self._flush_coscheduled(group))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        entries, full = batch
        entries.append((request, future))
        self._queued += 1
        if len(entries) >= self.config.coschedule_max:
            full.set()
        return await asyncio.shield(future)

    async def _flush_coscheduled(self, group) -> None:
        entries, full = self._cosched[group]
        try:
            await asyncio.wait_for(
                full.wait(), timeout=self.config.coschedule_window_s)
        except asyncio.TimeoutError:
            pass
        del self._cosched[group]
        scale, params = group
        apps = [request.app for request, _ in entries]
        multi = JobRequest(
            mode="multi", kind="multi", params=params,
            apps=tuple(apps), scale=scale,
            ident=f"cosched:{'+'.join(apps)}:{scale}")
        try:
            await self._slots.acquire()
            self._queued -= len(entries)
            self._running += 1
            try:
                status, result = await self._execute(multi)
            finally:
                self._running -= 1
                self._slots.release()
        except BaseException as err:  # noqa: BLE001 — waiters must wake
            status, result = 500, {"error": f"internal error: "
                                            f"{type(err).__name__}: "
                                            f"{err}"}
        self.stats.cosched_batches += 1
        self.stats.cosched_jobs += len(entries)
        if status == 200:
            self.stats.multis += 1
        for index, (request, future) in enumerate(entries):
            outcome = self._cosched_outcome(status, result, index,
                                            request, apps)
            self._account(outcome)
            if not future.done():
                future.set_result(outcome)

    @staticmethod
    def _cosched_outcome(status: int, result: dict, index: int,
                         request: JobRequest, apps) -> JobOutcome:
        """One tenant's slice of a co-scheduled batch result."""
        if status != 200 or not isinstance(result, dict):
            return status, result
        tenant = result["tenants"][index]
        return 200, {
            "ok": True, "status": 200, "served": "coscheduled",
            "app": request.app, "scale": request.scale,
            "coscheduled": {"batch": len(apps), "apps": list(apps),
                            "tenant": tenant["name"],
                            "region": tenant["region"],
                            "fabric_cycles": result["fabric_cycles"]},
            "simulate": {"sim_ms": result["simulate"]["sim_ms"],
                         "cycles": tenant["stats"]["cycles"]},
            "stats": tenant["stats"],
            "channel_util": tenant.get("channel_util"),
        }

    def retry_after(self) -> int:
        """A Retry-After estimate (s): queue length x mean latency."""
        mean_s = (self.stats.latency.sum_ms / 1e3
                  / max(1, self.stats.latency.total))
        backlog = self._queued + self._running
        return max(1, int(backlog * mean_s / max(1, self.config.jobs)))

    # -- execution ---------------------------------------------------------------
    async def _run_job(self, job: Job, request: JobRequest) -> None:
        try:
            await self._slots.acquire()
            self._queued -= 1
            self._running += 1
            job.started = time.perf_counter()
            try:
                outcome = await self._execute(request)
            finally:
                self._running -= 1
                self._slots.release()
        except BaseException as err:  # noqa: BLE001 — waiters must wake
            outcome = (500, {"error": f"internal error: "
                                      f"{type(err).__name__}: {err}"})
        self._account(outcome)
        self.table.remember(job.key, outcome)  # 200s only, both modes
        self.table.retire(job)
        job.finish(outcome)

    async def _execute(self, request: JobRequest) -> JobOutcome:
        loop = asyncio.get_running_loop()
        payload = request.payload(self.cache_dir, self.data_dir)
        if self._runner is not None:
            fut = loop.run_in_executor(None, self._runner, payload)
        else:
            self.start()
            fut = loop.run_in_executor(self._executor, execute_job,
                                       payload)
        try:
            raw = await asyncio.wait_for(
                fut, timeout=self.config.timeout_s)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            return 504, {"error": f"job exceeded the "
                                  f"{self.config.timeout_s:g} s wall "
                                  f"timeout",
                         "job": request.describe()}
        status = int(raw.get("status", 200 if raw.get("ok") else 500))
        return status, raw

    def _account(self, outcome: JobOutcome) -> None:
        status, result = outcome
        if status == 200:
            self.stats.completed += 1
        else:
            self.stats.failed += 1
        if not isinstance(result, dict):
            return
        compile_meta = result.get("compile")
        if isinstance(compile_meta, dict):
            self.stats.record_cache(compile_meta.get("outcome", ""),
                                    compile_meta.get("corrupt", 0))
            if compile_meta.get("compiled"):
                self.stats.compiles += 1
        if "simulate" in result:
            self.stats.sims += 1
        if result.get("mode") == "multi":
            self.stats.multis += 1

    # -- observability -----------------------------------------------------------
    def healthz(self) -> JobOutcome:
        if self._draining:
            return 503, {"ok": False, "draining": True}
        return 200, {"ok": True, "inflight": len(self.table),
                     "queued": self._queued, "running": self._running}

    def statsz(self) -> dict:
        snapshot = self.stats.to_dict()
        snapshot["queue"] = {
            "depth": self._queued,
            "capacity": self.config.queue_depth,
            "running": self._running,
            "slots": self.config.jobs,
            "inflight_keys": len(self.table),
            "draining": self._draining,
        }
        snapshot["config"] = {
            "jobs": self.config.jobs,
            "queue_depth": self.config.queue_depth,
            "timeout_s": self.config.timeout_s,
            "result_cache": self.config.result_cache,
            "coschedule_window_s": self.config.coschedule_window_s,
            "coschedule_max": self.config.coschedule_max,
            "cache_dir": self.cache_dir,
            "data_dir": self.data_dir,
        }
        return snapshot
