"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Chip summary: parameters, area breakdown, peak numbers.
``list``
    The Table 4 benchmark registry.
``run APP [--scale SCALE] [--floorplan] [--ir] [--trace[=PATH]]``
    Compile, cycle-simulate and validate one benchmark.  With
    ``--trace`` the simulator records per-cycle stall attribution and
    prints the breakdown plus a utilization waterfall; give a PATH to
    also write a Chrome/Perfetto trace JSON.  ``--scheduler``
    selects the cycle loop (event-driven wakeup scheduler by default,
    ``dense`` for the tick-everything reference), ``--max-cycles`` and
    ``--watchdog`` bound runaway and deadlocked simulations.
``bench [--quick] [--baseline PATH]``
    Simulator performance harness: run the benchmark registry, report
    wall-clock seconds / simulated cycles / cycles-per-second per
    benchmark, and write ``BENCH_<rev>.json``.  With ``--baseline``
    compare against a committed report and fail on regression.
``table5 | table6 | table7``
    Regenerate a paper table.
``figure7 PARAM``
    Run one Figure 7 sweep (stages, regs_per_stage, scalar_in,
    scalar_out, vector_in, vector_out).
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_info(args) -> int:
    from repro.arch.params import DEFAULT
    from repro.arch.power import max_chip_power
    from repro.eval import table5
    print(table5.render(table5.generate()))
    print(f"\ngrid: {DEFAULT.grid_cols}x{DEFAULT.grid_rows} "
          f"({DEFAULT.num_pcus} PCUs + {DEFAULT.num_pmus} PMUs), "
          f"{DEFAULT.num_ags} AGs, "
          f"{DEFAULT.num_coalescing_units} coalescing units")
    print(f"peak: {DEFAULT.peak_tflops:.1f} TFLOPS, "
          f"{DEFAULT.onchip_mb:.0f} MB on chip, "
          f"{DEFAULT.dram.peak_gbps:.1f} GB/s DRAM, "
          f"{max_chip_power():.1f} W max")
    return 0


def _cmd_list(args) -> int:
    from repro.apps import ALL_APPS
    for app in ALL_APPS:
        kind = "sparse" if app.sparse else "dense"
        print(f"{app.name:14s} {kind:7s} {app.display}")
    return 0


def _cmd_run(args) -> int:
    import numpy as np
    from repro.apps import get_app
    from repro.compiler import compile_program
    from repro.dhdl import format_program
    from repro.sim import Machine

    app = get_app(args.app)
    program = app.build(args.scale)
    expected = app.expected(program)
    started = time.time()
    compiled = compile_program(program)
    compile_s = time.time() - started
    if args.ir:
        print(format_program(compiled.dhdl))
        print()
    tracer = None
    if args.trace is not None:
        from repro.trace import RingTracer
        tracer = RingTracer(sample=args.trace_sample)
    started = time.time()
    machine = Machine(compiled.dhdl, compiled.config, tracer=tracer,
                      scheduler=args.scheduler,
                      max_cycles=args.max_cycles,
                      watchdog=args.watchdog)
    stats = machine.run()
    sim_s = time.time() - started
    results = {name: machine.result(name) for name in expected}
    app.check(program, results, expected)
    util = compiled.config.utilization()
    print(f"{app.display} ({args.scale}): VALIDATED against the "
          f"reference executor")
    print(f"  cycles: {stats.cycles}  "
          f"(compile {compile_s * 1e3:.0f} ms, "
          f"simulate {sim_s * 1e3:.0f} ms)")
    print(f"  fabric: {compiled.config.pcus_used} PCUs "
          f"({100 * util['pcu']:.1f}%), "
          f"{compiled.config.pmus_used} PMUs "
          f"({100 * util['pmu']:.1f}%), "
          f"{compiled.config.ags_used} AGs")
    dram = stats.dram
    print(f"  DRAM: {dram['reads']} read / {dram['writes']} write "
          f"bursts, {dram['row_hits']} row hits, "
          f"{dram['bytes'] / max(1, stats.cycles):.1f} B/cycle")
    print(f"  datapath: {stats.ops_executed} ops, "
          f"{stats.conflict_cycles} bank-conflict stalls, "
          f"{stats.fifo_stall_cycles} FIFO stalls")
    if args.floorplan:
        print()
        print(render_floorplan(compiled))
    if tracer is not None:
        from repro.trace import render_waterfall, write_chrome_trace
        report = machine.trace_report()
        print()
        print(report.render())
        print()
        print(render_waterfall(tracer, report))
        if args.trace:
            try:
                write_chrome_trace(args.trace, tracer, report)
            except OSError as err:
                print(f"cannot write trace to {args.trace}: {err}",
                      file=sys.stderr)
                return 1
            print(f"\nwrote Chrome trace to {args.trace} "
                  f"(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def render_floorplan(compiled) -> str:
    """ASCII floorplan: which unit each grid site hosts."""
    from repro.compiler.place_route import Fabric
    fabric: Fabric = compiled.fabric
    params = fabric.params
    owner = {}
    for name, sites in fabric.placed.items():
        for site in sites:
            owner[site] = name
    labels = {}
    legend = []
    for k, name in enumerate(sorted({n for n in fabric.placed})):
        tag = chr(ord("A") + k % 26)
        labels[name] = tag
        legend.append(f"  {tag} = {name}")
    lines = ["floorplan (PCU sites '.', PMU sites ',', placed units "
             "lettered):"]
    pcu_sites = set(fabric.free_pcus)
    for row in range(params.grid_rows):
        cells = []
        for col in range(params.grid_cols):
            site = (col, row)
            if site in owner:
                cells.append(labels[owner[site]])
            elif site in pcu_sites:
                cells.append(".")
            else:
                cells.append(",")
        lines.append(" ".join(cells))
    return "\n".join(lines + legend)


def _cmd_table(args) -> int:
    from repro.eval import table5, table6, table7
    if args.command == "table5":
        print(table5.render(table5.generate()))
    elif args.command == "table6":
        print(table6.render(table6.generate(scale=args.scale)))
        print()
        print(table6.render_control(
            table6.control_overhead(scale="tiny")))
    else:
        rows = table7.generate(scale=args.scale, validate=False)
        print(table7.render(rows))
    return 0


def _cmd_figure7(args) -> int:
    from repro.eval import figure7
    for key, (param, values) in figure7.SWEEPS.items():
        if param == args.param:
            curves = figure7.sweep(param, values, scale=args.scale)
            print(figure7.render(param, curves))
            print(f"\noverhead-minimising value: "
                  f"{figure7.best_value(curves)}")
            return 0
    print(f"unknown parameter {args.param!r}; one of: "
          f"{[p for p, _ in figure7.SWEEPS.values()]}",
          file=sys.stderr)
    return 2


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Plasticine (ISCA 2017) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="chip summary")
    sub.add_parser("list", help="benchmark registry")
    run = sub.add_parser("run", help="compile+simulate one benchmark")
    run.add_argument("app")
    run.add_argument("--scale", default="small",
                     choices=("tiny", "small"))
    run.add_argument("--floorplan", action="store_true")
    run.add_argument("--ir", action="store_true")
    run.add_argument("--trace", nargs="?", const="", default=None,
                     metavar="PATH",
                     help="record per-cycle stall attribution; with a "
                          "PATH also write Chrome/Perfetto trace JSON")
    run.add_argument("--trace-sample", type=_positive_int, default=1,
                     metavar="N",
                     help="record detailed events only every N cycles "
                          "(attribution stays exact)")
    run.add_argument("--scheduler", default="event",
                     choices=("event", "dense"),
                     help="cycle loop: event-driven wakeup scheduler "
                          "(default) or the dense reference loop")
    run.add_argument("--max-cycles", type=_positive_int,
                     default=20_000_000, metavar="N",
                     help="abort the simulation after N cycles")
    run.add_argument("--watchdog", type=_positive_int, default=50_000,
                     metavar="N",
                     help="raise DeadlockError after N cycles without "
                          "forward progress")
    bench = sub.add_parser(
        "bench", help="simulator performance harness")
    bench.add_argument("--scale", default="small",
                       choices=("tiny", "small"))
    bench.add_argument("--quick", action="store_true",
                       help="tiny scale, single repetition (CI mode)")
    bench.add_argument("--scheduler", default="event",
                       choices=("event", "dense"))
    bench.add_argument("--compare-dense", action="store_true",
                       help="also run the dense reference loop and "
                            "report the event-scheduler speedup")
    bench.add_argument("--repeat", type=_positive_int, default=3,
                       metavar="N",
                       help="timing repetitions per benchmark "
                            "(best-of-N)")
    bench.add_argument("--apps", nargs="*", metavar="APP",
                       help="subset of registry benchmarks")
    bench.add_argument("--out", default=".", metavar="DIR",
                       help="directory for BENCH_<rev>.json")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="compare against a committed report and "
                            "fail on >threshold cycles/sec regression "
                            "or any simulated-cycle-count change")
    bench.add_argument("--threshold", type=float, default=0.25,
                       metavar="F",
                       help="allowed fractional cycles/sec regression "
                            "vs the baseline (default 0.25)")
    for name in ("table5", "table6", "table7"):
        t = sub.add_parser(name, help=f"regenerate {name}")
        t.add_argument("--scale", default="small",
                       choices=("tiny", "small"))
    fig = sub.add_parser("figure7", help="run one Figure 7 sweep")
    fig.add_argument("param")
    fig.add_argument("--scale", default="small",
                     choices=("tiny", "small"))
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "bench":
        from repro.eval.bench import cmd_bench
        return cmd_bench(args)
    if args.command in ("table5", "table6", "table7"):
        return _cmd_table(args)
    if args.command == "figure7":
        return _cmd_figure7(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
