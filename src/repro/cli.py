"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Chip summary: parameters, area breakdown, peak numbers.
``list``
    The Table 4 benchmark registry.
``compile APP [--scale SCALE] [--out PATH]``
    Compile one benchmark to a frozen bitstream artifact (through the
    on-disk compile cache unless ``--no-cache``) and print its content
    hash; with ``--out`` also write the artifact JSON to a chosen path.
``run [APP] [--artifact PATH] [--scale SCALE] [--floorplan] [--ir]``
    Compile, cycle-simulate and validate one benchmark — or, with
    ``--artifact``, skip the compiler entirely and simulate a
    previously saved bitstream.  With ``--trace`` the simulator records
    per-cycle stall attribution and prints the breakdown plus a
    utilization waterfall; give a PATH to also write a Chrome/Perfetto
    trace JSON.  ``--scheduler`` selects the cycle loop (event-driven
    wakeup scheduler by default, ``dense`` for the tick-everything
    reference), ``--max-cycles`` and ``--watchdog`` bound runaway and
    deadlocked simulations.
``bench [--quick] [--baseline PATH] [--jobs N] [--batch]``
    Simulator performance harness: run the benchmark registry, report
    wall-clock seconds / simulated cycles / cycles-per-second per
    benchmark, and write ``BENCH_<rev>.json``.  With ``--baseline``
    compare against a committed report and fail on regression.
    ``--batch`` instead times ``Machine.run_batch`` on a
    Figure-7-style 78-instance grid against a sampled sequential
    estimate and (with ``--baseline benchmarks/batch_baseline.json``)
    enforces the committed minimum speedup — the CI ``batch-gate``
    job.  ``repro run --batch`` likewise simulates N timing variants
    (``--sweep stages=4,8,16 --sweep banks=4,16`` or an explicit
    ``--batch-params`` JSON list) of one compiled design in a single
    batched pass.
``table5 | table6 | table7``
    Regenerate a paper table.  ``--jobs N`` evaluates benchmarks on a
    process pool; compiles go through the artifact cache (``--cache-dir``
    to relocate it, ``--no-cache`` to disable).
``figure7 PARAM``
    Run one Figure 7 sweep (stages, regs_per_stage, scalar_in,
    scalar_out, vector_in, vector_out).
``serve [--port N] [--jobs N] [--queue-depth N] [--cache-dir DIR]``
    Run the async compile-and-simulate HTTP service (``repro.serve``):
    clients POST program specs, registry apps, or precompiled artifact
    hashes and get back SimStats, stall attribution, and trace URLs.
``loadtest [--requests N] [--concurrency N] [--spawn]``
    Replay a deterministic mix of concurrent requests against a server
    (or a self-spawned one with ``--spawn``) and report p50/p99
    latency, throughput, and coalesce/cache-hit rates.
``chaos [--seed N] [--scenarios M]``
    Run registry apps under seeded random fault plans
    (``repro.faults``): every scenario must end bit-correct (clean,
    degraded, or recovered) or with a typed, attributed FaultError —
    never a hang, never silent corruption.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_info(args) -> int:
    from repro.arch.params import DEFAULT
    from repro.arch.power import max_chip_power
    from repro.eval import table5
    print(table5.render(table5.generate()))
    print(f"\ngrid: {DEFAULT.grid_cols}x{DEFAULT.grid_rows} "
          f"({DEFAULT.num_pcus} PCUs + {DEFAULT.num_pmus} PMUs), "
          f"{DEFAULT.num_ags} AGs, "
          f"{DEFAULT.num_coalescing_units} coalescing units")
    print(f"peak: {DEFAULT.peak_tflops:.1f} TFLOPS, "
          f"{DEFAULT.onchip_mb:.0f} MB on chip, "
          f"{DEFAULT.dram.peak_gbps:.1f} GB/s DRAM, "
          f"{max_chip_power():.1f} W max")
    return 0


def _cmd_list(args) -> int:
    from repro.apps import ALL_APPS
    for app in ALL_APPS:
        kind = "sparse" if app.sparse else "dense"
        print(f"{app.name:14s} {kind:7s} {app.display}")
    return 0


def _cache_from(args):
    """The compile cache selected by --cache-dir / --no-cache."""
    from repro.bitstream.cache import open_cache
    return open_cache(getattr(args, "cache_dir", None),
                      enabled=not getattr(args, "no_cache", False))


def _cmd_compile(args) -> int:
    from repro.compiler.artifact import compile_app_cached

    started = time.time()
    artifact, outcome = compile_app_cached(args.app, args.scale,
                                           cache=_cache_from(args))
    wall_ms = (time.time() - started) * 1e3
    summary = artifact.summary()
    source = {"hit": "loaded from cache", "miss": "compiled and cached",
              "off": "compiled (cache disabled)"}[outcome]
    print(f"{args.app} ({args.scale}): {source} in {wall_ms:.0f} ms")
    print(f"  key:          {summary['key']}")
    print(f"  content hash: {summary['content_hash']}")
    print(f"  artifact:     {summary['bytes']} bytes, "
          f"{summary['leaves']} leaves, {summary['srams']} srams, "
          f"{summary['pcus_used']} PCUs / {summary['pmus_used']} PMUs")
    if args.out:
        path = artifact.save(args.out)
        print(f"  wrote {path}")
    return 0


def _cmd_run_artifact(args) -> int:
    from repro.apps import get_app
    from repro.bitstream import Bitstream

    artifact = Bitstream.load(args.artifact)
    if args.floorplan:
        print("--floorplan needs compiler internals; it is unavailable "
              "when running a saved artifact", file=sys.stderr)
        return 2
    if args.ir:
        from repro.dhdl import format_program
        print(format_program(artifact.dhdl))
        print()
    tracer = None
    if args.trace is not None:
        from repro.trace import RingTracer
        tracer = RingTracer(sample=args.trace_sample)
    started = time.time()
    machine = artifact.machine(tracer=tracer, scheduler=args.scheduler,
                               max_cycles=args.max_cycles,
                               watchdog=args.watchdog)
    stats = machine.run()
    sim_s = time.time() - started
    try:
        app = get_app(artifact.app)
    except KeyError:
        app = None
    verdict = "simulated (no registry app to validate against)"
    if app is not None:
        expected = app.expected(app.build(artifact.scale))
        results = {name: machine.result(name) for name in expected}
        app.check(artifact.dhdl, results, expected)
        verdict = "VALIDATED against the reference executor"
    util = artifact.config.utilization()
    print(f"{artifact.app} ({artifact.scale}) from {args.artifact}: "
          f"{verdict}")
    print(f"  cycles: {stats.cycles}  (simulate {sim_s * 1e3:.0f} ms, "
          f"hash {artifact.content_hash[:12]})")
    print(f"  fabric: {artifact.config.pcus_used} PCUs "
          f"({100 * util['pcu']:.1f}%), "
          f"{artifact.config.pmus_used} PMUs "
          f"({100 * util['pmu']:.1f}%), "
          f"{artifact.config.ags_used} AGs")
    if tracer is not None:
        from repro.trace import render_waterfall, write_chrome_trace
        report = machine.trace_report()
        print()
        print(report.render())
        print()
        print(render_waterfall(tracer, report))
        if args.trace:
            write_chrome_trace(args.trace, tracer, report)
            print(f"\nwrote Chrome trace to {args.trace}")
    return 0


def _parse_sweeps(sweeps) -> list:
    """``--sweep KEY=V1,V2,...`` flags -> cross-product override grid."""
    axes = []
    for text in sweeps:
        key, sep, values = text.partition("=")
        if not sep or not values:
            raise ValueError(
                f"--sweep wants KEY=V1,V2,..., got {text!r}")
        axes.append((key.strip(), [int(v) for v in values.split(",")]))
    grid = [{}]
    for key, vals in axes:
        grid = [{**point, key: v} for point in grid for v in vals]
    return grid


def _batch_params_from(args) -> list:
    """The per-instance override list selected by the batch flags."""
    import json as _json

    if args.batch_params:
        text = args.batch_params
        if text.startswith("@"):
            with open(text[1:]) as fh:
                text = fh.read()
        params = _json.loads(text)
        if not isinstance(params, list):
            raise ValueError("--batch-params wants a JSON list of "
                             "override dicts")
        return params
    if args.sweep:
        return _parse_sweeps(args.sweep)
    # default demo sweep: Figure 7a's stages axis
    return [{"stages": s} for s in range(4, 17)]


def _cmd_run_batch(args) -> int:
    """``repro run --batch``: one compile, N simulated instances."""
    from repro.apps import get_app
    from repro.bitstream import Bitstream
    from repro.compiler import compile_program
    from repro.sim import Machine

    try:
        params = _batch_params_from(args)
    except (ValueError, OSError) as err:
        print(f"repro run --batch: {err}", file=sys.stderr)
        return 2
    app = None
    started = time.time()
    if args.artifact:
        source = Bitstream.load(args.artifact)
        label = f"{source.app} ({source.scale}) from {args.artifact}"
    else:
        app = get_app(args.app)
        program = app.build(args.scale)
        source = compile_program(program)
        label = f"{app.display} ({args.scale})"
    compile_s = time.time() - started
    started = time.time()
    batch = Machine.run_batch(source, params, scheduler=args.scheduler)
    sim_s = time.time() - started
    validated = 0
    validatable = 0
    if app is not None:
        expected = app.expected(program)
        for inst in batch:
            if not inst.ok or "data" in inst.params:
                continue
            validatable += 1
            results = {name: inst.machine.result(name)
                       for name in expected}
            app.check(program, results, expected)
            validated += 1
    print(f"{label}: {len(batch)} instances, {batch.cohorts} "
          f"cohort(s), {batch.replayed} replayed")
    print(f"  compile {compile_s * 1e3:.0f} ms, batch simulate "
          f"{sim_s * 1e3:.0f} ms "
          f"({sim_s * 1e3 / max(1, len(batch)):.0f} ms/instance)")
    if app is not None:
        print(f"  outputs: {validated}/{validatable} instances "
              f"VALIDATED against the reference executor")
    print(f"  {'#':>3s} {'role':6s} {'cycles':>9s}  params")
    failures = 0
    for inst in batch:
        if inst.ok:
            detail = f"{inst.stats.cycles:9d}"
        else:
            failures += 1
            detail = f"{'ERROR':>9s}"
        compact = ", ".join(f"{k}={v}" for k, v in inst.params.items()
                            if k != "data") or "(as compiled)"
        if "data" in inst.params:
            compact += " +data"
        print(f"  {inst.index:3d} {inst.role:6s} {detail}  {compact}")
        if not inst.ok:
            print(f"      {inst.error}")
    return 1 if failures else 0


def _cmd_run_multi(args) -> int:
    from repro.errors import MappingError
    from repro.tenancy import co_run

    priorities = args.priority
    if priorities is not None and len(priorities) != len(args.multi):
        print(f"repro run --multi: --priority wants one weight per "
              f"app ({len(args.multi)} apps, {len(priorities)} "
              f"weights)", file=sys.stderr)
        return 2
    started = time.time()
    try:
        res = co_run(args.multi, scale=args.scale,
                     watchdog=args.watchdog,
                     max_cycles=args.max_cycles,
                     priorities=priorities,
                     bandwidth_aware=args.bandwidth_aware)
    except MappingError as err:
        print(f"repro run --multi: {err}", file=sys.stderr)
        return 1
    elapsed = time.time() - started
    n = len(res.tenants)
    print(f"co-resident fabric: {n} tenants, "
          f"{res.fabric_cycles} cycles ({elapsed * 1e3:.0f} ms)")
    print(f"  {'tenant':14s} {'region':>10s} {'prio':>4s} "
          f"{'cycles':>8s} {'dram B/cyc':>10s}  validated")
    for t in res.tenants:
        if t.region:
            col0, row0, cols, rows = t.region
            region = f"{cols}x{rows}@({col0},{row0})"
        else:
            region = "full"
        bpc = t.stats.dram.get("bytes", 0) / max(1, t.stats.cycles)
        print(f"  {t.name:14s} {region:>10s} {t.priority:4d} "
              f"{t.stats.cycles:8d} {bpc:10.1f}  "
              f"{'yes' if t.validated else 'no'}")
    util = ", ".join(f"{ch}={v['util'] * 100:.1f}%"
                     for ch, v in sorted(res.channel_util.items()))
    print(f"  shared DRAM channel utilization: {util}")
    for t in res.tenants:
        share = ", ".join(f"{ch}={v['util'] * 100:.1f}%"
                          for ch, v in sorted(t.channel_util.items()))
        print(f"    {t.name}: {share}")
    if res.qos and res.qos.get("weighted"):
        print("  QoS arbitration (weighted FR-FCFS):")
        for name, entry in sorted(res.qos["tenants"].items()):
            print(f"    {name}: weight {entry['priority']}, "
                  f"won {entry['arb_won']} / deferred "
                  f"{entry['arb_deferred']} contended grants")
    bandwidth = (res.pack_report or {}).get("bandwidth")
    if bandwidth:
        classes = ", ".join(
            f"{name}={prof['class']}"
            for name, prof in sorted(bandwidth["tenants"].items()))
        print(f"  bandwidth classes: {classes}")
        demand = bandwidth["predicted_channel_demand"]
        peak = max(v["fraction_of_peak"] for v in demand.values())
        print(f"  predicted channel demand: "
              f"{100 * peak:.1f}% of peak per channel")
    return 0


def _cmd_run(args) -> int:
    from repro.apps import get_app
    from repro.compiler import compile_program
    from repro.dhdl import format_program
    from repro.sim import Machine

    if args.multi:
        return _cmd_run_multi(args)
    if args.batch:
        if not args.app and not args.artifact:
            print("repro run --batch: give an APP name or --artifact "
                  "PATH", file=sys.stderr)
            return 2
        return _cmd_run_batch(args)
    if args.artifact:
        return _cmd_run_artifact(args)
    if not args.app:
        print("repro run: give an APP name or --artifact PATH",
              file=sys.stderr)
        return 2
    app = get_app(args.app)
    program = app.build(args.scale)
    expected = app.expected(program)
    started = time.time()
    compiled = compile_program(program)
    compile_s = time.time() - started
    if args.ir:
        print(format_program(compiled.dhdl))
        print()
    tracer = None
    if args.trace is not None:
        from repro.trace import RingTracer
        tracer = RingTracer(sample=args.trace_sample)
    started = time.time()
    machine = Machine(compiled.dhdl, compiled.config, tracer=tracer,
                      scheduler=args.scheduler,
                      max_cycles=args.max_cycles,
                      watchdog=args.watchdog)
    stats = machine.run()
    sim_s = time.time() - started
    results = {name: machine.result(name) for name in expected}
    app.check(program, results, expected)
    util = compiled.config.utilization()
    print(f"{app.display} ({args.scale}): VALIDATED against the "
          f"reference executor")
    print(f"  cycles: {stats.cycles}  "
          f"(compile {compile_s * 1e3:.0f} ms, "
          f"simulate {sim_s * 1e3:.0f} ms)")
    print(f"  fabric: {compiled.config.pcus_used} PCUs "
          f"({100 * util['pcu']:.1f}%), "
          f"{compiled.config.pmus_used} PMUs "
          f"({100 * util['pmu']:.1f}%), "
          f"{compiled.config.ags_used} AGs")
    dram = stats.dram
    print(f"  DRAM: {dram['reads']} read / {dram['writes']} write "
          f"bursts, {dram['row_hits']} row hits, "
          f"{dram['bytes'] / max(1, stats.cycles):.1f} B/cycle")
    print(f"  datapath: {stats.ops_executed} ops, "
          f"{stats.conflict_cycles} bank-conflict stalls, "
          f"{stats.fifo_stall_cycles} FIFO stalls")
    if args.floorplan:
        print()
        print(render_floorplan(compiled))
    if tracer is not None:
        from repro.trace import render_waterfall, write_chrome_trace
        report = machine.trace_report()
        print()
        print(report.render())
        print()
        print(render_waterfall(tracer, report))
        if args.trace:
            try:
                write_chrome_trace(args.trace, tracer, report)
            except OSError as err:
                print(f"cannot write trace to {args.trace}: {err}",
                      file=sys.stderr)
                return 1
            print(f"\nwrote Chrome trace to {args.trace} "
                  f"(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def render_floorplan(compiled) -> str:
    """ASCII floorplan: which unit each grid site hosts."""
    from repro.compiler.place_route import Fabric
    fabric: Fabric = compiled.fabric
    params = fabric.params
    owner = {}
    for name, sites in fabric.placed.items():
        for site in sites:
            owner[site] = name
    labels = {}
    legend = []
    for k, name in enumerate(sorted({n for n in fabric.placed})):
        tag = chr(ord("A") + k % 26)
        labels[name] = tag
        legend.append(f"  {tag} = {name}")
    lines = ["floorplan (PCU sites '.', PMU sites ',', placed units "
             "lettered):"]
    pcu_sites = set(fabric.free_pcus)
    for row in range(params.grid_rows):
        cells = []
        for col in range(params.grid_cols):
            site = (col, row)
            if site in owner:
                cells.append(labels[owner[site]])
            elif site in pcu_sites:
                cells.append(".")
            else:
                cells.append(",")
        lines.append(" ".join(cells))
    return "\n".join(lines + legend)


def _cmd_table(args) -> int:
    from repro.eval import table5, table6, table7
    from repro.eval.driver import CacheTally
    if args.command == "table5":
        print(table5.render(table5.generate()))
        return 0
    cache = _cache_from(args)
    tally = CacheTally()
    if args.command == "table6":
        print(table6.render(table6.generate(
            scale=args.scale, jobs=args.jobs, cache=cache,
            tally=tally)))
        print()
        print(table6.render_control(table6.control_overhead(
            scale="tiny", jobs=args.jobs, cache=cache, tally=tally)))
    else:
        rows = table7.generate(scale=args.scale, validate=False,
                               jobs=args.jobs, cache=cache, tally=tally)
        print(table7.render(rows))
    if tally.lookups:
        print(tally.summary())
    return 0


def _cmd_figure7(args) -> int:
    from repro.eval import figure7
    from repro.eval.driver import CacheTally
    if args.simulate:
        values = figure7.SIM_SWEEPS.get(args.param)
        if values is None:
            print(f"cannot sweep {args.param!r} in the simulator; "
                  f"one of: {sorted(figure7.SIM_SWEEPS)}",
                  file=sys.stderr)
            return 2
        result = figure7.sim_sweep(args.param, values, app=args.app,
                                   scale=args.scale,
                                   cache=_cache_from(args))
        print(figure7.render_sim(result))
        return 0
    for key, (param, values) in figure7.SWEEPS.items():
        if param == args.param:
            tally = CacheTally()
            curves = figure7.sweep(param, values, scale=args.scale,
                                   jobs=args.jobs,
                                   cache=_cache_from(args),
                                   tally=tally)
            print(figure7.render(param, curves))
            print(f"\noverhead-minimising value: "
                  f"{figure7.best_value(curves)}")
            if tally.lookups:
                print(tally.summary())
            return 0
    print(f"unknown parameter {args.param!r}; one of: "
          f"{[p for p, _ in figure7.SWEEPS.values()]}",
          file=sys.stderr)
    return 2


def _cmd_fuzz(args) -> int:
    from repro.fuzz import replay_corpus, run_campaign
    campaign = run_campaign(args.seed, args.runs, shrink=args.shrink,
                            save_dir=args.save_failures,
                            progress=print,
                            batched=args.batch_oracle)
    print(campaign.summary())
    status = 1 if campaign.divergences else 0
    if args.corpus is not None:
        replayed = replay_corpus(args.corpus)
        bad = [(p, r) for p, r in replayed if not r.ok]
        print(f"corpus: {len(replayed)} specs replayed, "
              f"{len(bad)} failing")
        for path, result in bad:
            print(f"  {path}: {result.describe()}")
        if bad:
            status = 1
    return status


def _cmd_serve(args) -> int:
    from repro.serve import ReproService, ServeConfig, run_server
    config = ServeConfig(
        jobs=args.jobs, queue_depth=args.queue_depth,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        data_dir=args.data_dir, timeout_s=args.timeout,
        result_cache=args.result_cache, chaos=args.chaos)
    return run_server(ReproService(config), host=args.host,
                      port=args.port)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Plasticine (ISCA 2017) reproduction toolkit")
    def add_cache_args(cmd, jobs: bool = True):
        if jobs:
            cmd.add_argument("--jobs", type=_positive_int, default=1,
                             metavar="N",
                             help="evaluate benchmarks on N worker "
                                  "processes (results are identical to "
                                  "--jobs=1)")
        cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="compile-cache directory (default "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
        cmd.add_argument("--no-cache", action="store_true",
                         help="always compile; never read or write the "
                              "artifact cache")

    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="chip summary")
    sub.add_parser("list", help="benchmark registry")
    comp = sub.add_parser(
        "compile", help="compile one benchmark to a bitstream artifact")
    comp.add_argument("app")
    comp.add_argument("--scale", default="small",
                      choices=("tiny", "small"))
    comp.add_argument("--out", default=None, metavar="PATH",
                      help="also write the artifact JSON here")
    add_cache_args(comp, jobs=False)
    run = sub.add_parser("run", help="compile+simulate one benchmark")
    run.add_argument("app", nargs="?", default=None)
    run.add_argument("--multi", nargs="+", default=None, metavar="APP",
                     help="co-simulate several benchmarks as tenants "
                          "of one shared fabric (disjoint regions, "
                          "shared DRAM channels, per-tenant stats)")
    run.add_argument("--priority", nargs="+", type=_positive_int,
                     default=None, metavar="W",
                     help="with --multi: one QoS weight per app for "
                          "the shared DRAM arbitration (all-equal "
                          "weights run plain FR-FCFS bit-identically)")
    run.add_argument("--bandwidth-aware", action="store_true",
                     help="with --multi: profile each app solo, "
                          "classify compute- vs memory-bound, and "
                          "interleave the classes when packing regions")
    run.add_argument("--artifact", default=None, metavar="PATH",
                     help="simulate a saved bitstream artifact instead "
                          "of compiling")
    run.add_argument("--scale", default="small",
                     choices=("tiny", "small"))
    run.add_argument("--floorplan", action="store_true")
    run.add_argument("--ir", action="store_true")
    run.add_argument("--trace", nargs="?", const="", default=None,
                     metavar="PATH",
                     help="record per-cycle stall attribution; with a "
                          "PATH also write Chrome/Perfetto trace JSON")
    run.add_argument("--trace-sample", type=_positive_int, default=1,
                     metavar="N",
                     help="record detailed events only every N cycles "
                          "(attribution stays exact)")
    run.add_argument("--batch", action="store_true",
                     help="simulate N parameter variants of one "
                          "compiled design in a single batched pass "
                          "(see --sweep / --batch-params)")
    run.add_argument("--sweep", action="append", default=[],
                     metavar="KEY=V1,V2,...",
                     help="with --batch: sweep one timing parameter "
                          "(repeatable; flags cross-product)")
    run.add_argument("--batch-params", default=None, metavar="JSON",
                     help="with --batch: explicit JSON list of "
                          "per-instance override dicts (or @FILE)")
    run.add_argument("--scheduler", default="event",
                     choices=("event", "dense"),
                     help="cycle loop: event-driven wakeup scheduler "
                          "(default) or the dense reference loop")
    run.add_argument("--max-cycles", type=_positive_int,
                     default=20_000_000, metavar="N",
                     help="abort the simulation after N cycles")
    run.add_argument("--watchdog", type=_positive_int, default=50_000,
                     metavar="N",
                     help="raise DeadlockError after N cycles without "
                          "forward progress")
    bench = sub.add_parser(
        "bench", help="simulator performance harness")
    bench.add_argument("--multi", action="store_true",
                       help="benchmark co-resident multi-tenancy: solo "
                            "vs shared-fabric cycles, aggregate "
                            "throughput and solo-equivalence (gate "
                            "with --baseline "
                            "benchmarks/multi_baseline.json)")
    bench.add_argument("--batch", action="store_true",
                       help="benchmark Machine.run_batch on a Figure-7 "
                            "style 78-instance grid instead of the "
                            "registry loop; with --baseline, gate on "
                            "benchmarks/batch_baseline.json")
    bench.add_argument("--qos-baseline", default=None, metavar="PATH",
                       help="with --multi: also run the QoS benchmark "
                            "(high-priority tenant among memory-bound "
                            "riders, weighted vs unweighted DRAM "
                            "arbitration) and gate against e.g. "
                            "benchmarks/qos_baseline.json")
    bench.add_argument("--scale", default="small",
                       choices=("tiny", "small"))
    bench.add_argument("--quick", action="store_true",
                       help="tiny scale, single repetition (CI mode)")
    bench.add_argument("--scheduler", default="event",
                       choices=("event", "dense"))
    bench.add_argument("--compare-dense", action="store_true",
                       help="also run the dense reference loop and "
                            "report the event-scheduler speedup")
    bench.add_argument("--repeat", type=_positive_int, default=3,
                       metavar="N",
                       help="timing repetitions per benchmark "
                            "(best-of-N)")
    bench.add_argument("--apps", nargs="*", metavar="APP",
                       help="subset of registry benchmarks")
    bench.add_argument("--out", default=".", metavar="DIR",
                       help="directory for BENCH_<rev>.json")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="compare against a committed report and "
                            "fail on >threshold cycles/sec regression "
                            "or any simulated-cycle-count change")
    bench.add_argument("--threshold", type=float, default=0.25,
                       metavar="F",
                       help="allowed fractional cycles/sec regression "
                            "vs the baseline (default 0.25)")
    bench.add_argument("--jobs", type=_positive_int, default=1,
                       metavar="N",
                       help="time benchmarks on N worker processes "
                            "(cycles identical; wall times then share "
                            "cores)")
    bench.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="opt-in compile cache (off by default so "
                            "compile_s stays meaningful)")
    for name in ("table5", "table6", "table7"):
        t = sub.add_parser(name, help=f"regenerate {name}")
        t.add_argument("--scale", default="small",
                       choices=("tiny", "small"))
        if name != "table5":
            add_cache_args(t)
    fig = sub.add_parser("figure7", help="run one Figure 7 sweep")
    fig.add_argument("param")
    fig.add_argument("--scale", default="small",
                     choices=("tiny", "small"))
    fig.add_argument("--simulate", action="store_true",
                     help="sweep a *timing* parameter through the "
                          "batched cycle simulator (cycles curve) "
                          "instead of the area model")
    fig.add_argument("--app", default="gemm", metavar="APP",
                     help="--simulate: which registry benchmark to "
                          "sweep (default gemm)")
    add_cache_args(fig)
    fuzz = sub.add_parser(
        "fuzz", help="differential-fuzz the executors (see repro.fuzz)")
    fuzz.add_argument("--seed", type=int, default=0, metavar="N",
                      help="first campaign seed (default 0)")
    fuzz.add_argument("--runs", type=_positive_int, default=50,
                      metavar="N",
                      help="number of consecutive seeds to fuzz "
                           "(default 50)")
    fuzz.add_argument("--batch-oracle", action="store_true",
                      help="also pin every passing spec batch-vs-"
                           "sequential (Machine.run_batch under timing "
                           "variants must match solo runs bit-for-bit)")
    fuzz.add_argument("--shrink", action="store_true",
                      help="minimize each failing program before "
                           "reporting it")
    fuzz.add_argument("--save-failures", default=None, metavar="DIR",
                      help="write failing specs (and .min.json shrunk "
                           "twins with --shrink) into DIR")
    fuzz.add_argument("--corpus", nargs="?", const="tests/fuzz/corpus",
                      default=None, metavar="DIR",
                      help="also replay the checked-in regression "
                           "corpus (default dir: tests/fuzz/corpus)")
    serve = sub.add_parser(
        "serve", help="run the compile-and-simulate HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--jobs", type=_positive_int, default=2,
                       metavar="N",
                       help="simulator worker processes (default 2)")
    serve.add_argument("--queue-depth", type=_positive_int, default=64,
                       metavar="N",
                       help="jobs allowed to wait for a worker before "
                            "new submissions get 429 (default 64)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared compile cache (default "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    serve.add_argument("--no-cache", action="store_true",
                       help="compile every miss from scratch; never "
                            "touch the artifact cache")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="artifact + trace store (default "
                            "<cache root>/serve)")
    serve.add_argument("--timeout", type=float, default=300.0,
                       metavar="S",
                       help="per-job wall-clock timeout in seconds "
                            "(default 300)")
    serve.add_argument("--result-cache", type=int, default=256,
                       metavar="N",
                       help="completed {job, params} results to keep "
                            "for exact replay (0 disables; default "
                            "256)")
    serve.add_argument("--chaos", action="store_true",
                       help="enable POST /chaos/kill (SIGKILL one "
                            "pool worker; fault-injection testing)")
    load = sub.add_parser(
        "loadtest", help="replay concurrent requests against a server")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=8642)
    load.add_argument("--spawn", action="store_true",
                      help="fork a `repro serve` subprocess on a free "
                           "port for the duration of the run")
    load.add_argument("--requests", type=_positive_int, default=200,
                      metavar="N",
                      help="total requests to replay (default 200)")
    load.add_argument("--concurrency", type=_positive_int, default=16,
                      metavar="N",
                      help="concurrent client connections (default 16)")
    load.add_argument("--unique", type=_positive_int, default=None,
                      metavar="N",
                      help="distinct specs in the mix (default: "
                           "requests/5; the rest are duplicates that "
                           "exercise coalescing and caches)")
    load.add_argument("--seed", type=int, default=0, metavar="N",
                      help="request-mix seed (default 0)")
    load.add_argument("--trace-every", type=int, default=0,
                      metavar="N",
                      help="request a stall-attribution trace on every "
                           "N-th request (0 disables)")
    load.add_argument("--multi-every", type=int, default=0,
                      metavar="N",
                      help="mix in multi-tenant work: every N-th "
                           "request is a POST /multi pair, with a "
                           "coschedule-opted app job between (0 "
                           "disables)")
    load.add_argument("--priority-every", type=int, default=0,
                      metavar="N",
                      help="with --multi-every: every N-th multi-"
                           "tenant body claims an elevated QoS "
                           "priority, exercising weighted DRAM "
                           "arbitration under load (0 disables)")
    load.add_argument("--kill-every", type=int, default=0,
                      metavar="N",
                      help="chaos: SIGKILL a server pool worker after "
                           "every N-th request (needs a --chaos "
                           "server, or --spawn which then enables "
                           "it; 0 disables)")
    load.add_argument("--jobs", type=_positive_int, default=2,
                      metavar="N", help="--spawn: server worker count")
    load.add_argument("--queue-depth", type=_positive_int, default=64,
                      metavar="N", help="--spawn: server queue depth")
    load.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="--spawn: server compile cache (default: a "
                           "throwaway temp dir)")
    load.add_argument("--data-dir", default=None, metavar="DIR",
                      help="--spawn: server artifact store (default: a "
                           "throwaway temp dir)")
    load.add_argument("--out", default=None, metavar="PATH",
                      help="also write the JSON report here")
    load.add_argument("--baseline", default=None, metavar="PATH",
                      help="compare against a committed report "
                           "(e.g. benchmarks/serve_baseline.json) and "
                           "fail on regression")
    load.add_argument("--threshold", type=float, default=0.5,
                      metavar="F",
                      help="allowed fractional latency/throughput "
                           "regression vs the baseline (default 0.5)")
    chaos = sub.add_parser(
        "chaos", help="run seeded random fault-injection scenarios")
    chaos.add_argument("--seed", type=int, default=0, metavar="N",
                       help="campaign seed (default 0); the same seed "
                            "replays the same scenarios")
    chaos.add_argument("--scenarios", type=_positive_int, default=25,
                       metavar="M",
                       help="scenarios to run (default 25)")
    chaos.add_argument("--scale", default="tiny",
                       help="registry-app scale (default tiny)")
    chaos.add_argument("--multi-every", type=int, default=10,
                       metavar="K",
                       help="every K-th scenario is multi-tenant: a "
                            "unit failure in one tenant of a packed "
                            "fabric, recovered by migrating the "
                            "tenant (0 disables; default 10)")
    chaos.add_argument("--out", default=None, metavar="PATH",
                       help="also write the JSON report here")
    chaos.add_argument("--verbose", action="store_true",
                       help="print each scenario as it classifies")
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "bench":
        from repro.eval.bench import cmd_bench
        return cmd_bench(args)
    if args.command in ("table5", "table6", "table7"):
        return _cmd_table(args)
    if args.command == "figure7":
        return _cmd_figure7(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        from repro.eval.loadtest import cmd_loadtest
        return cmd_loadtest(args)
    if args.command == "chaos":
        from repro.faults.chaos import cmd_chaos
        return cmd_chaos(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
