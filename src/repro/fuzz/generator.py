"""Seeded generation of well-typed random pattern programs.

The generator emits *specs*: small JSON-serializable dicts that fully
determine one program — step kinds, domain sizes, tile overrides, par
factors, expression seeds, data seeds.  :func:`build_program` rebuilds
the identical :class:`~repro.patterns.program.Program` (same symbolic
structure, same input data) from a spec on any machine, which is what
makes shrinking and corpus replay possible.

Coverage (mirrors Table 1 of the paper plus the repo's extensions):

* ``map``     — 1-d elementwise Map with a random expression tree over
                1..2 input arrays, vectorised ``par`` ways; its output
                re-enters the operand pool so later steps chain on it
                (producer/consumer edges, double buffering);
* ``map2d``   — 2-d Map with an optional explicit tile override;
* ``fold``    — full reduction with a random associative combine
                (sum/max/min), optional outer-loop unrolling;
* ``map_fold``— nested Map{Fold} row reduction (the GEMM shape);
* ``segfold`` — CSR-style segmented reduction whose inner Fold bounds
                are *data-dependent* expressions ``ptr[i] .. ptr[i+1]``;
* ``filter``  — FlatMap with a dynamic-length output, optionally
                consumed by a Fold over ``Dyn(count)`` (the BFS shape);
* ``hash_reduce`` — dense keyed reduction with an affine-mod key;
* ``scatter`` — random writes through a bijective affine index (no
                collision-order dependence, so results stay exact);
* ``loop``    — a sequential outer Loop re-running a recurrence map
                ``trip`` times (the LogReg/PageRank shape).

Programs compose 1..4 steps, so cross-step interactions (dependency
edges, buffer credits, scheduler overlap) are exercised, not just
isolated patterns.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.errors import PatternError
from repro.patterns import Dyn, Fold, Program
from repro.patterns import expr as E

SPEC_VERSION = 1

#: generation-time bounds — small enough to simulate in well under a
#: second, large enough to cross tile boundaries (tile_words=128)
_SIZES_1D = (48, 96, 128, 160, 256, 384)
_PARS = (1, 4, 8, 16)

_FLOAT_OPS = ("add", "sub", "mul", "min", "max", "select", "abs")


# ---------------------------------------------------------------------------
# Expression trees
# ---------------------------------------------------------------------------


def _rand_expr(rng: np.random.Generator, operands, depth: int) -> E.Expr:
    """A random float32 expression tree over the operand makers.

    Ops are restricted to the overflow-safe subset (+, -, *, min, max,
    select, abs) and constants to [-1.5, 1.5]: the executor evaluates in
    float64-then-round-to-float32 while the simulator datapath does the
    same, so keeping magnitudes moderate keeps legitimate float
    reassociation differences within the oracle's tolerance.
    """
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.75:
            return operands[int(rng.integers(len(operands)))]()
        return E.wrap(float(np.float32(rng.uniform(-1.5, 1.5))))
    op = _FLOAT_OPS[int(rng.integers(len(_FLOAT_OPS)))]
    lhs = _rand_expr(rng, operands, depth - 1)
    if op == "abs":
        return E.absolute(lhs)
    rhs = _rand_expr(rng, operands, depth - 1)
    if op == "min":
        return E.minimum(lhs, rhs)
    if op == "max":
        return E.maximum(lhs, rhs)
    if op == "select":
        return E.select(lhs > rhs, lhs, rhs * 0.5)
    return E.BinOp(op, lhs, rhs)


def _data(seed: int, shape, lo=-2.0, hi=2.0) -> np.ndarray:
    """Deterministic float32 input data for one array."""
    rng = np.random.default_rng(seed)
    return rng.uniform(lo, hi, shape).astype(np.float32)


# ---------------------------------------------------------------------------
# Spec generation
# ---------------------------------------------------------------------------

_KINDS = ("map", "map2d", "fold", "map_fold", "segfold", "filter",
          "hash_reduce", "scatter", "loop")
#: relative generation weight per kind (chaining-friendly maps dominate)
_WEIGHTS = (30, 12, 14, 10, 8, 10, 6, 4, 6)


def gen_spec(seed: int) -> dict:
    """Generate one random program spec from a campaign seed."""
    rng = np.random.default_rng(np.random.SeedSequence([0xF022, seed]))
    n = int(rng.choice(_SIZES_1D))
    num_steps = int(rng.integers(1, 5))
    weights = np.asarray(_WEIGHTS, dtype=float)
    weights /= weights.sum()
    steps = []
    chained = 1  # arrays available in the 1-d operand pool
    for k in range(num_steps):
        kind = str(rng.choice(_KINDS, p=weights))
        step = _gen_step(rng, kind, n, chained)
        if step["kind"] == "map":
            chained += 1
        steps.append(step)
    return {"version": SPEC_VERSION, "seed": int(seed), "n": n,
            "steps": steps}


def _gen_step(rng: np.random.Generator, kind: str, n: int,
              chained: int) -> dict:
    eseed = int(rng.integers(0, 2 ** 31))
    dseed = int(rng.integers(0, 2 ** 31))
    par = int(rng.choice(_PARS))
    if kind == "map":
        return {"kind": "map", "reads": int(rng.integers(1, 3)),
                "depth": int(rng.integers(1, 4)), "expr_seed": eseed,
                "data_seed": dseed, "par": par}
    if kind == "map2d":
        rows = int(rng.choice([12, 24, 48]))
        cols = int(rng.choice([16, 32, 64]))
        tile = None
        if rng.random() < 0.5:
            tile = [int(rng.choice([4, 8, 12])), int(rng.choice([8, 16]))]
        return {"kind": "map2d", "rows": rows, "cols": cols,
                "tile": tile, "par": [1, min(par, 16)],
                "depth": int(rng.integers(1, 3)), "expr_seed": eseed,
                "data_seed": dseed}
    if kind == "fold":
        return {"kind": "fold",
                "combine": str(rng.choice(["sum", "max", "min"])),
                "depth": int(rng.integers(1, 3)), "expr_seed": eseed,
                "data_seed": dseed, "par": par,
                "outer": int(rng.choice([1, 1, 2]))}
    if kind == "map_fold":
        return {"kind": "map_fold", "rows": int(rng.choice([8, 16, 32])),
                "cols": int(rng.choice([16, 32, 64])),
                "inner_par": int(rng.choice([1, 8, 16])),
                "depth": int(rng.integers(1, 3)), "expr_seed": eseed,
                "data_seed": dseed}
    if kind == "segfold":
        return {"kind": "segfold", "rows": int(rng.choice([8, 16, 24])),
                "mean_seg": int(rng.choice([2, 4, 8])),
                "depth": int(rng.integers(1, 3)), "expr_seed": eseed,
                "data_seed": dseed}
    if kind == "filter":
        return {"kind": "filter",
                "threshold": float(np.float32(rng.uniform(-1.5, 1.5))),
                "par": par, "consume": bool(rng.random() < 0.5),
                "data_seed": dseed}
    if kind == "hash_reduce":
        bins = int(rng.choice([4, 8, 16]))
        return {"kind": "hash_reduce", "bins": bins,
                "stride": int(rng.choice([1, 3, 5, 7])),
                "offset": int(rng.integers(0, bins)),
                "depth": int(rng.integers(1, 3)), "expr_seed": eseed,
                "data_seed": dseed, "par": par}
    if kind == "scatter":
        m = int(rng.choice([32, 64, 128]))
        # stride coprime with m (m is a power of two -> any odd works):
        # the index map is a bijection, so results don't depend on
        # collision order
        return {"kind": "scatter", "m": m,
                "stride": int(rng.choice([1, 3, 5, 7, 9])),
                "offset": int(rng.integers(0, m)),
                "depth": int(rng.integers(1, 3)), "expr_seed": eseed,
                "data_seed": dseed}
    if kind == "loop":
        return {"kind": "loop", "trip": int(rng.choice([2, 3, 4])),
                "decay": float(np.float32(rng.uniform(0.2, 0.8))),
                "par": par, "data_seed": dseed}
    raise ValueError(f"unknown step kind {kind!r}")


# ---------------------------------------------------------------------------
# Spec -> Program
# ---------------------------------------------------------------------------


def spec_name(spec: dict) -> str:
    """Deterministic program name for a spec."""
    return f"fuzz_{spec.get('seed', 0)}"


def build_program(spec: dict) -> Tuple[Program, List[str]]:
    """Deterministically rebuild ``(program, output_names)`` from a spec.

    Validates the spec first (:mod:`repro.fuzz.validate`), so a
    malformed document fails here with field-level
    :class:`~repro.fuzz.validate.SpecError` paths instead of deep in
    the compiler.  :class:`~repro.fuzz.validate.InvalidSpecError` is a
    :class:`~repro.errors.PatternError`, so shrink candidates that
    mutate a spec out of the schema are treated as non-reproducing.
    """
    from repro.fuzz.validate import check_spec
    check_spec(spec)
    n = int(spec["n"])
    program = Program(spec_name(spec))
    outputs: List[str] = []
    #: 1-d float arrays of length n usable as chained operands
    pool = []
    base = program.input("in0", (n,),
                         data=_data(spec.get("seed", 0) * 2 + 1, n))
    pool.append(base)
    for k, step in enumerate(spec["steps"]):
        _build_step(program, step, k, n, pool, outputs)
    if not outputs:
        raise PatternError("spec produced no outputs")
    return program, outputs


def _pool_reads(program: Program, step: dict, k: int, n: int, pool,
                count: int):
    """Pick ``count`` operand arrays: reuse pool arrays first (chaining),
    then declare fresh inputs with data from the step's data seed."""
    picks = []
    rng = np.random.default_rng(step["data_seed"])
    for r in range(count):
        if pool and rng.random() < 0.6:
            picks.append(pool[int(rng.integers(len(pool)))])
        else:
            fresh = program.input(f"in{k}_{r}", (n,),
                                  data=_data(step["data_seed"] + r, n))
            pool.append(fresh)
            picks.append(fresh)
    return picks


def _build_step(program: Program, step: dict, k: int, n: int, pool,
                outputs: List[str]) -> None:
    kind = step["kind"]
    if kind == "map":
        reads = _pool_reads(program, step, k, n, pool,
                            int(step["reads"]))
        out = program.output(f"out{k}", (n,))
        erng = np.random.default_rng(step["expr_seed"])

        def body(i, reads=reads, erng=erng, depth=int(step["depth"])):
            makers = [lambda a=a: a[i] for a in reads]
            return _rand_expr(erng, makers, depth)

        program.map(f"map{k}", out, n, body).set_par(
            int(step["par"]))
        pool.append(out)
        outputs.append(out.name)
        return
    if kind == "map2d":
        rows, cols = int(step["rows"]), int(step["cols"])
        m = program.input(f"mat{k}", (rows, cols),
                          data=_data(step["data_seed"], (rows, cols)))
        out = program.output(f"out{k}", (rows, cols))
        erng = np.random.default_rng(step["expr_seed"])
        depth = int(step["depth"])

        def body2(i, j, m=m, erng=erng, depth=depth):
            makers = [lambda: m[i, j]]
            return _rand_expr(erng, makers, depth)

        built = program.map(f"map2d{k}", out, (rows, cols), body2)
        built.set_par(*[int(p) for p in step["par"]])
        if step.get("tile"):
            built.tile = tuple(int(t) for t in step["tile"])
        outputs.append(out.name)
        return
    if kind == "fold":
        (src,) = _pool_reads(program, step, k, n, pool, 1)
        out = program.output(f"out{k}")
        combine = step["combine"]
        if combine == "sum":
            init, comb = 0.0, (lambda a, b: a + b)
        elif combine == "max":
            init, comb = -1e30, (lambda a, b: E.maximum(a, b))
        else:
            init, comb = 1e30, (lambda a, b: E.minimum(a, b))
        erng = np.random.default_rng(step["expr_seed"])
        depth = int(step["depth"])

        def fbody(i, src=src, erng=erng, depth=depth):
            return _rand_expr(erng, [lambda: src[i]], depth)

        program.fold(f"fold{k}", out, n, init, fbody, comb).set_par(
            int(step["par"]), outer=int(step["outer"]))
        outputs.append(out.name)
        return
    if kind == "map_fold":
        rows, cols = int(step["rows"]), int(step["cols"])
        m = program.input(f"mat{k}", (rows, cols),
                          data=_data(step["data_seed"], (rows, cols)))
        out = program.output(f"out{k}", (rows,))
        erng = np.random.default_rng(step["expr_seed"])
        depth = int(step["depth"])

        def rowred(i, m=m, cols=cols, erng=erng, depth=depth):
            return Fold(cols, 0.0,
                        lambda j: _rand_expr(erng, [lambda: m[i, j]],
                                             depth),
                        lambda a, b: a + b)

        program.map(f"mapfold{k}", out, rows, rowred).set_par(
            1, inner=int(step["inner_par"]))
        outputs.append(out.name)
        return
    if kind == "segfold":
        rows = int(step["rows"])
        rng = np.random.default_rng(step["data_seed"])
        counts = np.maximum(
            1, rng.poisson(int(step["mean_seg"]), rows)).astype(np.int64)
        ptr_d = np.zeros(rows + 1, dtype=np.int32)
        ptr_d[1:] = np.cumsum(counts)
        nnz = int(ptr_d[-1])
        vals_d = rng.uniform(-2, 2, nnz).astype(np.float32)
        ptr = program.input(f"ptr{k}", (rows + 1,), E.INT32, data=ptr_d)
        vals = program.input(f"vals{k}", (nnz,), data=vals_d)
        out = program.output(f"out{k}", (rows,))
        erng = np.random.default_rng(step["expr_seed"])
        depth = int(step["depth"])
        program.map(
            f"segfold{k}", out, rows,
            lambda i: Fold((ptr[i], ptr[i + 1]), 0.0,
                           lambda j: _rand_expr(erng,
                                                [lambda: vals[j]],
                                                depth),
                           lambda a, b: a + b))
        outputs.append(out.name)
        return
    if kind == "filter":
        (src,) = _pool_reads(program, step, k, n, pool, 1)
        count = program.output(f"count{k}", (), E.INT32)
        kept = program.output(f"kept{k}", (Dyn(count),), max_elems=n)
        threshold = float(step["threshold"])
        program.filter(f"filter{k}", kept, count, n,
                       cond=lambda i: src[i] > threshold,
                       value=lambda i: src[i] * 2.0).set_par(
            int(step["par"]))
        outputs.extend([count.name, kept.name])
        if step.get("consume"):
            total = program.output(f"fsum{k}")
            program.fold(f"consume{k}", total, Dyn(count), 0.0,
                         lambda i: kept[i], lambda a, b: a + b)
            outputs.append(total.name)
        return
    if kind == "hash_reduce":
        (src,) = _pool_reads(program, step, k, n, pool, 1)
        bins = int(step["bins"])
        stride, offset = int(step["stride"]), int(step["offset"])
        out = program.output(f"out{k}", (bins,))
        erng = np.random.default_rng(step["expr_seed"])
        depth = int(step["depth"])
        program.hash_reduce(
            f"hash{k}", out, n, bins,
            key=lambda i: (i * stride + offset) % bins,
            value=lambda i: _rand_expr(erng, [lambda: src[i]], depth),
            r=lambda a, b: a + b).set_par(int(step["par"]))
        outputs.append(out.name)
        return
    if kind == "scatter":
        m = int(step["m"])
        stride, offset = int(step["stride"]), int(step["offset"])
        # NOT "in{k}": at k == 0 that would collide with the base
        # input "in0" (the first crasher this fuzzer ever found —
        # tests/fuzz/corpus/fuzz_44.min.json)
        src = program.input(f"scat{k}", (m,),
                            data=_data(step["data_seed"], m))
        target = program.output(f"out{k}", (m,))
        erng = np.random.default_rng(step["expr_seed"])
        depth = int(step["depth"])
        program.scatter(
            f"scatter{k}", target, m,
            index=lambda i: (i * stride + offset) % m,
            value=lambda i: _rand_expr(erng, [lambda: src[i]], depth))
        outputs.append(target.name)
        return
    if kind == "loop":
        (src,) = _pool_reads(program, step, k, n, pool, 1)
        decay = float(step["decay"])
        state = program.output(f"out{k}", (n,))
        state.set_data(np.zeros(n, dtype=np.float32))
        fresh = program.temp(f"fresh{k}", (n,))
        # the PageRank idiom: compute into a temp, then publish — a
        # sequential recurrence without same-step read/write of one
        # array
        with program.loop(f"loop{k}", int(step["trip"])):
            program.map(f"recur{k}", fresh, n,
                        lambda i: state[i] * decay + src[i]).set_par(
                int(step["par"]))
            program.map(f"publish{k}", state, n,
                        lambda i: fresh[i]).set_par(int(step["par"]))
        outputs.append(state.name)
        return
    raise PatternError(f"unknown fuzz step kind {kind!r}")


# ---------------------------------------------------------------------------
# Spec files (corpus entries)
# ---------------------------------------------------------------------------


def save_spec(spec: dict, path: Union[str, Path]) -> Path:
    """Write one spec as pretty (reviewable) JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(spec, indent=2, sort_keys=True) + "\n")
    return path


def load_spec(path: Union[str, Path]) -> dict:
    """Read one spec written by :func:`save_spec`."""
    return json.loads(Path(path).read_text())
