"""The three-way differential oracle.

One spec is judged by running its program through every executor the
repo has and demanding agreement:

1. **reference executor** — the functional semantics (ground truth);
2. **bitstream round-trip** — the compiled artifact is serialized to
   canonical bytes and re-loaded through
   :mod:`repro.dhdl.serialize` before any simulation, so the frozen
   compiler->simulator contract itself is under test (content hashes
   must survive the round-trip);
3. **dense simulator** — the cycle-exact reference loop, run from the
   round-tripped artifact;
4. **event simulator** — the wakeup scheduler, run from a *second*
   round-tripped artifact (machines mutate their DRAM image, so each
   leg gets a fresh one).

Agreement means: every program output matches the executor within
float tolerance (exactly, for ints), the dense and event memory images
are bit-identical, and the dense and event ``SimStats`` are equal
field-for-field.

Failures carry a *stage* (where the pipeline broke) and a *detail*
payload; :func:`repro.fuzz.shrink.failure_signature` compresses those
into the equivalence class the shrinker preserves.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bitstream.artifact import Bitstream, CompileOptions
from repro.errors import ReproError
from repro.fuzz.generator import build_program, spec_name
from repro.patterns.executor import run_program

#: legitimate float reassociation (vector folds, tree combines) bounds
#: the executor-vs-simulator drift; int outputs must match exactly
RTOL = 1e-3
ATOL = 1e-3

#: compile options used for every fuzz program: small tiles force
#: multi-tile execution even at fuzz sizes
FUZZ_OPTIONS = CompileOptions(tile_words=128, whole_budget=4096)

#: pipeline stages, in order
STAGES = ("build", "execute", "compile", "roundtrip", "sim-dense",
          "sim-event", "compare")


@dataclass
class OracleResult:
    """Outcome of one oracle run."""

    spec: dict
    ok: bool
    stage: str = "compare"
    error: str = ""
    #: machine-readable mismatch descriptions, e.g.
    #: ``["dense-vs-executor:out0", "stats:cycles"]``
    mismatches: List[str] = field(default_factory=list)
    cycles: int = 0

    def describe(self) -> str:
        """One-line human summary."""
        if self.ok:
            return (f"{spec_name(self.spec)}: OK "
                    f"({self.cycles} cycles)")
        what = self.error or "; ".join(self.mismatches)
        return f"{spec_name(self.spec)}: FAIL at {self.stage}: {what}"


def _expected_images(program, names) -> Dict[str, np.ndarray]:
    env = run_program(program)
    return {name: env.buffers[name].copy() for name in names}


def _result_of(machine, array) -> np.ndarray:
    got = np.asarray(machine.result(array))
    return got


def _compare_output(name: str, want: np.ndarray, got: np.ndarray,
                    leg: str, mismatches: List[str]) -> None:
    got = got.reshape(-1)[:want.size].reshape(want.shape)
    if want.dtype.kind == "f":
        close = np.allclose(got, want, rtol=RTOL, atol=ATOL)
    else:
        close = np.array_equal(got, want)
    if not close:
        mismatches.append(f"{leg}:{name}")


def run_oracle(spec: dict, trip_error: bool = False) -> OracleResult:
    """Run one spec through the full differential pipeline.

    ``trip_error=True`` re-raises unexpected (non-:class:`ReproError`)
    exceptions instead of folding them into the result — useful under
    pytest where a traceback beats a one-line summary.
    """
    stage = "build"
    try:
        program, outputs = build_program(spec)
        stage = "execute"
        expected = _expected_images(program, outputs)
        stage = "compile"
        from repro.compiler.artifact import freeze_program
        artifact = freeze_program(program, spec_name(spec), "fuzz",
                                  options=FUZZ_OPTIONS)
        stage = "roundtrip"
        blob = artifact.to_bytes()
        clone_a = Bitstream.from_dict(json.loads(blob.decode("utf-8")))
        clone_b = Bitstream.from_dict(json.loads(blob.decode("utf-8")))
        result = OracleResult(spec, ok=True)
        if clone_a.content_hash != artifact.content_hash:
            result.ok = False
            result.stage = "roundtrip"
            result.mismatches.append("roundtrip:content_hash")
            return result
        stage = "sim-dense"
        dense = clone_a.machine(scheduler="dense")
        dense_stats = dense.run()
        stage = "sim-event"
        event = clone_b.machine(scheduler="event")
        event_stats = event.run()
        stage = "compare"
        result.cycles = dense_stats.cycles
        for name in outputs:
            _compare_output(name, expected[name],
                            _result_of(dense, name), "dense-vs-executor",
                            result.mismatches)
            _compare_output(name, expected[name],
                            _result_of(event, name), "event-vs-executor",
                            result.mismatches)
        # dense vs event: the full DRAM memory image, bit-exact
        for array in clone_a.dhdl.drams:
            a = _result_of(dense, array.name)
            b = _result_of(event, array.name)
            if not np.array_equal(a, b):
                result.mismatches.append(f"dense-vs-event:{array.name}")
        sd = dataclasses.asdict(dense_stats)
        se = dataclasses.asdict(event_stats)
        for key in sd:
            if sd[key] != se[key]:
                result.mismatches.append(f"stats:{key}")
        if result.mismatches:
            result.ok = False
            result.stage = "compare"
        return result
    except ReproError as err:
        return OracleResult(spec, ok=False, stage=stage,
                            error=f"{type(err).__name__}: {err}")
    except Exception as err:  # noqa: BLE001 — a crasher IS a finding
        if trip_error:
            raise
        return OracleResult(spec, ok=False, stage=stage,
                            error=f"{type(err).__name__}: {err}")


#: timing-override variants every batched-oracle run simulates: the
#: as-compiled design plus shallow pipelines, re-banked scratchpads and
#: a throttled DRAM queue — the axes most likely to reorder events
BATCH_VARIANTS = ({}, {"stages": 3}, {"stages": 9, "banks": 8},
                  {"dram_queue_depth": 4})


def run_oracle_batched(spec: dict, variants=BATCH_VARIANTS,
                       trip_error: bool = False) -> OracleResult:
    """Pin ``Machine.run_batch`` against sequential runs on one spec.

    Each variant is simulated twice from the same frozen artifact: once
    inside one batched pass (leader + log-replaying followers) and once
    as a plain sequential :meth:`Machine.run` built through the same
    :func:`repro.sim.batch.instantiate` helper.  Agreement is bit-exact:
    every ``SimStats`` field and the full DRAM memory image per variant.
    """
    from repro.sim.batch import instantiate, run_batch
    stage = "build"
    try:
        program, _ = build_program(spec)
        stage = "compile"
        from repro.compiler.artifact import freeze_program
        artifact = freeze_program(program, spec_name(spec), "fuzz",
                                  options=FUZZ_OPTIONS)
        stage = "sim-batch"
        batch = run_batch(artifact, list(variants))
        stage = "sim-sequential"
        result = OracleResult(spec, ok=True)
        for i, overrides in enumerate(variants):
            solo = instantiate(artifact, overrides)
            try:
                solo_stats = solo.run()
                solo_error = None
            except ReproError as err:
                solo_stats = None
                solo_error = f"{type(err).__name__}: {err}"
            twin = batch[i]
            if (twin.error is None) != (solo_error is None):
                result.mismatches.append(
                    f"batch-vs-solo[{i}]:outcome "
                    f"({twin.error!r} vs {solo_error!r})")
                continue
            if solo_error is not None:
                if twin.error != solo_error:
                    result.mismatches.append(
                        f"batch-vs-solo[{i}]:error-text")
                continue
            result.cycles += solo_stats.cycles
            if not solo_stats.same_as(twin.stats):
                diverged = [k for k, v in solo_stats.as_dict().items()
                            if twin.stats.as_dict()[k] != v]
                result.mismatches.append(
                    f"batch-vs-solo[{i}]:stats:{','.join(diverged)}")
            for name, buf in solo.image.buffers.items():
                if not np.array_equal(
                        buf, twin.machine.image.buffers[name]):
                    result.mismatches.append(
                        f"batch-vs-solo[{i}]:dram:{name}")
        if result.mismatches:
            result.ok = False
            result.stage = "compare-batch"
        return result
    except ReproError as err:
        return OracleResult(spec, ok=False, stage=stage,
                            error=f"{type(err).__name__}: {err}")
    except Exception as err:  # noqa: BLE001 — a crasher IS a finding
        if trip_error:
            raise
        return OracleResult(spec, ok=False, stage=stage,
                            error=f"{type(err).__name__}: {err}")
