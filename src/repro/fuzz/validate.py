"""Structural validation of program specs, with field-level errors.

One spec schema is shared by two front doors: the fuzz harness
(:mod:`repro.fuzz.generator` replays corpus entries and shrink
candidates) and the serving tier (:mod:`repro.serve` accepts specs over
HTTP from arbitrary clients).  Both want the same property — a malformed
spec must fail *at the boundary* with a message that names the offending
field, not three layers deep in the compiler with a stack trace about
counter chains.

:func:`validate_spec` walks the spec against a declarative per-kind
field table and returns every problem found as a :class:`SpecError`
carrying a JSON-path-style location (``steps[2].par``).
:func:`check_spec` raises :class:`InvalidSpecError` (a
:class:`~repro.errors.PatternError`, so the shrinker and oracle treat a
rejected candidate exactly like any other non-building spec), and the
service maps the same error list onto a structured 400 response.

Bounds are deliberately wider than the generator's own ranges — every
spec the generator or shrinker can produce passes — but tight enough
that a service client cannot request an unbounded simulation (``n``,
step counts, and parallelism are all capped).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd, isfinite
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import PatternError

#: schema version this validator understands (mirrors
#: ``repro.fuzz.generator.SPEC_VERSION``; imported there to stay in sync)
SPEC_VERSION = 1

#: hard caps a submitted spec may not exceed (service DoS guard)
MAX_N = 4096
MAX_STEPS = 8
MAX_DIM = 4096
MAX_PAR = 64
MAX_SEED = 2 ** 63 - 1


@dataclass(frozen=True)
class SpecError:
    """One problem at one location inside a spec."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"

    def to_dict(self) -> Dict[str, str]:
        return {"path": self.path, "message": self.message}


class InvalidSpecError(PatternError):
    """A spec failed validation; ``errors`` lists every finding."""

    def __init__(self, errors: List[SpecError]):
        self.errors = list(errors)
        shown = "; ".join(str(e) for e in self.errors[:4])
        if len(self.errors) > 4:
            shown += f" (+{len(self.errors) - 4} more)"
        super().__init__(f"invalid program spec: {shown}")

    def to_json(self) -> List[Dict[str, str]]:
        """The structured 400 payload the service returns."""
        return [e.to_dict() for e in self.errors]


# ---------------------------------------------------------------------------
# Field checkers
# ---------------------------------------------------------------------------

Checker = Callable[[Any], str]  # returns "" when valid


def _int(lo: int, hi: int) -> Checker:
    def check(value):
        if isinstance(value, bool) or not isinstance(value, int):
            return f"expected an integer, got {type(value).__name__}"
        if not lo <= value <= hi:
            return f"expected an integer in [{lo}, {hi}], got {value}"
        return ""
    return check


def _number(lo: float, hi: float) -> Checker:
    def check(value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"expected a number, got {type(value).__name__}"
        if not isfinite(value) or not lo <= value <= hi:
            return f"expected a finite number in [{lo}, {hi}], got {value}"
        return ""
    return check


def _bool(value) -> str:
    if not isinstance(value, bool):
        return f"expected a boolean, got {type(value).__name__}"
    return ""


def _choice(*allowed: str) -> Checker:
    def check(value):
        if value not in allowed:
            return f"expected one of {sorted(allowed)}, got {value!r}"
        return ""
    return check


def _tile(value) -> str:
    if value is None:
        return ""
    if (not isinstance(value, list) or len(value) != 2
            or any(isinstance(v, bool) or not isinstance(v, int)
                   or v < 1 for v in value)):
        return "expected null or a pair of positive integers"
    return ""


def _par_pair(value) -> str:
    if (not isinstance(value, list) or len(value) != 2
            or any(isinstance(v, bool) or not isinstance(v, int)
                   or not 1 <= v <= MAX_PAR for v in value)):
        return f"expected a pair of integers in [1, {MAX_PAR}]"
    return ""


_seed = _int(0, MAX_SEED)
_depth = _int(0, 8)
_par = _int(1, MAX_PAR)
_dim = _int(1, MAX_DIM)

#: per-kind field tables: name -> (checker, required)
_STEP_FIELDS: Dict[str, Dict[str, Tuple[Checker, bool]]] = {
    "map": {"reads": (_int(1, 8), True), "depth": (_depth, True),
            "expr_seed": (_seed, True), "data_seed": (_seed, True),
            "par": (_par, True)},
    "map2d": {"rows": (_dim, True), "cols": (_dim, True),
              "tile": (_tile, False), "par": (_par_pair, True),
              "depth": (_depth, True), "expr_seed": (_seed, True),
              "data_seed": (_seed, True)},
    "fold": {"combine": (_choice("sum", "max", "min"), True),
             "depth": (_depth, True), "expr_seed": (_seed, True),
             "data_seed": (_seed, True), "par": (_par, True),
             "outer": (_int(1, 8), True)},
    "map_fold": {"rows": (_dim, True), "cols": (_dim, True),
                 "inner_par": (_par, True), "depth": (_depth, True),
                 "expr_seed": (_seed, True), "data_seed": (_seed, True)},
    "segfold": {"rows": (_dim, True), "mean_seg": (_int(1, 64), True),
                "depth": (_depth, True), "expr_seed": (_seed, True),
                "data_seed": (_seed, True)},
    "filter": {"threshold": (_number(-1e6, 1e6), True),
               "par": (_par, True), "consume": (_bool, False),
               "data_seed": (_seed, True)},
    "hash_reduce": {"bins": (_int(1, 1024), True),
                    "stride": (_int(1, MAX_DIM), True),
                    "offset": (_int(0, MAX_DIM), True),
                    "depth": (_depth, True), "expr_seed": (_seed, True),
                    "data_seed": (_seed, True), "par": (_par, True)},
    "scatter": {"m": (_dim, True), "stride": (_int(1, MAX_DIM), True),
                "offset": (_int(0, MAX_DIM), True),
                "depth": (_depth, True), "expr_seed": (_seed, True),
                "data_seed": (_seed, True)},
    "loop": {"trip": (_int(1, 64), True),
             "decay": (_number(-10.0, 10.0), True), "par": (_par, True),
             "data_seed": (_seed, True)},
}


def _check_step(step: Any, k: int, errors: List[SpecError]) -> None:
    where = f"steps[{k}]"
    if not isinstance(step, dict):
        errors.append(SpecError(
            where, f"expected an object, got {type(step).__name__}"))
        return
    kind = step.get("kind")
    if kind not in _STEP_FIELDS:
        errors.append(SpecError(
            f"{where}.kind",
            f"expected one of {sorted(_STEP_FIELDS)}, got {kind!r}"))
        return
    fields = _STEP_FIELDS[kind]
    for name, (checker, required) in fields.items():
        if name not in step:
            if required:
                errors.append(SpecError(
                    f"{where}.{name}",
                    f"required field for kind {kind!r} is missing"))
            continue
        problem = checker(step[name])
        if problem:
            errors.append(SpecError(f"{where}.{name}", problem))
    for name in sorted(step):
        if name != "kind" and name not in fields:
            errors.append(SpecError(
                f"{where}.{name}",
                f"unknown field for kind {kind!r}"))
    # semantic checks beyond field types
    if kind == "scatter" and not any(
            e.path.startswith(where) for e in errors):
        if gcd(int(step["stride"]), int(step["m"])) != 1:
            errors.append(SpecError(
                f"{where}.stride",
                f"stride {step['stride']} is not coprime with m "
                f"{step['m']}: the scatter index map must be a "
                f"bijection or results depend on collision order"))


def validate_spec(spec: Any) -> List[SpecError]:
    """Every problem in ``spec``, or an empty list when it is valid."""
    if not isinstance(spec, dict):
        return [SpecError(
            "", f"expected a spec object, got {type(spec).__name__}")]
    errors: List[SpecError] = []
    version = spec.get("version")
    if version != SPEC_VERSION:
        errors.append(SpecError(
            "version",
            f"expected supported spec version {SPEC_VERSION}, "
            f"got {version!r}"))
    problem = _int(1, MAX_N)(spec.get("n"))
    if "n" not in spec:
        errors.append(SpecError("n", "required field is missing"))
    elif problem:
        errors.append(SpecError("n", problem))
    if "seed" in spec:
        problem = _seed(spec["seed"])
        if problem:
            errors.append(SpecError("seed", problem))
    steps = spec.get("steps")
    if not isinstance(steps, list) or not steps:
        errors.append(SpecError(
            "steps", "expected a non-empty list of step objects"))
    elif len(steps) > MAX_STEPS:
        errors.append(SpecError(
            "steps", f"at most {MAX_STEPS} steps allowed, "
                     f"got {len(steps)}"))
    else:
        for k, step in enumerate(steps):
            _check_step(step, k, errors)
    for name in sorted(spec):
        if name not in ("version", "seed", "n", "steps"):
            errors.append(SpecError(name, "unknown field"))
    return errors


def check_spec(spec: Any) -> None:
    """Raise :class:`InvalidSpecError` unless ``spec`` is valid."""
    errors = validate_spec(spec)
    if errors:
        raise InvalidSpecError(errors)
