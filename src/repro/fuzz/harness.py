"""Fuzz campaign driver and corpus replay.

A *campaign* is ``runs`` consecutive seeds starting at ``--seed``, each
generated, built, and pushed through the three-way oracle.  Failures
are (optionally) shrunk and written as spec JSON files — ready to be
checked into ``tests/fuzz/corpus/`` as regression entries once the
underlying bug is fixed.

The corpus is replayed two ways: by ``tests/fuzz/test_corpus.py`` on
every pytest run, and by ``repro fuzz --corpus`` (the CI fuzz-smoke job
does both).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.fuzz.generator import gen_spec, save_spec, load_spec, spec_name
from repro.fuzz.oracle import OracleResult, run_oracle, run_oracle_batched
from repro.fuzz.shrink import shrink_spec

#: default checked-in regression corpus (repo-relative)
DEFAULT_CORPUS = Path("tests") / "fuzz" / "corpus"


@dataclass
class FuzzCampaign:
    """Summary of one fuzz campaign."""

    seed: int
    runs: int
    ok: int = 0
    failures: List[OracleResult] = field(default_factory=list)
    #: (original failing spec, minimized spec) pairs, aligned with
    #: ``failures``
    shrunk: List[Tuple[dict, dict]] = field(default_factory=list)
    wall_s: float = 0.0
    total_cycles: int = 0
    #: specs additionally pinned batch-vs-sequential (``batched=True``)
    batched_ok: int = 0

    @property
    def divergences(self) -> int:
        """Number of failing seeds."""
        return len(self.failures)

    def summary(self) -> str:
        """Multi-line human report."""
        lines = [f"fuzz: {self.runs} programs from seed {self.seed}: "
                 f"{self.ok} ok, {self.divergences} divergent "
                 f"({self.total_cycles} simulated cycles, "
                 f"{self.wall_s:.1f} s)"]
        if self.batched_ok:
            lines.append(f"  batched oracle: {self.batched_ok} specs "
                         f"bit-identical batch-vs-sequential")
        for result in self.failures:
            lines.append("  " + result.describe())
        return "\n".join(lines)


def run_campaign(seed: int, runs: int, shrink: bool = False,
                 save_dir: Optional[Union[str, Path]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 batched: bool = False) -> FuzzCampaign:
    """Fuzz ``runs`` seeds starting at ``seed``.

    ``shrink`` minimizes each failure before reporting; ``save_dir``
    writes failing specs (and their ``.min`` counterparts) as JSON.
    ``batched`` additionally pins every spec that passes the three-way
    oracle through the batch-vs-sequential oracle
    (:func:`repro.fuzz.oracle.run_oracle_batched`).
    """
    campaign = FuzzCampaign(seed=seed, runs=runs)
    started = time.time()
    for k in range(runs):
        spec = gen_spec(seed + k)
        result = run_oracle(spec)
        if result.ok and batched:
            result = run_oracle_batched(spec)
            if result.ok:
                campaign.batched_ok += 1
        if result.ok:
            campaign.ok += 1
            campaign.total_cycles += result.cycles
            continue
        if progress is not None:
            progress(result.describe())
        minimized = spec
        if shrink:
            minimized, min_result = shrink_spec(spec)
            # report the minimized failure; fall back if shrinking
            # somehow lost the bug entirely
            if not min_result.ok:
                result = min_result
            if progress is not None:
                progress(f"  shrunk to {_spec_size(minimized)} "
                         f"(from {_spec_size(spec)}): "
                         f"{min_result.describe()}")
        campaign.failures.append(result)
        campaign.shrunk.append((spec, minimized))
        if save_dir is not None:
            stem = spec_name(spec)
            save_spec(spec, Path(save_dir) / f"{stem}.json")
            if shrink:
                save_spec(minimized, Path(save_dir) / f"{stem}.min.json")
    campaign.wall_s = time.time() - started
    return campaign


def _spec_size(spec: dict) -> str:
    return f"{len(spec['steps'])} step(s), n={spec['n']}"


def replay_corpus(corpus_dir: Union[str, Path] = DEFAULT_CORPUS
                  ) -> List[Tuple[Path, OracleResult]]:
    """Re-run every checked-in corpus spec through the oracle."""
    corpus = Path(corpus_dir)
    results = []
    for path in sorted(corpus.glob("*.json")):
        results.append((path, run_oracle(load_spec(path))))
    return results
