"""Greedy spec minimization.

A failing spec is shrunk by repeatedly applying the first candidate
simplification that still reproduces the *same failure signature* —
the (stage, error-class / mismatch-leg) pair — so the minimizer cannot
wander onto a different bug while reducing.  Candidates are ordered by
expected payoff: drop whole steps, then shrink domains, then simplify
per-step knobs (depth, par, tiles, trip counts).

Everything operates on plain spec dicts (deep-copied, never mutated in
place), so the result is directly save-able as a corpus entry.
"""

from __future__ import annotations

import copy
from typing import Iterator, Tuple

from repro.fuzz.generator import build_program  # noqa: F401 (re-export)
from repro.fuzz.oracle import OracleResult, run_oracle


def failure_signature(result: OracleResult) -> Tuple:
    """The equivalence class a shrink step must preserve.

    Errors reduce to (stage, exception class); comparison failures to
    (stage, sorted set of mismatching legs — array names are dropped
    because they shift as steps are removed).
    """
    if result.ok:
        return ("ok",)
    if result.error:
        return (result.stage, result.error.split(":", 1)[0])
    legs = sorted({m.split(":", 1)[0] for m in result.mismatches})
    return (result.stage, tuple(legs))


def _without_step(spec: dict, index: int) -> dict:
    cand = copy.deepcopy(spec)
    del cand["steps"][index]
    return cand


def _with_field(spec: dict, index: int, field: str, value) -> dict:
    cand = copy.deepcopy(spec)
    cand["steps"][index][field] = value
    return cand


def _with_n(spec: dict, n: int) -> dict:
    cand = copy.deepcopy(spec)
    cand["n"] = n
    return cand


def _candidates(spec: dict) -> Iterator[dict]:
    """Candidate simplifications, biggest payoff first."""
    steps = spec["steps"]
    # 1. drop whole steps (later steps first: chained readers go before
    #    the producers they depend on)
    if len(steps) > 1:
        for k in range(len(steps) - 1, -1, -1):
            yield _without_step(spec, k)
    # 2. shrink the shared 1-d domain
    if spec["n"] > 16:
        yield _with_n(spec, max(16, spec["n"] // 2))
    # 3. per-step knob simplifications
    for k, step in enumerate(steps):
        for fld in ("rows", "cols", "m"):
            if step.get(fld, 0) > 4:
                yield _with_field(spec, k, fld, max(4, step[fld] // 2))
        if step.get("depth", 0) > 1:
            yield _with_field(spec, k, "depth", step["depth"] - 1)
        if step.get("reads", 0) > 1:
            yield _with_field(spec, k, "reads", 1)
        par = step.get("par")
        if isinstance(par, int) and par > 1:
            yield _with_field(spec, k, "par", 1)
        if isinstance(par, list) and any(p > 1 for p in par):
            yield _with_field(spec, k, "par", [1] * len(par))
        if step.get("inner_par", 0) > 1:
            yield _with_field(spec, k, "inner_par", 1)
        if step.get("outer", 0) > 1:
            yield _with_field(spec, k, "outer", 1)
        if step.get("tile"):
            yield _with_field(spec, k, "tile", None)
        if step.get("trip", 0) > 1:
            yield _with_field(spec, k, "trip", step["trip"] - 1)
        if step.get("bins", 0) > 4:
            yield _with_field(spec, k, "bins", 4)
        if step.get("mean_seg", 0) > 2:
            yield _with_field(spec, k, "mean_seg", 2)
        if step.get("consume"):
            yield _with_field(spec, k, "consume", False)


def shrink_spec(spec: dict,
                max_attempts: int = 300) -> Tuple[dict, OracleResult]:
    """Minimize a failing spec; returns ``(smallest spec, its result)``.

    Greedy first-improvement descent: each round re-enumerates the
    candidates of the current spec and keeps the first one that fails
    with the same signature.  A spec that does not fail is returned
    unchanged.  ``max_attempts`` bounds total oracle invocations.
    """
    base = run_oracle(spec)
    if base.ok:
        return spec, base
    signature = failure_signature(base)
    current, current_result = spec, base
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand in _candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            result = run_oracle(cand)
            if not result.ok and failure_signature(result) == signature:
                current, current_result = cand, result
                improved = True
                break
    return current, current_result
