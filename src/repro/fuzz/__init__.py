"""``repro.fuzz`` — differential fuzzing of the three executors.

The repo carries three independent implementations of the pattern
semantics — the pure-Python reference executor, the dense cycle-exact
simulator, and the event-driven scheduler — plus a serialized bitstream
path between compile and run.  This package pins their equivalence on
*arbitrary* well-typed pattern programs, not just the hand-written
benchmark registry:

* :mod:`~repro.fuzz.generator` — a seeded generator of program *specs*
  (small JSON documents) and a deterministic spec -> ``Program``
  builder;
* :mod:`~repro.fuzz.oracle` — the three-way differential oracle
  (executor vs dense-sim vs event-sim memory images, dense/event
  ``SimStats`` equality, and a bitstream serialize/deserialize
  round-trip before any simulation);
* :mod:`~repro.fuzz.validate` — the boundary validator for submitted
  specs (shared with :mod:`repro.serve`, whose 400 responses carry its
  field-level error paths);
* :mod:`~repro.fuzz.shrink` — a greedy minimizer that reduces a failing
  spec while preserving its failure signature;
* :mod:`~repro.fuzz.harness` — the campaign driver behind
  ``repro fuzz --seed/--runs/--shrink`` and the corpus replay used by
  the regression tests under ``tests/fuzz/corpus/``.

Specs — not programs — are the unit of exchange: they are tiny, human
readable, deterministic to rebuild, and trivially check-innable as
regression corpus entries.
"""

from repro.fuzz.generator import (SPEC_VERSION, build_program, gen_spec,
                                  load_spec, save_spec, spec_name)
from repro.fuzz.harness import FuzzCampaign, replay_corpus, run_campaign
from repro.fuzz.oracle import (BATCH_VARIANTS, OracleResult,
                               run_oracle, run_oracle_batched)
from repro.fuzz.shrink import failure_signature, shrink_spec
from repro.fuzz.validate import (InvalidSpecError, SpecError, check_spec,
                                 validate_spec)

__all__ = [
    "SPEC_VERSION",
    "FuzzCampaign",
    "InvalidSpecError",
    "OracleResult",
    "SpecError",
    "check_spec",
    "validate_spec",
    "build_program",
    "failure_signature",
    "gen_spec",
    "load_spec",
    "replay_corpus",
    "run_campaign",
    "BATCH_VARIANTS",
    "run_oracle",
    "run_oracle_batched",
    "save_spec",
    "shrink_spec",
    "spec_name",
]
