"""Plasticine reproduction: a parallel-pattern CGRA, compiler, and simulator.

Reproduces *Plasticine: A Reconfigurable Architecture For Parallel Patterns*
(Prabhakar et al., ISCA 2017).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.

Subpackages
-----------
``repro.patterns``
    The programming model: Map / FlatMap / Fold / HashReduce over symbolic
    collections, plus a numpy reference executor.
``repro.dhdl``
    The DHDL-style intermediate representation (controller hierarchies).
``repro.arch``
    Architecture parameters, area/power models, FPGA + ASIC baselines.
``repro.dram``
    DDR3 timing model (DRAMSim2 substitute).
``repro.sim``
    Cycle-level simulator of the Plasticine fabric.
``repro.compiler``
    Pattern -> DHDL -> placed-and-routed configuration pipeline.
``repro.perf``
    Analytical performance scaling to paper-sized datasets.
``repro.apps``
    The thirteen Table 4 benchmarks.
``repro.eval``
    Regeneration of every table and figure in the evaluation.
"""

__version__ = "1.0.0"
