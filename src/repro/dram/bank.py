"""DRAM bank state machine: open row tracking and timing enforcement."""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DdrTiming
from repro.errors import DramProtocolError


class Bank:
    """One DRAM bank: at most one open row, busy windows between commands.

    The bank exposes ``access_latency`` (what a request issued *now* would
    cost) and ``issue`` (commit to servicing it), enforcing tRCD/tRP/tRAS
    windows.  Time is the caller's monotonically non-decreasing cycle.
    """

    def __init__(self, timing: DdrTiming):
        self.timing = timing
        self.open_row: Optional[int] = None
        #: cycle until which the bank's command machinery is busy
        self.ready_at: int = 0
        #: cycle the current row was activated (for tRAS)
        self.activated_at: int = 0
        self.hits = 0
        self.misses = 0
        self.empties = 0

    def is_hit(self, row: int) -> bool:
        """Would this row be a row-buffer hit right now?"""
        return self.open_row == row

    def access_latency(self, row: int, now: int) -> int:
        """Cycles from ``now`` until data for ``row`` finishes bursting."""
        start = max(now, self.ready_at)
        timing = self.timing
        if self.open_row == row:
            return (start - now) + timing.row_hit_latency
        if self.open_row is None:
            return (start - now) + timing.row_empty_latency
        # row conflict: honour minimum row-open time before precharge
        earliest_pre = max(start,
                           self.activated_at + timing.t_ras)
        return (earliest_pre - now) + timing.row_miss_latency

    def issue(self, row: int, now: int, is_write: bool) -> int:
        """Commit a column access to ``row``; returns completion cycle."""
        if now < 0:
            raise DramProtocolError("negative cycle")
        start = max(now, self.ready_at)
        timing = self.timing
        if self.open_row == row:
            self.hits += 1
            done = start + timing.row_hit_latency
            busy = start + timing.t_ccd
        elif self.open_row is None:
            self.empties += 1
            self.activated_at = start
            done = start + timing.row_empty_latency
            busy = start + timing.t_rcd + timing.t_ccd
        else:
            self.misses += 1
            earliest_pre = max(start, self.activated_at + timing.t_ras)
            self.activated_at = earliest_pre + timing.t_rp
            done = earliest_pre + timing.row_miss_latency
            busy = self.activated_at + timing.t_rcd + timing.t_ccd
        if is_write:
            busy += timing.t_wr - timing.t_ccd
        self.open_row = row
        self.ready_at = busy
        return done

    def __repr__(self):
        return f"Bank(open_row={self.open_row}, ready_at={self.ready_at})"
