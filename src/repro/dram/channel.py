"""One DRAM channel: request queue, FR-FCFS scheduling, shared data bus."""

from __future__ import annotations

from typing import List, Optional

from repro.dram.bank import Bank
from repro.dram.request import DramRequest
from repro.dram.timing import DdrTiming, DramGeometry
from repro.errors import DramProtocolError
from repro.trace.events import EventKind


class Channel:
    """A DDR3 channel with per-bank state and an FR-FCFS scheduler.

    Each tick the scheduler issues at most one request: among queued
    requests whose bank could start immediately, row-buffer *hits* win,
    ties broken by age (First-Ready, First-Come-First-Served).  The data
    bus serialises bursts: a burst may not start before the previous one
    finished.
    """

    def __init__(self, timing: DdrTiming, geometry: DramGeometry,
                 queue_depth: int = 64):
        self.timing = timing
        self.geometry = geometry
        self.queue_depth = queue_depth
        self.banks = [Bank(timing) for _ in range(geometry.banks_per_channel)]
        self.queue: List[DramRequest] = []
        self.bus_free_at = 0
        self.completed: List[DramRequest] = []
        self.bytes_moved = 0
        #: bursts issued (== bytes_moved / burst_bytes; the per-channel
        #: utilization counters divide this by elapsed cycles)
        self.bursts = 0
        #: tenant id -> per-tenant issue tallies (multi-tenant runs)
        self.tenant_stats: dict = {}
        #: tenant id -> tracer (multi-tenant runs attach one per tenant;
        #: a request's events go to its issuing tenant's tracer)
        self.tenant_traces: dict = {}
        #: recent row-activation times, for the tFAW window
        self._activates: List[int] = []
        #: attached by the DramModel when tracing is enabled
        self.trace = None
        self.trace_name = "?"
        #: attached by the event scheduler: called whenever a request
        #: leaves the queue (queue room may have freed)
        self.on_dequeue = None
        #: injected-fault latency added to every burst (0 = healthy;
        #: adding 0 keeps the no-fault path bit-identical)
        self.extra_latency = 0

    # -- interface ------------------------------------------------------------
    def can_accept(self) -> bool:
        """Queue has room for another request."""
        return len(self.queue) < self.queue_depth

    def submit(self, request: DramRequest, now: int) -> None:
        """Enqueue a request (caller must have checked ``can_accept``)."""
        if not self.can_accept():
            raise DramProtocolError("channel queue overflow")
        request.arrival_cycle = now
        self.queue.append(request)

    def tick(self, now: int) -> None:
        """Advance one cycle: maybe issue one request to a bank."""
        if not self.queue:
            return
        choice = self._schedule(now)
        if choice is None:
            return
        self.queue.remove(choice)
        if self.on_dequeue is not None:
            self.on_dequeue()
        _, bank_id, row, _ = self.geometry.map_address(choice.byte_addr)
        bank = self.banks[bank_id]
        hit = bank.is_hit(row)
        empty = bank.open_row is None
        if not hit:
            self._activates.append(now)
        trace = self.trace
        if self.tenant_traces:
            trace = self.tenant_traces.get(choice.tenant, trace)
        if trace is not None:
            if hit:
                kind = EventKind.DRAM_ROW_HIT
            elif empty:
                kind = EventKind.DRAM_ROW_EMPTY
            else:
                kind = EventKind.DRAM_ROW_MISS
            trace.emit(kind, self.trace_name,
                       (bank_id, len(self.queue)))
        done = bank.issue(row, now, choice.is_write) \
            + self.extra_latency
        # serialise the data bus: burst occupies t_burst ending at `done`
        burst_start = done - self.timing.t_burst
        if burst_start < self.bus_free_at:
            shift = self.bus_free_at - burst_start
            done += shift
        self.bus_free_at = done
        choice.complete_cycle = done
        self.bytes_moved += self.geometry.burst_bytes
        self.bursts += 1
        if choice.tenant is not None:
            tally = self.tenant_stats.get(choice.tenant)
            if tally is None:
                tally = self.tenant_stats[choice.tenant] = {
                    "row_hits": 0, "row_misses": 0, "row_empties": 0,
                    "bytes": 0, "bursts": 0}
            if hit:
                tally["row_hits"] += 1
            elif empty:
                tally["row_empties"] += 1
            else:
                tally["row_misses"] += 1
            tally["bytes"] += self.geometry.burst_bytes
            tally["bursts"] += 1
        self.completed.append(choice)

    def _schedule(self, now: int) -> Optional[DramRequest]:
        """FR-FCFS: oldest row hit, else oldest request whose bank is
        ready soonest."""
        window = self.timing.t_faw
        self._activates = [t for t in self._activates if t > now - window]
        faw_full = len(self._activates) >= 4
        best = None
        best_key = None
        for request in self.queue:
            _, bank_id, row, _ = self.geometry.map_address(request.byte_addr)
            bank = self.banks[bank_id]
            if bank.ready_at > now + self.timing.t_ccd * 4:
                continue  # bank deeply busy; skip this cycle
            hit = bank.is_hit(row)
            if not hit and faw_full:
                continue  # would need an activate; tFAW window exhausted
            key = (0 if hit else 1, request.arrival_cycle, request.req_id)
            if best_key is None or key < best_key:
                best, best_key = request, key
        return best

    def drain_completed(self) -> List[DramRequest]:
        """Return and clear the completed-request list."""
        done, self.completed = self.completed, []
        return done

    @property
    def pending(self) -> int:
        """Requests still queued."""
        return len(self.queue)

    def stats(self) -> dict:
        """Aggregate bank statistics."""
        return {
            "row_hits": sum(b.hits for b in self.banks),
            "row_misses": sum(b.misses for b in self.banks),
            "row_empties": sum(b.empties for b in self.banks),
            "bytes": self.bytes_moved,
        }
