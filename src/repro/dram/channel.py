"""One DRAM channel: request queue, FR-FCFS scheduling, shared data bus."""

from __future__ import annotations

from typing import List, Optional

from repro.dram.bank import Bank
from repro.dram.request import DramRequest
from repro.dram.timing import DdrTiming, DramGeometry
from repro.errors import DramProtocolError
from repro.trace.events import EventKind


#: credit a tenant may bank across refill rounds, in multiples of its
#: weight — bounds the burst a long-idle tenant can unleash at once
_CREDIT_CAP_ROUNDS = 4


class Channel:
    """A DDR3 channel with per-bank state and an FR-FCFS scheduler.

    Each tick the scheduler issues at most one request: among queued
    requests whose bank could start immediately, row-buffer *hits* win,
    ties broken by age (First-Ready, First-Come-First-Served).  The data
    bus serialises bursts: a burst may not start before the previous one
    finished.

    QoS arbitration
    ---------------
    Multi-tenant fabrics may register per-tenant *weights* via
    :meth:`set_tenant_weight`.  When the registered weights are not all
    equal the scheduler becomes a weighted FR-FCFS: each tenant holds a
    deficit credit counter, refilled proportionally to its weight
    whenever no issuable request belongs to a tenant with credit left,
    and "has credit" is consulted as the leading sort key ahead of the
    row-hit/age key.  The arbitration is work-conserving (a creditless
    tenant still issues when nothing else is issuable) and
    starvation-free (every tenant with queued work gains at least one
    credit per refill round).  With equal weights — including the
    default of no registrations — the scheduler is **bit-identical** to
    plain FR-FCFS: the weighted path is never entered, no counter is
    touched, and the registry-wide equivalence suite asserts it.
    """

    def __init__(self, timing: DdrTiming, geometry: DramGeometry,
                 queue_depth: int = 64):
        self.timing = timing
        self.geometry = geometry
        self.queue_depth = queue_depth
        self.banks = [Bank(timing) for _ in range(geometry.banks_per_channel)]
        self.queue: List[DramRequest] = []
        self.bus_free_at = 0
        self.completed: List[DramRequest] = []
        self.bytes_moved = 0
        #: bursts issued (== bytes_moved / burst_bytes; the per-channel
        #: utilization counters divide this by elapsed cycles)
        self.bursts = 0
        #: tenant id -> per-tenant issue tallies (multi-tenant runs)
        self.tenant_stats: dict = {}
        #: tenant id -> arbitration weight (QoS); weighted scheduling
        #: only activates when these are not all equal
        self.tenant_weights: dict = {}
        #: tenant id -> deficit credits (weighted scheduling only)
        self._credits: dict = {}
        #: True iff registered weights are non-uniform
        self._weighted = False
        #: tenant id -> {"arb_won", "arb_deferred"} — contested weighted
        #: arbitration outcomes (untouched outside weighted mode, so
        #: equal-weight runs stay bit-identical)
        self.arb_stats: dict = {}
        #: tenant id -> tracer (multi-tenant runs attach one per tenant;
        #: a request's events go to its issuing tenant's tracer)
        self.tenant_traces: dict = {}
        #: recent row-activation times, for the tFAW window
        self._activates: List[int] = []
        #: attached by the DramModel when tracing is enabled
        self.trace = None
        self.trace_name = "?"
        #: attached by the event scheduler: called whenever a request
        #: leaves the queue (queue room may have freed)
        self.on_dequeue = None
        #: injected-fault latency added to every burst (0 = healthy;
        #: adding 0 keeps the no-fault path bit-identical)
        self.extra_latency = 0

    # -- interface ------------------------------------------------------------
    def can_accept(self) -> bool:
        """Queue has room for another request."""
        return len(self.queue) < self.queue_depth

    def submit(self, request: DramRequest, now: int) -> None:
        """Enqueue a request (caller must have checked ``can_accept``)."""
        if not self.can_accept():
            raise DramProtocolError("channel queue overflow")
        request.arrival_cycle = now
        self.queue.append(request)

    def tick(self, now: int) -> None:
        """Advance one cycle: maybe issue one request to a bank."""
        if not self.queue:
            return
        choice = self._schedule(now)
        if choice is None:
            return
        self.queue.remove(choice)
        if self.on_dequeue is not None:
            self.on_dequeue()
        _, bank_id, row, _ = self.geometry.map_address(choice.byte_addr)
        bank = self.banks[bank_id]
        hit = bank.is_hit(row)
        empty = bank.open_row is None
        if not hit:
            self._activates.append(now)
        trace = self.trace
        if self.tenant_traces:
            trace = self.tenant_traces.get(choice.tenant, trace)
        if trace is not None:
            if hit:
                kind = EventKind.DRAM_ROW_HIT
            elif empty:
                kind = EventKind.DRAM_ROW_EMPTY
            else:
                kind = EventKind.DRAM_ROW_MISS
            trace.emit(kind, self.trace_name,
                       (bank_id, len(self.queue)))
        done = bank.issue(row, now, choice.is_write) \
            + self.extra_latency
        # serialise the data bus: burst occupies t_burst ending at `done`
        burst_start = done - self.timing.t_burst
        if burst_start < self.bus_free_at:
            shift = self.bus_free_at - burst_start
            done += shift
        self.bus_free_at = done
        choice.complete_cycle = done
        self.bytes_moved += self.geometry.burst_bytes
        self.bursts += 1
        if choice.tenant is not None:
            tally = self.tenant_stats.get(choice.tenant)
            if tally is None:
                tally = self.tenant_stats[choice.tenant] = {
                    "row_hits": 0, "row_misses": 0, "row_empties": 0,
                    "bytes": 0, "bursts": 0}
            if hit:
                tally["row_hits"] += 1
            elif empty:
                tally["row_empties"] += 1
            else:
                tally["row_misses"] += 1
            tally["bytes"] += self.geometry.burst_bytes
            tally["bursts"] += 1
        self.completed.append(choice)

    def set_tenant_weight(self, tenant: int, weight: int) -> None:
        """Register one tenant's QoS arbitration weight (>= 1).

        Weighted scheduling engages only once the registered weights
        are non-uniform; a fleet of equal weights (any value) keeps the
        scheduler on the bit-identical plain FR-FCFS path.
        """
        if weight < 1:
            raise DramProtocolError(
                f"tenant weight must be >= 1, got {weight}")
        self.tenant_weights[tenant] = weight
        self._credits.setdefault(tenant, 0)
        self._weighted = len(set(self.tenant_weights.values())) > 1

    def _schedule(self, now: int) -> Optional[DramRequest]:
        """FR-FCFS: oldest row hit, else oldest request whose bank is
        ready soonest.  With non-uniform tenant weights registered,
        "issuing tenant still has deficit credit" leads the key."""
        window = self.timing.t_faw
        self._activates = [t for t in self._activates if t > now - window]
        faw_full = len(self._activates) >= self.timing.faw_activates
        skip_horizon = now + self.timing.busy_skip_cycles
        issuable = []
        for request in self.queue:
            _, bank_id, row, _ = self.geometry.map_address(request.byte_addr)
            bank = self.banks[bank_id]
            if bank.ready_at > skip_horizon:
                continue  # bank deeply busy; skip this cycle
            hit = bank.is_hit(row)
            if not hit and faw_full:
                continue  # would need an activate; tFAW window exhausted
            issuable.append((request, hit))
        if not issuable:
            return None
        if not self._weighted:
            best = None
            best_key = None
            for request, hit in issuable:
                key = (0 if hit else 1, request.arrival_cycle,
                       request.req_id)
                if best_key is None or key < best_key:
                    best, best_key = request, key
            return best
        return self._schedule_weighted(issuable)

    def _schedule_weighted(self, issuable) -> DramRequest:
        """Deficit-credit arbitration over the issuable set.

        Refill happens when no issuable request's tenant has credit:
        every tenant with *queued* work (issuable or not) gains credits
        proportional to its weight, capped so a long-blocked tenant
        cannot bank an unbounded burst.  The winner spends one credit.
        """
        credits = self._credits
        weights = self.tenant_weights
        if not any(credits.get(r.tenant, 0) > 0 for r, _ in issuable):
            for tenant in {r.tenant for r in self.queue}:
                weight = weights.get(tenant, 1)
                credits[tenant] = min(credits.get(tenant, 0) + weight,
                                      weight * _CREDIT_CAP_ROUNDS)
        best = None
        best_key = None
        for request, hit in issuable:
            key = (0 if credits.get(request.tenant, 0) > 0 else 1,
                   0 if hit else 1, request.arrival_cycle,
                   request.req_id)
            if best_key is None or key < best_key:
                best, best_key = request, key
        winner = best.tenant
        credits[winner] = credits.get(winner, 0) - 1
        contenders = {r.tenant for r, _ in issuable}
        if len(contenders) > 1:
            self._arb_tally(winner)["arb_won"] += 1
            for tenant in contenders:
                if tenant != winner:
                    self._arb_tally(tenant)["arb_deferred"] += 1
        return best

    def _arb_tally(self, tenant) -> dict:
        tally = self.arb_stats.get(tenant)
        if tally is None:
            tally = self.arb_stats[tenant] = {"arb_won": 0,
                                              "arb_deferred": 0}
        return tally

    def drain_completed(self) -> List[DramRequest]:
        """Return and clear the completed-request list."""
        done, self.completed = self.completed, []
        return done

    @property
    def pending(self) -> int:
        """Requests still queued."""
        return len(self.queue)

    def stats(self) -> dict:
        """Aggregate bank statistics."""
        return {
            "row_hits": sum(b.hits for b in self.banks),
            "row_misses": sum(b.misses for b in self.banks),
            "row_empties": sum(b.empties for b in self.banks),
            "bytes": self.bytes_moved,
        }
