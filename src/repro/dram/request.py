"""Memory requests flowing between the fabric and the DRAM model."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_ids = itertools.count()


@dataclass
class DramRequest:
    """One 64-byte burst transaction.

    ``tag`` is an opaque handle the issuer uses to match completions
    (e.g. which gather element this burst serves).
    """

    byte_addr: int
    is_write: bool = False
    tag: object = None
    req_id: int = field(default_factory=lambda: next(_ids))
    arrival_cycle: int = 0
    complete_cycle: Optional[int] = None
    #: tenant that issued the burst (stamped by the DramModel at submit
    #: time; None outside multi-tenant runs).  Drives per-tenant
    #: bandwidth accounting and interference attribution.
    tenant: Optional[int] = None

    @property
    def done(self) -> bool:
        """True once the model has scheduled the data transfer."""
        return self.complete_cycle is not None

    def __repr__(self):
        kind = "W" if self.is_write else "R"
        return f"DramRequest({kind}@{self.byte_addr:#x}, id={self.req_id})"
