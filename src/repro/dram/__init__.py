"""DDR3 memory-system model (DRAMSim2 substitute)."""

from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.model import DramModel
from repro.dram.request import DramRequest
from repro.dram.timing import (DDR3_1600, DEFAULT_GEOMETRY, DdrTiming,
                               DramGeometry)

__all__ = [
    "Bank", "Channel", "DramModel", "DramRequest",
    "DDR3_1600", "DEFAULT_GEOMETRY", "DdrTiming", "DramGeometry",
]
