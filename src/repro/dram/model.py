"""The full memory system: channels + address mapping + statistics.

This is the DRAMSim2 substitute: the fabric simulator submits 64-byte
burst requests and receives completions with cycle-accurate-in-shape
latencies (row hits/misses, bank parallelism, bus serialisation, channel
interleaving).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dram.channel import Channel
from repro.dram.request import DramRequest
from repro.dram.timing import (DDR3_1600, DEFAULT_GEOMETRY, DdrTiming,
                               DramGeometry)


class DramModel:
    """Multi-channel DDR3 memory system.

    Usage: ``submit`` burst requests (checking ``can_accept`` per
    channel), call ``tick`` once per core cycle, and consume completions
    via the optional per-request callback or ``drain_completed``.
    """

    def __init__(self, timing: DdrTiming = DDR3_1600,
                 geometry: DramGeometry = DEFAULT_GEOMETRY,
                 queue_depth: int = 64):
        self.timing = timing
        self.geometry = geometry
        self.channels = [Channel(timing, geometry, queue_depth)
                         for _ in range(geometry.channels)]
        self.cycle = 0
        self.reads = 0
        self.writes = 0
        #: tenant whose units are currently ticking (set by the
        #: multi-tenant Fabric before each tenant's tick pass; None in
        #: solo runs).  ``submit`` stamps it onto every request.
        self.tenant: Optional[int] = None
        #: tenant id -> submit/deliver tallies (multi-tenant runs only)
        self._tenant_counts: Dict[int, Dict[str, int]] = {}
        self._callbacks: Dict[int, Callable[[DramRequest], None]] = {}
        self._completed: List[DramRequest] = []

    def attach_trace(self, tracer, tenant: Optional[int] = None) -> None:
        """Register every channel as an event track on ``tracer``.

        With ``tenant`` given, the tracer only receives events for that
        tenant's requests — each co-resident tenant attaches its own
        tracer and sees its own slice of the shared channels.
        """
        for k, channel in enumerate(self.channels):
            if tenant is None:
                channel.trace = tracer
            else:
                channel.tenant_traces[tenant] = tracer
            channel.trace_name = f"ch{k}"
            tracer.register_track(channel.trace_name, "dram")

    def set_tenant_weight(self, tenant: int, weight: int) -> None:
        """Register one tenant's QoS weight on every channel.

        Weighted FR-FCFS arbitration engages only when the registered
        weights are non-uniform; equal weights (or none) keep every
        channel on the bit-identical plain FR-FCFS path.
        """
        for channel in self.channels:
            channel.set_tenant_weight(tenant, weight)

    @property
    def weighted(self) -> bool:
        """True when non-uniform weights put channels in QoS mode."""
        return any(c._weighted for c in self.channels)

    # -- submission -------------------------------------------------------------
    def channel_of(self, byte_addr: int) -> int:
        """Channel index servicing a byte address."""
        return self.geometry.map_address(byte_addr)[0]

    def can_accept(self, byte_addr: int) -> bool:
        """True when the owning channel queue has room."""
        return self.channels[self.channel_of(byte_addr)].can_accept()

    def submit(self, request: DramRequest,
               callback: Optional[Callable[[DramRequest], None]] = None
               ) -> None:
        """Enqueue one burst request (stamped with the current tenant)."""
        channel = self.channels[self.channel_of(request.byte_addr)]
        channel.submit(request, self.cycle)
        if request.is_write:
            self.writes += 1
        else:
            self.reads += 1
        tenant = self.tenant
        if tenant is not None:
            request.tenant = tenant
            counts = self._tenant_counts.get(tenant)
            if counts is None:
                counts = self._tenant_counts[tenant] = {
                    "reads": 0, "writes": 0, "submitted": 0,
                    "delivered": 0}
            counts["writes" if request.is_write else "reads"] += 1
            counts["submitted"] += 1
        if callback is not None:
            self._callbacks[request.req_id] = callback

    # -- time -------------------------------------------------------------------
    def tick(self) -> None:
        """Advance the memory system one core cycle."""
        self.cycle += 1
        for channel in self.channels:
            channel.tick(self.cycle)
            for request in channel.drain_completed():
                self._completed.append(request)

    def next_completion(self) -> Optional[int]:
        """Cycle of the earliest undelivered completion (None if none).

        Only meaningful while every channel queue is empty: queued
        requests have no completion cycle until the FR-FCFS scheduler
        issues them.
        """
        if not self._completed:
            return None
        return min(r.complete_cycle for r in self._completed)

    def advance_to(self, cycle: int) -> None:
        """Fast-forward the memory clock across provably idle cycles.

        Valid only while all channel queues are empty (ticking an empty
        channel is a no-op, so skipping those ticks is exact); in-flight
        completions mature against the advanced clock via ``deliver``.
        """
        self.cycle = cycle

    def deliver(self) -> List[DramRequest]:
        """Requests whose data transfer has finished by the current cycle.

        Completions are buffered until their ``complete_cycle`` passes,
        then returned (and callbacks fired) exactly once.
        """
        ready = [r for r in self._completed
                 if r.complete_cycle <= self.cycle]
        self._completed = [r for r in self._completed
                           if r.complete_cycle > self.cycle]
        for request in ready:
            if request.tenant is not None:
                counts = self._tenant_counts.get(request.tenant)
                if counts is not None:
                    counts["delivered"] += 1
            callback = self._callbacks.pop(request.req_id, None)
            if callback is not None:
                callback(request)
        return ready

    @property
    def idle(self) -> bool:
        """True when no work is queued or in flight."""
        return (not self._completed
                and all(not c.queue for c in self.channels))

    @property
    def pending(self) -> int:
        """Requests queued across all channels plus undelivered ones."""
        return (sum(c.pending for c in self.channels)
                + len(self._completed))

    def stats(self) -> dict:
        """Aggregate statistics across channels."""
        total = {"reads": self.reads, "writes": self.writes,
                 "row_hits": 0, "row_misses": 0, "row_empties": 0,
                 "bytes": 0}
        for channel in self.channels:
            for key, value in channel.stats().items():
                total[key] += value
        return total

    def stats_for(self, tenant: Optional[int]) -> dict:
        """Statistics for one tenant (``None`` -> aggregate ``stats``).

        Reads/writes come from submit-time tallies; row hit/miss/empty
        and byte counts are summed from the per-channel per-tenant issue
        tallies, so the sum over tenants reconciles with ``stats()``.
        """
        if tenant is None:
            return self.stats()
        counts = self._tenant_counts.get(tenant, {})
        total = {"reads": counts.get("reads", 0),
                 "writes": counts.get("writes", 0),
                 "row_hits": 0, "row_misses": 0, "row_empties": 0,
                 "bytes": 0}
        for channel in self.channels:
            tally = channel.tenant_stats.get(tenant)
            if tally is None:
                continue
            for key in ("row_hits", "row_misses", "row_empties", "bytes"):
                total[key] += tally[key]
        return total

    def progress_counts(self, tenant: Optional[int]
                        ) -> tuple:
        """(reads, writes, pending) for watchdog progress keys.

        ``None`` is the solo view; a tenant id narrows every component
        to that tenant's requests so one tenant's traffic cannot mask
        another's livelock.
        """
        if tenant is None:
            return (self.reads, self.writes, self.pending)
        counts = self._tenant_counts.get(tenant)
        if counts is None:
            return (0, 0, 0)
        return (counts["reads"], counts["writes"],
                counts["submitted"] - counts["delivered"])

    def channel_util(self, tenant: Optional[int],
                     cycles: int) -> Dict[str, Dict[str, float]]:
        """Per-channel bandwidth-utilization counters.

        For each channel: bursts issued, bytes moved, and ``util`` — the
        fraction of elapsed ``cycles`` the data bus spent transferring
        those bursts (each burst occupies ``t_burst`` bus cycles, and the
        bus serialises bursts, so ``bursts * t_burst / cycles`` is exact
        bus occupancy).  With ``tenant`` given, only that tenant's bursts
        are counted — the per-tenant utilizations sum to the aggregate.

        Channels running weighted QoS arbitration additionally report
        ``arb_won`` / ``arb_deferred`` — contested-arbitration outcomes
        per tenant (summed over tenants for the aggregate view).  The
        keys are absent outside weighted mode, keeping equal-weight
        runs bit-identical to plain FR-FCFS.
        """
        out: Dict[str, Dict[str, float]] = {}
        for k, channel in enumerate(self.channels):
            if tenant is None:
                bursts = channel.bursts
                nbytes = channel.bytes_moved
            else:
                tally = channel.tenant_stats.get(tenant)
                bursts = tally["bursts"] if tally else 0
                nbytes = tally["bytes"] if tally else 0
            util = 0.0
            if cycles > 0:
                util = min(1.0, bursts * self.timing.t_burst / cycles)
            entry: Dict[str, float] = {"bursts": bursts,
                                       "bytes": nbytes, "util": util}
            if channel._weighted:
                if tenant is None:
                    entry["arb_won"] = sum(
                        t["arb_won"] for t in channel.arb_stats.values())
                    entry["arb_deferred"] = sum(
                        t["arb_deferred"]
                        for t in channel.arb_stats.values())
                else:
                    arb = channel.arb_stats.get(
                        tenant, {"arb_won": 0, "arb_deferred": 0})
                    entry["arb_won"] = arb["arb_won"]
                    entry["arb_deferred"] = arb["arb_deferred"]
            out[f"ch{k}"] = entry
        return out

    def achieved_gbps(self) -> float:
        """Average achieved bandwidth so far (GB/s at 1 GHz)."""
        if self.cycle == 0:
            return 0.0
        return self.stats()["bytes"] / self.cycle  # bytes/ns == GB/s
