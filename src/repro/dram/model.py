"""The full memory system: channels + address mapping + statistics.

This is the DRAMSim2 substitute: the fabric simulator submits 64-byte
burst requests and receives completions with cycle-accurate-in-shape
latencies (row hits/misses, bank parallelism, bus serialisation, channel
interleaving).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dram.channel import Channel
from repro.dram.request import DramRequest
from repro.dram.timing import (DDR3_1600, DEFAULT_GEOMETRY, DdrTiming,
                               DramGeometry)


class DramModel:
    """Multi-channel DDR3 memory system.

    Usage: ``submit`` burst requests (checking ``can_accept`` per
    channel), call ``tick`` once per core cycle, and consume completions
    via the optional per-request callback or ``drain_completed``.
    """

    def __init__(self, timing: DdrTiming = DDR3_1600,
                 geometry: DramGeometry = DEFAULT_GEOMETRY,
                 queue_depth: int = 64):
        self.timing = timing
        self.geometry = geometry
        self.channels = [Channel(timing, geometry, queue_depth)
                         for _ in range(geometry.channels)]
        self.cycle = 0
        self.reads = 0
        self.writes = 0
        self._callbacks: Dict[int, Callable[[DramRequest], None]] = {}
        self._completed: List[DramRequest] = []

    def attach_trace(self, tracer) -> None:
        """Register every channel as an event track on ``tracer``."""
        for k, channel in enumerate(self.channels):
            channel.trace = tracer
            channel.trace_name = f"ch{k}"
            tracer.register_track(channel.trace_name, "dram")

    # -- submission -------------------------------------------------------------
    def channel_of(self, byte_addr: int) -> int:
        """Channel index servicing a byte address."""
        return self.geometry.map_address(byte_addr)[0]

    def can_accept(self, byte_addr: int) -> bool:
        """True when the owning channel queue has room."""
        return self.channels[self.channel_of(byte_addr)].can_accept()

    def submit(self, request: DramRequest,
               callback: Optional[Callable[[DramRequest], None]] = None
               ) -> None:
        """Enqueue one burst request."""
        channel = self.channels[self.channel_of(request.byte_addr)]
        channel.submit(request, self.cycle)
        if request.is_write:
            self.writes += 1
        else:
            self.reads += 1
        if callback is not None:
            self._callbacks[request.req_id] = callback

    # -- time -------------------------------------------------------------------
    def tick(self) -> None:
        """Advance the memory system one core cycle."""
        self.cycle += 1
        for channel in self.channels:
            channel.tick(self.cycle)
            for request in channel.drain_completed():
                self._completed.append(request)

    def next_completion(self) -> Optional[int]:
        """Cycle of the earliest undelivered completion (None if none).

        Only meaningful while every channel queue is empty: queued
        requests have no completion cycle until the FR-FCFS scheduler
        issues them.
        """
        if not self._completed:
            return None
        return min(r.complete_cycle for r in self._completed)

    def advance_to(self, cycle: int) -> None:
        """Fast-forward the memory clock across provably idle cycles.

        Valid only while all channel queues are empty (ticking an empty
        channel is a no-op, so skipping those ticks is exact); in-flight
        completions mature against the advanced clock via ``deliver``.
        """
        self.cycle = cycle

    def deliver(self) -> List[DramRequest]:
        """Requests whose data transfer has finished by the current cycle.

        Completions are buffered until their ``complete_cycle`` passes,
        then returned (and callbacks fired) exactly once.
        """
        ready = [r for r in self._completed
                 if r.complete_cycle <= self.cycle]
        self._completed = [r for r in self._completed
                           if r.complete_cycle > self.cycle]
        for request in ready:
            callback = self._callbacks.pop(request.req_id, None)
            if callback is not None:
                callback(request)
        return ready

    @property
    def idle(self) -> bool:
        """True when no work is queued or in flight."""
        return (not self._completed
                and all(not c.queue for c in self.channels))

    @property
    def pending(self) -> int:
        """Requests queued across all channels plus undelivered ones."""
        return (sum(c.pending for c in self.channels)
                + len(self._completed))

    def stats(self) -> dict:
        """Aggregate statistics across channels."""
        total = {"reads": self.reads, "writes": self.writes,
                 "row_hits": 0, "row_misses": 0, "row_empties": 0,
                 "bytes": 0}
        for channel in self.channels:
            for key, value in channel.stats().items():
                total[key] += value
        return total

    def achieved_gbps(self) -> float:
        """Average achieved bandwidth so far (GB/s at 1 GHz)."""
        if self.cycle == 0:
            return 0.0
        return self.stats()["bytes"] / self.cycle  # bytes/ns == GB/s
