"""DDR3-1600 timing parameters, expressed in 1 GHz core cycles.

The paper simulates with DRAMSim2 configured as 4x DDR3-1600 (51.2 GB/s
peak).  We keep the first-order DDR3 state machine: row activate
(RAS-to-CAS), column access (CAS latency), precharge on row conflicts,
burst transfers occupying the data bus, and a minimum row-open time.

DDR3-1600 runs its bus at 800 MHz; a burst of 8 moves 64 bytes in 5 ns.
At a 1 GHz core clock one nanosecond is one cycle, so the JEDEC numbers
round to the integers below.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DdrTiming:
    """DDR3 timing constraints in core (1 ns) cycles."""

    #: RAS-to-CAS delay: activate -> column command
    t_rcd: int = 11
    #: CAS latency: column command -> first data
    t_cas: int = 11
    #: precharge: close row -> ready to activate
    t_rp: int = 11
    #: minimum row open time: activate -> precharge
    t_ras: int = 28
    #: data-bus occupancy of one 64-byte burst
    t_burst: int = 5
    #: column-to-column command spacing
    t_ccd: int = 5
    #: write recovery before precharging a written row
    t_wr: int = 12
    #: four-activate window: at most ``faw_activates`` row activations
    #: per rank per t_faw
    t_faw: int = 30
    #: activations allowed inside one t_faw window (the "four" in
    #: four-activate window; degraded-timing fault plans may shrink it)
    faw_activates: int = 4

    @property
    def busy_skip_cycles(self) -> int:
        """Scheduler skip horizon for a deeply busy bank.

        A queued request whose bank stays busy beyond this many cycles
        is not worth considering this cycle: even a back-to-back column
        burst stream (one command per ``t_ccd``) would drain
        ``faw_activates`` commands first.  Deriving the window from the
        timing keeps degraded-timing fault plans self-consistent.
        """
        return self.t_ccd * self.faw_activates

    @property
    def row_hit_latency(self) -> int:
        """Command-to-data latency when the row is already open."""
        return self.t_cas + self.t_burst

    @property
    def row_miss_latency(self) -> int:
        """Latency when another row is open (precharge + activate)."""
        return self.t_rp + self.t_rcd + self.t_cas + self.t_burst

    @property
    def row_empty_latency(self) -> int:
        """Latency when the bank is idle (activate only)."""
        return self.t_rcd + self.t_cas + self.t_burst


DDR3_1600 = DdrTiming()


@dataclass(frozen=True)
class DramGeometry:
    """Address-mapping geometry for the simulated memory system."""

    channels: int = 4
    banks_per_channel: int = 8
    #: row size in bytes (8 KB rows: 1 KB per chip x 8 chips)
    row_bytes: int = 8192
    burst_bytes: int = 64

    def map_address(self, byte_addr: int):
        """Map a physical byte address to (channel, bank, row, col_burst).

        Bursts are interleaved across channels first (maximises channel
        parallelism for streams), then across banks, then rows — the
        standard DRAMSim2 ``scheme2``-style mapping.
        """
        burst = byte_addr // self.burst_bytes
        channel = burst % self.channels
        burst //= self.channels
        bank = burst % self.banks_per_channel
        burst //= self.banks_per_channel
        bursts_per_row = self.row_bytes // self.burst_bytes
        col = burst % bursts_per_row
        row = burst // bursts_per_row
        return channel, bank, row, col


DEFAULT_GEOMETRY = DramGeometry()
