"""Exception hierarchy for the Plasticine reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
distinguish library failures from programming errors in user code.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PatternError(ReproError):
    """Malformed parallel pattern (bad domain, bad function arity, ...)."""


class TraceError(PatternError):
    """A user function could not be traced into the symbolic expression IR."""


class IRError(ReproError):
    """Malformed DHDL IR (dangling references, invalid nesting, ...)."""


class LoweringError(ReproError):
    """Pattern-to-DHDL lowering failed."""


class MappingError(ReproError):
    """The compiler could not map a design onto the fabric.

    Raised by partitioning (virtual unit does not fit any physical unit
    shape), placement (not enough units), or routing (link capacity
    exhausted).
    """


class ConfigError(ReproError):
    """Invalid or inconsistent unit configuration ("bitstream")."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No unit made progress for the configured watchdog interval."""


class DramProtocolError(SimulationError):
    """A DRAM command violated DDR3 timing or state rules."""


class FaultError(SimulationError):
    """An injected (or detected) hardware fault surfaced during a run.

    Carries enough context to attribute the failure: the cycle at which
    the fault fired (or was detected), the unit / resource it hit, the
    fault kind, and — for multi-tenant runs — the tenant and its region.
    """

    def __init__(self, message: str, *,
                 cycle=None, unit=None, sites=None, kind=None,
                 tenant=None, region=None, detail=None):
        super().__init__(message)
        #: cycle the fault event fired at (None if unknown)
        self.cycle = cycle
        #: name of the affected unit / channel / array
        self.unit = unit
        #: grid sites ((col, row) tuples) of the affected unit, if known
        self.sites = tuple(sites) if sites else ()
        #: one of repro.faults.plan.KINDS
        self.kind = kind
        #: tenant name for multi-tenant runs (None solo)
        self.tenant = tenant
        #: (col0, row0, cols, rows) region of the affected tenant
        self.region = tuple(region) if region else None
        #: free-form context (stall attribution, checksum mismatches...)
        self.detail = detail

    def attribution(self) -> dict:
        """Structured attribution for reports and chaos logs."""
        return {"cycle": self.cycle, "unit": self.unit,
                "sites": [list(s) for s in self.sites],
                "kind": self.kind, "tenant": self.tenant,
                "region": list(self.region) if self.region else None,
                "detail": self.detail}


class ArchError(ReproError):
    """Invalid architecture parameters (out of Table 3 ranges, ...)."""


class EvalError(ReproError):
    """An evaluation harness (table/figure regeneration) failed."""
