"""Exception hierarchy for the Plasticine reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
distinguish library failures from programming errors in user code.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PatternError(ReproError):
    """Malformed parallel pattern (bad domain, bad function arity, ...)."""


class TraceError(PatternError):
    """A user function could not be traced into the symbolic expression IR."""


class IRError(ReproError):
    """Malformed DHDL IR (dangling references, invalid nesting, ...)."""


class LoweringError(ReproError):
    """Pattern-to-DHDL lowering failed."""


class MappingError(ReproError):
    """The compiler could not map a design onto the fabric.

    Raised by partitioning (virtual unit does not fit any physical unit
    shape), placement (not enough units), or routing (link capacity
    exhausted).
    """


class ConfigError(ReproError):
    """Invalid or inconsistent unit configuration ("bitstream")."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No unit made progress for the configured watchdog interval."""


class DramProtocolError(SimulationError):
    """A DRAM command violated DDR3 timing or state rules."""


class ArchError(ReproError):
    """Invalid architecture parameters (out of Table 3 ranges, ...)."""


class EvalError(ReproError):
    """An evaluation harness (table/figure regeneration) failed."""
