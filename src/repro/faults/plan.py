"""Fault plans: seeded, serializable schedules of fault events.

A :class:`FaultPlan` is a list of :class:`FaultEvent`\\ s sorted by
cycle.  Plans are *deterministic*: the same plan against the same
artifact always produces the same run, so every chaos scenario can be
replayed from its seed alone.

Event kinds
-----------
``unit_fail``     a PCU/AG leaf dies at cycle C: its datapath stops
                  responding (ticks become no-ops).  Detected by the
                  liveness watchdog and surfaced as a
                  :class:`~repro.errors.FaultError` naming the unit,
                  its placed sites and the trip cycle.
``link_degrade``  the routes feeding/draining a compute leaf degrade at
                  cycle C: ``extra`` hops of latency are added to its
                  pipeline drain.  Functionally correct, just slower.
``dram_slow``     one DRAM channel's bursts take ``extra`` additional
                  cycles from cycle C on.  Functionally correct.
``dram_corrupt``  one word of one DRAM array is bit-flipped (XOR
                  ``xor_mask``) at cycle C.  Silent at injection time;
                  detected end-to-end by DRAM-image checksums.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.errors import ConfigError

#: recognised fault kinds
KINDS = ("unit_fail", "link_degrade", "dram_slow", "dram_corrupt")

#: kinds that leave results bit-correct (slower, not wrong)
DEGRADE_KINDS = ("link_degrade", "dram_slow")

#: kinds treated as transient by recovery (retry without the event)
TRANSIENT_KINDS = ("dram_corrupt",)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    cycle: int
    kind: str
    #: leaf name (unit_fail / link_degrade)
    unit: str = ""
    #: channel index (dram_slow)
    channel: int = -1
    #: DRAM array name (dram_corrupt)
    array: str = ""
    #: word offset within the array (dram_corrupt)
    word: int = 0
    #: bit-flip mask applied to the word's raw bytes (dram_corrupt)
    xor_mask: int = 1
    #: extra latency in cycles (link_degrade / dram_slow)
    extra: int = 0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.cycle < 1:
            raise ConfigError(
                f"fault cycle must be >= 1, got {self.cycle}")

    def describe(self) -> str:
        if self.kind == "unit_fail":
            return f"@{self.cycle} unit_fail {self.unit}"
        if self.kind == "link_degrade":
            return (f"@{self.cycle} link_degrade {self.unit} "
                    f"+{self.extra}")
        if self.kind == "dram_slow":
            return (f"@{self.cycle} dram_slow ch{self.channel} "
                    f"+{self.extra}")
        return (f"@{self.cycle} dram_corrupt {self.array}[{self.word}] "
                f"^{self.xor_mask:#x}")

    def to_dict(self) -> dict:
        return {"cycle": self.cycle, "kind": self.kind,
                "unit": self.unit, "channel": self.channel,
                "array": self.array, "word": self.word,
                "xor_mask": self.xor_mask, "extra": self.extra}

    @staticmethod
    def from_dict(data: dict) -> "FaultEvent":
        return FaultEvent(**data)


@dataclass
class FaultPlan:
    """A schedule of fault events (kept sorted by cycle)."""

    events: List[FaultEvent] = field(default_factory=list)
    #: seed the plan was generated from (None for hand-built plans)
    seed: Optional[int] = None

    def __post_init__(self):
        self.events = sorted(self.events,
                             key=lambda e: (e.cycle, e.kind, e.unit,
                                            e.channel, e.array, e.word))

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        head = f"FaultPlan(seed={self.seed}): " if self.seed is not None \
            else "FaultPlan: "
        if not self.events:
            return head + "no events"
        return head + "; ".join(e.describe() for e in self.events)

    def without(self, kinds: Iterable[str]) -> "FaultPlan":
        """A copy with every event of the given kinds dropped
        (recovery: retry without the transient / re-placed faults)."""
        drop = set(kinds)
        return FaultPlan([e for e in self.events if e.kind not in drop],
                         seed=self.seed)

    def without_events(self, events: Iterable[FaultEvent]) -> "FaultPlan":
        """A copy with the specific events removed."""
        gone = set(events)
        return FaultPlan([e for e in self.events if e not in gone],
                         seed=self.seed)

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "events": [e.to_dict() for e in self.events]}

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        return FaultPlan(
            [FaultEvent.from_dict(e) for e in data["events"]],
            seed=data.get("seed"))


def random_plan(seed: int, *, units: Tuple[str, ...] = (),
                arrays: Tuple[Tuple[str, int], ...] = (),
                channels: int = 4, max_cycle: int = 1000,
                max_events: int = 3,
                kinds: Tuple[str, ...] = KINDS) -> FaultPlan:
    """A seeded random plan against one compiled design.

    ``units`` are candidate leaf names (unit_fail / link_degrade),
    ``arrays`` are ``(name, words)`` pairs (dram_corrupt), ``channels``
    the channel count (dram_slow).  Kinds with no candidates are
    skipped; an empty candidate set yields an empty plan.
    """
    rng = random.Random(seed)
    usable = [k for k in kinds
              if (k in ("unit_fail", "link_degrade") and units)
              or (k == "dram_slow" and channels > 0)
              or (k == "dram_corrupt" and arrays)]
    events: List[FaultEvent] = []
    if usable:
        for _ in range(rng.randint(1, max_events)):
            kind = rng.choice(usable)
            cycle = rng.randint(1, max(1, max_cycle))
            if kind in ("unit_fail", "link_degrade"):
                events.append(FaultEvent(
                    cycle=cycle, kind=kind, unit=rng.choice(units),
                    extra=rng.randint(4, 64)))
            elif kind == "dram_slow":
                events.append(FaultEvent(
                    cycle=cycle, kind=kind,
                    channel=rng.randrange(channels),
                    extra=rng.randint(8, 128)))
            else:
                name, words = rng.choice(arrays)
                events.append(FaultEvent(
                    cycle=cycle, kind=kind, array=name,
                    word=rng.randrange(max(1, words)),
                    xor_mask=1 << rng.randrange(31)))
    return FaultPlan(events, seed=seed)
