"""The chaos harness behind ``repro chaos``.

Every scenario draws a seeded random :class:`~repro.faults.plan.FaultPlan`
against one registry app and must terminate in one of four classified
states — never a hang, never silent corruption:

``clean``
    the run completed bit-correct and no injected event fired (the plan
    scheduled everything after the app finished);
``degraded``
    faults fired, the run still completed, and the end-to-end DRAM-image
    checksums match the golden run exactly (timing-only degradation);
``recovered``
    a fault was *detected* — a typed
    :class:`~repro.errors.FaultError` from the liveness watchdog, or an
    end-to-end checksum mismatch — and a recovery action (recompiling
    around the failed sites with ``excluded_sites``, or replaying with
    the transient corruption gone) produced a bit-correct result;
``fault``
    recovery was impossible (e.g. the grid cannot route around the dead
    units) and the scenario ends with the typed, attributed error —
    cycle, unit, sites, kind all populated.

Anything else (an untyped exception, an unattributable mismatch) is an
``error`` and fails the campaign: that is the invariant the harness
enforces.

Every ``--multi-every``-th scenario runs the multi-tenant path instead:
two apps packed on one fabric, a unit failure injected into one tenant,
detection must name the tenant and its region, and recovery migrates
the victim to a fresh rectangle via
:func:`repro.tenancy.packer.repack` and replays through
:func:`repro.tenancy.run.co_run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultError, MappingError, ReproError
from repro.faults.plan import (TRANSIENT_KINDS, FaultEvent, FaultPlan,
                               random_plan)

#: light registry apps the solo scenarios rotate through
CHAOS_APPS = ("innerproduct", "gemm", "tpchq6", "outerproduct")

#: recovery attempts per scenario before the typed error stands
MAX_RECOVERIES = 3

#: cycles without progress before a dead unit is declared (small: tiny
#: apps finish in a few hundred cycles, so detection stays fast)
WATCHDOG = 2_500

#: hard scenario bound — no chaos run may exceed this many cycles
MAX_CYCLES = 200_000


@dataclass
class _Golden:
    """Memoized no-fault reference for one (app, scale)."""

    artifact: object
    #: unit name -> placed sites (compute leaves and scratchpads)
    placed: Dict[str, List[Tuple[int, int]]]
    cycles: int
    checksums: Dict[str, int]


_GOLDEN: Dict[Tuple[str, str], _Golden] = {}


def _compile_with_sites(app: str, scale: str,
                        excluded_sites=None):
    """Compile ``app`` keeping the unit->site map the compiler knows.

    :func:`~repro.compiler.artifact.freeze_program` deliberately drops
    the compiler's ``Fabric``; chaos needs ``fabric.placed`` to turn a
    blamed unit into the sites to exclude on recompile, so this mirrors
    the freeze while keeping the map.
    """
    from repro.apps.registry import get_app
    from repro.bitstream.artifact import Bitstream, CompileOptions
    from repro.compiler.driver import compile_program
    from repro.dhdl.analysis import assign_bases
    options = CompileOptions()
    program = get_app(app).build(scale)
    compiled = compile_program(
        program, tile_words=options.tile_words,
        whole_budget=options.whole_budget,
        ags_per_transfer=options.ags_per_transfer,
        pmu_fraction=options.pmu_fraction,
        excluded_sites=excluded_sites)
    if not compiled.config.dram_base:
        compiled.config.dram_base = assign_bases(compiled.dhdl.drams)
    artifact = Bitstream(app, scale, compiled.dhdl, compiled.config,
                         options)
    placed = {name: [tuple(s) for s in sites]
              for name, sites in compiled.fabric.placed.items()}
    return artifact, placed


def _golden(app: str, scale: str) -> _Golden:
    """The memoized clean run: cycle count + DRAM-image checksums."""
    key = (app, scale)
    if key not in _GOLDEN:
        artifact, placed = _compile_with_sites(app, scale)
        machine = artifact.machine(watchdog=WATCHDOG,
                                   max_cycles=MAX_CYCLES)
        stats = machine.run()
        _GOLDEN[key] = _Golden(artifact, placed, stats.cycles,
                               machine.image.checksums())
    return _GOLDEN[key]


def _plan_for(golden: _Golden, seed: int) -> FaultPlan:
    """A seeded plan whose events can actually land mid-run."""
    artifact = golden.artifact
    units = tuple(sorted(
        name for name in golden.placed
        if name in artifact.config.leaf_timing))
    arrays = tuple(sorted(
        (ref.name, ref.words()) for ref in artifact.dhdl.drams))
    return random_plan(
        seed, units=units, arrays=arrays,
        channels=artifact.config.params.dram.channels,
        max_cycle=max(2, golden.cycles - 1))


def run_scenario(index: int, seed: int, scale: str = "tiny") -> dict:
    """One solo chaos scenario; always returns a classified record."""
    app = CHAOS_APPS[index % len(CHAOS_APPS)]
    golden = _golden(app, scale)
    plan = _plan_for(golden, seed)
    record = {"scenario": index, "app": app, "seed": seed,
              "plan": plan.describe(), "events": len(plan),
              "outcome": None, "recoveries": [],
              "attribution": None, "cycles": None}
    artifact, placed = golden.artifact, golden.placed
    excluded: List[Tuple[int, int]] = []
    current_plan = plan
    for attempt in range(1 + MAX_RECOVERIES):
        machine = artifact.machine(fault_plan=current_plan,
                                   fault_sites=placed,
                                   watchdog=WATCHDOG,
                                   max_cycles=MAX_CYCLES)
        try:
            machine.run()
        except FaultError as err:
            record["attribution"] = err.attribution()
            if (err.kind == "unit_fail" and err.sites
                    and attempt < MAX_RECOVERIES):
                # declare the blamed sites dead, recompile around
                # them, and drop that unit's kill from the replay
                excluded.extend(err.sites)
                try:
                    artifact, placed = _compile_with_sites(
                        app, scale, excluded_sites=excluded)
                except MappingError as remap:
                    record["outcome"] = "fault"
                    record["recoveries"].append(
                        f"recompile around {excluded} failed: {remap}")
                    return record
                current_plan = FaultPlan(
                    [e for e in current_plan.events
                     if not (e.kind == "unit_fail"
                             and e.unit == err.unit)],
                    seed=current_plan.seed)
                record["recoveries"].append(
                    f"excluded sites {excluded}, recompiled")
                continue
            record["outcome"] = "fault"
            return record
        except ReproError as err:
            record["outcome"] = "error"
            record["error"] = f"{type(err).__name__}: {err}"
            return record
        sums = machine.image.checksums()
        fired = machine.faults.fired if machine.faults else []
        if sums == golden.checksums:
            if attempt == 0 and not fired:
                record["outcome"] = "clean"
            elif attempt == 0:
                record["outcome"] = "degraded"
            else:
                record["outcome"] = "recovered"
            record["cycles"] = machine.cycle
            return record
        # end-to-end checksum mismatch: corruption detected.  The only
        # data-mutating kind is transient (dram_corrupt), so replaying
        # without it on the (healthy) artifact must be bit-correct.
        transient = [e for e in current_plan.events
                     if e.kind in TRANSIENT_KINDS]
        if transient and attempt < MAX_RECOVERIES:
            bad = sorted(name for name in sums
                         if sums[name] != golden.checksums.get(name))
            record["recoveries"].append(
                f"checksum mismatch in {bad}; replaying without "
                f"{len(transient)} transient event(s)")
            current_plan = current_plan.without(TRANSIENT_KINDS)
            continue
        record["outcome"] = "error"
        record["error"] = ("silent corruption: checksums diverged "
                           "with no transient event to blame")
        return record
    record["outcome"] = "error"
    record["error"] = f"no stable state after {MAX_RECOVERIES} recoveries"
    return record


def run_multi_scenario(index: int, seed: int,
                       scale: str = "tiny") -> dict:
    """A multi-tenant scenario: kill a unit inside one tenant, expect
    tenant-attributed detection, recover by migrating the tenant."""
    from repro.compiler.place_route import Region
    from repro.sim.fabric import Fabric
    from repro.tenancy.packer import pack_apps, repack
    from repro.tenancy.run import co_run
    apps = ["gemm", "tpchq6"]
    record = {"scenario": index, "app": "+".join(apps), "seed": seed,
              "outcome": None, "recoveries": [], "attribution": None,
              "cycles": None, "multi": True}
    report = pack_apps(apps, scale)
    if not report.feasible:
        record["outcome"] = "error"
        record["error"] = f"packing infeasible: {report.reason}"
        return record
    victim_index = seed % len(report.tenants)
    victim = report.tenants[victim_index]
    units = sorted(victim.artifact.config.leaf_timing)
    placed_units = [u for u in units
                    if victim.artifact.config.leaf_timing[u].num_pcus]
    if not placed_units:
        placed_units = units
    plan = FaultPlan([FaultEvent(cycle=5, kind="unit_fail",
                                 unit=placed_units[seed
                                                   % len(placed_units)])])
    record["plan"] = plan.describe()
    record["events"] = len(plan)
    fabric = Fabric(watchdog=WATCHDOG, max_cycles=MAX_CYCLES)
    for i, (tenant, app) in enumerate(zip(report.tenants, apps)):
        fabric.add_tenant(
            tenant.artifact.dhdl, tenant.artifact.config, name=app,
            fault_plan=plan if i == victim_index else None)
    try:
        fabric.run()
    except FaultError as err:
        record["attribution"] = err.attribution()
        if err.region is None or err.tenant is None:
            record["outcome"] = "error"
            record["error"] = ("multi-tenant FaultError lacks tenant/"
                               "region attribution")
            return record
        failed_region = Region(*err.region)
        new_report = repack(report, failed_region, apps, scale)
        if not new_report.feasible:
            record["outcome"] = "fault"
            record["recoveries"].append(
                f"repack out of {failed_region} infeasible: "
                f"{new_report.reason}")
            return record
        record["recoveries"].append(
            f"tenant {err.tenant} migrated out of {failed_region}")
        try:
            result = co_run(apps, scale, packing=new_report,
                            watchdog=WATCHDOG, max_cycles=MAX_CYCLES)
        except ReproError as replay:
            record["outcome"] = "error"
            record["error"] = (f"replay after repack failed: "
                               f"{type(replay).__name__}: {replay}")
            return record
        if all(t.validated for t in result.tenants):
            record["outcome"] = "recovered"
            record["cycles"] = result.fabric_cycles
        else:
            record["outcome"] = "error"
            record["error"] = "replayed tenants failed validation"
        return record
    except ReproError as err:
        record["outcome"] = "error"
        record["error"] = f"{type(err).__name__}: {err}"
        return record
    record["outcome"] = "error"
    record["error"] = ("fabric completed although a tenant unit was "
                       "killed at cycle 5 (fault never detected)")
    return record


@dataclass
class ChaosReport:
    """One campaign's worth of classified scenarios."""

    seed: int
    scale: str
    scenarios: List[dict] = field(default_factory=list)

    #: outcomes that satisfy the chaos invariant
    ACCEPTABLE = ("clean", "degraded", "recovered", "fault")

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for record in self.scenarios:
            tally[record["outcome"]] = tally.get(record["outcome"],
                                                 0) + 1
        return tally

    @property
    def ok(self) -> bool:
        return all(r["outcome"] in self.ACCEPTABLE
                   for r in self.scenarios)

    def failures(self) -> List[dict]:
        return [r for r in self.scenarios
                if r["outcome"] not in self.ACCEPTABLE]

    def as_dict(self) -> dict:
        return {"seed": self.seed, "scale": self.scale,
                "total": len(self.scenarios), "ok": self.ok,
                "counts": self.counts(),
                "scenarios": self.scenarios}

    def render(self) -> str:
        from repro.eval.report import format_table
        counts = self.counts()
        rows = [[outcome, counts.get(outcome, 0),
                 {"clean": "no event fired before completion",
                  "degraded": "faults fired, result bit-correct",
                  "recovered": "detected + recovered, bit-correct",
                  "fault": "typed FaultError, recovery impossible",
                  }.get(outcome, "INVARIANT VIOLATION")]
                for outcome in (*self.ACCEPTABLE,
                                *(k for k in sorted(counts)
                                  if k not in self.ACCEPTABLE))]
        table = format_table(
            ["outcome", "scenarios", "meaning"], rows,
            title=f"repro chaos — seed {self.seed}, "
                  f"{len(self.scenarios)} scenarios")
        lines = [table]
        for bad in self.failures():
            lines.append(f"  FAILED scenario {bad['scenario']} "
                         f"({bad['app']}): {bad.get('error')}")
        return "\n".join(lines)


def run_campaign(seed: int, scenarios: int, scale: str = "tiny",
                 multi_every: int = 10,
                 progress=None) -> ChaosReport:
    """Run ``scenarios`` seeded scenarios; deterministic per seed."""
    report = ChaosReport(seed=seed, scale=scale)
    for index in range(scenarios):
        scenario_seed = seed * 1_000_003 + index
        if multi_every and index and index % multi_every == 0:
            record = run_multi_scenario(index, scenario_seed, scale)
        else:
            record = run_scenario(index, scenario_seed, scale)
        report.scenarios.append(record)
        if progress is not None:
            progress(record)
    return report


def cmd_chaos(args) -> int:
    """``repro chaos`` behind the CLI."""
    import json
    import sys

    def progress(record):
        if args.verbose:
            print(f"  [{record['scenario']:>4}] {record['app']:<14} "
                  f"{record['outcome']:<10} "
                  f"{record.get('plan', '')}", flush=True)

    report = run_campaign(args.seed, args.scenarios, scale=args.scale,
                          multi_every=args.multi_every,
                          progress=progress)
    print(report.render())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    if not report.ok:
        print(f"\n{len(report.failures())} scenario(s) violated the "
              f"chaos invariant", file=sys.stderr)
        return 1
    return 0
