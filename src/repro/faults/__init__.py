"""Deterministic fault injection, detection, and graceful degradation.

``repro.faults`` gives the stack a first-class fault model:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a seeded, serializable
  schedule of fault events (unit failure, link degradation, DRAM
  channel slowdown, word-granular DRAM corruption);
* :mod:`repro.faults.inject` — :class:`FaultInjector`: applies a plan's
  events at their exact cycles inside a running
  :class:`~repro.sim.machine.Machine` (both schedulers, solo and
  multi-tenant), with detection via the liveness watchdog
  (:class:`~repro.errors.FaultError`) and end-to-end DRAM-image
  checksums;
* :mod:`repro.faults.chaos` — the randomized chaos harness behind
  ``repro chaos``: every scenario must terminate with either a
  bit-correct result (post-recovery) or a typed, attributed
  ``FaultError`` — never a hang, never silent corruption.

The no-fault path is bit-identical to a machine without a plan: every
injection hook is gated on ``machine.faults is not None``.
"""

from repro.errors import FaultError  # noqa: F401  (re-export)
from repro.faults.inject import FaultInjector  # noqa: F401
from repro.faults.plan import (KINDS, FaultEvent,  # noqa: F401
                               FaultPlan, random_plan)
