"""The fault injector: applies a plan's events inside a running machine.

One :class:`FaultInjector` is attached per :class:`~repro.sim.machine.
Machine` (``Machine(..., fault_plan=...)``).  Both cycle loops (dense
and event) call :meth:`apply` once per cycle — gated on
``machine.faults is not None`` so the no-fault hot path is untouched —
and the event scheduler additionally caps its fast-forward jumps at
:attr:`next_cycle` so events fire at their exact cycle.

Injection semantics
-------------------
``unit_fail``     the leaf's ``tick`` becomes a no-op: the unit stops
                  responding.  The machine's existing progress-key
                  watchdog then trips deterministically and
                  ``_raise_deadlock`` converts the trip into a typed
                  :class:`~repro.errors.FaultError`.
``link_degrade``  the compute leaf's timing gains ``extra`` cycles of
                  pipeline drain (a private copy — the shared artifact
                  config is never mutated).
``dram_slow``     the channel's ``extra_latency`` adds ``extra`` cycles
                  to every burst issued from the fault cycle on.
``dram_corrupt``  one word of one DRAM array is bit-flipped in place.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.faults.plan import FaultEvent, FaultPlan

#: sentinel "no pending event" cycle (compares greater than any cycle)
NEVER = 1 << 62


def _dead_tick(cycle: int) -> None:
    """The tick of a failed unit: silence."""


class FaultInjector:
    """Applies one plan's events to one machine at their exact cycles."""

    def __init__(self, plan: FaultPlan, machine,
                 sites: Optional[Dict[str, Sequence[Tuple[int, int]]]]
                 = None):
        self.plan = plan
        self.machine = machine
        #: unit name -> placed grid sites (compiler ``fabric.placed``);
        #: PMU placements from the artifact fill in what's missing
        self.sites: Dict[str, tuple] = {
            name: tuple(p.pmu_sites)
            for name, p in machine.config.sram_place.items()}
        if sites:
            self.sites.update({k: tuple(v) for k, v in sites.items()})
        self._pending: List[FaultEvent] = list(plan.events)
        self._leaf_by_name = {leaf.name: leaf
                              for leaf in machine._leaves}
        #: events applied so far, in firing order
        self.fired: List[FaultEvent] = []
        #: unit name -> the unit_fail event that killed it
        self.killed: Dict[str, FaultEvent] = {}

    @property
    def next_cycle(self) -> int:
        """Cycle of the earliest unfired event (NEVER when exhausted)."""
        return self._pending[0].cycle if self._pending else NEVER

    # -- firing -----------------------------------------------------------------
    def apply(self, cycle: int) -> None:
        """Fire every event due at or before ``cycle``."""
        while self._pending and self._pending[0].cycle <= cycle:
            event = self._pending.pop(0)
            self._fire(event)
            self.fired.append(event)

    def _fire(self, event: FaultEvent) -> None:
        machine = self.machine
        if event.kind == "unit_fail":
            leaf = self._leaf_by_name.get(event.unit)
            if leaf is not None:
                leaf.tick = _dead_tick
                self.killed[event.unit] = event
        elif event.kind == "link_degrade":
            leaf = self._leaf_by_name.get(event.unit)
            timing = getattr(leaf, "timing", None)
            if timing is not None:
                leaf.timing = _dc_replace(
                    timing,
                    pipeline_depth=timing.pipeline_depth + event.extra)
        elif event.kind == "dram_slow":
            channels = machine.dram.channels
            if 0 <= event.channel < len(channels):
                channels[event.channel].extra_latency += event.extra
        elif event.kind == "dram_corrupt":
            if event.array in machine.image.buffers:
                machine.image.corrupt_word(event.array, event.word,
                                           event.xor_mask)

    # -- attribution ------------------------------------------------------------
    def sites_of(self, unit: str) -> tuple:
        return tuple(self.sites.get(unit, ()))

    def blamed_event(self) -> Optional[FaultEvent]:
        """The fired event a hang should be attributed to.

        A killed unit that is still busy is the prime suspect; failing
        that, the earliest fired event.
        """
        for name, event in self.killed.items():
            leaf = self._leaf_by_name.get(name)
            if leaf is not None and leaf.busy:
                return event
        return self.fired[0] if self.fired else None

    def fault_error(self, message: str, *, cycle: int,
                    detail=None) -> FaultError:
        """A typed, attributed error for a watchdog / limit trip."""
        machine = self.machine
        event = self.blamed_event()
        unit = kind = None
        sites: tuple = ()
        if event is not None:
            kind = event.kind
            unit = (event.unit or
                    (f"ch{event.channel}" if event.kind == "dram_slow"
                     else event.array or None))
            if event.unit:
                sites = self.sites_of(event.unit)
            message = (f"{message}; injected fault: "
                       f"{event.describe()}"
                       + (f" at sites {list(sites)}" if sites else "")
                       + f"; detected at cycle {cycle}")
            cycle = event.cycle
        return FaultError(message, cycle=cycle, unit=unit, sites=sites,
                          kind=kind, tenant=machine.tenant_name,
                          region=machine.config.region, detail=detail)
