"""Common interface for the Table 4 benchmark applications.

Each app builds a :class:`~repro.patterns.program.Program` at a given
scale, can produce its expected outputs (by running the reference
executor), and reports a paper-scale
:class:`~repro.arch.workload.WorkloadProfile` for the Table 7 performance
comparison.

Scales:

* ``tiny``  — unit-test sized; compiles and simulates in well under a
  second.
* ``small`` — benchmark sized; a few thousand to tens of thousands of
  datapath operations.
* ``paper`` — Table 4 sizes; used only analytically (profiles), never
  simulated cycle-by-cycle.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

import numpy as np

from repro.arch.workload import WorkloadProfile
from repro.patterns.executor import run_program
from repro.patterns.program import Program

SCALES = ("tiny", "small", "paper")


class App:
    """Base class for one benchmark."""

    #: registry key, e.g. ``"gemm"``
    name: str = "?"
    #: Table 4 display name
    display: str = "?"
    #: True for the data-dependent (gather/scatter) benchmarks
    sparse: bool = False
    #: relative tolerance for float comparisons
    rtol: float = 1e-4
    atol: float = 1e-5

    def build(self, scale: str = "small") -> Program:
        """Construct the program (with input data) at a scale."""
        raise NotImplementedError

    def paper_profile(self) -> WorkloadProfile:
        """Work/structure profile at the paper's Table 4 dataset size."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------
    def expected(self, program: Program) -> Dict[str, np.ndarray]:
        """Ground-truth outputs via the reference executor."""
        env = run_program(program)
        return {out.name: env.buffers[out.name].copy()
                for out in program.outputs}

    def check(self, program: Program, results: Dict[str, np.ndarray],
              expected: Optional[Dict[str, np.ndarray]] = None) -> None:
        """Assert simulated results match the reference executor."""
        if expected is None:
            expected = self.expected(program)
        for name, want in expected.items():
            got = np.asarray(results[name])
            want = np.asarray(want)
            if got.shape != want.shape:
                got = got.reshape(-1)[:want.size].reshape(want.shape)
            if want.dtype.kind == "f":
                np.testing.assert_allclose(
                    got, want, rtol=self.rtol, atol=self.atol,
                    err_msg=f"{self.name}: output {name!r} mismatch")
            else:
                np.testing.assert_array_equal(
                    got, want,
                    err_msg=f"{self.name}: output {name!r} mismatch")

    def rng(self, salt: int = 0) -> np.random.Generator:
        """Deterministic per-app random source (stable across processes:
        Python's ``hash`` is randomized, ``crc32`` is not)."""
        seed = zlib.crc32(self.name.encode()) + salt
        return np.random.default_rng(seed)
