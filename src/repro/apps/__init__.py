"""The thirteen Table 4 benchmarks, in the pattern language."""

from repro.apps.base import App, SCALES
from repro.apps.dense_linalg import Gemm, InnerProduct, OuterProduct
from repro.apps.ml import Cnn, Gda, Kmeans, LogReg, Sgd
from repro.apps.registry import ALL_APPS, BY_NAME, get_app
from repro.apps.sparse import Bfs, PageRank, Smdv
from repro.apps.streaming import BlackScholes, TpchQ6

__all__ = [
    "App", "SCALES",
    "Gemm", "InnerProduct", "OuterProduct",
    "Cnn", "Gda", "Kmeans", "LogReg", "Sgd",
    "ALL_APPS", "BY_NAME", "get_app",
    "Bfs", "PageRank", "Smdv",
    "BlackScholes", "TpchQ6",
]
