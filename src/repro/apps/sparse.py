"""Sparse benchmarks: SMDV, PageRank, BFS.

Table 4: SMDV on a 3840x3840 matrix with E[nnz]/row = 60; PageRank with
100 iterations over 7680 pages; BFS over a graph with E[edges]/node = 8
and 10 layers.  All three are bound by random-access DRAM bandwidth
through the gather/scatter coalescing units, so their hot collections
are marked ``offchip``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.base import App
from repro.arch.workload import WorkloadProfile
from repro.patterns import Dyn, Fold, Program
from repro.patterns import expr as E

_SIZES = {
    # (rows, mean nnz per row)
    "smdv": {"tiny": (16, 4), "small": (64, 8), "paper": (3840, 60)},
    # (iters, pages, mean in-links)
    "pagerank": {"tiny": (2, 16, 3), "small": (3, 64, 6),
                 "paper": (100, 7680, 8)},
    # (nodes, mean degree, layers)
    "bfs": {"tiny": (24, 3, 6), "small": (96, 4, 10),
            "paper": (10 * 2 ** 10 * 8, 8, 10)},
}


def _random_csr(rng, rows: int, cols: int,
                mean_nnz: int) -> Tuple[np.ndarray, np.ndarray,
                                        np.ndarray]:
    """Random CSR structure with >=1 entry per row."""
    counts = np.maximum(1, rng.poisson(mean_nnz, rows)).astype(np.int64)
    ptr = np.zeros(rows + 1, dtype=np.int32)
    ptr[1:] = np.cumsum(counts)
    nnz = int(ptr[-1])
    col = rng.integers(0, cols, nnz).astype(np.int32)
    val = rng.standard_normal(nnz).astype(np.float32)
    return ptr, col, val


class Smdv(App):
    """Sparse matrix - dense vector multiply over CSR rows."""

    name = "smdv"
    display = "SMDV"
    rtol = 1e-3
    atol = 1e-3

    def build(self, scale: str = "small") -> Program:
        rows, mean_nnz = _SIZES[self.name][scale]
        rng = self.rng()
        ptr_d, col_d, val_d = _random_csr(rng, rows, rows, mean_nnz)
        x_d = rng.standard_normal(rows).astype(np.float32)
        p = Program(self.name)
        ptr = p.input("ptr", (rows + 1,), E.INT32, data=ptr_d)
        col = p.input("col", (len(col_d),), E.INT32, data=col_d)
        val = p.input("val", (len(val_d),), data=val_d)
        x = p.input("x", (rows,), data=x_d, offchip=True)
        y = p.output("y", (rows,))
        p.map("spmv", y, rows,
              lambda i: Fold((ptr[i], ptr[i + 1]), 0.0,
                             lambda j: val[j] * x[col[j]],
                             lambda a, b: a + b))
        return p

    def paper_profile(self) -> WorkloadProfile:
        rows, mean_nnz = _SIZES[self.name]["paper"]
        nnz = rows * mean_nnz
        return WorkloadProfile(
            self.name, flops=2.0 * nnz,
            stream_bytes=4.0 * (2 * nnz + rows),
            random_accesses=float(nnz),
            inner_parallelism=16, outer_parallelism=8, pipeline_ops=2,
            working_set_words=8192, fp_fraction=0.7,
            notes="random-access bound gather of the dense vector")


class PageRank(App):
    """Power-iteration PageRank over an in-link CSR graph."""

    name = "pagerank"
    display = "PageRank"
    rtol = 1e-3
    atol = 1e-4

    def build(self, scale: str = "small") -> Program:
        iters, pages, mean_links = _SIZES[self.name][scale]
        rng = self.rng()
        ptr_d, src_d, _ = _random_csr(rng, pages, pages, mean_links)
        out_deg = np.bincount(src_d, minlength=pages).astype(np.float32)
        out_deg = np.maximum(out_deg, 1.0)
        damp = 0.85
        base = (1.0 - damp) / pages
        p = Program(self.name)
        inptr = p.input("inptr", (pages + 1,), E.INT32, data=ptr_d)
        src = p.input("src", (len(src_d),), E.INT32, data=src_d)
        deg = p.input("deg", (pages,), data=out_deg, offchip=True)
        ranks = p.output("ranks", (pages,))
        ranks.set_data(np.full(pages, 1.0 / pages, dtype=np.float32))
        ranks.offchip = True
        fresh = p.temp("fresh", (pages,))
        with p.loop("power_iters", iters):
            p.map("contribs", fresh, pages,
                  lambda i: Fold((inptr[i], inptr[i + 1]), base,
                                 lambda e: damp * ranks[src[e]]
                                 / deg[src[e]],
                                 lambda a, b: a + b))
            p.map("publish", ranks, pages, lambda i: fresh[i]).set_par(16)
        return p

    def paper_profile(self) -> WorkloadProfile:
        iters, pages, mean_links = _SIZES[self.name]["paper"]
        edges = pages * mean_links
        return WorkloadProfile(
            self.name, flops=float(iters) * 3 * edges,
            stream_bytes=4.0 * iters * (edges + 3 * pages),
            random_accesses=float(iters) * 2 * edges,
            inner_parallelism=16, outer_parallelism=8, pipeline_ops=3,
            sequential_iters=iters, working_set_words=8192,
            fp_fraction=0.6,
            # rank fetches hit hot (high in-degree) pages repeatedly, so
            # the coalescing cache merges many of them per burst
            plasticine_coalesce_words=2.8,
            notes="gather-bound rank fetches; sequential power iterations")


class Bfs(App):
    """Frontier-based breadth-first search with gather and scatter.

    Per level: expand the frontier's adjacency (FlatMap), keep unvisited
    candidates (gathering ``levels``), scatter the new depth, and swap
    frontiers.  Candidate lists may contain duplicates within one level;
    depth writes are idempotent so the result is exact BFS levels.
    """

    name = "bfs"
    display = "BFS"

    def build(self, scale: str = "small") -> Program:
        nodes, degree, layers = _SIZES[self.name][scale]
        if scale == "paper":
            nodes = 8192  # profile only; never built at full paper scale
        rng = self.rng()
        ptr_d, nbr_d, _ = _random_csr(rng, nodes, nodes, degree)
        max_cand = int(ptr_d[-1]) + 1
        p = Program(self.name)
        ptr = p.input("ptr", (nodes + 1,), E.INT32, data=ptr_d)
        nbr = p.input("nbr", (len(nbr_d),), E.INT32, data=nbr_d)
        levels = p.output("levels", (nodes,), E.INT32)
        init_levels = np.full(nodes, -1, dtype=np.int32)
        init_levels[0] = 0
        levels.set_data(init_levels)
        levels.offchip = True
        flen = p.temp("flen", (), E.INT32, data=np.int32(1))
        clen = p.temp("clen", (), E.INT32)
        nlen = p.temp("nlen", (), E.INT32)
        frontier = p.temp("frontier", (Dyn(flen),), E.INT32,
                          max_elems=nodes)
        cand = p.temp("cand", (Dyn(clen),), E.INT32, max_elems=max_cand)
        nxt = p.temp("nxt", (Dyn(nlen),), E.INT32, max_elems=max_cand)
        depth = p.temp("depth", (), E.INT32)
        # the loop bound covers any reachable depth at the scaled sizes
        # (the frontier-empty check exits early); the paper-scale profile
        # uses the nominal 10 layers
        trip = layers + 1 if scale == "paper" else nodes
        with p.loop("levels_loop", trip, stop_when_zero=flen,
                    index_cell=depth):
            # the frontier is the set of nodes at the current depth
            p.filter("frontier_scan", frontier, flen, nodes,
                     cond=lambda v: levels[v].eq(depth.scalar()),
                     value=lambda v: E.to_int(v))
            # expand all adjacency of the frontier (duplicates allowed)
            p.flatmap("expand", cand, clen,
                      (Dyn(flen),
                       lambda f: (ptr[frontier[f]],
                                  ptr[frontier[f] + 1])),
                      lambda f, e: [(E.wrap(True), nbr[e])])
            # keep unvisited candidates (gathers `levels` from DRAM)
            p.filter("unvisited", nxt, nlen, Dyn(clen),
                     cond=lambda i: levels[cand[i]].eq(-1),
                     value=lambda i: cand[i])
            # scatter the new depth (idempotent under duplicates)
            p.scatter("mark", levels, Dyn(nlen),
                      index=lambda i: nxt[i],
                      value=lambda i: depth.scalar() + 1)
        return p

    def expected(self, program: Program):
        """BFS levels via a plain numpy/python reference.

        The pattern-level executor also computes this, but an
        independent implementation guards against shared bugs.
        """
        ptr = program.arrays["ptr"].data
        nbr = program.arrays["nbr"].data
        nodes = program.arrays["levels"].shape[0]
        levels = np.full(nodes, -1, dtype=np.int32)
        levels[0] = 0
        frontier = [0]
        depth = 0
        while frontier:
            nxt = set()
            for node in frontier:
                for e in range(ptr[node], ptr[node + 1]):
                    t = int(nbr[e])
                    if levels[t] == -1:
                        levels[t] = depth + 1
                        nxt.add(t)
            frontier = sorted(nxt)
            depth += 1
        return {"levels": levels}

    def paper_profile(self) -> WorkloadProfile:
        nodes, degree, layers = _SIZES[self.name]["paper"]
        edges = nodes * degree
        return WorkloadProfile(
            self.name, flops=3.0 * edges,
            stream_bytes=4.0 * (edges + 4 * nodes),
            random_accesses=2.0 * edges,  # level gathers + depth scatters
            inner_parallelism=16, outer_parallelism=8, pipeline_ops=2,
            sequential_iters=layers, working_set_words=8192,
            fp_fraction=0.0,
            notes="gather+scatter bound frontier expansion")
