"""Machine-learning benchmarks: GDA, LogReg, SGD, Kmeans, CNN.

Table 4: GDA over 3.84 M 96-dim points; LogReg 5 iters x 1536 points x
384 dims; SGD 30 iters x 38400 points x 768 dims; Kmeans 50 iters x 1536
points x 96 dims, K=20; CNN with 884,736 weights over 57,600 inputs.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.arch.workload import WorkloadProfile
from repro.patterns import Fold, Program, maximum, relu, select, sigmoid
from repro.patterns import expr as E

_SIZES = {
    # (points, dims)
    "gda": {"tiny": (16, 4), "small": (96, 8),
            "paper": (3_840_000, 96)},
    # (iters, points, dims)
    "logreg": {"tiny": (2, 16, 4), "small": (3, 64, 8),
               "paper": (5, 1536, 384)},
    # (iters, batch, dims)
    "sgd": {"tiny": (2, 8, 4), "small": (4, 16, 8),
            "paper": (30, 1280, 768)},
    # (iters, points, dims, k)
    "kmeans": {"tiny": (2, 16, 2, 2), "small": (3, 48, 4, 4),
               "paper": (50, 1536, 96, 20)},
    # (in_ch, out_ch, img, kernel)
    "cnn": {"tiny": (2, 2, 6, 3), "small": (2, 4, 12, 3),
            "paper": (96, 256, 27, 5)},
}


class Gda(App):
    """Gaussian discriminant analysis: per-class scatter matrix.

    The heavy kernel is the covariance update
    ``sigma[j,k] = sum_i (x[i,j]-mu[j]) * (x[i,k]-mu[k])`` — a 2-d Map of
    a Fold over points, preceded by a mean computation.
    """

    name = "gda"
    display = "GDA"
    rtol = 1e-3
    atol = 1e-2

    def build(self, scale: str = "small") -> Program:
        n, d = _SIZES[self.name][scale]
        rng = self.rng()
        x_data = rng.standard_normal((n, d)).astype(np.float32)
        p = Program(self.name)
        x = p.input("x", (n, d), data=x_data)
        mu = p.temp("mu", (d,))
        sigma = p.output("sigma", (d, d))
        p.map("mean", mu, d,
              lambda j: Fold(n, 0.0, lambda i: x[i, j] * (1.0 / n),
                             lambda a, b: a + b)).set_par(1, inner=16)
        step = p.map("scatter_matrix", sigma, (d, d),
                     lambda j, k: Fold(n, 0.0,
                                       lambda i: (x[i, j] - mu[j])
                                       * (x[i, k] - mu[k]),
                                       lambda a, b: a + b))
        step.set_par(1, 1, inner=16, outer=2 if scale != "tiny" else 1)
        return p

    def paper_profile(self) -> WorkloadProfile:
        n, d = _SIZES[self.name]["paper"]
        flops = 3.0 * n * d * d + 2.0 * n * d
        return WorkloadProfile(
            self.name, flops=flops, stream_bytes=4.0 * n * d * (d / 32),
            inner_parallelism=16, outer_parallelism=16, pipeline_ops=3,
            working_set_words=96 * 96 + 16 * 96,
            # paper: like GEMM, BRAM-limited banking caps FPGA throughput
            fpga_parallelism=110,
            notes="compute bound; point tiles reused across (j,k) blocks")


class LogReg(App):
    """Batch-gradient logistic regression (sequential outer loop)."""

    name = "logreg"
    display = "LogReg"
    rtol = 1e-3
    atol = 1e-3

    def build(self, scale: str = "small") -> Program:
        iters, n, d = _SIZES[self.name][scale]
        rng = self.rng()
        x_data = rng.standard_normal((n, d)).astype(np.float32)
        y_data = (rng.uniform(0, 1, n) > 0.5).astype(np.float32)
        lr = 0.1
        p = Program(self.name)
        x = p.input("x", (n, d), data=x_data)
        y = p.input("y", (n,), data=y_data)
        w = p.output("w", (d,), max_elems=None)
        w.set_data(np.zeros(d, dtype=np.float32))
        s = p.temp("scores", (n,))
        grad = p.temp("grad", (d,))
        with p.loop("epochs", iters):
            p.map("scores_step", s, n,
                  lambda i: Fold(d, 0.0, lambda j: w[j] * x[i, j],
                                 lambda a, b: a + b)).set_par(1, inner=16)
            p.map("grad_step", grad, d,
                  lambda j: Fold(n, 0.0,
                                 lambda i: (sigmoid(s[i]) - y[i])
                                 * x[i, j] * (1.0 / n),
                                 lambda a, b: a + b)).set_par(1, inner=16)
            p.map("update_w", w, d,
                  lambda j: w[j] - lr * grad[j]).set_par(16)
        return p

    def paper_profile(self) -> WorkloadProfile:
        iters, n, d = _SIZES[self.name]["paper"]
        flops = iters * (4.0 * n * d + 2.0 * d)
        return WorkloadProfile(
            self.name, flops=flops,
            stream_bytes=4.0 * iters * 2 * n * d,
            inner_parallelism=16, outer_parallelism=8, pipeline_ops=4,
            sequential_iters=iters,
            working_set_words=n * d // 4,
            # paper: Plasticine processes more tiles in parallel at a
            # faster clock; the FPGA re-streams x per weight block
            fpga_parallelism=24, fpga_traffic_factor=4.0,
            fpga_overlap=0.0,
            notes="tiled compute inside a sequential training loop")


class Sgd(App):
    """Minibatch stochastic gradient descent on a linear model.

    Each sequential iteration takes one batch (offset by the loop index)
    and updates the weights — the paper's example of an inherently
    sequential outer pattern.
    """

    name = "sgd"
    display = "SGD"
    rtol = 1e-3
    atol = 1e-3

    def build(self, scale: str = "small") -> Program:
        iters, batch, d = _SIZES[self.name][scale]
        n = iters * batch
        rng = self.rng()
        x_data = rng.standard_normal((n, d)).astype(np.float32)
        y_data = rng.standard_normal(n).astype(np.float32)
        lr = 0.05
        p = Program(self.name)
        x = p.input("x", (n, d), data=x_data)
        y = p.input("y", (n,), data=y_data)
        w = p.output("w", (d,))
        w.set_data(np.zeros(d, dtype=np.float32))
        it = p.temp("it", (), E.INT32)
        err = p.temp("err", (batch,))
        grad = p.temp("grad", (d,))
        with p.loop("steps", iters, index_cell=it):
            p.map("residual", err, batch,
                  lambda i: Fold(d, 0.0,
                                 lambda j: w[j]
                                 * x[it.scalar() * batch + i, j],
                                 lambda a, b: a + b)).set_par(1, inner=16)
            p.map("gradient", grad, d,
                  lambda j: Fold(batch, 0.0,
                                 lambda i: (err[i]
                                            - y[it.scalar() * batch + i])
                                 * x[it.scalar() * batch + i, j]
                                 * (1.0 / batch),
                                 lambda a, b: a + b)).set_par(1, inner=16)
            p.map("take_step", w, d,
                  lambda j: w[j] - lr * grad[j]).set_par(16)
        return p

    def paper_profile(self) -> WorkloadProfile:
        iters, batch, d = _SIZES[self.name]["paper"]
        flops = iters * (4.0 * batch * d + 2.0 * d)
        return WorkloadProfile(
            self.name, flops=flops,
            stream_bytes=4.0 * iters * 2 * batch * d,
            inner_parallelism=16, outer_parallelism=2, pipeline_ops=4,
            sequential_iters=iters,
            working_set_words=batch * d // 8,
            # paper: the minibatch exposes little parallelism; the win
            # is mostly Plasticine's clock
            fpga_parallelism=20,
            notes="small parallel work per inherently sequential step")


class Kmeans(App):
    """K-means clustering with a dense HashReduce for the centroids."""

    name = "kmeans"
    display = "Kmeans"
    rtol = 1e-3
    atol = 1e-3

    def build(self, scale: str = "small") -> Program:
        iters, n, d, k = _SIZES[self.name][scale]
        rng = self.rng()
        x_data = rng.standard_normal((n, d)).astype(np.float32)
        c_init = x_data[:k].copy()
        p = Program(self.name)
        x = p.input("x", (n, d), data=x_data)
        cents = p.output("centroids", (k, d))
        cents.set_data(c_init)
        dists = p.temp("dists", (n, k))
        best = p.temp("best", (n,))
        assign = p.temp("assign", (n,), E.INT32)
        sums = p.temp("sums", (k * d,))
        counts = p.temp("counts", (k,), E.INT32)
        with p.loop("rounds", iters):
            p.map("distances", dists, (n, k),
                  lambda i, c: Fold(d, 0.0,
                                    lambda j: (x[i, j] - cents[c, j])
                                    * (x[i, j] - cents[c, j]),
                                    lambda a, b: a + b)
                  ).set_par(1, 1, inner=min(16, d))
            p.map("assignment", (best, assign), n,
                  lambda i: Fold(k, (1e30, 0),
                                 lambda c: (dists[i, c], E.to_int(c)),
                                 lambda a, b: (
                                     select(b[0] < a[0], b[0], a[0]),
                                     select(b[0] < a[0], b[1], a[1])))
                  ).set_par(1, inner=min(16, k))
            p.hash_reduce("accumulate", sums, (n, d), k * d,
                          key=lambda i, j: assign[i] * d + j,
                          value=lambda i, j: x[i, j],
                          r=lambda a, b: a + b).set_par(1, min(16, d))
            p.hash_reduce("population", counts, n, k,
                          key=lambda i: assign[i],
                          value=lambda i: 1,
                          r=lambda a, b: a + b, init=0).set_par(16)
            p.map("new_centroids", cents, (k, d),
                  lambda c, j: sums[c * d + j]
                  / maximum(E.to_float(counts[c]), 1.0)
                  ).set_par(1, min(16, d))
        return p

    def paper_profile(self) -> WorkloadProfile:
        iters, n, d, k = _SIZES[self.name]["paper"]
        flops = iters * (3.0 * n * d * k + 2.0 * n * d)
        return WorkloadProfile(
            self.name, flops=flops, stream_bytes=4.0 * iters * n * d,
            inner_parallelism=16, outer_parallelism=4, pipeline_ops=3,
            sequential_iters=iters,
            working_set_words=k * d * 2 + 4096,
            # paper: "largely due to Plasticine's higher clock" -- both
            # sides exploit the same limited parallelism
            plasticine_parallelism=64, fpga_parallelism=64,
            notes="sequential rounds; HashReduce centroids on chip")


class Cnn(App):
    """One convolution layer + ReLU with line-buffered sliding windows."""

    name = "cnn"
    display = "CNN"
    rtol = 1e-3
    atol = 1e-3

    def build(self, scale: str = "small") -> Program:
        in_ch, out_ch, img, ker = _SIZES[self.name][scale]
        out_img = img - ker + 1
        rng = self.rng()
        img_data = rng.standard_normal((in_ch, img, img)).astype(
            np.float32)
        w_data = (rng.standard_normal((out_ch, in_ch, ker, ker))
                  * 0.1).astype(np.float32)
        p = Program(self.name)
        image = p.input("image", (in_ch, img, img), data=img_data)
        weights = p.input("weights", (out_ch, in_ch, ker, ker),
                          data=w_data)
        fmap = p.output("fmap", (out_ch, out_img, out_img))
        step = p.map(
            "conv", fmap, (out_ch, out_img, out_img),
            lambda oc, oy, ox: Fold(
                (in_ch, ker, ker), 0.0,
                lambda ic, ky, kx: weights[oc, ic, ky, kx]
                * image[ic, oy + ky, ox + kx],
                lambda a, b: a + b))
        step.set_par(1, 1, 1, inner=min(16, ker * ker))
        relu_out = p.output("activated", (out_ch, out_img, out_img))
        p.map("relu", relu_out, (out_ch, out_img, out_img),
              lambda oc, oy, ox: relu(fmap[oc, oy, ox])).set_par(1, 1, 16)
        # 2x2 max pooling over the activation (CNNs "involve multiple
        # layers of computation"); odd edges are truncated
        pool_img = out_img // 2
        pooled = p.output("pooled", (out_ch, pool_img, pool_img))
        p.map("maxpool", pooled, (out_ch, pool_img, pool_img),
              lambda oc, py, px: Fold(
                  (2, 2), -1e30,
                  lambda wy, wx: relu_out[oc, py * 2 + wy, px * 2 + wx],
                  lambda a, b: maximum(a, b))).set_par(1, 1, 8)
        return p

    def paper_profile(self) -> WorkloadProfile:
        in_ch, out_ch, img, ker = _SIZES[self.name]["paper"]
        out_img = img - ker + 1
        flops = 2.0 * out_ch * out_img * out_img * in_ch * ker * ker
        return WorkloadProfile(
            self.name, flops=flops,
            stream_bytes=4.0 * (in_ch * img * img * 4
                                + out_ch * in_ch * ker * ker
                                + out_ch * out_img * out_img),
            inner_parallelism=16, outer_parallelism=32, pipeline_ops=2,
            working_set_words=in_ch * img * ker + out_img * out_img,
            # paper: the FPGA cannot bank enough sliding-window buffers
            # to feed wide convolution arrays
            fpga_parallelism=64, fpga_overlap=0.0,
            notes="highest compute density; line buffers capture reuse")
