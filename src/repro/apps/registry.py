"""Registry of the Table 4 benchmark applications."""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import App
from repro.apps.dense_linalg import Gemm, InnerProduct, OuterProduct
from repro.apps.ml import Cnn, Gda, Kmeans, LogReg, Sgd
from repro.apps.sparse import Bfs, PageRank, Smdv
from repro.apps.streaming import BlackScholes, TpchQ6

#: Table 4 order
ALL_APPS: List[App] = [
    InnerProduct(), OuterProduct(), BlackScholes(), TpchQ6(), Gemm(),
    Gda(), LogReg(), Sgd(), Kmeans(), Cnn(), Smdv(), PageRank(), Bfs(),
]

BY_NAME: Dict[str, App] = {app.name: app for app in ALL_APPS}

DENSE = [a for a in ALL_APPS if not a.sparse]
SPARSE_NAMES = ("smdv", "pagerank", "bfs")
for _name in SPARSE_NAMES:
    BY_NAME[_name].sparse = True


def get_app(name: str) -> App:
    """Look up a benchmark by its registry name."""
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: "
            f"{sorted(BY_NAME)}") from None
