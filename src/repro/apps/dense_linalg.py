"""Dense linear-algebra benchmarks: InnerProduct, OuterProduct, GEMM.

Table 4: InnerProduct over 768 M float32 elements; OuterProduct over
76,800 x 76,800; GEMM 47x7680 * 7680x3840.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.arch.workload import WorkloadProfile
from repro.patterns import Fold, Program

_SIZES = {
    "innerproduct": {"tiny": 64, "small": 4096, "paper": 768_000_000},
    "outerproduct": {"tiny": 8, "small": 96, "paper": 76_800},
    "gemm": {"tiny": (4, 8, 4), "small": (24, 64, 16),
             "paper": (47, 7680, 3840)},
}


class InnerProduct(App):
    """Dot product of two long vectors: a pure streaming Fold."""

    name = "innerproduct"
    display = "Inner Product"
    rtol = 1e-3
    atol = 1e-2

    def build(self, scale: str = "small") -> Program:
        n = _SIZES[self.name][scale]
        rng = self.rng()
        a_data = rng.standard_normal(n).astype(np.float32)
        b_data = rng.standard_normal(n).astype(np.float32)
        p = Program(self.name)
        a = p.input("a", (n,), data=a_data)
        b = p.input("b", (n,), data=b_data)
        out = p.output("dot")
        p.fold("dot_product", out, n, 0.0,
               lambda i: a[i] * b[i],
               lambda x, y: x + y).set_par(
                   16, outer=4 if scale != "tiny" else 1)
        return p

    def paper_profile(self) -> WorkloadProfile:
        n = _SIZES[self.name]["paper"]
        return WorkloadProfile(
            self.name, flops=2.0 * n, stream_bytes=8.0 * n,
            inner_parallelism=16, outer_parallelism=4, pipeline_ops=2,
            working_set_words=2 * 4096,
            fpga_overlap=1.0,  # a pure stream trivially double-buffers
            fpga_parallelism=256,
            notes="memory-bandwidth bound stream")


class OuterProduct(App):
    """Outer product of two vectors: a 2-d Map with tiled reuse."""

    name = "outerproduct"
    display = "Outer Product"

    def build(self, scale: str = "small") -> Program:
        n = _SIZES[self.name][scale]
        rng = self.rng()
        a_data = rng.standard_normal(n).astype(np.float32)
        b_data = rng.standard_normal(n).astype(np.float32)
        p = Program(self.name)
        a = p.input("a", (n,), data=a_data)
        b = p.input("b", (n,), data=b_data)
        c = p.output("c", (n, n))
        step = p.map("outer", c, (n, n), lambda i, j: a[i] * b[j])
        step.set_par(1, 1, outer=2 if scale != "tiny" else 1)
        step.tile = (32, 32)
        return p

    def paper_profile(self) -> WorkloadProfile:
        n = _SIZES[self.name]["paper"]
        return WorkloadProfile(
            self.name, flops=float(n) * n,
            stream_bytes=4.0 * (n * n + 2 * n),
            inner_parallelism=16, outer_parallelism=8, pipeline_ops=1,
            working_set_words=3 * 512 * 512,
            # paper: FPGA limited by multi-ported buffers -> little inner
            # parallelism, no compute/DRAM overlap, smaller tiles
            fpga_parallelism=16, fpga_traffic_factor=2.0,
            fpga_overlap=0.0,
            notes="bandwidth bound with tile reuse of the input vectors")


class Gemm(App):
    """Single-precision matrix multiply: tiled Map{Fold}."""

    name = "gemm"
    display = "GEMM"
    rtol = 1e-3
    atol = 1e-3

    def build(self, scale: str = "small") -> Program:
        m, k, n = _SIZES[self.name][scale]
        rng = self.rng()
        a_data = rng.standard_normal((m, k)).astype(np.float32)
        b_data = rng.standard_normal((k, n)).astype(np.float32)
        p = Program(self.name)
        a = p.input("a", (m, k), data=a_data)
        b = p.input("b", (k, n), data=b_data)
        c = p.output("c", (m, n))
        step = p.map("matmul", c, (m, n),
                     lambda i, j: Fold(k, 0.0,
                                       lambda kk: a[i, kk] * b[kk, j],
                                       lambda x, y: x + y))
        # paper: multiple input tiles processed in parallel (outer
        # unrolling duplicates the tile pipeline)
        step.set_par(1, 1, inner=16, outer=2 if scale != "tiny" else 1)
        step.tile = (8, 16)
        return p

    def paper_profile(self) -> WorkloadProfile:
        m, k, n = _SIZES[self.name]["paper"]
        flops = 2.0 * m * k * n
        bytes_moved = 4.0 * (m * k + k * n * (m / 47.0 / 16)
                             + m * n)  # B tiles re-streamed per row block
        return WorkloadProfile(
            self.name, flops=flops, stream_bytes=bytes_moved,
            inner_parallelism=16, outer_parallelism=16, pipeline_ops=2,
            working_set_words=256 * 1024 // 4 * 8,
            # paper: FPGA exhausts BRAM on banked double-buffered tiles
            # long before compute, capping its throughput
            fpga_parallelism=88,
            notes="compute bound; locality captured in banked tiles")
