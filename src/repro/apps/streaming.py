"""Streaming benchmarks: Black-Scholes and TPC-H Query 6.

Table 4: Black-Scholes over 96 M option entries; TPC-H Q6 over 960 M
line items.  Black-Scholes is compute bound (a very deep per-element
pipeline); Q6 is a pure filter-reduce stream.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.arch.workload import WorkloadProfile
from repro.patterns import Program, exp, log, select, sqrt
from repro.patterns import expr as E

_SIZES = {
    "blackscholes": {"tiny": 32, "small": 1024, "paper": 96_000_000},
    "tpchq6": {"tiny": 64, "small": 4096, "paper": 960_000_000},
}


def _cnd(x):
    """Cumulative normal distribution (Abramowitz-Stegun polynomial),
    built from traced ops only."""
    inv_sqrt2pi = 0.3989422804014327
    a1, a2, a3, a4, a5 = (0.31938153, -0.356563782, 1.781477937,
                          -1.821255978, 1.330274429)
    absx = E.absolute(x)
    k = 1.0 / (1.0 + 0.2316419 * absx)
    poly = k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))))
    pdf = inv_sqrt2pi * exp(-0.5 * absx * absx)
    cnd_pos = 1.0 - pdf * poly
    return select(x < 0.0, 1.0 - cnd_pos, cnd_pos)


def _blackscholes_call(price, strike, t, rate, vol):
    sqrt_t = sqrt(t)
    d1 = (log(price / strike) + (rate + 0.5 * vol * vol) * t) / \
        (vol * sqrt_t)
    d2 = d1 - vol * sqrt_t
    return price * _cnd(d1) - strike * exp(-rate * t) * _cnd(d2)


def _cnd_np(x):
    inv_sqrt2pi = 0.3989422804014327
    a = (0.31938153, -0.356563782, 1.781477937, -1.821255978, 1.330274429)
    absx = np.abs(x)
    k = 1.0 / (1.0 + 0.2316419 * absx)
    poly = k * (a[0] + k * (a[1] + k * (a[2] + k * (a[3] + k * a[4]))))
    pdf = inv_sqrt2pi * np.exp(-0.5 * absx * absx)
    cnd_pos = 1.0 - pdf * poly
    return np.where(x < 0, 1.0 - cnd_pos, cnd_pos)


class BlackScholes(App):
    """European call option pricing: ~60-op pipeline per element."""

    name = "blackscholes"
    display = "Black-Scholes"
    rtol = 1e-3
    atol = 1e-3

    def build(self, scale: str = "small") -> Program:
        n = _SIZES[self.name][scale]
        rng = self.rng()
        price = (rng.uniform(10, 100, n)).astype(np.float32)
        strike = (rng.uniform(10, 100, n)).astype(np.float32)
        t = (rng.uniform(0.2, 2.0, n)).astype(np.float32)
        rate, vol = 0.02, 0.30
        p = Program(self.name)
        s0 = p.input("price", (n,), data=price)
        k0 = p.input("strike", (n,), data=strike)
        t0 = p.input("time", (n,), data=t)
        out = p.output("call", (n,))
        p.map("price_options", out, n,
              lambda i: _blackscholes_call(s0[i], k0[i], t0[i], rate,
                                           vol)).set_par(
                  16, outer=2 if scale != "tiny" else 1)
        return p

    def numpy_reference(self, price, strike, t, rate=0.02, vol=0.30):
        """Closed-form numpy pricing (for doc/examples cross-checking)."""
        sqrt_t = np.sqrt(t)
        d1 = (np.log(price / strike) + (rate + 0.5 * vol ** 2) * t) / \
            (vol * sqrt_t)
        d2 = d1 - vol * sqrt_t
        return price * _cnd_np(d1) - strike * np.exp(-rate * t) * \
            _cnd_np(d2)

    def paper_profile(self) -> WorkloadProfile:
        n = _SIZES[self.name]["paper"]
        ops_per_elem = 60
        return WorkloadProfile(
            self.name, flops=float(ops_per_elem) * n,
            stream_bytes=4.0 * 4 * n,
            inner_parallelism=16, outer_parallelism=42,
            pipeline_ops=ops_per_elem,
            working_set_words=4 * 4096,
            # paper: the FPGA runs out of area for the ~60-op FP32
            # pipeline (log/exp/div consume many DSPs + ALMs) long
            # before it saturates DRAM
            fpga_parallelism=200,
            notes="deep pipeline; Plasticine turns it memory bound")


class TpchQ6(App):
    """TPC-H query 6: filter line items then sum discounted revenue."""

    name = "tpchq6"
    display = "TPC-H Query 6"
    rtol = 1e-3
    atol = 1e-2

    def build(self, scale: str = "small") -> Program:
        n = _SIZES[self.name][scale]
        rng = self.rng()
        dates = rng.integers(0, 1000, n).astype(np.int32)
        quantities = rng.integers(1, 50, n).astype(np.int32)
        prices = rng.uniform(100, 1000, n).astype(np.float32)
        discounts = rng.uniform(0.0, 0.1, n).astype(np.float32)
        p = Program(self.name)
        date = p.input("shipdate", (n,), E.INT32, data=dates)
        qty = p.input("quantity", (n,), E.INT32, data=quantities)
        price = p.input("price", (n,), data=prices)
        disc = p.input("discount", (n,), data=discounts)
        revenue = p.output("revenue")

        def item_revenue(i):
            keep = ((date[i] >= 200) & (date[i] < 600)
                    & (disc[i] >= 0.02) & (disc[i] <= 0.08)
                    & (qty[i] < 24))
            return select(keep, price[i] * disc[i], 0.0)

        p.fold("query6", revenue, n, 0.0, item_revenue,
               lambda x, y: x + y).set_par(
                   16, outer=4 if scale != "tiny" else 1)
        return p

    def paper_profile(self) -> WorkloadProfile:
        n = _SIZES[self.name]["paper"]
        return WorkloadProfile(
            self.name, flops=8.0 * n, stream_bytes=16.0 * n,
            inner_parallelism=16, outer_parallelism=4, pipeline_ops=8,
            working_set_words=4 * 4096,
            fpga_overlap=1.0,  # streaming filter double-buffers cleanly
            fpga_parallelism=256,  # cheap int compare/select logic
            notes="memory-bandwidth bound filter-reduce")
