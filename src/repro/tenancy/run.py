"""High-level co-residency driver: pack, co-simulate, validate.

:func:`co_run` is the one call the CLI, serve tier and benchmarks use:
given a list of registry apps it packs them onto disjoint regions,
runs them as tenants of one shared :class:`~repro.sim.fabric.Fabric`,
checks every tenant's outputs against the reference executor, and
returns per-tenant statistics plus fabric-level channel utilization.

A single-app call takes the solo path (full-grid compile, one tenant),
which is bit-identical to ``Machine.run`` — so callers can use
``co_run`` uniformly and the N=1 case degrades to exactly the classic
flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.params import DEFAULT, PlasticineParams
from repro.bitstream.artifact import CompileOptions
from repro.errors import MappingError
from repro.sim.fabric import Fabric
from repro.sim.stats import SimStats
from repro.tenancy.packer import PackReport, pack_apps


@dataclass
class TenantResult:
    """Outcome of one tenant's execution on the shared fabric."""

    app: str
    #: unique tenant name ("gemm", "gemm#1", ...)
    name: str
    stats: SimStats
    #: (col0, row0, cols, rows) or None for the solo full-grid path
    region: Optional[tuple]
    finish_cycle: int
    #: this tenant's share of each DRAM channel over the whole run
    channel_util: Dict[str, Dict[str, float]]
    validated: bool = False
    #: QoS weight in the shared DRAM arbitration (1 = best effort)
    priority: int = 1


@dataclass
class CoRunResult:
    """Everything one co-resident run produced."""

    tenants: List[TenantResult]
    #: cycle the last tenant finished (fabric makespan)
    fabric_cycles: int
    #: aggregate per-channel utilization over the makespan
    channel_util: Dict[str, Dict[str, float]]
    pack_report: Optional[dict] = None
    #: per-tenant QoS view (weights + arbitration outcomes); see
    #: :meth:`repro.sim.fabric.Fabric.qos_summary`
    qos: Optional[dict] = None

    def by_name(self) -> Dict[str, TenantResult]:
        return {t.name: t for t in self.tenants}

    def as_dict(self) -> dict:
        return {
            "fabric_cycles": self.fabric_cycles,
            "channel_util": self.channel_util,
            "pack_report": self.pack_report,
            "qos": self.qos,
            "tenants": [
                {"app": t.app, "name": t.name,
                 "region": list(t.region) if t.region else None,
                 "finish_cycle": t.finish_cycle,
                 "validated": t.validated,
                 "priority": t.priority,
                 "stats": t.stats.as_dict()}
                for t in self.tenants],
        }


def co_run(apps: Sequence[str], scale: str = "tiny",
           params: PlasticineParams = DEFAULT,
           options: Optional[CompileOptions] = None,
           watchdog: int = 50_000,
           max_cycles: int = 20_000_000,
           validate: bool = True,
           tracer_factory=None,
           packing: Optional[PackReport] = None,
           priorities: Optional[Sequence[int]] = None,
           bandwidth_aware: bool = False) -> CoRunResult:
    """Pack ``apps`` onto one fabric, run to completion, validate.

    ``tracer_factory`` (tenant name -> Tracer) attaches one tracer per
    tenant; each sees only its own units and its own slice of the
    shared DRAM channels, so stall attribution is per-tenant.

    ``packing`` replays an already-committed :class:`PackReport`
    (e.g. one produced by :func:`repro.tenancy.packer.repack` after a
    fault) instead of planning a fresh one; the report's tenants must
    line up with ``apps``.

    ``priorities`` (one int >= 1 per app) weights each tenant in the
    shared DRAM channels' QoS arbitration; omitted or all-equal
    priorities run the bit-identical plain FR-FCFS scheduler.
    ``bandwidth_aware`` turns on the packer's profile phase (solo-run
    classification + complementary placement + predicted per-channel
    demand in the pack report).
    """
    from repro.apps.registry import get_app
    from repro.compiler.artifact import compile_to_bitstream
    if not apps:
        raise ValueError("co_run needs at least one app")
    if priorities is not None and len(priorities) != len(apps):
        raise ValueError(
            f"priorities must line up with apps: {len(priorities)} "
            f"priorities for {len(apps)} apps")
    fabric = Fabric(watchdog=watchdog, max_cycles=max_cycles)
    report = None
    if packing is None and len(apps) == 1:
        artifact = compile_to_bitstream(apps[0], scale, params=params,
                                        options=options)
        entries = [(apps[0], apps[0], artifact, None)]
    else:
        if packing is None:
            packing = pack_apps(apps, scale, params=params,
                                options=options,
                                bandwidth_aware=bandwidth_aware)
        report = packing.as_dict()
        if not packing.feasible:
            raise MappingError(
                f"cannot co-locate {list(apps)} on one fabric: "
                f"{packing.reason}")
        if len(packing.tenants) != len(apps):
            raise MappingError(
                f"packing carries {len(packing.tenants)} tenants for "
                f"{len(apps)} apps")
        entries = [(tenant.footprint.app, app, tenant.artifact,
                    tenant.region.as_tuple())
                   for tenant, app in zip(packing.tenants, apps)]
    handles = []
    for k, (name, app, artifact, _region) in enumerate(entries):
        tracer = (tracer_factory(name) if tracer_factory is not None
                  else None)
        handle = fabric.add_tenant(
            artifact.dhdl, artifact.config, name=name, tracer=tracer,
            priority=priorities[k] if priorities is not None else 1)
        handles.append(handle)
    fabric.run()
    tenants = []
    for (name, app, artifact, region), handle in zip(entries, handles):
        validated = False
        if validate:
            application = get_app(app)
            expected = application.expected(application.build(scale))
            results = {out: handle.machine.result(out)
                       for out in expected}
            application.check(artifact.dhdl, results, expected)
            validated = True
        tenants.append(TenantResult(
            app=app, name=handle.name, stats=handle.machine.stats,
            region=region, finish_cycle=handle.finish_cycle,
            channel_util=fabric.tenant_channel_util(handle),
            validated=validated, priority=handle.priority))
    return CoRunResult(
        tenants=tenants, fabric_cycles=fabric.cycle,
        channel_util=fabric.channel_util(), pack_report=report,
        qos=fabric.qos_summary())
