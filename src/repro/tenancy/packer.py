"""The tenancy packer: disjoint-region placement of several artifacts.

Packing is two-phase:

1. *Plan* — each app is compiled solo (full grid) to learn its exact
   unit footprint, then regions are chosen by first-fit-decreasing over
   footprint area: apps are considered largest first, and each takes
   the first (smallest-area shape, row-major anchor) rectangle whose
   PCU/PMU site capacity covers its footprint and which does not
   overlap any region already claimed.
2. *Commit* — each app is recompiled constrained to its planned region.
   Placement can still fail inside a capacity-feasible region (routing
   detours consume no sites but fragmentation can defeat the nearest-
   site heuristic), so a failed commit retries the plan with that
   app's capacity requirement inflated, growing its region.

The result carries a :class:`PackReport` feasibility report: per-tenant
regions, footprints and capacities plus fabric-level occupancy — or,
when the fleet cannot fit, which app failed and why.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.params import DEFAULT, PlasticineParams
from repro.bitstream.artifact import Bitstream, CompileOptions
from repro.compiler.place_route import Region, region_capacity
from repro.errors import MappingError
from repro.tenancy.profile import (BandwidthProfile,
                                   predicted_channel_demand,
                                   profile_app)

#: commit retries per app before the packing is declared infeasible
_MAX_RETRIES = 4

#: the site kind a placement failure names ("no free PCU site ...")
_FAILED_KIND = re.compile(r"no free (PCU|PMU) site")


@dataclass
class Footprint:
    """Exact unit demand of one app, measured by a solo compile."""

    app: str
    pcus: int
    pmus: int

    @property
    def area(self) -> int:
        return self.pcus + self.pmus


@dataclass
class PackedTenant:
    """One app bound to a region, with its committed artifact."""

    app: str
    region: Region
    footprint: Footprint
    capacity: Tuple[int, int]
    artifact: Optional[Bitstream] = None


@dataclass
class PackReport:
    """Feasibility report for one packing attempt."""

    feasible: bool
    tenants: List[PackedTenant] = field(default_factory=list)
    #: grid sites claimed by regions / total grid sites
    sites_used: int = 0
    sites_total: int = 0
    #: populated when infeasible: which app failed, and why
    failed_app: Optional[str] = None
    reason: Optional[str] = None
    #: bandwidth-aware packs only: per-tenant class + predicted
    #: per-channel demand (see :mod:`repro.tenancy.profile`)
    bandwidth: Optional[dict] = None

    def as_dict(self) -> dict:
        return {
            "feasible": self.feasible,
            "tenants": [
                {"app": t.app, "region": list(t.region.as_tuple()),
                 "pcus": t.footprint.pcus, "pmus": t.footprint.pmus,
                 "capacity": list(t.capacity)}
                for t in self.tenants],
            "sites_used": self.sites_used,
            "sites_total": self.sites_total,
            "failed_app": self.failed_app,
            "reason": self.reason,
            "bandwidth": self.bandwidth,
        }


def measure_footprint(app: str, scale: str,
                      params: PlasticineParams = DEFAULT,
                      options: Optional[CompileOptions] = None
                      ) -> Footprint:
    """Solo-compile one app and read off its placed unit counts."""
    from repro.compiler.artifact import compile_to_bitstream
    artifact = compile_to_bitstream(app, scale, params=params,
                                    options=options)
    return Footprint(app, artifact.config.pcus_used,
                     artifact.config.pmus_used)


#: (grid_cols, grid_rows) -> sorted shape list; shapes depend only on
#: the grid, and _first_fit re-enumerates them for every candidate, so
#: memoizing saves an O(cols*rows*log) sort per fit attempt
_SHAPES_CACHE: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}


def _shapes(params: PlasticineParams) -> List[Tuple[int, int]]:
    """All region shapes, smallest area first (ties: squarer first)."""
    key = (params.grid_cols, params.grid_rows)
    cached = _SHAPES_CACHE.get(key)
    if cached is not None:
        return cached
    shapes = [(cols, rows)
              for cols in range(1, params.grid_cols + 1)
              for rows in range(1, params.grid_rows + 1)]
    shapes.sort(key=lambda s: (s[0] * s[1], abs(s[0] - s[1]), s))
    _SHAPES_CACHE[key] = shapes
    return shapes


def _first_fit(params: PlasticineParams, need_pcus: int, need_pmus: int,
               taken: Sequence[Region]) -> Optional[PackedTenant]:
    """Smallest capacity-feasible free rectangle, row-major anchors."""
    for cols, rows in _shapes(params):
        for row0 in range(params.grid_rows - rows + 1):
            for col0 in range(params.grid_cols - cols + 1):
                region = Region(col0, row0, cols, rows)
                if any(region.overlaps(t) for t in taken):
                    continue
                cap = region_capacity(params, region)
                if cap[0] >= need_pcus and cap[1] >= need_pmus:
                    return PackedTenant("?", region,
                                        Footprint("?", need_pcus,
                                                  need_pmus), cap)
    return None


def _plan_order(footprints: Sequence[Footprint],
                profiles: Optional[Dict[str, BandwidthProfile]]
                ) -> List[Footprint]:
    """Placement order: FFD by area, bandwidth-interleaved if profiled.

    With profiles, memory-bound and compute-bound apps alternate (each
    class still largest-first) so complementary tenants land in
    adjacent regions and the memory-bound ones spread out instead of
    clustering wherever pure area order happened to drop them.
    """
    by_area = sorted(footprints, key=lambda f: f.area, reverse=True)
    if not profiles:
        return by_area
    memory = [f for f in by_area
              if profiles.get(f.app) is not None
              and profiles[f.app].memory_bound]
    memory_ids = {id(f) for f in memory}
    rest = [f for f in by_area if id(f) not in memory_ids]
    order: List[Footprint] = []
    while memory or rest:
        if memory:
            order.append(memory.pop(0))
        if rest:
            order.append(rest.pop(0))
    return order


def plan_regions(footprints: Sequence[Footprint],
                 params: PlasticineParams = DEFAULT,
                 slack: Optional[Dict[str, Tuple[int, int]]] = None,
                 profiles: Optional[Dict[str, BandwidthProfile]] = None
                 ) -> PackReport:
    """First-fit-decreasing region plan for a list of footprints.

    ``slack`` maps app name -> extra ``(pcus, pmus)`` to demand beyond
    the measured footprint (the commit phase uses it to grow — along
    the failing resource only — a region whose exact-capacity
    placement failed).  ``profiles`` switches placement order to the
    bandwidth-interleaved discipline (see :func:`_plan_order`).  Order
    within the returned report follows the *input* order, so tenant
    ids are stable regardless of the packing order.
    """
    slack = slack or {}
    order = _plan_order(footprints, profiles)
    taken: List[Region] = []
    placed: Dict[str, PackedTenant] = {}
    total = params.grid_cols * params.grid_rows
    for fp in order:
        extra_pcus, extra_pmus = slack.get(fp.app, (0, 0))
        fit = _first_fit(params, fp.pcus + extra_pcus,
                         fp.pmus + extra_pmus, taken)
        if fit is None:
            return PackReport(
                feasible=False, tenants=list(placed.values()),
                sites_used=sum(r.area for r in taken), sites_total=total,
                failed_app=fp.app,
                reason=(f"no free rectangle provides "
                        f"{fp.pcus + extra_pcus} PCUs + "
                        f"{fp.pmus + extra_pmus} PMUs alongside "
                        f"{[str(r) for r in taken]}"))
        fit.app = fp.app
        fit.footprint = fp
        taken.append(fit.region)
        placed[fp.app] = fit
    tenants = [placed[fp.app] for fp in footprints]
    return PackReport(feasible=True, tenants=tenants,
                      sites_used=sum(r.area for r in taken),
                      sites_total=total)


def _grow_slack(slack: Dict[str, Tuple[int, int]], app: str,
                message: str) -> None:
    """Inflate one app's demanded capacity along the failing resource.

    Placement failures name the exhausted site kind ("no free PCU
    site ..."); only that resource grows.  A failure that names no
    kind (e.g. routing congestion) grows both, since either could
    relieve it.
    """
    pcus, pmus = slack.get(app, (0, 0))
    match = _FAILED_KIND.search(message)
    if match is None:
        slack[app] = (pcus + 2, pmus + 2)
    elif match.group(1) == "PCU":
        slack[app] = (pcus + 2, pmus)
    else:
        slack[app] = (pcus, pmus + 2)


def pack_apps(apps: Sequence[str], scale: str = "tiny",
              params: PlasticineParams = DEFAULT,
              options: Optional[CompileOptions] = None,
              bandwidth_aware: bool = False) -> PackReport:
    """Plan and commit a packing: region-compiled artifacts for all apps.

    Duplicate app names are allowed (the same workload co-resident with
    itself); each occurrence gets its own tenant and region.

    ``bandwidth_aware`` adds a profile phase: each distinct app is
    solo-run briefly (or replayed from the process-wide profile cache)
    and classified compute- vs memory-bound from its measured
    per-channel data-bus occupancy; placement then interleaves the
    classes so complementary tenants sit side by side, and the report
    carries per-tenant classes plus predicted per-channel demand.
    """
    from repro.compiler.artifact import compile_to_bitstream
    names = _unique_names(apps)
    footprints = []
    for name, app in zip(names, apps):
        fp = measure_footprint(app, scale, params, options)
        footprints.append(Footprint(name, fp.pcus, fp.pmus))
    profiles: Optional[Dict[str, BandwidthProfile]] = None
    if bandwidth_aware:
        by_app = {app: profile_app(app, scale, params=params,
                                   options=options)
                  for app in set(apps)}
        profiles = {name: by_app[app]
                    for name, app in zip(names, apps)}
    slack: Dict[str, Tuple[int, int]] = {}
    report = None
    for _ in range(_MAX_RETRIES):
        report = plan_regions(footprints, params, slack,
                              profiles=profiles)
        if not report.feasible:
            return report
        failed = None
        for tenant, app in zip(report.tenants, apps):
            try:
                tenant.artifact = compile_to_bitstream(
                    app, scale, params=params, options=options,
                    region=tenant.region)
            except MappingError as err:
                failed = (tenant.app, str(err))
                break
        if failed is None:
            if profiles is not None:
                report.bandwidth = _bandwidth_section(
                    names, profiles, params)
            return report
        # grow the offender's demanded capacity along the failing
        # resource and replan
        _grow_slack(slack, failed[0], failed[1])
        report.feasible = False
        report.failed_app, report.reason = failed
    return report


def _bandwidth_section(names: Sequence[str],
                       profiles: Dict[str, BandwidthProfile],
                       params: PlasticineParams) -> dict:
    """The ``PackReport.bandwidth`` payload for a profiled packing."""
    return {
        "tenants": {name: profiles[name].as_dict() for name in names},
        "predicted_channel_demand": predicted_channel_demand(
            [profiles[name] for name in names], params),
    }


def repack(report: PackReport, failed_region: Region,
           apps: Sequence[str], scale: str = "tiny",
           params: PlasticineParams = DEFAULT,
           options: Optional[CompileOptions] = None) -> PackReport:
    """Migrate tenants out of a failed region and recommit them.

    ``failed_region`` marks hardware declared broken (e.g. from a
    :class:`~repro.errors.FaultError`'s unit sites).  Tenants whose
    regions do not touch it keep their committed artifacts untouched;
    each overlapping tenant is re-placed into a fresh rectangle that
    avoids both the failed region and every healthy tenant, and
    recompiled there (measure-then-commit, same grow-and-retry loop as
    :func:`pack_apps`).  The result is a fresh :class:`PackReport` in
    the original tenant order, ready to replay through
    :func:`repro.tenancy.run.co_run`.
    """
    from repro.compiler.artifact import compile_to_bitstream
    failed_region = failed_region.validate(params)
    if not report.feasible:
        raise MappingError(
            "cannot repack an infeasible packing "
            f"(failed app: {report.failed_app})")
    if len(report.tenants) != len(apps):
        raise MappingError(
            f"repack needs the packing's app list: {len(apps)} apps "
            f"for {len(report.tenants)} tenants")
    total = params.grid_cols * params.grid_rows
    keep = [t for t in report.tenants
            if not t.region.overlaps(failed_region)]
    movers = [(t, app) for t, app in zip(report.tenants, apps)
              if t.region.overlaps(failed_region)]
    if not movers:
        return report
    taken = [t.region for t in keep] + [failed_region]
    migrated: Dict[int, PackedTenant] = {}

    def _failure(failed_fp: Footprint, reason: str) -> PackReport:
        """Infeasible report in the *original* tenant order.

        Movers migrated before the failure keep their freshly
        committed placements; movers never re-placed are reported with
        their stale (failed-region) rectangles but with artifacts
        cleared — those bitstreams target broken hardware and must not
        be replayed.  The caller's feasible report is never mutated.
        """
        by_old = {id(t): migrated[i]
                  for i, (t, _) in enumerate(movers) if i in migrated}
        unmigrated = {id(t) for i, (t, _) in enumerate(movers)
                      if i not in migrated}
        tenants = []
        for tenant in report.tenants:
            if id(tenant) in by_old:
                tenants.append(by_old[id(tenant)])
            elif id(tenant) in unmigrated:
                tenants.append(replace(tenant, artifact=None))
            else:
                tenants.append(tenant)
        return PackReport(
            feasible=False, tenants=tenants,
            sites_used=sum(r.area for r in taken
                           if r is not failed_region),
            sites_total=total, failed_app=failed_fp.app,
            reason=reason)

    # largest movers first: hardest to place, same FFD discipline
    order = sorted(range(len(movers)),
                   key=lambda i: movers[i][0].footprint.area,
                   reverse=True)
    for index in order:
        tenant, app = movers[index]
        fp = tenant.footprint
        slack = (0, 0)
        placed = None
        for _ in range(_MAX_RETRIES):
            fit = _first_fit(params, fp.pcus + slack[0],
                             fp.pmus + slack[1], taken)
            if fit is None:
                return _failure(
                    fp,
                    f"no free rectangle left for {fp.app} "
                    f"({fp.pcus} PCUs + {fp.pmus} PMUs) after "
                    f"excluding failed region {failed_region}")
            try:
                artifact = compile_to_bitstream(
                    app, scale, params=params, options=options,
                    region=fit.region)
            except MappingError as err:
                grown = {fp.app: slack}
                _grow_slack(grown, fp.app, str(err))
                slack = grown[fp.app]
                continue
            placed = PackedTenant(fp.app, fit.region, fp,
                                  fit.capacity, artifact)
            break
        if placed is None:
            return _failure(
                fp,
                f"could not commit {fp.app} into any fresh "
                f"rectangle after {_MAX_RETRIES} retries")
        taken.append(placed.region)
        migrated[index] = placed
    by_old = {id(t): migrated[i]
              for i, (t, _) in enumerate(movers) if i in migrated}
    tenants = [by_old.get(id(t), t) for t in report.tenants]
    return PackReport(
        feasible=True, tenants=tenants,
        sites_used=sum(t.region.area for t in tenants),
        sites_total=total)


def _unique_names(apps: Sequence[str]) -> List[str]:
    """Stable unique tenant names for possibly-repeated app names."""
    seen: Dict[str, int] = {}
    names = []
    for app in apps:
        count = seen.get(app, 0)
        names.append(app if count == 0 else f"{app}#{count}")
        seen[app] = count + 1
    return names
