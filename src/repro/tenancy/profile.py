"""Bandwidth profiling: classify apps compute- vs memory-bound.

The multi-tenant fabric shares exactly one resource between tenants:
the DRAM channels (compute regions are disjoint by construction).  So
the useful packing signal is each app's *solo* off-chip bandwidth
demand — measured, not guessed, by briefly running the app alone and
reading the per-channel data-bus occupancy the simulator already
tracks (``SimStats.dram_channels``).

A profile classifies the app:

* ``memory`` — the solo run keeps the channel data buses busy a
  significant fraction of its cycles; co-residency with other
  memory-bound tenants will contend;
* ``compute`` — the app's cycles are dominated by datapath work; it
  co-locates cheaply with anyone.

Profiles are cached per (app, scale, params) — pack planning, serve
batch composition and benchmarks all share one measurement.  The
tenant DRAM slices the fabric assigns are channel-interleave aligned,
so every tenant's traffic stripes evenly across all channels;
``predicted_channel_demand`` therefore spreads each tenant's measured
bytes/cycle uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.arch.params import DEFAULT, PlasticineParams
from repro.bitstream.artifact import CompileOptions

#: mean data-bus occupancy (fraction of solo cycles) above which an
#: app counts as memory-bound.  Streaming registry apps sit well above
#: this; dense compute sits well below.
MEMORY_BOUND_UTIL = 0.20

#: process-wide profile cache: (app, scale, params) -> BandwidthProfile
_CACHE: Dict[tuple, "BandwidthProfile"] = {}


@dataclass(frozen=True)
class BandwidthProfile:
    """One app's measured solo DRAM demand."""

    app: str
    scale: str
    #: solo run length
    cycles: int
    #: bytes moved over the whole solo run
    dram_bytes: int
    #: average off-chip demand (bytes per cycle == GB/s at 1 GHz)
    bytes_per_cycle: float
    #: mean per-channel data-bus occupancy over the solo run
    bus_util: float
    #: "memory" | "compute"
    klass: str

    @property
    def memory_bound(self) -> bool:
        return self.klass == "memory"

    def as_dict(self) -> dict:
        return {
            "app": self.app, "scale": self.scale,
            "cycles": self.cycles, "dram_bytes": self.dram_bytes,
            "bytes_per_cycle": round(self.bytes_per_cycle, 3),
            "bus_util": round(self.bus_util, 4),
            "class": self.klass,
        }


def classify(bus_util: float,
             threshold: float = MEMORY_BOUND_UTIL) -> str:
    """Bandwidth class from mean data-bus occupancy."""
    return "memory" if bus_util >= threshold else "compute"


def profile_app(app: str, scale: str = "tiny",
                params: PlasticineParams = DEFAULT,
                options: Optional[CompileOptions] = None,
                cache: bool = True) -> BandwidthProfile:
    """Measure one app's solo bandwidth demand (cached).

    Compiles the app for the full grid and runs it solo — the same
    solo run whose statistics the multi-tenant equivalence invariant
    pins, so the measurement is exact, deterministic and cheap at
    profiling scales.  ``cache=False`` forces a fresh measurement
    (only meaningful with non-default ``options``, which are excluded
    from the cache key).
    """
    key = (app, scale, params)
    if cache and options is None:
        hit = _CACHE.get(key)
        if hit is not None:
            return hit
    from repro.compiler.artifact import compile_to_bitstream
    from repro.sim.machine import Machine

    artifact = compile_to_bitstream(app, scale, params=params,
                                    options=options)
    machine = Machine(artifact.dhdl, artifact.config)
    stats = machine.run()
    utils = [entry["util"] for entry in stats.dram_channels.values()]
    bus_util = sum(utils) / len(utils) if utils else 0.0
    nbytes = stats.dram.get("bytes", 0)
    profile = BandwidthProfile(
        app=app, scale=scale, cycles=stats.cycles, dram_bytes=nbytes,
        bytes_per_cycle=nbytes / stats.cycles if stats.cycles else 0.0,
        bus_util=bus_util, klass=classify(bus_util))
    if cache and options is None:
        _CACHE[key] = profile
    return profile


def clear_profile_cache() -> None:
    """Drop every cached measurement (tests, param sweeps)."""
    _CACHE.clear()


def predicted_channel_demand(profiles: Sequence[BandwidthProfile],
                             params: PlasticineParams = DEFAULT
                             ) -> Dict[str, dict]:
    """Predicted per-channel bytes/cycle if all profiles co-reside.

    Tenant DRAM slices are channel-interleave aligned (see
    :class:`repro.sim.fabric.Fabric`), so each tenant's bursts stripe
    uniformly over all channels and its demand splits evenly.  The
    prediction is a *demand* (what the tenants would consume with no
    interference), so per-channel totals above the data-bus capacity
    flag contention the packer should spread across fabrics.
    """
    from repro.dram.timing import DDR3_1600

    channels = params.dram.channels
    per_channel = sum(p.bytes_per_cycle for p in profiles) / channels
    # one channel moves burst_bytes per t_burst cycles flat out
    capacity = params.dram.burst_bytes / DDR3_1600.t_burst
    out: Dict[str, dict] = {}
    for k in range(channels):
        out[f"ch{k}"] = {
            "bytes_per_cycle": round(per_channel, 3),
            "fraction_of_peak": round(per_channel / capacity, 4),
        }
    return out


def _is_memory_bound(tag) -> bool:
    """Accept a :class:`BandwidthProfile`, a class string, or None."""
    if tag is None:
        return False
    if isinstance(tag, str):
        return tag == "memory"
    return tag.memory_bound


def compose_batches(items: Sequence[tuple], max_size: int
                    ) -> "list[list]":
    """Partition (key, class) items into co-residency groups.

    Greedy complementary packing: memory-bound items are dealt
    round-robin across the groups first (spreading the bandwidth
    demand), then compute-bound and unknown items fill the remaining
    seats — so each fabric mixes classes instead of stacking its
    memory-bound arrivals together, FIFO-style.  Items are (anything,
    class), where class is a :class:`BandwidthProfile`, a
    ``"memory"``/``"compute"`` string (the serve tier learns bare
    classes), or None for unknown; returns groups of the original
    items, order within the input preserved per class.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    items = list(items)
    groups: "list[list]" = [[] for _ in range(
        -(-len(items) // max_size))]
    memory = [it for it in items if _is_memory_bound(it[1])]
    rest = [it for it in items if not _is_memory_bound(it[1])]
    for k, item in enumerate(memory):
        groups[k % len(groups)].append(item)
    for item in rest:
        target = min(groups, key=len)
        target.append(item)
    return [g for g in groups if g]
