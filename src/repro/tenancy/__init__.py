"""Multi-tenancy: pack compiled artifacts onto disjoint fabric regions
and co-simulate them on one shared chip."""

from repro.tenancy.packer import (PackedTenant, PackReport, pack_apps,
                                  plan_regions, repack)
from repro.tenancy.profile import (BandwidthProfile, compose_batches,
                                   profile_app)
from repro.tenancy.run import CoRunResult, TenantResult, co_run

__all__ = [
    "PackedTenant", "PackReport", "pack_apps", "plan_regions",
    "repack", "BandwidthProfile", "compose_batches", "profile_app",
    "CoRunResult", "TenantResult", "co_run",
]
