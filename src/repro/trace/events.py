"""Typed trace events and the closed stall taxonomy.

Two layers of observability share these definitions:

* :class:`TraceEvent` — discrete, possibly *sampled* happenings (a vector
  issue, a DRAM row miss, a FIFO push) kept in a bounded ring buffer for
  timeline export;
* :class:`StallCause` — the *exact* per-cycle classification of every
  unit.  Each simulated cycle, each physical unit (PCU chain or AG
  transfer engine) is in exactly one of these states, so per-unit cause
  counts always sum to ``SimStats.cycles``.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Tuple


class StallCause(enum.Enum):
    """Closed taxonomy: where one unit-cycle went.

    ``BUSY`` is useful work (a vector issue, an AG burst issue).  All
    other members are the reasons a cycle was *not* useful work.
    """

    #: issuing work down the datapath / address streams
    BUSY = "busy"
    #: pipeline flush after the last issue (depth + output hops)
    DRAIN = "drain"
    #: serialised scratchpad accesses (bank conflict beyond 1 cycle)
    BANK_CONFLICT = "bank_conflict"
    #: a downstream FIFO had no room for the worst-case emit
    FIFO_FULL = "fifo_full"
    #: an upstream FIFO had no data (and is not yet closed)
    FIFO_EMPTY = "fifo_empty"
    #: waiting for a producer's token (control protocol, Section 3.5)
    TOKEN_WAIT = "token_wait"
    #: waiting for a consumer's credit (N-buffer depth exhausted)
    CREDIT_WAIT = "credit_wait"
    #: DRAM requests in flight, nothing else to do (latency bound)
    DRAM_LATENCY = "dram_latency"
    #: DRAM queues / coalescer full, could not issue (bandwidth bound)
    DRAM_BANDWIDTH = "dram_bandwidth"
    #: no enclosing activation (before start / after completion)
    IDLE = "idle"

    def __str__(self):
        return self.value


#: causes attributable to the paper's control protocol (token/credit
#: handshakes between controllers) — the "control overhead" of Figure 7
CONTROL_CAUSES = (StallCause.TOKEN_WAIT, StallCause.CREDIT_WAIT)

#: causes that count as "the unit had an activation in flight"
ACTIVE_CAUSES = tuple(c for c in StallCause if c is not StallCause.IDLE)


class EventKind(enum.Enum):
    """Discrete event types recorded in the ring buffer."""

    ISSUE = "issue"                  # one vector issue (unit, lanes, ops)
    BANK_CONFLICT = "bank_conflict"  # (unit, memory, extra cycles)
    FIFO_PUSH = "fifo_push"          # (fifo, words, occupancy after)
    FIFO_POP = "fifo_pop"            # (fifo, words, occupancy after)
    FIFO_FULL = "fifo_full"          # producer blocked (fifo, need)
    FIFO_EMPTY = "fifo_empty"        # consumer starved (fifo,)
    CHILD_START = "child_start"      # (controller, child, iteration)
    CHILD_DONE = "child_done"        # (controller, child, iteration)
    AG_BURST = "ag_burst"            # burst issued (unit, byte_addr, write)
    COALESCE_HIT = "coalesce_hit"    # request merged (unit, burst)
    DRAM_ROW_HIT = "dram_row_hit"    # (channel, bank, queued)
    DRAM_ROW_MISS = "dram_row_miss"  # (channel, bank, queued)
    DRAM_ROW_EMPTY = "dram_row_empty"  # (channel, bank, queued)
    DEADLOCK = "deadlock"            # watchdog fired (last progress cycle)

    def __str__(self):
        return self.value


class TraceEvent(NamedTuple):
    """One recorded event: ``cycle`` it happened, the ``kind``, the
    ``unit`` (leaf / controller / FIFO / channel name) and a small tuple
    of kind-specific ``data`` (see :class:`EventKind` comments)."""

    cycle: int
    kind: EventKind
    unit: str
    data: Tuple = ()
