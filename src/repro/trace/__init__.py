"""Cycle-level event tracing, stall attribution and timeline export.

The standing observability layer of the fabric simulator: a
zero-overhead-when-disabled :class:`Tracer` the simulator calls from its
hot paths, an exact per-cycle stall-attribution pass whose per-unit sums
reconcile with ``SimStats.cycles``, and exporters to Chrome/Perfetto
trace JSON and a terminal waterfall.  See ``docs/ARCHITECTURE.md``
("Observability") for the end-to-end story.
"""

from repro.trace.attribution import (AttributionReport, CAUSE_ORDER,
                                     build_report)
from repro.trace.events import (ACTIVE_CAUSES, CONTROL_CAUSES, EventKind,
                                StallCause, TraceEvent)
from repro.trace.export import (CAUSE_GLYPHS, chrome_trace,
                                render_waterfall, write_chrome_trace)
from repro.trace.tracer import NULL_TRACER, RingTracer, Tracer

__all__ = [
    "AttributionReport", "CAUSE_ORDER", "build_report",
    "ACTIVE_CAUSES", "CONTROL_CAUSES", "EventKind", "StallCause",
    "TraceEvent",
    "CAUSE_GLYPHS", "chrome_trace", "render_waterfall",
    "write_chrome_trace",
    "NULL_TRACER", "RingTracer", "Tracer",
]
