"""Stall attribution: classify every cycle of every unit.

The tracer records, per physical unit (PCU chain or AG transfer engine),
exactly one :class:`~repro.trace.events.StallCause` per simulated cycle.
This module rolls those counters up into an :class:`AttributionReport`:

* **per-unit** — the full cause histogram for each leaf;
* **per-controller** — the same histograms aggregated over each outer
  controller's subtree (the hierarchy the DHDL program declares);
* **totals** — chip-wide cause histogram and derived fractions, among
  them the control-protocol overhead (token + credit waits) the paper's
  Section 3.5 / Figure 7 discussion revolves around.

The report *must* reconcile: for every unit the cause counts sum to
``SimStats.cycles``.  ``build_report`` verifies this and raises
:class:`~repro.errors.SimulationError` otherwise — a failed
reconciliation means an instrumentation hook double- or under-counted a
cycle, which would silently corrupt every number downstream.

Attribution is scheduler-independent.  Under the dense loop every unit
marks its cause each cycle; under the event scheduler parked units have
their park's marks replayed per visited cycle and fast-forwarded spans
charged in bulk through ``Tracer.account_span``.  Both paths feed the
same counters, so the reconciliation check above doubles as the
cross-check that fast-forward jumps attributed every skipped cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.trace.events import CONTROL_CAUSES, StallCause
from repro.trace.tracer import RingTracer

#: rendering order for breakdown tables
CAUSE_ORDER = (
    StallCause.BUSY, StallCause.DRAIN, StallCause.BANK_CONFLICT,
    StallCause.FIFO_FULL, StallCause.FIFO_EMPTY, StallCause.TOKEN_WAIT,
    StallCause.CREDIT_WAIT, StallCause.DRAM_LATENCY,
    StallCause.DRAM_BANDWIDTH, StallCause.IDLE,
)


@dataclass
class AttributionReport:
    """Per-unit / per-controller / chip-wide stall accounting."""

    cycles: int
    #: unit -> cause -> cycles (sums to ``cycles`` for every unit)
    per_unit: Dict[str, Dict[StallCause, int]]
    #: unit -> "pcu" | "ag"
    unit_kind: Dict[str, str]
    #: unit -> controller names from the root down to its parent
    unit_path: Dict[str, Tuple[str, ...]]
    #: controller -> cause -> cycles summed over its subtree units
    per_controller: Dict[str, Dict[StallCause, int]] = \
        field(default_factory=dict)

    def __post_init__(self):
        if not self.per_controller:
            for unit, counts in self.per_unit.items():
                for ctrl in self.unit_path.get(unit, ()):
                    rollup = self.per_controller.setdefault(ctrl, {})
                    for cause, n in counts.items():
                        rollup[cause] = rollup.get(cause, 0) + n

    # -- invariants ----------------------------------------------------------------
    def reconcile(self) -> None:
        """Every unit's causes must sum exactly to the run's cycles."""
        for unit, counts in self.per_unit.items():
            total = sum(counts.values())
            if total != self.cycles:
                raise SimulationError(
                    f"stall attribution does not reconcile for "
                    f"{unit!r}: {total} attributed cycles vs "
                    f"{self.cycles} simulated")

    # -- aggregates ----------------------------------------------------------------
    def totals(self) -> Dict[StallCause, int]:
        """Chip-wide cause histogram (unit-cycles)."""
        out: Dict[StallCause, int] = {}
        for counts in self.per_unit.values():
            for cause, n in counts.items():
                out[cause] = out.get(cause, 0) + n
        return out

    def unit_cycles(self) -> int:
        """Total unit-cycles accounted (units x cycles)."""
        return self.cycles * len(self.per_unit)

    def active_cycles(self) -> int:
        """Unit-cycles spent inside an activation (everything but
        IDLE)."""
        totals = self.totals()
        return sum(n for cause, n in totals.items()
                   if cause is not StallCause.IDLE)

    def control_cycles(self) -> int:
        """Unit-cycles lost to the control protocol (token + credit)."""
        totals = self.totals()
        return sum(totals.get(cause, 0) for cause in CONTROL_CAUSES)

    def control_overhead(self) -> float:
        """Control-protocol overhead: fraction of non-idle unit-cycles
        spent waiting on tokens or credits."""
        active = self.active_cycles()
        return self.control_cycles() / active if active else 0.0

    def stalled_cycles(self, *causes: StallCause) -> int:
        """Chip-wide cycles attributed to the given causes."""
        totals = self.totals()
        return sum(totals.get(cause, 0) for cause in causes)

    # -- machine-readable export ------------------------------------------------------
    def breakdown(self) -> Dict:
        """JSON-able dict consumed by the evaluation harnesses."""
        return {
            "cycles": self.cycles,
            "units": {
                unit: {str(cause): n for cause, n in counts.items()}
                for unit, counts in self.per_unit.items()},
            "controllers": {
                ctrl: {str(cause): n for cause, n in counts.items()}
                for ctrl, counts in self.per_controller.items()},
            "totals": {str(cause): n
                       for cause, n in self.totals().items()},
            "control_overhead": self.control_overhead(),
        }

    # -- rendering -----------------------------------------------------------------
    def render(self) -> str:
        """Fixed-width per-unit stall breakdown table."""
        from repro.eval.report import format_table
        headers = ["unit", "kind"] + [str(c) for c in CAUSE_ORDER]
        rows = []
        for unit in sorted(self.per_unit):
            counts = self.per_unit[unit]
            rows.append([unit, self.unit_kind.get(unit, "?")]
                        + [counts.get(c, 0) for c in CAUSE_ORDER])
        totals = self.totals()
        rows.append(["TOTAL", ""]
                    + [totals.get(c, 0) for c in CAUSE_ORDER])
        title = (f"Stall attribution over {self.cycles} cycles "
                 f"(control overhead "
                 f"{100 * self.control_overhead():.1f}%)")
        return format_table(headers, rows, title=title)


def build_report(tracer: RingTracer, stats) -> AttributionReport:
    """Assemble (and reconcile) the report for one finished run."""
    if not tracer.enabled:
        raise SimulationError(
            "cannot build an attribution report from a disabled tracer")
    report = AttributionReport(
        cycles=stats.cycles,
        per_unit={u: dict(c) for u, c in tracer.counts.items()},
        unit_kind={u: kind for u, (kind, _) in tracer.units.items()},
        unit_path={u: path for u, (_, path) in tracer.units.items()},
    )
    report.reconcile()
    return report
