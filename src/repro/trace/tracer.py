"""Tracer protocol: zero-overhead-when-disabled event recording.

:class:`Tracer` is both the protocol and the *null* implementation —
every hook is a no-op and ``enabled`` is False, so instrumentation sites
in the simulator guard their argument construction with a single
attribute test and cost nothing on untraced runs.  :data:`NULL_TRACER`
is the shared default instance.

:class:`RingTracer` is the real recorder:

* **exact attribution** — one :class:`~repro.trace.events.StallCause`
  per registered unit per cycle, accumulated into counters and into a
  run-length-encoded per-unit timeline (bounded);
* **sampled events** — discrete :class:`TraceEvent` records kept in a
  bounded ring buffer; ``sample=N`` records detailed events only on
  cycles divisible by N so million-cycle runs stay tractable (cause
  counters stay exact regardless of sampling).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.trace.events import EventKind, StallCause, TraceEvent


class Tracer:
    """Disabled tracer: the protocol, as no-ops."""

    #: instrumentation sites test this before building event payloads
    enabled = False

    # -- registry -----------------------------------------------------------------
    def register_unit(self, name: str, kind: str,
                      path: Tuple[str, ...]) -> None:
        """Declare one attributed unit (leaf) and its controller path."""

    def register_track(self, name: str, kind: str) -> None:
        """Declare one auxiliary event track (FIFO, DRAM channel...)."""

    # -- per-cycle attribution ------------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        """Start a simulated cycle (sets the implicit event timestamp)."""

    def mark(self, unit: str, cause: StallCause) -> None:
        """Classify ``unit``'s current cycle (first mark wins)."""

    def end_cycle(self) -> None:
        """Fold this cycle's marks into counters; unmarked units are
        IDLE."""

    def account_span(self, cause_of: Dict[str, "StallCause"],
                     start_cycle: int, cycles: int) -> None:
        """Bulk-attribute ``cycles`` consecutive cycles starting at
        ``start_cycle`` during which every unit's cause is constant
        (fast-forwarded spans); units absent from ``cause_of`` are
        IDLE.  Equivalent to ``cycles`` begin/mark/end rounds."""

    # -- events --------------------------------------------------------------------
    def emit(self, kind: EventKind, unit: str, data: Tuple = ()) -> None:
        """Record one discrete event at the current cycle (sampled)."""

    def progress(self, cycle: int) -> None:
        """The machine observed forward progress at ``cycle``."""

    def finalize(self, cycles: int) -> None:
        """Run ended after ``cycles`` cycles."""


#: the shared disabled tracer (default for every Machine)
NULL_TRACER = Tracer()


class RingTracer(Tracer):
    """Recording tracer with bounded memory.

    ``capacity`` bounds the discrete-event ring buffer; ``sample``
    records events only every N-th cycle; ``timeline_capacity`` bounds
    the per-unit run-length-encoded cause timeline (oldest segments are
    dropped first and reported as truncated).
    """

    enabled = True

    def __init__(self, capacity: int = 200_000, sample: int = 1,
                 timeline_capacity: int = 65_536):
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.capacity = capacity
        self.sample = sample
        self.units: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        self.tracks: Dict[str, str] = {}
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.events_emitted = 0
        self.counts: Dict[str, Dict[StallCause, int]] = {}
        #: unit -> RLE segments [(start_cycle, cause), ...]
        self.timelines: Dict[str, Deque[Tuple[int, StallCause]]] = {}
        self._last_cause: Dict[str, Optional[StallCause]] = {}
        self._timeline_capacity = timeline_capacity
        self._marks: Dict[str, StallCause] = {}
        self.cycle = 0
        self._record_events = True
        self.last_progress_cycle = 0
        self.total_cycles = 0

    # -- registry -----------------------------------------------------------------
    def register_unit(self, name, kind, path):
        self.units[name] = (kind, tuple(path))
        self.counts[name] = {}
        self.timelines[name] = deque(maxlen=self._timeline_capacity)
        self._last_cause[name] = None

    def register_track(self, name, kind):
        self.tracks[name] = kind

    # -- per-cycle attribution ------------------------------------------------------
    def begin_cycle(self, cycle):
        self.cycle = cycle
        self._record_events = (cycle % self.sample) == 0

    def mark(self, unit, cause):
        if unit not in self.counts:
            raise KeyError(f"mark for unregistered unit {unit!r}")
        if unit not in self._marks:
            self._marks[unit] = cause

    def end_cycle(self):
        marks = self._marks
        cycle = self.cycle
        for unit, counts in self.counts.items():
            cause = marks.get(unit, StallCause.IDLE)
            counts[cause] = counts.get(cause, 0) + 1
            if cause is not self._last_cause[unit]:
                self._last_cause[unit] = cause
                self.timelines[unit].append((cycle, cause))
        marks.clear()

    def account_span(self, cause_of, start_cycle, cycles):
        idle = StallCause.IDLE
        last = self._last_cause
        for unit, counts in self.counts.items():
            cause = cause_of.get(unit, idle)
            counts[cause] = counts.get(cause, 0) + cycles
            if cause is not last[unit]:
                last[unit] = cause
                self.timelines[unit].append((start_cycle, cause))
        self.cycle = start_cycle + cycles - 1

    def current_marks(self) -> Dict[str, StallCause]:
        """This cycle's (possibly partial) classifications — used by the
        deadlock report to say what everyone was waiting on."""
        return dict(self._marks)

    # -- events --------------------------------------------------------------------
    def emit(self, kind, unit, data=()):
        if not self._record_events:
            return
        self.events_emitted += 1
        self.events.append(TraceEvent(self.cycle, kind, unit, data))

    @property
    def events_dropped(self) -> int:
        """Events evicted from the ring buffer."""
        return self.events_emitted - len(self.events)

    def progress(self, cycle):
        self.last_progress_cycle = cycle

    def finalize(self, cycles):
        self.total_cycles = cycles

    # -- queries -------------------------------------------------------------------
    def cause_cycles(self, unit: str, cause: StallCause) -> int:
        """Attributed cycles of one cause for one unit."""
        return self.counts.get(unit, {}).get(cause, 0)

    def total_cause_cycles(self, cause: StallCause) -> int:
        """Attributed cycles of one cause summed over all units."""
        return sum(c.get(cause, 0) for c in self.counts.values())

    def timeline_of(self, unit: str) -> List[Tuple[int, StallCause]]:
        """RLE timeline segments (start_cycle, cause) for one unit."""
        return list(self.timelines.get(unit, ()))

    def timeline_truncated(self, unit: str) -> bool:
        """True when the unit's timeline ring dropped old segments."""
        timeline = self.timelines.get(unit)
        return (timeline is not None
                and len(timeline) == self._timeline_capacity)
