"""Trace exporters: Chrome/Perfetto JSON and a terminal waterfall.

``chrome_trace`` emits the Trace Event Format that both
``chrome://tracing`` and https://ui.perfetto.dev load directly: one
process per unit class (fabric units, FIFOs, DRAM channels), one thread
track per physical unit, an ``X`` (complete) slice per run of identical
stall cause, plus instant and counter events from the sampled ring
buffer.  Timestamps are simulated cycles (1 cycle == 1 us in the viewer
at the 1 GHz fabric clock).

``render_waterfall`` draws the same timelines as fixed-width ASCII, one
row per unit, dominant cause per time bucket.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.trace.attribution import CAUSE_ORDER, AttributionReport
from repro.trace.events import EventKind, StallCause, TraceEvent
from repro.trace.tracer import RingTracer

#: waterfall glyph per cause
CAUSE_GLYPHS = {
    StallCause.BUSY: "#",
    StallCause.DRAIN: "~",
    StallCause.BANK_CONFLICT: "b",
    StallCause.FIFO_FULL: "f",
    StallCause.FIFO_EMPTY: "e",
    StallCause.TOKEN_WAIT: "t",
    StallCause.CREDIT_WAIT: "c",
    StallCause.DRAM_LATENCY: "L",
    StallCause.DRAM_BANDWIDTH: "B",
    StallCause.IDLE: ".",
}

#: instant-event kinds routed to the emitting unit's own track
_UNIT_INSTANTS = (EventKind.BANK_CONFLICT, EventKind.AG_BURST,
                  EventKind.COALESCE_HIT, EventKind.CHILD_START,
                  EventKind.CHILD_DONE, EventKind.DEADLOCK,
                  EventKind.FIFO_FULL, EventKind.FIFO_EMPTY)

_PID_FABRIC, _PID_FIFO, _PID_DRAM = 1, 2, 3


def _segments(tracer: RingTracer, unit: str,
              total: int) -> List[Tuple[int, int, StallCause]]:
    """(start, end, cause) spans covering the traced timeline."""
    timeline = tracer.timeline_of(unit)
    spans = []
    for k, (start, cause) in enumerate(timeline):
        end = timeline[k + 1][0] if k + 1 < len(timeline) else total + 1
        if end > start:
            spans.append((start, end, cause))
    return spans


def chrome_trace(tracer: RingTracer,
                 report: AttributionReport) -> Dict:
    """The full trace as a Trace-Event-Format dict (JSON-able)."""
    total = max(tracer.total_cycles, report.cycles)
    events: List[Dict] = []
    tids: Dict[Tuple[int, str], int] = {}

    def tid_of(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append({"ph": "M", "pid": pid, "tid": tids[key],
                           "name": "thread_name",
                           "args": {"name": track}})
        return tids[key]

    for pid, name in ((_PID_FABRIC, "fabric units"),
                      (_PID_FIFO, "FIFOs"),
                      (_PID_DRAM, "DRAM channels")):
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name", "args": {"name": name}})

    # one slice track per physical unit, ordered PCUs then AGs
    for unit in sorted(report.per_unit,
                       key=lambda u: (report.unit_kind.get(u, "?"), u)):
        kind = report.unit_kind.get(unit, "?")
        tid = tid_of(_PID_FABRIC, f"{kind}:{unit}")
        for start, end, cause in _segments(tracer, unit, total):
            if cause is StallCause.IDLE:
                continue
            events.append({"ph": "X", "pid": _PID_FABRIC, "tid": tid,
                           "ts": start, "dur": end - start,
                           "name": str(cause), "cat": kind})

    # sampled discrete events: instants + FIFO occupancy counters
    for ev in tracer.events:
        events.append(_event_json(ev, tid_of))

    totals = report.totals()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "cycles": report.cycles,
            "sample": tracer.sample,
            "events_dropped": tracer.events_dropped,
            "control_overhead": report.control_overhead(),
            "totals": {str(c): totals.get(c, 0) for c in CAUSE_ORDER},
        },
    }


def _event_json(ev: TraceEvent, tid_of) -> Dict:
    """One ring-buffer event as a trace-event record."""
    if ev.kind in (EventKind.FIFO_PUSH, EventKind.FIFO_POP):
        occupancy = ev.data[1] if len(ev.data) > 1 else 0
        return {"ph": "C", "pid": _PID_FIFO,
                "tid": tid_of(_PID_FIFO, f"fifo:{ev.unit}"),
                "ts": ev.cycle, "name": f"fifo:{ev.unit}",
                "args": {"occupancy": occupancy}}
    if ev.kind in (EventKind.DRAM_ROW_HIT, EventKind.DRAM_ROW_MISS,
                   EventKind.DRAM_ROW_EMPTY):
        return {"ph": "i", "pid": _PID_DRAM,
                "tid": tid_of(_PID_DRAM, f"channel:{ev.unit}"),
                "ts": ev.cycle, "s": "t", "name": str(ev.kind),
                "args": {"data": list(ev.data)}}
    pid = _PID_FABRIC if ev.kind in _UNIT_INSTANTS else _PID_FIFO
    return {"ph": "i", "pid": pid,
            "tid": tid_of(pid, f"events:{ev.unit}"),
            "ts": ev.cycle, "s": "t", "name": str(ev.kind),
            "args": {"data": list(ev.data)}}


def write_chrome_trace(path: str, tracer: RingTracer,
                       report: AttributionReport) -> None:
    """Serialise the Chrome trace JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, report), handle)


def render_waterfall(tracer: RingTracer, report: AttributionReport,
                     width: int = 64) -> str:
    """ASCII utilization waterfall: one row per unit, one glyph per
    time bucket (the bucket's dominant cause)."""
    total = max(tracer.total_cycles, report.cycles, 1)
    width = min(width, total)
    name_w = max((len(u) for u in report.per_unit), default=4)
    lines = [f"utilization waterfall ({total} cycles, "
             f"{total / width:.0f} cycles/column)"]
    for unit in sorted(report.per_unit,
                       key=lambda u: (report.unit_kind.get(u, "?"), u)):
        row = _bucket_row(tracer, unit, total, width)
        busy = report.per_unit[unit].get(StallCause.BUSY, 0)
        lines.append(f"{unit:<{name_w}} |{row}| "
                     f"{100 * busy / total:5.1f}% busy")
    legend = "  ".join(f"{glyph}={cause}" for cause, glyph
                       in CAUSE_GLYPHS.items())
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def _bucket_row(tracer: RingTracer, unit: str, total: int,
                width: int) -> str:
    """Dominant-cause glyph per bucket for one unit."""
    weights = [dict() for _ in range(width)]
    for start, end, cause in _segments(tracer, unit, total):
        lo = min(start - 1, total - 1)
        hi = min(end - 1, total)
        first = lo * width // total
        last = max(first, (hi - 1) * width // total)
        for bucket in range(first, min(last + 1, width)):
            b_lo = bucket * total // width
            b_hi = (bucket + 1) * total // width
            overlap = min(hi, b_hi) - max(lo, b_lo)
            if overlap > 0:
                weights[bucket][cause] = (
                    weights[bucket].get(cause, 0) + overlap)
    row = []
    for bucket in weights:
        if not bucket:
            row.append(CAUSE_GLYPHS[StallCause.IDLE])
            continue
        dominant = max(bucket, key=bucket.get)
        row.append(CAUSE_GLYPHS[dominant])
    return "".join(row)
