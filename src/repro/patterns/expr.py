"""Symbolic scalar expression IR used by the parallel-pattern frontend.

User functions passed to :class:`~repro.patterns.patterns.Map`,
:class:`~repro.patterns.patterns.Fold`, etc. are *traced*: they are called
with symbolic :class:`Idx` arguments and build an expression tree by operator
overloading.  The tree is what the compiler analyses (access patterns,
operation counts) and what both the reference executor and the cycle-level
simulator evaluate.

The IR is deliberately small: constants, loop indices, loads from symbolic
collections, unary/binary arithmetic, comparisons, select (mux), and a fixed
set of math calls that map one-to-one onto PCU functional-unit opcodes.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.errors import TraceError

# ---------------------------------------------------------------------------
# Data types
# ---------------------------------------------------------------------------

#: Word-level data types supported by Plasticine functional units (32-bit).
FLOAT32 = "float32"
INT32 = "int32"
BOOL = "bool"

_NUMERIC = (FLOAT32, INT32)


def unify_dtypes(a: str, b: str) -> str:
    """Return the dtype of a binary op over operands of dtypes ``a``/``b``.

    Follows simple C-like promotion: float32 dominates int32; bool only
    combines with bool.
    """
    if a == b:
        return a
    if {a, b} == {FLOAT32, INT32}:
        return FLOAT32
    raise TraceError(f"cannot unify dtypes {a!r} and {b!r}")


# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all symbolic scalar expressions.

    Subclasses are immutable; structural identity is by object identity
    (shared subtrees are allowed and exploited by the stage scheduler).
    """

    dtype: str = FLOAT32

    # -- operator overloading ------------------------------------------------
    def __add__(self, other):
        return BinOp("add", self, wrap(other))

    def __radd__(self, other):
        return BinOp("add", wrap(other), self)

    def __sub__(self, other):
        return BinOp("sub", self, wrap(other))

    def __rsub__(self, other):
        return BinOp("sub", wrap(other), self)

    def __mul__(self, other):
        return BinOp("mul", self, wrap(other))

    def __rmul__(self, other):
        return BinOp("mul", wrap(other), self)

    def __truediv__(self, other):
        return BinOp("div", self, wrap(other))

    def __rtruediv__(self, other):
        return BinOp("div", wrap(other), self)

    def __mod__(self, other):
        return BinOp("mod", self, wrap(other))

    def __neg__(self):
        return UnOp("neg", self)

    def __lt__(self, other):
        return BinOp("lt", self, wrap(other))

    def __le__(self, other):
        return BinOp("le", self, wrap(other))

    def __gt__(self, other):
        return BinOp("gt", self, wrap(other))

    def __ge__(self, other):
        return BinOp("ge", self, wrap(other))

    def eq(self, other) -> "BinOp":
        """Element-wise equality (named method; ``__eq__`` is identity)."""
        return BinOp("eq", self, wrap(other))

    def ne(self, other) -> "BinOp":
        """Element-wise inequality."""
        return BinOp("ne", self, wrap(other))

    def __and__(self, other):
        return BinOp("and", self, wrap(other))

    def __or__(self, other):
        return BinOp("or", self, wrap(other))

    def __invert__(self):
        return UnOp("not", self)

    # -- helpers -------------------------------------------------------------
    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions (empty for leaves)."""
        return ()

    def __hash__(self):
        return id(self)

    def __eq__(self, other):  # identity semantics; use .eq() for symbolic ==
        return self is other


Number = Union[int, float, bool]
ExprLike = Union[Expr, Number]


def wrap(value: ExprLike) -> Expr:
    """Coerce a Python number (or an Expr) into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(value, BOOL)
    if isinstance(value, int):
        return Const(value, INT32)
    if isinstance(value, float):
        return Const(value, FLOAT32)
    raise TraceError(f"cannot use {type(value).__name__} in a traced function")


class Const(Expr):
    """A compile-time scalar constant."""

    def __init__(self, value: Number, dtype: Optional[str] = None):
        self.value = value
        if dtype is None:
            dtype = BOOL if isinstance(value, bool) else (
                INT32 if isinstance(value, int) else FLOAT32)
        self.dtype = dtype

    def __repr__(self):
        return f"Const({self.value})"


class Idx(Expr):
    """A loop index of a parallel pattern (always int32).

    ``extent`` is the index's domain size when known; the compiler uses it
    for banking and tiling decisions.
    """

    dtype = INT32

    def __init__(self, name: str, extent: Optional[int] = None):
        self.name = name
        self.extent = extent

    def __repr__(self):
        return f"Idx({self.name})"


class Var(Expr):
    """A named symbolic value bound at evaluation time.

    Used for the operands of traced combine functions (the two reduction
    inputs) and for values produced by enclosing pattern stages.
    """

    def __init__(self, name: str, dtype: str = FLOAT32):
        self.name = name
        self.dtype = dtype

    def __repr__(self):
        return f"Var({self.name})"


class Load(Expr):
    """A read of one element from a symbolic collection.

    ``array`` is a :class:`~repro.patterns.collections.Array` handle and
    ``indices`` the per-dimension address expressions.
    """

    def __init__(self, array, indices: Sequence[Expr]):
        self.array = array
        self.indices = tuple(wrap(i) for i in indices)
        if len(self.indices) != len(array.shape):
            raise TraceError(
                f"array {array.name!r} has {len(array.shape)} dims, "
                f"indexed with {len(self.indices)}")
        self.dtype = array.dtype

    def children(self):
        return self.indices

    def __repr__(self):
        return f"Load({self.array.name})"


_BOOL_OPS = frozenset({"lt", "le", "gt", "ge", "eq", "ne", "and", "or"})

#: Binary opcodes executable by one PCU functional unit stage.
BINARY_OPS = frozenset({
    "add", "sub", "mul", "div", "mod", "min", "max",
}) | _BOOL_OPS


class BinOp(Expr):
    """A binary arithmetic/comparison/logical operation."""

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in BINARY_OPS:
            raise TraceError(f"unknown binary op {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        if op in _BOOL_OPS:
            self.dtype = BOOL
        else:
            self.dtype = unify_dtypes(lhs.dtype, rhs.dtype)

    def children(self):
        return (self.lhs, self.rhs)

    def __repr__(self):
        return f"BinOp({self.op})"


#: Unary opcodes executable by one PCU functional unit stage.
UNARY_OPS = frozenset({
    "neg", "abs", "exp", "log", "sqrt", "sigmoid", "tanh", "relu",
    "not", "to_float", "to_int",
})


class UnOp(Expr):
    """A unary operation (negation, transcendental, cast, ...)."""

    def __init__(self, op: str, operand: Expr):
        if op not in UNARY_OPS:
            raise TraceError(f"unknown unary op {op!r}")
        self.op = op
        self.operand = operand
        if op == "not":
            self.dtype = BOOL
        elif op == "to_float":
            self.dtype = FLOAT32
        elif op == "to_int":
            self.dtype = INT32
        else:
            self.dtype = operand.dtype

    def children(self):
        return (self.operand,)

    def __repr__(self):
        return f"UnOp({self.op})"


class Select(Expr):
    """``cond ? if_true : if_false`` — maps to a mux in a PCU stage."""

    def __init__(self, cond: ExprLike, if_true: ExprLike, if_false: ExprLike):
        self.cond = wrap(cond)
        self.if_true = wrap(if_true)
        self.if_false = wrap(if_false)
        self.dtype = unify_dtypes(self.if_true.dtype, self.if_false.dtype)

    def children(self):
        return (self.cond, self.if_true, self.if_false)

    def __repr__(self):
        return "Select"


# ---------------------------------------------------------------------------
# Math helpers (the public tracing vocabulary)
# ---------------------------------------------------------------------------


def select(cond: ExprLike, if_true: ExprLike, if_false: ExprLike) -> Expr:
    """Symbolic ternary select."""
    return Select(cond, if_true, if_false)


def minimum(a: ExprLike, b: ExprLike) -> Expr:
    """Element-wise minimum."""
    return BinOp("min", wrap(a), wrap(b))


def maximum(a: ExprLike, b: ExprLike) -> Expr:
    """Element-wise maximum."""
    return BinOp("max", wrap(a), wrap(b))


def exp(x: ExprLike) -> Expr:
    """Symbolic exponential."""
    return UnOp("exp", wrap(x))


def log(x: ExprLike) -> Expr:
    """Symbolic natural logarithm."""
    return UnOp("log", wrap(x))


def sqrt(x: ExprLike) -> Expr:
    """Symbolic square root."""
    return UnOp("sqrt", wrap(x))


def sigmoid(x: ExprLike) -> Expr:
    """Symbolic logistic sigmoid."""
    return UnOp("sigmoid", wrap(x))


def tanh(x: ExprLike) -> Expr:
    """Symbolic hyperbolic tangent."""
    return UnOp("tanh", wrap(x))


def relu(x: ExprLike) -> Expr:
    """Symbolic rectified linear unit."""
    return UnOp("relu", wrap(x))


def absolute(x: ExprLike) -> Expr:
    """Symbolic absolute value."""
    return UnOp("abs", wrap(x))


def to_float(x: ExprLike) -> Expr:
    """Cast to float32."""
    return UnOp("to_float", wrap(x))


def to_int(x: ExprLike) -> Expr:
    """Cast (truncate) to int32."""
    return UnOp("to_int", wrap(x))


# ---------------------------------------------------------------------------
# Scalar evaluation (shared by executor and simulator datapaths)
# ---------------------------------------------------------------------------

_UNARY_EVAL = {
    "neg": lambda x: -x,
    "abs": abs,
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)),
    "tanh": math.tanh,
    "relu": lambda x: x if x > 0 else type(x)(0),
    "not": lambda x: not x,
    "to_float": float,
    "to_int": int,
}

def _eval_div(a, b):
    """Divide with FU semantics: float division, or truncating int division."""
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    if b == 0:
        raise ZeroDivisionError("integer division by zero in traced expression")
    quotient = abs(a) // abs(b)
    return quotient if (a < 0) == (b < 0) else -quotient


_BINARY_EVAL = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _eval_div,
    "mod": lambda a, b: a % b,
    "min": min,
    "max": max,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


def eval_unary(op: str, x):
    """Evaluate a unary opcode on a concrete scalar (FU semantics)."""
    return _UNARY_EVAL[op](x)


def eval_binary(op: str, a, b):
    """Evaluate a binary opcode on concrete scalars (FU semantics)."""
    return _BINARY_EVAL[op](a, b)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def postorder(root: Expr) -> Iterable[Expr]:
    """Yield each distinct node of the expression DAG in post-order."""
    seen = set()
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in seen:
            continue
        if expanded:
            seen.add(node)
            yield node
        else:
            stack.append((node, True))
            for child in node.children():
                if child not in seen:
                    stack.append((child, False))


def collect_loads(root: Expr) -> Tuple[Load, ...]:
    """All :class:`Load` nodes in an expression DAG, in post-order."""
    return tuple(n for n in postorder(root) if isinstance(n, Load))


def collect_indices(root: Expr) -> Tuple[Idx, ...]:
    """All distinct :class:`Idx` nodes in an expression DAG."""
    return tuple(n for n in postorder(root) if isinstance(n, Idx))


def count_ops(root: Expr) -> int:
    """Number of compute operations (BinOp/UnOp/Select) in the DAG."""
    return sum(1 for n in postorder(root)
               if isinstance(n, (BinOp, UnOp, Select)))
