"""Reference executor: interprets a :class:`~repro.patterns.program.Program`.

This is the functional semantics of the pattern language — the ground truth
every compiled-and-simulated configuration is validated against.  It
evaluates symbolic expressions element-by-element over numpy buffers; it is
not fast, and does not need to be.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.patterns import expr as E
from repro.patterns.collections import Array, Dyn, _np_dtype
from repro.patterns.domain import DynDim, RangeDim, StaticDim
from repro.patterns.patterns import (FlatMap, Fold, HashReduce, Map,
                                     ScatterMap)
from repro.patterns.program import Loop, Program, Step


class Env:
    """Runtime environment: one numpy buffer per program array."""

    def __init__(self, program: Program):
        self.program = program
        self.buffers: Dict[str, np.ndarray] = {}
        for array in program.arrays.values():
            self._alloc(array)

    def _alloc(self, array: Array):
        np_dtype = _np_dtype(array.dtype)
        if array.data is not None:
            self.buffers[array.name] = array.data.astype(
                np_dtype, copy=True)
        elif array.is_dynamic:
            self.buffers[array.name] = np.zeros(array.static_elems(),
                                                dtype=np_dtype)
        else:
            self.buffers[array.name] = np.zeros(array.shape, dtype=np_dtype)

    def read(self, array: Array, idxs):
        """Read one element with bounds checking."""
        buf = self.buffers[array.name]
        if not idxs:
            return buf[()] if buf.shape == () else buf.item(0)
        for axis, idx in enumerate(idxs):
            size = buf.shape[axis] if axis < buf.ndim else 0
            if idx < 0 or idx >= size:
                raise SimulationError(
                    f"out-of-bounds read {array.name}[{idxs}] "
                    f"(buffer shape {buf.shape})")
        return buf[tuple(idxs)].item()

    def write(self, array: Array, idxs, value):
        """Write one element."""
        buf = self.buffers[array.name]
        if not idxs:
            buf[()] = value
        else:
            buf[tuple(idxs)] = value

    def scalar(self, array: Array):
        """Value of a 0-d cell."""
        return self.buffers[array.name][()].item()


def eval_expr(node: E.Expr, env: Env, bindings, cache=None):
    """Evaluate one symbolic expression to a concrete scalar.

    ``bindings`` maps :class:`Idx`/:class:`Var` nodes (by identity) to
    concrete values.  ``cache`` memoizes shared subtrees within one
    evaluation.
    """
    if cache is None:
        cache = {}
    hit = cache.get(node)
    if hit is not None or node in cache:
        return hit
    if isinstance(node, E.Const):
        result = node.value
    elif isinstance(node, (E.Idx, E.Var)):
        try:
            result = bindings[node]
        except KeyError:
            raise SimulationError(f"unbound symbol {node!r}") from None
    elif isinstance(node, E.Load):
        idxs = [int(eval_expr(i, env, bindings, cache))
                for i in node.indices]
        result = env.read(node.array, idxs)
    elif isinstance(node, E.BinOp):
        result = E.eval_binary(node.op,
                               eval_expr(node.lhs, env, bindings, cache),
                               eval_expr(node.rhs, env, bindings, cache))
    elif isinstance(node, E.UnOp):
        result = E.eval_unary(node.op,
                              eval_expr(node.operand, env, bindings, cache))
    elif isinstance(node, E.Select):
        cond = eval_expr(node.cond, env, bindings, cache)
        branch = node.if_true if cond else node.if_false
        result = eval_expr(branch, env, bindings, cache)
    else:
        raise SimulationError(f"cannot evaluate node {node!r}")
    if isinstance(result, float) and node.dtype == E.FLOAT32:
        result = float(np.float32(result))
    cache[node] = result
    return result


def _dim_range(dim, env: Env, bindings):
    """Concrete (lo, hi) for one domain dimension under ``bindings``."""
    if isinstance(dim, StaticDim):
        return 0, dim.extent
    if isinstance(dim, DynDim):
        return 0, env.scalar(dim.dyn.length_of)
    if isinstance(dim, RangeDim):
        lo = int(eval_expr(dim.lo, env, bindings))
        hi = int(eval_expr(dim.hi, env, bindings))
        return lo, hi
    raise SimulationError(f"unknown dim {dim!r}")


def iterate_domain(dims, indices, env: Env, bindings):
    """Yield binding dicts for every point of a (possibly dynamic) domain.

    Later dimensions may depend on earlier indices, so ranges are
    re-evaluated per prefix.
    """
    def _recurse(axis, current):
        if axis == len(dims):
            yield current
            return
        lo, hi = _dim_range(dims[axis], env, current)
        for value in range(lo, hi):
            nxt = dict(current)
            nxt[indices[axis]] = value
            yield from _recurse(axis + 1, nxt)
    yield from _recurse(0, dict(bindings))


def _run_fold(fold: Fold, env: Env, bindings):
    """Evaluate a Fold to its tuple of accumulator values."""
    acc = list(fold.init)
    first = True
    for point in iterate_domain(fold.dims, fold.indices, env, bindings):
        cache = {}
        vals = [eval_expr(b, env, point, cache) for b in fold.body]
        if first and _init_is_identityless(fold):
            acc = vals
            first = False
            continue
        first = False
        cbind = dict(point)
        for k in range(fold.width):
            cbind[fold.acc_a[k]] = acc[k]
            cbind[fold.acc_b[k]] = vals[k]
        ccache = {}
        acc = [eval_expr(c, env, cbind, ccache) for c in fold.combine]
    return tuple(acc)


def _init_is_identityless(fold: Fold) -> bool:
    """Folds whose init is None-like are seeded from the first element.

    We always seed from ``init`` (the paper's Fold takes an explicit init),
    so this hook returns False; kept as one place to change the policy.
    """
    return False


def _offset_indices(point, indices):
    return [point[i] for i in indices]


def run_step(step: Step, env: Env) -> None:
    """Execute one pattern step against the environment."""
    pattern = step.pattern
    if isinstance(pattern, Map):
        for point in iterate_domain(pattern.dims, pattern.indices, env, {}):
            out_idx = _offset_indices(point, pattern.indices)
            if pattern.inner is not None:
                values = _run_fold(pattern.inner, env, point)
                for k, value in enumerate(values):
                    env.write(step.outputs[k],
                              _map_out_idx(step.outputs[k], out_idx), value)
            else:
                cache = {}
                for k, body in enumerate(pattern.body):
                    value = eval_expr(body, env, point, cache)
                    env.write(step.outputs[k],
                              _map_out_idx(step.outputs[k], out_idx), value)
    elif isinstance(pattern, Fold):
        values = _run_fold(pattern, env, {})
        for k, out in enumerate(step.outputs):
            env.write(out, (), values[k])
    elif isinstance(pattern, FlatMap):
        out = step.outputs[0]
        count = 0
        capacity = out.static_elems()
        for point in iterate_domain(pattern.dims, pattern.indices, env, {}):
            cache = {}
            for cond, value in pattern.emits:
                if eval_expr(cond, env, point, cache):
                    if count >= capacity:
                        raise SimulationError(
                            f"FlatMap output {out.name!r} overflow "
                            f"(max_elems={capacity})")
                    env.write(out, (count,),
                              eval_expr(value, env, point, cache))
                    count += 1
        env.write(step.length_output, (), count)
    elif isinstance(pattern, HashReduce):
        accs = [np.array([pattern.init[k]] * pattern.bins, dtype=object)
                for k in range(pattern.width)]
        touched = np.zeros(pattern.bins, dtype=bool)
        for point in iterate_domain(pattern.dims, pattern.indices, env, {}):
            cache = {}
            key = int(eval_expr(pattern.key, env, point, cache))
            if key < 0 or key >= pattern.bins:
                raise SimulationError(
                    f"HashReduce key {key} outside [0, {pattern.bins})")
            vals = [eval_expr(v, env, point, cache) for v in pattern.value]
            cbind = dict(point)
            for k in range(pattern.width):
                cbind[pattern.acc_a[k]] = accs[k][key]
                cbind[pattern.acc_b[k]] = vals[k]
            ccache = {}
            for k in range(pattern.width):
                accs[k][key] = eval_expr(pattern.combine[k], env, cbind,
                                         ccache)
            touched[key] = True
        for k, out in enumerate(step.outputs):
            for bin_id in range(pattern.bins):
                env.write(out, (bin_id,), accs[k][bin_id])
    elif isinstance(pattern, ScatterMap):
        target = step.outputs[0]
        limit = env.buffers[target.name].shape[0]
        for point in iterate_domain(pattern.dims, pattern.indices, env, {}):
            cache = {}
            where = int(eval_expr(pattern.index, env, point, cache))
            if where < 0 or where >= limit:
                raise SimulationError(
                    f"scatter index {where} out of bounds for "
                    f"{target.name!r}")
            env.write(target, (where,),
                      eval_expr(pattern.value, env, point, cache))
    else:
        raise SimulationError(f"cannot execute pattern {pattern!r}")


def _map_out_idx(out: Array, idx):
    """Map domain indices to output buffer indices (dynamic outputs are
    flat 1-d buffers)."""
    if out.ndim == 0:
        return ()
    if out.is_dynamic and len(idx) != 1:
        raise SimulationError("dynamic Map outputs require a 1-d domain")
    return idx


def run_sparse_hash_reduce(pattern: HashReduce, env: Env,
                           bindings=None):
    """Evaluate a *sparse* HashReduce (``bins=None``): keys are not
    known ahead of time, so accumulators are allocated on the fly.

    Returns ``{key: (v0, v1, ...)}`` — one accumulator tuple per key
    actually produced.  The paper supports this form architecturally;
    this reproduction executes it functionally only (the evaluated
    benchmarks all use the dense form).
    """
    accumulators = {}
    for point in iterate_domain(pattern.dims, pattern.indices, env,
                                bindings or {}):
        cache = {}
        key = eval_expr(pattern.key, env, point, cache)
        vals = [eval_expr(v, env, point, cache) for v in pattern.value]
        if key not in accumulators:
            accumulators[key] = tuple(pattern.init)
        cbind = dict(point)
        for k in range(pattern.width):
            cbind[pattern.acc_a[k]] = accumulators[key][k]
            cbind[pattern.acc_b[k]] = vals[k]
        ccache = {}
        accumulators[key] = tuple(
            eval_expr(c, env, cbind, ccache) for c in pattern.combine)
    return accumulators


def run_program(program: Program,
                env: Optional[Env] = None) -> Env:
    """Execute a whole program, returning the final environment."""
    if env is None:
        env = Env(program)

    def _run_body(body):
        for node in body:
            if isinstance(node, Step):
                run_step(node, env)
            elif isinstance(node, Loop):
                for iteration in range(node.trip):
                    if node.index_cell is not None:
                        env.write(node.index_cell, (), iteration)
                    _run_body(node.body)
                    if node.stop_when_zero is not None and env.scalar(
                            node.stop_when_zero) == 0:
                        break
            else:
                raise SimulationError(f"bad program node {node!r}")

    _run_body(program.body)
    return env
