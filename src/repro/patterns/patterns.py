"""The four parallel patterns of the Plasticine programming model.

``Map``, ``FlatMap``, ``Fold`` and ``HashReduce`` (Table 1 of the paper),
plus ``ScatterMap`` for random writes (the paper's scatter support, used by
BFS).  Patterns are *traced* at construction time: user functions are called
once with symbolic :class:`~repro.patterns.expr.Idx` arguments and must
build :class:`~repro.patterns.expr.Expr` trees (or nested scalar patterns).

Values produced by patterns:

* ``Map`` over an n-d domain produces an n-d collection (or a tuple of them
  when the body returns a tuple);
* ``Fold`` produces a scalar (or scalar tuple);
* ``Map`` whose body returns a ``Fold`` produces an n-d collection computed
  by a nested reduction (e.g. GEMM);
* ``FlatMap`` produces a dynamically sized 1-d collection plus its length;
* ``HashReduce`` produces a statically sized 1-d collection of bins;
* ``ScatterMap`` updates an existing collection at computed indices.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

from repro.errors import PatternError, TraceError
from repro.patterns import expr as E
from repro.patterns.domain import normalize_domain, static_trip_count

Value = Union[E.Expr, "Fold"]


def _as_tuple(value) -> Tuple:
    return value if isinstance(value, tuple) else (value,)


def _wrap_exprs(values, what: str) -> Tuple[E.Expr, ...]:
    wrapped = []
    for value in values:
        if isinstance(value, (E.Expr, int, float, bool)):
            wrapped.append(E.wrap(value))
        else:
            raise TraceError(
                f"{what} must return Expr(s), got {type(value).__name__}")
    return tuple(wrapped)


class Pattern:
    """Base class of all parallel patterns."""

    def __init__(self, domain, prev_indices: Sequence[E.Idx] = ()):
        self.dims, self.indices = normalize_domain(domain, prev_indices)

    @property
    def ndim(self) -> int:
        """Number of domain dimensions."""
        return len(self.dims)

    def trip_hint(self) -> int:
        """Static estimate of the total iteration count."""
        return static_trip_count(self.dims)


class Fold(Pattern):
    """Map each index to value(s) with ``f`` then reduce with ``r``.

    Parameters
    ----------
    domain:
        Domain spec (see :mod:`repro.patterns.domain`).
    init:
        Initial accumulator value(s): a number or tuple of numbers.
    f:
        Map function: called with one symbolic index per dimension, returns
        an ``Expr`` (or tuple of ``Expr`` for multi-accumulator folds).
    r:
        Associative combine: called with two symbolic accumulator values
        (tuples for multi-accumulator folds), returns the combined value(s).
    prev_indices:
        Enclosing-pattern indices (supplied automatically when nested).
    """

    def __init__(self, domain, init, f: Callable, r: Callable,
                 prev_indices: Sequence[E.Idx] = ()):
        super().__init__(domain, prev_indices)
        self.init = _as_tuple(init)
        self.width = len(self.init)
        self.body = _wrap_exprs(_as_tuple(f(*self.indices)),
                                "Fold map function")
        if len(self.body) != self.width:
            raise TraceError(
                f"Fold init has {self.width} value(s) but map function "
                f"returned {len(self.body)}")
        self.acc_a = tuple(
            E.Var(f"acc_a{k}", self.body[k].dtype) for k in range(self.width))
        self.acc_b = tuple(
            E.Var(f"acc_b{k}", self.body[k].dtype) for k in range(self.width))
        combined = r(self.acc_a[0], self.acc_b[0]) if self.width == 1 else r(
            self.acc_a, self.acc_b)
        self.combine = _wrap_exprs(_as_tuple(combined),
                                   "Fold combine function")
        if len(self.combine) != self.width:
            raise TraceError(
                f"Fold combine returned {len(self.combine)} value(s), "
                f"expected {self.width}")

    def __repr__(self):
        return f"Fold(ndim={self.ndim}, width={self.width})"


class Map(Pattern):
    """Produce one value (or value tuple) per index with function ``f``.

    The body may itself be a scalar-producing :class:`Fold` (nested
    reduction), which is how GEMM, GDA, CNN and the sparse row-reductions
    are expressed.
    """

    def __init__(self, domain, f: Callable,
                 prev_indices: Sequence[E.Idx] = ()):
        super().__init__(domain, prev_indices)
        body = f(*self.indices)
        self.body = _as_tuple(body)
        self.width = len(self.body)
        self.inner: Optional[Fold] = None
        if any(isinstance(v, Fold) for v in self.body):
            if self.width != 1:
                raise TraceError(
                    "a Map body returning a nested Fold must be scalar")
            self.inner = self.body[0]
            if not isinstance(self.inner, Fold):
                raise TraceError("nested pattern must be a Fold")
        else:
            self.body = _wrap_exprs(self.body, "Map function")

    def fold(self, domain, init, f: Callable, r: Callable) -> Fold:
        """Construct a :class:`Fold` nested under this map's indices.

        Only needed when the nested domain must reference this map's
        indices through a callable range; otherwise constructing ``Fold``
        directly inside the body is equivalent.
        """
        return Fold(domain, init, f, r, prev_indices=self.indices)

    @property
    def out_width(self) -> int:
        """Number of collections this map produces (nested folds may carry
        multiple accumulators, e.g. argmin's (best, argbest))."""
        return self.inner.width if self.inner is not None else self.width

    @property
    def out_dtypes(self) -> Tuple[str, ...]:
        """Per-output element dtype."""
        if self.inner is not None:
            return tuple(b.dtype for b in self.inner.body)
        return tuple(b.dtype for b in self.body)

    def __repr__(self):
        nested = ", nested" if self.inner is not None else ""
        return f"Map(ndim={self.ndim}{nested})"


class FlatMap(Pattern):
    """Produce zero or more elements per index, concatenated in order.

    The body function returns a list of ``(condition, value)`` pairs; for
    each index, every pair whose condition evaluates true appends its value
    to the output.  A filter is the one-pair special case.  Outputs are
    1-d and dynamically sized; the pattern also produces the output length.
    """

    def __init__(self, domain, g: Callable,
                 prev_indices: Sequence[E.Idx] = ()):
        super().__init__(domain, prev_indices)
        produced = g(*self.indices)
        if isinstance(produced, tuple) and len(produced) == 2 and isinstance(
                produced[0], E.Expr):
            produced = [produced]
        if not isinstance(produced, (list, tuple)) or not produced:
            raise TraceError(
                "FlatMap function must return a non-empty list of "
                "(condition, value) pairs")
        self.emits = []
        for pair in produced:
            if not (isinstance(pair, tuple) and len(pair) == 2):
                raise TraceError(
                    "each FlatMap emission must be a (condition, value) pair")
            cond, value = E.wrap(pair[0]), E.wrap(pair[1])
            self.emits.append((cond, value))
        self.out_dtype = self.emits[0][1].dtype
        for _, value in self.emits:
            if value.dtype != self.out_dtype:
                raise TraceError("FlatMap emissions must share one dtype")

    def __repr__(self):
        return f"FlatMap(ndim={self.ndim}, emits={len(self.emits)})"


def Filter(domain, cond: Callable, value: Callable) -> FlatMap:
    """Conditional selection: keep ``value(i)`` where ``cond(i)`` holds."""
    return FlatMap(domain, lambda *idx: [(cond(*idx), value(*idx))])


class HashReduce(Pattern):
    """Reduce values into keyed accumulator bins.

    Dense form: ``bins`` is the static number of accumulators; the key
    function must produce an int32 bin index in ``[0, bins)``.  The sparse
    form (``bins=None``) is supported by the reference executor only — the
    paper's evaluated benchmarks (e.g. Kmeans) use the dense form.
    """

    def __init__(self, domain, key: Callable, value: Callable, r: Callable,
                 bins: Optional[int] = None, init=0.0,
                 prev_indices: Sequence[E.Idx] = ()):
        super().__init__(domain, prev_indices)
        self.bins = bins
        key_expr = key(*self.indices)
        if not isinstance(key_expr, E.Expr) or key_expr.dtype != E.INT32:
            raise TraceError("HashReduce key function must return an int32 "
                             "expression")
        self.key = key_expr
        self.value = _wrap_exprs(_as_tuple(value(*self.indices)),
                                 "HashReduce value function")
        self.width = len(self.value)
        self.init = _as_tuple(init)
        if len(self.init) != self.width:
            raise TraceError("HashReduce init width must match value width")
        self.acc_a = tuple(
            E.Var(f"acc_a{k}", self.value[k].dtype) for k in range(self.width))
        self.acc_b = tuple(
            E.Var(f"acc_b{k}", self.value[k].dtype) for k in range(self.width))
        combined = r(self.acc_a[0], self.acc_b[0]) if self.width == 1 else r(
            self.acc_a, self.acc_b)
        self.combine = _wrap_exprs(_as_tuple(combined),
                                   "HashReduce combine function")

    @property
    def dense(self) -> bool:
        """True when all bins are statically allocated."""
        return self.bins is not None

    def __repr__(self):
        return f"HashReduce(bins={self.bins}, width={self.width})"


class ScatterMap(Pattern):
    """Write ``value(i)`` to ``target[index(i)]`` for every domain index.

    Models the paper's scatter support (random writes sequentialised and
    coalesced by the memory system).  Writes to distinct indices are
    unordered; programs must not rely on collision order.
    """

    def __init__(self, domain, index: Callable, value: Callable,
                 prev_indices: Sequence[E.Idx] = ()):
        super().__init__(domain, prev_indices)
        self.index = index(*self.indices)
        if not isinstance(self.index, E.Expr) or self.index.dtype != E.INT32:
            raise TraceError("ScatterMap index function must return int32")
        self.value = E.wrap(value(*self.indices))

    def __repr__(self):
        return f"ScatterMap(ndim={self.ndim})"
