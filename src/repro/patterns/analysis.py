"""Access-pattern analysis over traced expressions.

The compiler classifies each :class:`~repro.patterns.expr.Load` the way
Section 2.2 of the paper does:

* **affine** — the address is a linear function of pattern indices; these
  map to strided banking and dense DRAM bursts;
* **random** — the address itself depends on loaded data; these map to
  duplication-mode scratchpads on chip and gather/scatter off chip.

Affine addresses are represented as ``const + sum(coeff[idx] * idx)``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.patterns import expr as E


class Affine:
    """A linear address form ``const + sum(coeffs[idx] * idx)``."""

    def __init__(self, const: int = 0,
                 coeffs: Optional[Dict[E.Idx, int]] = None):
        self.const = const
        self.coeffs: Dict[E.Idx, int] = dict(coeffs or {})

    def __add__(self, other: "Affine") -> "Affine":
        coeffs = dict(self.coeffs)
        for idx, coeff in other.coeffs.items():
            coeffs[idx] = coeffs.get(idx, 0) + coeff
        return Affine(self.const + other.const, coeffs)

    def __neg__(self) -> "Affine":
        return Affine(-self.const,
                      {i: -c for i, c in self.coeffs.items()})

    def scale(self, factor: int) -> "Affine":
        """Multiply every term by a constant."""
        return Affine(self.const * factor,
                      {i: c * factor for i, c in self.coeffs.items()})

    def stride_of(self, idx: E.Idx) -> int:
        """Coefficient of one index (0 when absent)."""
        return self.coeffs.get(idx, 0)

    def is_const(self) -> bool:
        """True when no index participates."""
        return not any(self.coeffs.values())

    def __repr__(self):
        terms = " + ".join(f"{c}*{i.name}" for i, c in self.coeffs.items()
                           if c)
        return f"Affine({self.const}{' + ' + terms if terms else ''})"


def as_affine(node: E.Expr) -> Optional[Affine]:
    """Try to express an int expression as an affine form; None if not."""
    if isinstance(node, E.Const):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            return None
        return Affine(const=node.value)
    if isinstance(node, E.Idx):
        return Affine(coeffs={node: 1})
    if isinstance(node, E.UnOp) and node.op == "neg":
        inner = as_affine(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, E.BinOp):
        lhs = as_affine(node.lhs)
        rhs = as_affine(node.rhs)
        if node.op == "add" and lhs is not None and rhs is not None:
            return lhs + rhs
        if node.op == "sub" and lhs is not None and rhs is not None:
            return lhs + (-rhs)
        if node.op == "mul" and lhs is not None and rhs is not None:
            if lhs.is_const():
                return rhs.scale(lhs.const)
            if rhs.is_const():
                return lhs.scale(rhs.const)
    return None


class LoadClass:
    """Classification of one load: affine per-dimension forms or random."""

    def __init__(self, load: E.Load, affine_dims: Optional[Tuple] = None):
        self.load = load
        self.affine_dims = affine_dims

    @property
    def is_affine(self) -> bool:
        """True when every address dimension is affine in the indices."""
        return self.affine_dims is not None

    @property
    def is_gather(self) -> bool:
        """True when the address depends on loaded data (random access)."""
        return not self.is_affine

    def flat_affine(self, shape) -> Optional[Affine]:
        """Row-major flattened affine address, when static shape allows."""
        if not self.is_affine:
            return None
        flat = Affine()
        stride = 1
        for dim_size, form in zip(reversed(shape),
                                  reversed(self.affine_dims)):
            if not isinstance(dim_size, int):
                return None
            flat = flat + form.scale(stride)
            stride *= dim_size
        return flat

    def __repr__(self):
        kind = "affine" if self.is_affine else "gather"
        return f"LoadClass({self.load.array.name}, {kind})"


def classify_load(load: E.Load) -> LoadClass:
    """Classify one load as affine or random (gather)."""
    forms = []
    for index in load.indices:
        form = as_affine(index)
        if form is None:
            return LoadClass(load, None)
        forms.append(form)
    return LoadClass(load, tuple(forms))


def classify_loads(root: E.Expr):
    """Classify every load in an expression DAG."""
    return [classify_load(load) for load in E.collect_loads(root)]


def innermost_stride(load_class: LoadClass, innermost: E.Idx,
                     shape) -> Optional[int]:
    """Stride of the innermost (vectorised) index in flat address space.

    Stride 1 means lanes read consecutive words — the strided-banking
    sweet spot; stride 0 means a broadcast; None means a gather.
    """
    flat = load_class.flat_affine(shape)
    if flat is None:
        return None
    return flat.stride_of(innermost)


def expression_stats(root: E.Expr) -> Dict[str, int]:
    """Operation and operand statistics used by the sizing model (Fig. 7).

    Returns counts of compute ops, loads (affine/gather), distinct indices,
    and the live-value high-water mark of a greedy linearisation (a proxy
    for pipeline-register pressure).
    """
    ops = 0
    affine = 0
    gather = 0
    for node in E.postorder(root):
        if isinstance(node, (E.BinOp, E.UnOp, E.Select)):
            ops += 1
        elif isinstance(node, E.Load):
            if classify_load(node).is_affine:
                affine += 1
            else:
                gather += 1
    return {
        "ops": ops,
        "affine_loads": affine,
        "gather_loads": gather,
        "indices": len(E.collect_indices(root)),
    }
