"""Parallel-pattern programming model (Section 2 of the paper).

Public surface::

    from repro.patterns import (
        Program, Map, Fold, FlatMap, Filter, HashReduce, ScatterMap,
        Array, Dyn, run_program,
        select, minimum, maximum, exp, log, sqrt, sigmoid, tanh, relu,
        absolute, to_float, to_int,
        FLOAT32, INT32, BOOL,
    )
"""

from repro.patterns.collections import Array, Dyn, scalar_cell
from repro.patterns.executor import Env, eval_expr, run_program, run_step
from repro.patterns.expr import (BOOL, FLOAT32, INT32, Const, Expr, Idx,
                                 Load, Var, absolute, exp, log, maximum,
                                 minimum, relu, select, sigmoid, sqrt, tanh,
                                 to_float, to_int)
from repro.patterns.patterns import (Filter, FlatMap, Fold, HashReduce, Map,
                                     Pattern, ScatterMap)
from repro.patterns.program import Loop, Program, Step

__all__ = [
    "Array", "Dyn", "scalar_cell",
    "Env", "eval_expr", "run_program", "run_step",
    "BOOL", "FLOAT32", "INT32", "Const", "Expr", "Idx", "Load", "Var",
    "absolute", "exp", "log", "maximum", "minimum", "relu", "select",
    "sigmoid", "sqrt", "tanh", "to_float", "to_int",
    "Filter", "FlatMap", "Fold", "HashReduce", "Map", "Pattern",
    "ScatterMap",
    "Loop", "Program", "Step",
]

from repro.patterns.executor import run_sparse_hash_reduce  # noqa: E402

__all__.append("run_sparse_hash_reduce")
