"""Programs: named DAGs of pattern steps with sequential loops.

A :class:`Program` is the unit of compilation and execution.  It owns the
symbolic arrays (DRAM collections) and a body of :class:`Step` /
:class:`Loop` nodes.  Steps within one body level execute in order (the
compiler may overlap them with coarse-grained pipelining when legal); a
:class:`Loop` is a sequential outer controller, as in the paper's LogReg,
SGD, Kmeans, CNN, PageRank and BFS benchmarks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import PatternError
from repro.patterns import expr as E
from repro.patterns.collections import Array, Dyn
from repro.patterns.patterns import (FlatMap, Fold, HashReduce, Map, Pattern,
                                     ScatterMap)


class Step:
    """One pattern execution writing to one or more output arrays.

    ``par`` holds per-dimension parallelization factors for the pattern's
    own domain (innermost pattern dims for nested Map{Fold} are carried by
    ``inner_par``).  ``tile`` optionally overrides the compiler's tile-size
    choice per dimension.
    """

    def __init__(self, name: str, pattern: Pattern,
                 outputs: Sequence[Array],
                 length_output: Optional[Array] = None):
        self.name = name
        self.pattern = pattern
        self.outputs = tuple(outputs)
        self.length_output = length_output
        self.par: Tuple[int, ...] = tuple(1 for _ in pattern.dims)
        self.inner_par: int = 1
        self.outer_par: int = 1
        self.tile: Optional[Tuple[int, ...]] = None
        self._validate()

    def _validate(self):
        pattern = self.pattern
        if isinstance(pattern, ScatterMap):
            if len(self.outputs) != 1:
                raise PatternError("ScatterMap step needs exactly one target")
            if self.outputs[0].ndim != 1:
                raise PatternError("ScatterMap target must be 1-d")
            return
        if isinstance(pattern, FlatMap):
            if len(self.outputs) != 1 or self.length_output is None:
                raise PatternError(
                    "FlatMap step needs one output and a length output")
            if not self.outputs[0].is_dynamic:
                raise PatternError("FlatMap output must be dynamic")
            return
        if isinstance(pattern, HashReduce):
            if not pattern.dense:
                raise PatternError(
                    "only dense HashReduce can be a program step; use the "
                    "reference executor for the sparse form")
            if len(self.outputs) != pattern.width:
                raise PatternError("HashReduce outputs must match width")
            for out in self.outputs:
                if out.shape != (pattern.bins,):
                    raise PatternError(
                        f"HashReduce output {out.name!r} must have shape "
                        f"({pattern.bins},)")
            return
        if isinstance(pattern, Fold):
            if len(self.outputs) != pattern.width:
                raise PatternError("Fold outputs must match width")
            for out in self.outputs:
                if out.ndim != 0:
                    raise PatternError("Fold outputs must be 0-d cells")
            return
        if isinstance(pattern, Map):
            if len(self.outputs) != pattern.out_width:
                raise PatternError("Map outputs must match body width")
            for out in self.outputs:
                single = out.ndim == 0 and pattern.trip_hint() == 1
                if out.ndim != pattern.ndim and not single:
                    raise PatternError(
                        f"Map output {out.name!r} rank {out.ndim} != "
                        f"domain rank {pattern.ndim}")
            return
        raise PatternError(f"unsupported pattern type {type(pattern)}")

    def set_par(self, *factors: int, inner: int = 1,
                outer: int = 1) -> "Step":
        """Set parallelization factors.

        ``factors`` vectorise the pattern's own dims (the innermost one
        becomes the SIMD width); ``inner`` vectorises a nested Fold;
        ``outer`` unrolls the tile loop, duplicating the step's inner
        controllers to process ``outer`` tiles concurrently (the paper's
        outer-loop parallelization).
        """
        if factors:
            if len(factors) != len(self.pattern.dims):
                raise PatternError(
                    f"{len(factors)} par factors for "
                    f"{len(self.pattern.dims)}-d domain")
            self.par = tuple(factors)
        if inner < 1 or outer < 1:
            raise PatternError("parallelization factors must be >= 1")
        self.inner_par = inner
        self.outer_par = outer
        return self

    def __repr__(self):
        return f"Step({self.name!r}, {self.pattern!r})"


class Loop:
    """A sequential outer loop over its body.

    ``trip`` is the maximum trip count; if ``stop_when_zero`` names a 0-d
    int32 array, the loop exits early once that cell reads zero at the end
    of an iteration (BFS frontier termination).
    """

    def __init__(self, name: str, trip: int,
                 stop_when_zero: Optional[Array] = None,
                 index_cell: Optional[Array] = None):
        if trip <= 0:
            raise PatternError("loop trip count must be positive")
        self.name = name
        self.trip = trip
        self.stop_when_zero = stop_when_zero
        #: optional 0-d int32 cell holding the current iteration number
        self.index_cell = index_cell
        if index_cell is not None and (index_cell.shape != ()
                                       or index_cell.dtype != E.INT32):
            raise PatternError("loop index cell must be a 0-d int32 array")
        self.body: List[Union[Step, Loop]] = []

    def __repr__(self):
        return f"Loop({self.name!r}, trip={self.trip})"


class Program:
    """A named program: arrays + a body of steps and sequential loops."""

    def __init__(self, name: str):
        self.name = name
        self.arrays = {}
        self.inputs: List[Array] = []
        self.outputs: List[Array] = []
        self.body: List[Union[Step, Loop]] = []
        self._scope_stack: List[List] = [self.body]
        self._step_names = set()

    # -- array declaration ---------------------------------------------------
    def _register(self, array: Array) -> Array:
        if array.name in self.arrays:
            raise PatternError(f"duplicate array name {array.name!r}")
        self.arrays[array.name] = array
        return array

    def input(self, name: str, shape=(), dtype: str = E.FLOAT32,
              data=None, offchip: bool = False) -> Array:
        """Declare a DRAM input collection."""
        array = self._register(Array(name, shape, dtype, data=data,
                                     offchip=offchip))
        self.inputs.append(array)
        return array

    def output(self, name: str, shape=(), dtype: str = E.FLOAT32,
               max_elems: Optional[int] = None) -> Array:
        """Declare a DRAM output collection."""
        array = self._register(Array(name, shape, dtype,
                                     max_elems=max_elems))
        self.outputs.append(array)
        return array

    def temp(self, name: str, shape=(), dtype: str = E.FLOAT32,
             max_elems: Optional[int] = None, data=None,
             offchip: bool = False) -> Array:
        """Declare an intermediate DRAM collection (neither input nor
        output; still observable after execution)."""
        return self._register(Array(name, shape, dtype, data=data,
                                    max_elems=max_elems, offchip=offchip))

    # -- step construction -----------------------------------------------------
    def _add(self, step_or_loop):
        self._scope_stack[-1].append(step_or_loop)
        return step_or_loop

    def _fresh_name(self, name: str) -> str:
        if name in self._step_names:
            raise PatternError(f"duplicate step name {name!r}")
        self._step_names.add(name)
        return name

    def step(self, name: str, pattern: Pattern, outputs: Sequence[Array],
             length_output: Optional[Array] = None) -> Step:
        """Append a generic pattern step to the current scope."""
        return self._add(Step(self._fresh_name(name), pattern,
                              outputs, length_output))

    def map(self, name: str, out: Union[Array, Sequence[Array]], domain,
            f: Callable) -> Step:
        """Append a Map step."""
        outs = (out,) if isinstance(out, Array) else tuple(out)
        return self.step(name, Map(domain, f), outs)

    def update(self, name: str, cell: Array, value: Callable) -> Step:
        """Append a single-iteration Map writing one 0-d cell.

        ``value`` is a zero-argument callable returning the new value
        expression (it may read any program array).
        """
        return self.map(name, cell, 1, lambda _i: value())

    def fold(self, name: str, out: Union[Array, Sequence[Array]], domain,
             init, f: Callable, r: Callable) -> Step:
        """Append a Fold step (output(s) are 0-d cells)."""
        outs = (out,) if isinstance(out, Array) else tuple(out)
        return self.step(name, Fold(domain, init, f, r), outs)

    def flatmap(self, name: str, out: Array, length_out: Array, domain,
                g: Callable) -> Step:
        """Append a FlatMap step producing ``out`` and its length."""
        return self.step(name, FlatMap(domain, g), (out,), length_out)

    def filter(self, name: str, out: Array, length_out: Array, domain,
               cond: Callable, value: Callable) -> Step:
        """Append a filter (single-emission FlatMap) step."""
        return self.flatmap(name, out, length_out, domain,
                            lambda *idx: [(cond(*idx), value(*idx))])

    def hash_reduce(self, name: str, out: Union[Array, Sequence[Array]],
                    domain, bins: int, key: Callable, value: Callable,
                    r: Callable, init=0.0) -> Step:
        """Append a dense HashReduce step with ``bins`` accumulators."""
        outs = (out,) if isinstance(out, Array) else tuple(out)
        return self.step(
            name, HashReduce(domain, key, value, r, bins=bins, init=init),
            outs)

    def scatter(self, name: str, target: Array, domain, index: Callable,
                value: Callable) -> Step:
        """Append a ScatterMap step writing into ``target``."""
        return self.step(name, ScatterMap(domain, index, value), (target,))

    @contextmanager
    def loop(self, name: str, trip: int,
             stop_when_zero: Optional[Array] = None,
             index_cell: Optional[Array] = None):
        """Open a sequential outer loop scope.

        ``index_cell`` names a 0-d int32 array that reads the current
        iteration number inside the body (e.g. minibatch offsets).
        """
        loop = Loop(self._fresh_name(name), trip, stop_when_zero,
                    index_cell)
        self._add(loop)
        self._scope_stack.append(loop.body)
        try:
            yield loop
        finally:
            self._scope_stack.pop()

    # -- introspection -----------------------------------------------------------
    def walk_steps(self):
        """Yield every :class:`Step` in program order (loops flattened)."""
        def _walk(body):
            for node in body:
                if isinstance(node, Step):
                    yield node
                else:
                    yield from _walk(node.body)
        yield from _walk(self.body)

    def dyn_length(self, array: Array) -> Dyn:
        """Convenience: a :class:`Dyn` extent for a 0-d int32 cell."""
        return Dyn(array)

    def __repr__(self):
        return (f"Program({self.name!r}, arrays={len(self.arrays)}, "
                f"steps={sum(1 for _ in self.walk_steps())})")
