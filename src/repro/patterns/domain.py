"""Index domains for parallel patterns.

A pattern's domain is a sequence of dimensions.  Each dimension is one of:

* a static extent (``int``) — iterates ``0 .. n-1``;
* a dynamic extent (:class:`~repro.patterns.collections.Dyn`) — iterates up
  to a runtime length stored in a 0-d int32 array (FlatMap outputs);
* an expression range ``(lo, hi)`` of symbolic int expressions — iterates
  ``lo .. hi-1``; used for data-dependent ranges such as CSR row segments;
* a callable taking the already-created indices of *earlier* dimensions of
  the same pattern and returning an ``(lo, hi)`` expression pair.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple, Union

from repro.errors import PatternError
from repro.patterns import expr as E
from repro.patterns.collections import Dyn

DomainEntry = Union[int, Dyn, Tuple[E.ExprLike, E.ExprLike], Callable]


class Dim:
    """Base class of a normalized domain dimension."""

    #: True when the iteration count is known at compile time.
    static = False

    def extent_hint(self) -> int:
        """Best static estimate of the trip count (for sizing heuristics)."""
        raise NotImplementedError


class StaticDim(Dim):
    """A compile-time-known extent ``0 .. extent-1``."""

    static = True

    def __init__(self, extent: int):
        if extent <= 0:
            raise PatternError(f"domain extent must be positive, got {extent}")
        self.extent = extent

    def extent_hint(self) -> int:
        return self.extent

    def __repr__(self):
        return f"StaticDim({self.extent})"


class DynDim(Dim):
    """A runtime extent ``0 .. len-1`` read from a 0-d int32 array."""

    def __init__(self, dyn: Dyn, hint: int = 0):
        self.dyn = dyn
        self.hint = hint

    def extent_hint(self) -> int:
        if self.hint:
            return self.hint
        bound = self.dyn.length_of.max_elems
        return bound if bound else 1

    def __repr__(self):
        return f"DynDim({self.dyn!r})"


class RangeDim(Dim):
    """A data-dependent range ``lo .. hi-1`` of symbolic expressions.

    The expressions may reference indices of enclosing patterns and earlier
    dimensions of the same pattern (e.g. CSR ``row_ptr[i] .. row_ptr[i+1]``).
    """

    def __init__(self, lo: E.ExprLike, hi: E.ExprLike, hint: int = 8):
        self.lo = E.wrap(lo)
        self.hi = E.wrap(hi)
        self.hint = hint

    def extent_hint(self) -> int:
        return self.hint

    def __repr__(self):
        return "RangeDim"


def normalize_domain(domain, prev_indices: Sequence[E.Idx] = ()):
    """Normalize a user-facing domain spec into ``(dims, indices)``.

    ``domain`` may be a single entry or a sequence of entries.  A fresh
    :class:`~repro.patterns.expr.Idx` is created per dimension; callables are
    invoked with all earlier indices (enclosing-pattern indices first).
    """
    if isinstance(domain, (int, Dyn)) or callable(domain) or (
            isinstance(domain, tuple) and len(domain) == 2
            and any(isinstance(x, E.Expr) for x in domain)):
        domain = (domain,)
    dims = []
    indices = list(prev_indices)
    own_indices = []
    for axis, entry in enumerate(domain):
        if callable(entry) and not isinstance(entry, Dyn):
            entry = entry(*indices)
            if not (isinstance(entry, tuple) and len(entry) == 2):
                raise PatternError(
                    "callable domain entry must return a (lo, hi) pair")
        if isinstance(entry, bool):
            raise PatternError("domain extent cannot be bool")
        if isinstance(entry, int):
            dim: Dim = StaticDim(entry)
        elif isinstance(entry, Dyn):
            dim = DynDim(entry)
        elif isinstance(entry, tuple) and len(entry) == 2:
            dim = RangeDim(entry[0], entry[1])
        else:
            raise PatternError(f"bad domain entry {entry!r}")
        idx = E.Idx(f"i{len(indices)}",
                    dim.extent if isinstance(dim, StaticDim) else None)
        dims.append(dim)
        indices.append(idx)
        own_indices.append(idx)
    if not dims:
        raise PatternError("pattern domain must have at least one dimension")
    return tuple(dims), tuple(own_indices)


def static_trip_count(dims) -> int:
    """Product of extent hints across dimensions."""
    count = 1
    for dim in dims:
        count *= dim.extent_hint()
    return count
