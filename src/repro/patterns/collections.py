"""Symbolic collections (DRAM-resident arrays) for the pattern frontend.

An :class:`Array` is a named handle with a shape and dtype.  Indexing it with
symbolic expressions inside a traced function yields a
:class:`~repro.patterns.expr.Load` node.  Concrete data (a numpy array) may be
attached for the reference executor and the simulator to read.

Arrays whose length is only known at runtime (outputs of FlatMap) carry a
:class:`Dyn` extent referring to a 0-d int32 length array.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import PatternError
from repro.patterns import expr as E


class Dyn:
    """A dynamic extent: the value of a 0-d int32 :class:`Array` at runtime.

    Used as a shape element for dynamically sized collections and as a
    domain extent for patterns that iterate over them.
    """

    def __init__(self, length_of: "Array"):
        if length_of.shape != ():
            raise PatternError(
                f"Dyn extent must reference a 0-d array, got shape "
                f"{length_of.shape}")
        if length_of.dtype != E.INT32:
            raise PatternError("Dyn extent must reference an int32 scalar")
        self.length_of = length_of

    def __repr__(self):
        return f"Dyn({self.length_of.name})"


ShapeElem = Union[int, Dyn]
Shape = Tuple[ShapeElem, ...]


def _np_dtype(dtype: str):
    return {E.FLOAT32: np.float32, E.INT32: np.int32, E.BOOL: np.bool_}[dtype]


class Array:
    """A named, typed, DRAM-resident collection.

    Parameters
    ----------
    name:
        Unique name within a :class:`~repro.patterns.program.Program`.
    shape:
        Tuple of static ints and/or :class:`Dyn` extents.  ``()`` denotes a
        scalar cell (used for reduction results and dynamic lengths).
    dtype:
        One of ``float32``, ``int32``, ``bool``.
    data:
        Optional concrete numpy array for inputs.
    max_elems:
        Upper bound on element count for dynamically sized arrays (used to
        size DRAM allocation).
    offchip:
        When True the compiler must not cache the collection whole in a
        scratchpad: random reads become DRAM gathers through the
        coalescing units (the paper's sparse benchmarks).
    """

    def __init__(self, name: str, shape: Sequence[ShapeElem] = (),
                 dtype: str = E.FLOAT32,
                 data: Optional[np.ndarray] = None,
                 max_elems: Optional[int] = None,
                 offchip: bool = False):
        self.offchip = offchip
        self.name = name
        self.shape: Shape = tuple(shape)
        self.dtype = dtype
        self.max_elems = max_elems
        for dim in self.shape:
            if not isinstance(dim, (int, Dyn)):
                raise PatternError(
                    f"shape element {dim!r} of {name!r} must be int or Dyn")
            if isinstance(dim, int) and dim <= 0:
                raise PatternError(
                    f"array {name!r} has non-positive extent {dim}")
        self.data: Optional[np.ndarray] = None
        if data is not None:
            self.set_data(data)

    # -- properties ----------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of dimensions (0 for a scalar cell)."""
        return len(self.shape)

    @property
    def is_dynamic(self) -> bool:
        """True when any extent is a :class:`Dyn`."""
        return any(isinstance(d, Dyn) for d in self.shape)

    def static_elems(self) -> int:
        """Element count, using ``max_elems`` bounds for dynamic arrays."""
        if self.is_dynamic:
            if self.max_elems is None:
                raise PatternError(
                    f"dynamic array {self.name!r} needs max_elems")
            return self.max_elems
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    def bytes(self) -> int:
        """Storage footprint in bytes (4-byte words throughout)."""
        return 4 * max(1, self.static_elems())

    # -- data binding ----------------------------------------------------------
    def set_data(self, data) -> None:
        """Attach concrete contents, coercing to the declared dtype.

        Static shapes must match exactly; dynamic arrays accept any 1-d
        array within ``max_elems``.
        """
        arr = np.asarray(data, dtype=_np_dtype(self.dtype))
        if not self.is_dynamic:
            want = self.shape
            if arr.shape != want:
                raise PatternError(
                    f"data shape {arr.shape} != declared {want} "
                    f"for array {self.name!r}")
        elif self.max_elems is not None and arr.size > self.max_elems:
            raise PatternError(
                f"data for {self.name!r} exceeds max_elems "
                f"({arr.size} > {self.max_elems})")
        self.data = arr

    # -- symbolic indexing -----------------------------------------------------
    def __getitem__(self, indices) -> E.Load:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return E.Load(self, indices)

    def scalar(self) -> E.Load:
        """Read this 0-d array as a scalar expression."""
        if self.shape != ():
            raise PatternError(f"{self.name!r} is not a 0-d array")
        return E.Load(self, ())

    def __repr__(self):
        return f"Array({self.name!r}, shape={self.shape}, {self.dtype})"


def scalar_cell(name: str, dtype: str = E.FLOAT32,
                value=None) -> Array:
    """Create a 0-d array (a single DRAM word), optionally initialised."""
    cell = Array(name, (), dtype)
    if value is not None:
        cell.set_data(np.asarray(value))
    return cell
