"""The paper's published numbers, for side-by-side comparison.

Transcribed from the ISCA 2017 paper; used only for reporting (we print
paper-vs-measured in EXPERIMENTS.md and the benchmark harnesses), never
as model inputs.
"""

from __future__ import annotations

#: Table 5 (area breakdown, mm^2 at 28 nm)
TABLE5 = {
    "pcu_total": 0.849,
    "pcu_fus": 0.622,
    "pcu_registers": 0.144,
    "pcu_fifos": 0.082,
    "pcu_control": 0.001,
    "pmu_total": 0.532,
    "pmu_scratchpad": 0.477,
    "pmu_fifos": 0.024,
    "pmu_registers": 0.023,
    "pmu_fus": 0.007,
    "pmu_control": 0.001,
    "interconnect": 18.796,
    "memory_controller": 5.616,
    "chip_total": 112.796,
}

#: Section 4.2 headline numbers
HEADLINE = {
    "peak_tflops": 12.3,
    "onchip_mb": 16.0,
    "max_power_w": 49.0,
    "clock_ghz": 1.0,
}

#: Table 7 — per-benchmark: (FPGA power W, Plasticine power W,
#: performance ratio, perf-per-watt ratio)
TABLE7 = {
    "innerproduct": (21.8, 18.9, 1.4, 1.6),
    "outerproduct": (24.4, 26.9, 6.7, 6.1),
    "blackscholes": (28.3, 24.7, 5.1, 5.8),
    "tpchq6": (21.7, 20.5, 1.4, 1.5),
    "gemm": (25.6, 34.6, 33.0, 24.4),
    "gda": (26.5, 41.0, 40.0, 25.9),
    "logreg": (22.9, 28.6, 11.4, 9.2),
    "sgd": (25.6, 10.7, 6.7, 15.9),
    "kmeans": (23.9, 12.9, 6.1, 11.3),
    "cnn": (34.4, 42.6, 95.1, 76.9),
    "smdv": (21.5, 19.3, 8.3, 9.3),
    "pagerank": (21.9, 17.1, 14.2, 18.2),
    "bfs": (21.9, 14.0, 7.3, 11.4),
}

#: Table 7 — Plasticine utilization % (PCU, PMU, AG)
TABLE7_UTIL = {
    "innerproduct": (17.2, 25.0, 47.1),
    "outerproduct": (15.6, 46.9, 88.2),
    "blackscholes": (65.6, 21.9, 41.2),
    "tpchq6": (28.1, 25.0, 47.1),
    "gemm": (34.4, 68.8, 97.1),
    "gda": (89.1, 87.5, 44.1),
    "logreg": (51.6, 68.8, 8.8),
    "sgd": (6.3, 9.4, 8.8),
    "kmeans": (10.9, 17.2, 8.8),
    "cnn": (48.9, 98.4, 100.0),
    "smdv": (43.8, 15.6, 29.4),
    "pagerank": (28.1, 20.3, 20.6),
    "bfs": (18.8, 15.6, 11.8),
}

#: Table 6 — cumulative area overheads (column e, i.e. overall
#: generalized-architecture vs ASIC) per benchmark
TABLE6_CUMULATIVE = {
    "innerproduct": 13.18,
    "outerproduct": 5.95,
    "blackscholes": 4.46,
    "tpchq6": 14.32,
    "gemm": 3.92,
    "gda": 14.38,
    "logreg": 5.20,
    "sgd": 21.98,
    "kmeans": 9.42,
    "smdv": 36.73,
    "pagerank": 42.83,
    "bfs": 10.70,
}

#: Table 6 — step (a) reconfigurable-vs-ASIC overheads per benchmark
TABLE6_STEP_A = {
    "innerproduct": 2.64, "outerproduct": 1.54, "blackscholes": 2.05,
    "tpchq6": 2.26, "gemm": 1.63, "gda": 1.95, "logreg": 1.55,
    "sgd": 7.67, "kmeans": 2.81, "smdv": 5.03, "pagerank": 7.14,
    "bfs": 2.91,
}

#: Table 3 — final architecture parameters
TABLE3_FINAL = {
    "lanes": 16, "stages": 6, "regs_per_stage": 6, "scalar_in": 6,
    "scalar_out": 5, "vector_in": 3, "vector_out": 3, "bank_kb": 16,
    "banks": 16, "pmu_stages": 4, "pcus": 64, "pmus": 64,
}
