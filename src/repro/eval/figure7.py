"""Figure 7 regeneration: PCU parameter sweeps.

For each candidate value of one PCU parameter, each benchmark's inner
controllers are re-partitioned with that constraint; the resulting
physical-PCU count times per-PCU area gives ``AreaPCU``.  The reported
overhead is ``AreaPCU / MinPCU - 1`` where ``MinPCU`` is the benchmark's
minimum over the sweep, exactly as the paper defines it.  Infeasible
values (the paper's X marks) come out as ``None``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import ALL_APPS, App
from repro.arch.area import pcu_area
from repro.arch.params import DEFAULT, PcuParams
from repro.bitstream.cache import CompileCache
from repro.compiler.partition import feasible, partition_pcu
from repro.compiler.scheduling import schedule
from repro.dhdl.ir import InnerCompute
from repro.eval.driver import (CacheTally, CompileSpec, cache_payload,
                               map_tasks, obtain, worker_cache)
from repro.eval.report import format_table

#: the sweeps shown in Figure 7 (subfigure -> parameter and range)
SWEEPS = {
    "a_stages": ("stages", tuple(range(4, 17))),
    "b_registers": ("regs_per_stage", tuple(range(2, 17, 2))),
    "c_scalar_in": ("scalar_in", (1, 2, 4, 6, 8, 10)),
    "d_scalar_out": ("scalar_out", (1, 2, 3, 4, 5, 6)),
    "e_vector_in": ("vector_in", (2, 3, 4, 6, 8, 10)),
    "f_vector_out": ("vector_out", (1, 2, 3, 4, 5, 6)),
}


def area_for(schedules, pcu: PcuParams) -> Optional[float]:
    """Total PCU area for one benchmark at one candidate shape."""
    total = 0.0
    for sched in schedules:
        if not feasible(sched, pcu):
            return None
        part = partition_pcu(sched, pcu)
        total += part.num_pcus * pcu_area(pcu)
    return total


def _sweep_worker(payload: Tuple[str, str, str, Tuple[int, ...],
                                 Optional[str]]
                  ) -> Tuple[str, Dict[int, Optional[float]], str]:
    """Pool worker: one app's normalized overhead curve."""
    name, scale, param, values, cache_dir = payload
    cache = worker_cache(cache_dir)
    artifact, outcome = obtain(CompileSpec(name, scale), cache)
    schedules = [schedule(leaf) for leaf in artifact.dhdl.leaves()
                 if isinstance(leaf, InnerCompute)
                 and not leaf.address_class]
    areas: Dict[int, Optional[float]] = {}
    for value in values:
        candidate = replace(DEFAULT.pcu, **{param: value})
        areas[value] = area_for(schedules, candidate)
    valid = [a for a in areas.values() if a is not None]
    if not valid:
        return name, {v: None for v in values}, outcome
    floor = min(valid)
    return name, {v: (a / floor - 1.0) if a is not None else None
                  for v, a in areas.items()}, outcome


def sweep(param: str, values: Sequence[int],
          apps: Optional[List[App]] = None,
          scale: str = "tiny", jobs: int = 1,
          cache: Optional[CompileCache] = None,
          tally: Optional[CacheTally] = None
          ) -> Dict[str, Dict[int, Optional[float]]]:
    """Overhead curves for one parameter across benchmarks.

    Returns ``{app: {value: overhead or None-if-infeasible}}``.
    """
    apps = apps or [a for a in ALL_APPS if a.name != "cnn"]
    payloads = [(app.name, scale, param, tuple(values),
                 cache_payload(cache)) for app in apps]
    curves: Dict[str, Dict[int, Optional[float]]] = {}
    for name, curve, outcome in map_tasks(_sweep_worker, payloads,
                                          jobs=jobs):
        if tally is not None:
            tally.record(outcome)
        curves[name] = curve
    return curves


def average_curve(curves: Dict[str, Dict[int, Optional[float]]]
                  ) -> Dict[int, Optional[float]]:
    """Benchmark-average overhead per swept value (feasible apps only)."""
    values = next(iter(curves.values())).keys()
    result = {}
    for value in values:
        samples = [c[value] for c in curves.values()
                   if c[value] is not None]
        result[value] = sum(samples) / len(samples) if samples else None
    return result


def best_value(curves) -> int:
    """The swept value minimising the average overhead."""
    avg = average_curve(curves)
    feasible_vals = {v: o for v, o in avg.items() if o is not None}
    return min(feasible_vals, key=feasible_vals.get)


def pmu_sweep(values: Sequence[int] = (4, 8, 16, 32, 64),
              apps: Optional[List[App]] = None) -> Dict[int, Dict]:
    """Section 3.7's PMU sizing study: sweep the bank capacity.

    The paper's criterion: "ideal tile sizes for our benchmarks are at
    most 4000 words per bank. We therefore set the PMU to have 16
    configurable 16KB banks."  A tile that fits a single PMU keeps its
    16-way banked access; one that splits across PMUs pays interconnect
    and loses banking.  For each candidate we report (i) the fraction of
    benchmarks whose dominant paper-scale tile fits one PMU and (ii)
    the stranded-capacity overhead of benchmarks with small tiles.

    The selection rule is the paper's: the smallest bank size with a
    perfect fit fraction.
    """
    apps = apps or [a for a in ALL_APPS if a.name != "cnn"]
    tiles = []
    for app in apps:
        ws = max(1024, int(app.paper_profile().working_set_words))
        tiles.append(min(ws, 16 * 4000))  # <=4000 words per bank
    report: Dict[int, Dict] = {}
    for value in values:
        capacity = 16 * value * 256  # words per PMU
        fits = [t <= capacity for t in tiles]
        stranded = [max(0.0, 1.0 - t / capacity) for t in tiles]
        report[value] = {
            "fit_fraction": sum(fits) / len(fits),
            "avg_stranded": sum(stranded) / len(stranded),
        }
    return report


def select_bank_kb(report: Dict[int, Dict]) -> int:
    """The paper's rule: smallest bank size that fits every tile."""
    for value in sorted(report):
        if report[value]["fit_fraction"] >= 1.0:
            return value
    return max(report)


#: timing parameters the batched simulator can sweep directly: each
#: candidate value becomes one instance of a single compiled design in
#: one ``Machine.run_batch`` call (the area sweeps above re-partition
#: instead; these measure *cycles*)
SIM_SWEEPS = {
    "stages": tuple(range(4, 17)),
    "banks": (2, 4, 8, 16),
    "input_hops": (0, 1, 2, 4),
    "output_hops": (0, 1, 2, 4),
    "dram_queue_depth": (2, 4, 8, 16, 32, 64),
}


def sim_sweep(param: str, values: Sequence[int], app: str = "gemm",
              scale: str = "tiny", scheduler: str = "event",
              cache: Optional[CompileCache] = None) -> Dict:
    """Simulated-cycle curve for one timing parameter via run_batch.

    Compiles ``app`` once and simulates every candidate value as one
    batch instance — all values share a single leader's functional log,
    so the sweep costs one full simulation plus cheap replays.
    """
    if param not in SIM_SWEEPS:
        raise ValueError(
            f"cannot sweep {param!r} in the simulator; one of: "
            f"{sorted(SIM_SWEEPS)}")
    from repro.compiler.artifact import compile_app_cached
    from repro.sim.batch import run_batch
    artifact, _ = compile_app_cached(app, scale, cache=cache)
    batch = run_batch(artifact, [{param: v} for v in values],
                      scheduler=scheduler)
    curve: Dict[int, Optional[int]] = {}
    for value, inst in zip(values, batch):
        curve[value] = inst.stats.cycles if inst.ok else None
    return {"app": app, "scale": scale, "param": param, "curve": curve,
            "cohorts": batch.cohorts, "replayed": batch.replayed}


def render_sim(result: Dict) -> str:
    """ASCII rendering of one simulated sweep."""
    curve = result["curve"]
    values = sorted(curve)
    best = min((c for c in curve.values() if c is not None),
               default=None)
    rows = [[str(v),
             "X" if curve[v] is None else str(curve[v]),
             "" if curve[v] is None or not best
             else f"{curve[v] / best:.2f}x"] for v in values]
    title = (f"simulated sweep: {result['param']} on {result['app']} "
             f"({result['scale']}) — {result['cohorts']} cohort(s), "
             f"{result['replayed']} replayed")
    return format_table([result["param"], "cycles", "vs best"], rows,
                        title=title)


def render(param: str, curves) -> str:
    """ASCII rendering of one subfigure."""
    values = sorted(next(iter(curves.values())).keys())
    headers = ["Benchmark"] + [str(v) for v in values]
    rows = []
    for name, curve in curves.items():
        rows.append([name] + [
            "X" if curve[v] is None else f"{100 * curve[v]:.0f}%"
            for v in values])
    avg = average_curve(curves)
    rows.append(["Average"] + [
        "X" if avg[v] is None else f"{100 * avg[v]:.0f}%"
        for v in values])
    return format_table(headers, rows,
                        title=f"Figure 7 sweep: {param} "
                              f"(normalized area overhead)")
